#!/usr/bin/env python
"""Explore the paper's §5 analytical cost model.

Reproduces the closed-form comparison between flooding and directed
dissemination on k-ary trees (equations 3-9), prints the worked example
(k = 2, d = 4, f_max ≈ 0.76), validates every closed form against
brute-force tree enumeration, and shows how the break-even update frequency
f_max behaves as the tree gets wider and deeper.

Run with::

    python examples/analytical_model.py
"""

from __future__ import annotations

from repro.core.analytical import (
    dirq_total_cost,
    f_max,
    flooding_cost,
    max_query_dissemination_cost,
    max_update_cost,
    tree_num_nodes,
)
from repro.experiments import table_analytical
from repro.metrics.report import format_table


def main() -> None:
    # The §5 table, consistency checks, and worked example.
    table_analytical.main()

    # How the break-even update frequency scales with the tree shape.
    rows = []
    for k in (2, 3, 4, 8):
        for d in (2, 4, 6, 8):
            rows.append(
                (
                    k,
                    d,
                    tree_num_nodes(k, d),
                    f_max(k, d),
                    max_query_dissemination_cost(k, d) / flooding_cost(k, d),
                    max_update_cost(k, d) / flooding_cost(k, d),
                )
            )
    print()
    print(
        format_table(
            headers=["k", "d", "nodes", "f_max", "C_QDmax / C_F", "C_UDmax / C_F"],
            rows=rows,
            float_format="{:.3f}",
            title="Break-even update frequency across tree shapes",
        )
    )
    print(
        "\nf_max tends to 0.75 for deep trees: directed dissemination saves"
        " roughly the flooding reception overhead, which one network-wide"
        " update round spends back in 4/3 of the saving."
    )

    # Sensitivity of the total DirQ cost to the realised update frequency.
    k, d = 8, 2  # a 73-node tree, close to the paper's 50-node deployment
    print()
    rows = [
        (f, dirq_total_cost(k, d, f), dirq_total_cost(k, d, f) / flooding_cost(k, d))
        for f in (0.0, 0.25, 0.5, 0.75, f_max(k, d), 1.25)
    ]
    print(
        format_table(
            headers=["updates per query f", "C_TD(f)", "C_TD / C_F"],
            rows=rows,
            float_format="{:.3f}",
            title=f"Total DirQ cost vs update frequency (k={k}, d={d}, C_F={flooding_cost(k, d):.0f})",
        )
    )


if __name__ == "__main__":
    main()
