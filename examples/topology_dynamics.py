#!/usr/bin/env python
"""Topology dynamics: node death, cross-layer adaptation, and node addition.

The paper's §4.2 describes how DirQ adapts to topology changes using the
cross-layer notifications it receives from LMAC: when a neighbour's TDMA
slot goes silent, LMAC declares it dead and DirQ prunes the corresponding
Range Table entries and propagates the change up the tree; new nodes are
discovered the same way and folded into the tree.

This example scripts both events on the paper's 50-node network:

* at epoch 400 three nodes die simultaneously;
* at epoch 800 a node that was switched off at deployment time is powered on.

It then reports the query delivery quality (fraction of true source nodes
reached) in the phases before, between, and after the events, plus the
cross-layer notifications observed by the dead nodes' former parents.

Run with::

    python examples/topology_dynamics.py
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig, TopologyEvent
from repro.experiments.runner import ExperimentRunner
from repro.mac.crosslayer import NeighborFound, NeighborLost
from repro.metrics.accuracy import delivery_completeness, mean_overshoot
from repro.metrics.report import format_table


FAILURES = [7, 19, 33]
ACTIVATION = 42
FAILURE_EPOCH = 400
ACTIVATION_EPOCH = 800
NUM_EPOCHS = 1_200


def main() -> None:
    config = ExperimentConfig(
        num_nodes=50,
        num_epochs=NUM_EPOCHS,
        query_period=20,
        target_coverage=0.4,
        query_sensor_type="temperature",
        seed=11,
        initially_dead={ACTIVATION},
        topology_events=[
            *[
                TopologyEvent(epoch=FAILURE_EPOCH, kind=TopologyEvent.KILL, node_id=nid)
                for nid in FAILURES
            ],
            TopologyEvent(
                epoch=ACTIVATION_EPOCH, kind=TopologyEvent.ACTIVATE, node_id=ACTIVATION
            ),
        ],
        mac_beacon_interval=10.0,
        mac_death_threshold=3,
    ).with_atc()

    runner = ExperimentRunner(config)
    world = runner.build()
    tree_before = world.tree
    parents_of_victims = {nid: tree_before.parent_of(nid) for nid in FAILURES}

    print(
        f"Running {NUM_EPOCHS} epochs: nodes {FAILURES} die at epoch {FAILURE_EPOCH}, "
        f"node {ACTIVATION} joins at epoch {ACTIVATION_EPOCH}..."
    )
    result = runner.run()

    phases = [
        ("before failures", 0, FAILURE_EPOCH - 1),
        ("failures -> join", FAILURE_EPOCH + 100, ACTIVATION_EPOCH - 1),
        ("after join", ACTIVATION_EPOCH + 100, NUM_EPOCHS),
    ]
    rows = []
    for label, first, last in phases:
        records = result.audit.records_between(first, last)
        rows.append(
            (
                label,
                len(records),
                delivery_completeness(records),
                mean_overshoot(records),
            )
        )
    print()
    print(
        format_table(
            headers=["phase", "queries", "source completeness", "overshoot pp"],
            rows=rows,
            float_format="{:.3f}",
            title="Query delivery quality across topology changes",
        )
    )

    print()
    print("Cross-layer notifications observed by the dead nodes' former parents:")
    for victim, parent in parents_of_victims.items():
        bus = world.macs[parent].crosslayer
        lost = [e for e in bus.events_of(NeighborLost) if e.neighbor_id == victim]
        when = f"t={lost[0].time:.0f}" if lost else "never"
        print(f"  node {parent:2d} lost child {victim:2d}: reported by LMAC at {when}")

    found_anywhere = sum(
        1
        for mac in world.macs.values()
        for e in mac.crosslayer.events_of(NeighborFound)
        if e.neighbor_id == ACTIVATION and e.time > ACTIVATION_EPOCH
    )
    print(
        f"  node {ACTIVATION} announced itself to {found_anywhere} neighbours after joining"
    )

    print()
    print(
        f"Tree size: {tree_before.num_nodes} nodes before, "
        f"{result.tree.num_nodes} after (3 dead, 1 added); "
        f"overall cost ratio vs flooding: {result.cost_ratio:.2f}"
    )


if __name__ == "__main__":
    main()
