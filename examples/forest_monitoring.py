#!/usr/bin/env python
"""Forest environmental monitoring: the paper's motivating scenario (§3).

A 50-node network monitors temperature, humidity, light and pressure in a
forest.  A mixed population of users (researchers, students, the public)
queries it throughout the day, so the load is non-stationary: demand peaks
during the day and drops overnight.  The root's query-rate predictor feeds
the Adaptive Threshold Control, which re-budgets the update traffic every
hour so the network spends more energy on freshness when demand is high and
relaxes when it is quiet.

The example runs the full DirQ stack under a diurnal query load, then prints

* the per-hour query counts alongside the predictor's forecasts,
* the per-window update traffic (how ATC follows the load), and
* the end-of-run cost/accuracy summary against the flooding reference.

Run with::

    python examples/forest_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro.core.analytical import flooding_cost_general
from repro.core.config import DirQConfig, ThresholdMode
from repro.core.dirq_root import DirQRoot
from repro.experiments.runner import ExperimentRunner
from repro.experiments.config import ExperimentConfig
from repro.metrics.accuracy import delivery_completeness, mean_overshoot
from repro.metrics.report import format_key_values, format_series, format_table
from repro.metrics.series import UpdateRateRecorder
from repro.simulation.rng import RandomStreams
from repro.workload.generator import QueryWorkloadGenerator
from repro.workload.ground_truth import evaluate_query
from repro.workload.injection import diurnal_schedule
from repro.core.messages import QUERY_KIND


NUM_EPOCHS = 4_000
EPOCHS_PER_DAY = 2_000
EPOCHS_PER_HOUR = 250


def main() -> None:
    config = ExperimentConfig(
        num_nodes=50,
        num_epochs=NUM_EPOCHS,
        epochs_per_day=EPOCHS_PER_DAY,
        target_coverage=0.4,
        query_sensor_type=None,  # users ask about all four sensor types
        seed=2,
        dirq=DirQConfig(
            threshold_mode=ThresholdMode.ADAPTIVE,
            epochs_per_hour=EPOCHS_PER_HOUR,
        ),
    )

    # Build the world through the standard runner, then drive a custom epoch
    # loop so we can use a diurnal (non-periodic) injection schedule.
    runner = ExperimentRunner(config)
    world = runner.build()
    sim = world.sim
    root: DirQRoot = world.protocols[config.root_id]

    streams = RandomStreams(config.seed)
    schedule = diurnal_schedule(
        NUM_EPOCHS,
        mean_rate_per_epoch=1.0 / 20.0,
        epochs_per_day=EPOCHS_PER_DAY,
        rng=streams.get("diurnal-workload"),
        peak_to_trough=5.0,
    )
    injections: dict[int, int] = {}
    for epoch in schedule:
        injections[epoch] = injections.get(epoch, 0) + 1

    generator = QueryWorkloadGenerator(
        dataset=world.dataset,
        tree=world.tree,
        rng=streams.get("workload"),
        sensor_owners=world.sensor_owners,
    )
    flooding_per_query = flooding_cost_general(len(world.alive), world.channel.num_links)
    root.set_network_size(len(world.alive))
    root.set_flooding_cost(flooding_per_query)
    recorder = UpdateRateRecorder(world.ledger, window_epochs=200)

    hourly_actual: list[int] = []
    hourly_forecast: list[float] = []
    queries = 0

    print(f"Simulating {NUM_EPOCHS} epochs of diurnal usage over a 50-node forest network...")
    for epoch in range(NUM_EPOCHS):
        sim.run_until(float(epoch))
        if epoch % EPOCHS_PER_HOUR == 0:
            message = root.start_new_hour(epoch)
            hourly_forecast.append(message.expected_queries)
            hourly_actual.append(0)
        for nid in sorted(world.alive):
            world.protocols[nid].on_epoch(epoch)
        sim.run_until(epoch + 0.5)
        for _ in range(injections.get(epoch, 0)):
            generated = generator.generate(epoch, config.target_coverage)
            query = generated.query
            sources, should = evaluate_query(
                world.dataset, world.tree, query, epoch, world.sensor_owners, world.alive
            )
            world.audit.register_query(
                query, sources, should, epoch, population=len(world.alive) - 1
            )
            before = world.ledger.total_cost([QUERY_KIND])
            root.inject_query(query)
            sim.run_until(epoch + 0.95)
            root.observe_query_cost(world.ledger.total_cost([QUERY_KIND]) - before)
            hourly_actual[-1] += 1
            queries += 1
        if (epoch + 1) % 200 == 0:
            recorder.on_window_end(epoch + 1 - 200)
    sim.run_until(float(NUM_EPOCHS))

    # ---- reporting ---------------------------------------------------------
    print()
    print(
        format_table(
            headers=["hour", "queries injected", "EHr forecast"],
            rows=[
                (i, actual, forecast)
                for i, (actual, forecast) in enumerate(zip(hourly_actual, hourly_forecast))
            ],
            float_format="{:.1f}",
            title="Query load vs the root's hourly EHr forecast",
        )
    )
    print()
    points = recorder.series
    print(
        format_series(
            "update messages per 200 epochs (ATC follows the diurnal load)",
            [p.window_start for p in points],
            [p.value for p in points],
        )
    )
    print()
    dirq_cost = world.ledger.total_cost(["query", "update", "estimate"])
    flooding_cost = flooding_per_query * queries
    print(
        format_key_values(
            "End-of-run summary",
            [
                ("queries injected", queries),
                ("DirQ total cost", dirq_cost),
                ("flooding cost for the same load", flooding_cost),
                ("cost ratio", dirq_cost / flooding_cost),
                ("mean overshoot (pp)", mean_overshoot(world.audit.records)),
                ("source completeness", delivery_completeness(world.audit.records)),
            ],
        )
    )


if __name__ == "__main__":
    main()
