#!/usr/bin/env python
"""Quickstart: run DirQ against flooding on a small sensor network.

This example builds a 20-node environmental sensing network, runs the DirQ
dissemination scheme with the Adaptive Threshold Control for 800 epochs with
a range query injected every 20 epochs, runs the flooding baseline on the
identical workload, and prints the cost and accuracy comparison -- the
repository's smallest end-to-end demonstration of the paper's headline
claim.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.config import DirQConfig
from repro.experiments import ExperimentConfig, run_experiment
from repro.metrics.accuracy import delivery_completeness, mean_overshoot
from repro.metrics.report import format_key_values


def main() -> None:
    config = ExperimentConfig(
        num_nodes=20,
        comm_range=35.0,
        num_epochs=800,
        query_period=20,
        target_coverage=0.4,
        query_sensor_type="temperature",
        seed=7,
        dirq=DirQConfig(epochs_per_hour=200),
    )

    print("Running DirQ (Adaptive Threshold Control)...")
    dirq = run_experiment(config.with_atc())

    print("Running the flooding baseline on the same workload...")
    flooding = run_experiment(config.with_flooding())

    ratio = dirq.total_dirq_cost / flooding.breakdown.flood_cost
    print()
    print(
        format_key_values(
            "DirQ vs flooding (20 nodes, 800 epochs, one query every 20 epochs)",
            [
                ("queries injected", dirq.num_queries),
                ("flooding total cost (tx+rx units)", flooding.breakdown.flood_cost),
                ("DirQ total cost", dirq.total_dirq_cost),
                ("  - query dissemination", dirq.breakdown.query_cost),
                ("  - range updates", dirq.breakdown.update_cost),
                ("  - hourly estimates", dirq.breakdown.estimate_cost),
                ("DirQ / flooding cost ratio", ratio),
                ("mean overshoot (percentage points)", mean_overshoot(dirq.audit.records)),
                ("fraction of true sources reached", delivery_completeness(dirq.audit.records)),
            ],
        )
    )
    print()
    print(
        "The paper reports DirQ settling at 45-55% of the flooding cost; short"
        " runs sit slightly above the band because of the start-up transient."
    )


if __name__ == "__main__":
    main()
