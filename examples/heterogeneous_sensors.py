#!/usr/bin/env python
"""Heterogeneous networks: different nodes carry different sensor subsets.

Fig. 4 of the paper shows a node maintaining Range Tables for sensor types
it does not itself possess, because the types exist deeper in its subtree --
this is what lets DirQ support heterogeneous deployments (unlike the
homogeneous-only architectures it compares against).

This example mounts a random subset of two of the four sensor types on each
node, runs DirQ, and then inspects the network:

* how many Range Tables each node ended up maintaining vs how many sensors
  it physically carries;
* that queries for every type remain routable and accurate even though no
  single node carries all of them.

Run with::

    python examples/heterogeneous_sensors.py
"""

from __future__ import annotations

from collections import Counter

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner
from repro.metrics.accuracy import delivery_completeness, fig5_percentages
from repro.metrics.report import format_table
from repro.sensors.types import DEFAULT_SENSOR_TYPES


def main() -> None:
    config = ExperimentConfig(
        num_nodes=50,
        num_epochs=1_000,
        query_period=20,
        target_coverage=0.4,
        query_sensor_type=None,   # queries drawn over all four types
        sensors_per_node=2,       # each node carries a random pair of types
        seed=13,
    ).with_fixed_delta(5.0)

    runner = ExperimentRunner(config)
    world = runner.build()

    ownership = Counter()
    for stype, owners in world.sensor_owners.items():
        ownership[stype] = len(owners)
    print("Sensor ownership (nodes carrying each type, out of 50):")
    for stype in DEFAULT_SENSOR_TYPES:
        print(f"  {stype:12s}: {ownership[stype]} nodes")

    print("\nRunning 1 000 epochs with mixed-type queries...")
    result = runner.run()

    # Range-table footprint vs physical sensors (the Fig. 4 property).
    rows = []
    for depth in range(result.tree.depth + 1):
        nodes_at_depth = [n for n in result.tree.node_ids if result.tree.depth_of(n) == depth]
        if not nodes_at_depth:
            continue
        tables = [len(world.protocols[n].tables.sensor_types) for n in nodes_at_depth]
        sensors = [len(world.nodes[n].sensor_types) for n in nodes_at_depth]
        rows.append(
            (
                depth,
                len(nodes_at_depth),
                sum(sensors) / len(sensors),
                sum(tables) / len(tables),
            )
        )
    print()
    print(
        format_table(
            headers=["tree depth", "nodes", "avg sensors mounted", "avg range tables kept"],
            rows=rows,
            title="Range tables exist for every type present in the subtree (Fig. 4)",
        )
    )
    print(
        "\nNodes close to the root keep tables for (almost) all four types even"
        " though they carry only two sensors; leaves keep tables only for their own."
    )

    # Per-type routing quality.
    print()
    by_type = {}
    for record in result.audit.records:
        by_type.setdefault(record.query.sensor_type, []).append(record)
    rows = []
    for stype, records in sorted(by_type.items()):
        point = fig5_percentages(records, config.num_nodes - 1, 5.0, 0.4)
        rows.append(
            (
                stype,
                len(records),
                delivery_completeness(records),
                point.receive_pct,
                point.should_receive_pct,
            )
        )
    print(
        format_table(
            headers=["sensor type", "queries", "source completeness", "receive %", "should %"],
            rows=rows,
            float_format="{:.2f}",
            title="Per-type query routing quality in the heterogeneous network",
        )
    )
    print(f"\nOverall cost ratio vs flooding: {result.cost_ratio:.2f}")


if __name__ == "__main__":
    main()
