"""Shared benchmark configuration.

Every benchmark prints the rows / series the corresponding paper artefact
reports, so the console output of ``pytest benchmarks/ --benchmark-only``
doubles as the reproduction record (EXPERIMENTS.md summarises the same
numbers).

The simulations here are scaled down from the paper's 20 000 epochs so the
whole harness finishes in a few minutes; the ``repro.experiments`` modules
accept ``num_epochs=20_000`` for full-length runs.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.batch import BatchRunner

#: Epoch budget used by the figure benchmarks.  Override with
#: ``REPRO_BENCH_EPOCHS=20000`` for paper-length runs.
BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "1200"))

#: Seed shared by every benchmark run.
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))

#: Worker processes for the figure sweeps (``BatchRunner``); defaults to
#: the machine's CPU count.
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", str(os.cpu_count() or 1)))

#: Result cache directory; empty/unset disables caching so timings stay
#: honest.  Set ``REPRO_BENCH_CACHE=.bench-cache`` to iterate on reports
#: without re-simulating.
BENCH_CACHE = os.environ.get("REPRO_BENCH_CACHE") or None

#: Replicates per sweep point.  The default of 1 keeps the recorded timing
#: anchors comparable across revisions; set ``REPRO_BENCH_REPLICATES=5`` to
#: produce benchmark reports with confidence intervals (the sweeps then run
#: that many times as many trials).
BENCH_REPLICATES = int(os.environ.get("REPRO_BENCH_REPLICATES", "1"))


@pytest.fixture(scope="session")
def bench_epochs() -> int:
    return BENCH_EPOCHS


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return BENCH_SEED


@pytest.fixture(scope="session")
def bench_replicates() -> int:
    return BENCH_REPLICATES


@pytest.fixture(scope="session")
def bench_runner() -> BatchRunner:
    """The shared trial-parallel runner every figure sweep goes through.

    ``cache_dir=""`` force-disables caching when ``REPRO_BENCH_CACHE`` is
    unset, so a stray ``REPRO_CACHE_DIR`` in the environment cannot turn
    benchmark timings into cache reads.
    """
    return BatchRunner(max_workers=BENCH_WORKERS, cache_dir=BENCH_CACHE or "")


def emit(title: str, body: str) -> None:
    """Print a clearly delimited report block."""
    bar = "=" * 78
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
