"""Shared benchmark configuration.

Every benchmark prints the rows / series the corresponding paper artefact
reports, so the console output of ``pytest benchmarks/ --benchmark-only``
doubles as the reproduction record (EXPERIMENTS.md summarises the same
numbers).

The simulations here are scaled down from the paper's 20 000 epochs so the
whole harness finishes in a few minutes; the ``repro.experiments`` modules
accept ``num_epochs=20_000`` for full-length runs.
"""

from __future__ import annotations

import os

import pytest

#: Epoch budget used by the figure benchmarks.  Override with
#: ``REPRO_BENCH_EPOCHS=20000`` for paper-length runs.
BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "1200"))

#: Seed shared by every benchmark run.
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))


@pytest.fixture(scope="session")
def bench_epochs() -> int:
    return BENCH_EPOCHS


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return BENCH_SEED


def emit(title: str, body: str) -> None:
    """Print a clearly delimited report block."""
    bar = "=" * 78
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
