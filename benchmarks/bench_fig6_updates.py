"""Benchmark / reproduction of Fig. 6 (E3): update messages per 100 epochs.

Expected shape (paper Fig. 6, 40% relevant nodes): a small fixed δ (3 %)
transmits far more update messages than the U_max budget, a large fixed δ
(9 %) far fewer, and the ATC series settles inside (or near) the
0.45–0.55 × U_max band — which is where DirQ's total cost sits at roughly
half the cost of flooding.
"""

import pytest

from repro.experiments import fig6_updates
from repro.experiments.scenarios import paper_network

from .conftest import emit


@pytest.fixture(scope="module")
def fig6_result(bench_epochs, bench_seed, bench_runner, bench_replicates):
    return fig6_updates.run(
        deltas=(3.0, 5.0, 9.0),
        num_epochs=bench_epochs,
        target_coverage=0.4,
        seed=bench_seed,
        base_config=paper_network(num_epochs=bench_epochs, seed=bench_seed),
        runner=bench_runner,
        replicates=bench_replicates,
    )


def test_fig6_update_rate_series(benchmark, fig6_result):
    """E3 -- Fig. 6: update transmissions per window for fixed δ and ATC."""
    result = benchmark.pedantic(lambda: fig6_result, rounds=1, iterations=1)
    emit("E3 -- Fig. 6 (update messages per 100 epochs, 40% relevant nodes)",
         fig6_updates.report(result))

    mean3 = result.mean_updates["delta=3%"]
    mean9 = result.mean_updates["delta=9%"]
    mean_atc = result.mean_updates["atc"]
    umax = result.umax_per_window

    # Ordering: tighter thresholds transmit more updates.
    assert mean3 > result.mean_updates["delta=5%"] > mean9
    # delta=3% blows straight through the budget (the paper's motivation for ATC).
    assert mean3 > umax
    # The ATC stays at or below the budget and inside/near the target band
    # once the start-up transient has passed.
    steady_atc = [p.value for p in result.series.series["atc"]][2:]
    steady_mean = sum(steady_atc) / max(1, len(steady_atc))
    assert steady_mean < umax
    assert steady_mean > 0.2 * umax


def test_fig6_atc_cost_band(benchmark, fig6_result):
    """The cost consequence of Fig. 6: ATC total cost ~ half of flooding."""
    ratios = benchmark.pedantic(lambda: fig6_result.cost_ratios, rounds=1, iterations=1)
    emit(
        "E3 -- total cost / flooding per setting",
        "\n".join(f"  {name:>10s} : {ratio:.3f}" for name, ratio in sorted(ratios.items())),
    )
    # Fixed delta=3% exceeds flooding (the failure mode ATC exists to avoid);
    # ATC lands in the neighbourhood of one half.
    assert ratios["delta=3%"] > 1.0
    assert 0.35 <= ratios["atc"] <= 0.75
