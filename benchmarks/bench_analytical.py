"""Benchmark / reproduction of the §5 analytical model (worked example E5).

Regenerates the paper's k = 2, d = 4 example (f_max ≈ 0.76) and the closed
form vs enumeration consistency table.  The timed portion is the full
analytical sweep including brute-force tree enumeration.
"""

from repro.core.analytical import f_max, paper_example
from repro.experiments import table_analytical

from .conftest import emit


def test_analytical_table(benchmark):
    """E5: §5.3 worked example and eqs. (3)-(9) vs tree enumeration."""

    def run():
        return table_analytical.run()

    rows, checks, example = benchmark(run)
    emit(
        "E5 -- Analytical cost model (paper §5; f_max for k=2,d=4 reported as <0.76)",
        table_analytical.report(rows, checks, example),
    )
    assert all(c.consistent for c in checks)
    assert 0.74 < example["f_max"] < 0.78


def test_fmax_large_trees(benchmark):
    """Closed-form f_max evaluation over the paper's (k=8, d=10)-sized trees."""

    def run():
        return [f_max(k, d) for k in (2, 4, 8) for d in range(1, 11)]

    values = benchmark(run)
    # f_max is exactly 1 for depth-1 trees (dissemination already saves the
    # whole flooding reception overhead) and decreases towards ~0.75 deeper.
    assert all(0.5 < v <= 1.0 for v in values)
    example = paper_example()
    emit(
        "f_max sweep",
        "k in {2,4,8}, d in 1..10 -> f_max ranges "
        f"[{min(values):.3f}, {max(values):.3f}]; paper example k=2,d=4: "
        f"{example['f_max']:.3f}",
    )
