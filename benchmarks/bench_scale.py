"""Network-axis scaling: throughput and memory at N in {50, 500, 5000}.

Tracks three things across revisions:

* **Epoch throughput + peak RSS per scale point** -- each point runs one
  full trial in a subprocess (so ``ru_maxrss`` is per-point, not
  whole-harness) and records epochs simulated per second alongside peak
  resident memory.
* **Maintenance-path throughput, fast vs brute** -- the per-relink
  pipeline (mobility delta -> neighbour recomputation -> spanning-tree
  repair) timed with the spatial hash + incremental repair against the
  pre-existing brute-force rebuild, on the same replayed move sequence.
  This is where the network-axis speedup lives: the static epoch loop
  (LMAC frames, sensing) is O(n) either way, so end-to-end trial time
  dilutes the O(n^2) -> O(k) neighbour win.  The recorded speedup is the
  acceptance number for the scaling work.
* **A/B bit-identity** -- the fast path must be an implementation detail:
  a mobile 500-node trial run with ``neighbor_method="brute"`` +
  ``tree_repair="full"`` and with the defaults must produce identical
  measurement fingerprints (config hash excluded via
  ``fingerprint(include_key=False)``).

Runs as pytest-benchmark timings::

    PYTHONPATH=src python -m pytest benchmarks/bench_scale.py \
        -o python_files='bench_*.py' --benchmark-only

and as a CLI check for CI::

    PYTHONPATH=src python -m benchmarks.bench_scale --smoke --json BENCH_scale.json

Smoke mode drops the 5 000-node point and shortens every trial; the JSON
report has the same shape either way.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import resource
import subprocess
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import pytest

from repro.experiments.batch import BatchRunner, TrialSpec
from repro.experiments.runner import run_experiment
from repro.metrics.report import format_table
from repro.network.addresses import NodeId
from repro.network.spanning_tree import build_bfs_tree
from repro.network.topology import Topology, random_geometric_topology
from repro.scenarios.models import rebuild_spanning_tree
from repro.scenarios.registry import build_config

from .conftest import BENCH_SEED, emit

#: (num_nodes, registered scenario) pairs tracked by the scaling report.
#: ``static-paper`` is the 50-node reference; the ``scale-*`` entries are
#: density-preserving enlargements (see ``repro.scenarios.static``).
SCALE_POINTS: Tuple[Tuple[int, str], ...] = (
    (50, "static-paper"),
    (500, "scale-500"),
    (5000, "scale-5000"),
)

#: Epochs per scale-point trial.  200 keeps the 5 000-node point around
#: half a minute while still covering several query/relink periods.
SCALE_BENCH_EPOCHS = 200

#: Maintenance-path benchmark shape: a 500-node mobile network replaying
#: the same move sequence through both neighbour/tree strategies.  The two
#: fractions bracket the mobility regimes: 5 % moved per re-link is the
#: sparse-churn case where the incremental tree repair applies, 30 % (the
#: ``scale-500-mobile`` fraction) is heavy enough that the repair falls
#: back to a full BFS by design and only the spatial delta pays off.
MAINTENANCE_NODES = 500
MAINTENANCE_STEPS = 30
MAINTENANCE_FRACTIONS = (0.05, 0.3)
MAINTENANCE_STEP_METRES = 2.0
#: Timing repeats per arm; the minimum is recorded (the repeats replay an
#: identical deterministic walk, so spread is scheduler noise, not work).
MAINTENANCE_REPEATS = 3

#: Scenario used for the fast-vs-brute bit-identity check.
AB_SCENARIO = "scale-500-mobile"
AB_EPOCHS = 60


# ---------------------------------------------------------------------------
# Scale points (subprocess per point for honest peak-RSS numbers)
# ---------------------------------------------------------------------------


def run_point(scenario: str, num_epochs: int, seed: int) -> Dict[str, float]:
    """Run one scale-point trial in-process; return timing + RSS stats."""
    config = build_config(scenario, num_epochs=num_epochs, seed=seed)
    start = time.perf_counter()
    result = run_experiment(config)
    elapsed = time.perf_counter() - start
    # ru_maxrss is KiB on Linux (bytes on macOS; this harness targets Linux
    # CI, and the discrepancy only inflates the reported number there).
    peak_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "scenario": scenario,
        "num_nodes": result.num_nodes,
        "epochs": num_epochs,
        "num_queries": result.num_queries,
        "wall_s": elapsed,
        "epochs_per_s": num_epochs / elapsed,
        "peak_rss_mb": peak_kib / 1024.0,
    }


def measure_point(scenario: str, num_epochs: int, seed: int) -> Dict[str, float]:
    """Run one scale point in a child process so peak RSS is per-point."""
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "benchmarks.bench_scale",
            "--child",
            scenario,
            "--epochs",
            str(num_epochs),
            "--seed",
            str(seed),
        ],
        capture_output=True,
        text=True,
        env=os.environ,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"scale point {scenario} failed:\n{proc.stderr.strip()}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


# ---------------------------------------------------------------------------
# Maintenance path: mobility delta -> neighbours -> tree repair
# ---------------------------------------------------------------------------


def _move_sequence(
    topology: Topology,
    num_steps: int,
    seed: int,
    fraction: float,
    step_metres: float = MAINTENANCE_STEP_METRES,
) -> List[Dict[NodeId, Tuple[float, float]]]:
    """Pre-generated random-walk updates, identical for every timed arm.

    Positions evolve cumulatively (each step starts from the previous
    step's placements) and stay clamped to the deployment square; the
    root never moves, matching the runner's mobility model.
    """
    area = 100.0 * math.sqrt(len(topology.positions) / 50.0)
    rng = np.random.default_rng(seed)
    positions = dict(topology.positions)
    movable = [nid for nid in sorted(positions) if nid != 0]
    count = max(1, int(len(movable) * fraction))
    steps: List[Dict[NodeId, Tuple[float, float]]] = []
    for _ in range(num_steps):
        chosen = rng.choice(len(movable), size=count, replace=False)
        updates: Dict[NodeId, Tuple[float, float]] = {}
        for idx in sorted(int(i) for i in chosen):
            nid = movable[idx]
            x, y = positions[nid]
            dx, dy = rng.uniform(-step_metres, step_metres, size=2)
            moved = (
                min(max(x + dx, 0.0), area),
                min(max(y + dy, 0.0), area),
            )
            positions[nid] = moved
            updates[nid] = moved
        steps.append(updates)
    return steps


def maintenance_base(
    num_nodes: int = MAINTENANCE_NODES, seed: int = BENCH_SEED
) -> Topology:
    """The shared starting topology for the maintenance benchmark."""
    area = 100.0 * math.sqrt(num_nodes / 50.0)
    return random_geometric_topology(
        num_nodes,
        comm_range=30.0,
        area_size=area,
        rng=np.random.default_rng(seed),
    )


def maintenance_walk(
    topology: Topology,
    moves: Sequence[Dict[NodeId, Tuple[float, float]]],
    fast: bool,
):
    """Replay ``moves`` through one maintenance strategy.

    The fast arm is the post-change pipeline (spatial delta, pointer-swap
    topology adoption, incremental tree repair).  The brute arm replays
    the pre-change pipeline: brute-force neighbour recomputation, the
    O(V+E) graph copy plus node-set check the channel used to perform in
    ``update_topology``, and a full BFS rebuild.

    Returns ``(elapsed_seconds, final_tree)`` so callers can both time the
    arms and assert that they produce the identical spanning tree.
    """
    alive = set(topology.positions)
    tree = build_bfs_tree(topology, root=0)
    channel_graph = topology.graph
    start = time.perf_counter()
    for updates in moves:
        if fast:
            topology, dirty = topology.with_positions_delta(
                updates, method="spatial"
            )
            channel_graph = topology.graph
            tree = rebuild_spanning_tree(
                topology, alive, 0, previous=tree, dirty=dirty
            )
        else:
            topology = topology.with_positions(updates, method="brute")
            if set(topology.graph.nodes) != set(channel_graph.nodes):
                raise RuntimeError("node set changed")
            channel_graph = topology.graph.copy()
            _positions = dict(topology.positions)
            tree = rebuild_spanning_tree(topology, alive, 0)
    return time.perf_counter() - start, tree


def maintenance_arms(
    num_nodes: int,
    num_steps: int,
    seed: int,
    fraction: float,
    repeats: int = MAINTENANCE_REPEATS,
) -> Dict[str, object]:
    """Min-of-``repeats`` timing of both arms on one shared move sequence."""
    base = maintenance_base(num_nodes, seed)
    moves = _move_sequence(base, num_steps, seed, fraction=fraction)
    brute_s, fast_s = math.inf, math.inf
    brute_tree = fast_tree = None
    for _ in range(repeats):
        elapsed, brute_tree = maintenance_walk(base, moves, fast=False)
        brute_s = min(brute_s, elapsed)
        elapsed, fast_tree = maintenance_walk(base, moves, fast=True)
        fast_s = min(fast_s, elapsed)
    return {
        "num_nodes": num_nodes,
        "steps": num_steps,
        "moved_fraction": fraction,
        "brute_s": brute_s,
        "fast_s": fast_s,
        "brute_relinks_per_s": num_steps / brute_s,
        "fast_relinks_per_s": num_steps / fast_s,
        "speedup": brute_s / fast_s,
        "trees_identical": fast_tree.parent == brute_tree.parent,
    }


def maintenance_report(
    num_nodes: int = MAINTENANCE_NODES,
    num_steps: int = MAINTENANCE_STEPS,
    seed: int = BENCH_SEED,
) -> List[Dict[str, object]]:
    """Both maintenance regimes (sparse and heavy mobility), timed."""
    return [
        maintenance_arms(num_nodes, num_steps, seed, fraction)
        for fraction in MAINTENANCE_FRACTIONS
    ]


# ---------------------------------------------------------------------------
# A/B bit-identity: fast path vs brute path
# ---------------------------------------------------------------------------


def ab_fingerprints(
    scenario: str = AB_SCENARIO,
    num_epochs: int = AB_EPOCHS,
    seed: int = BENCH_SEED,
) -> Dict[str, object]:
    """Fingerprints of the same trial under every strategy axis.

    Three arms: the fast defaults, the brute neighbour/tree reference,
    and the columnar epoch tick on top of the fast defaults (the PR-10
    axis, multiplicative with the scale path).  The config hashes
    legitimately differ (the strategy flags are part of the config), so
    the comparison uses ``fingerprint(include_key=False)`` --
    measurements only.
    """
    fast_cfg = build_config(scenario, num_epochs=num_epochs, seed=seed)
    brute_cfg = fast_cfg.replace(neighbor_method="brute", tree_repair="full")
    columnar_cfg = fast_cfg.replace(tick_method="columnar")
    runner = BatchRunner(max_workers=1, executor="serial", cache_dir="")
    fast, brute, columnar = runner.run(
        [
            TrialSpec(label="ab fast", config=fast_cfg),
            TrialSpec(label="ab brute", config=brute_cfg),
            TrialSpec(label="ab columnar", config=columnar_cfg),
        ]
    )
    prints = {
        "fast": fast.fingerprint(include_key=False),
        "brute": brute.fingerprint(include_key=False),
        "columnar": columnar.fingerprint(include_key=False),
    }
    return {
        "scenario": scenario,
        "epochs": num_epochs,
        **prints,
        "identical": len(set(prints.values())) == 1,
    }


# ---------------------------------------------------------------------------
# pytest-benchmark timings
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("num_nodes,scenario", SCALE_POINTS)
def test_scale_epoch_throughput(benchmark, num_nodes, scenario):
    """One trial per scale point; the report shows epochs/s and peak RSS."""
    epochs = 120 if num_nodes >= 5000 else SCALE_BENCH_EPOCHS
    stats = benchmark.pedantic(
        lambda: run_point(scenario, epochs, BENCH_SEED), rounds=1, iterations=1
    )
    assert stats["num_nodes"] == num_nodes
    assert stats["num_queries"] > 0
    emit(
        f"scale point -- {scenario}",
        f"{num_nodes} nodes, {epochs} epochs: "
        f"{stats['epochs_per_s']:.1f} epochs/s, "
        f"peak RSS {stats['peak_rss_mb']:.0f} MB "
        "(in-process: RSS includes harness overhead; the CLI report "
        "isolates each point in a subprocess)",
    )


def test_maintenance_path_speedup(benchmark):
    """Spatial hash + incremental repair vs the pre-change brute pipeline.

    Both arms must produce the identical tree, and in the sparse-mobility
    regime the fast arm must be at least 5x faster at 500 nodes -- the
    acceptance number for the scaling work.
    """
    rows = benchmark.pedantic(lambda: maintenance_report(), rounds=1, iterations=1)
    for row in rows:
        assert row["trees_identical"], (
            f"arms diverged at moved fraction {row['moved_fraction']}"
        )
    emit(
        "maintenance path, 500 nodes (min of "
        f"{MAINTENANCE_REPEATS} repeats per arm)",
        "\n".join(
            f"{row['moved_fraction']:.0%} moved: "
            f"brute {row['brute_s']:.2f}s vs fast {row['fast_s']:.2f}s "
            f"over {row['steps']} relinks -- {row['speedup']:.1f}x"
            for row in rows
        ),
    )
    sparse = min(rows, key=lambda row: row["moved_fraction"])
    assert sparse["speedup"] >= 5.0, (
        f"sparse-mobility speedup {sparse['speedup']:.1f}x below the 5x "
        f"floor (brute {sparse['brute_s']:.3f}s, fast {sparse['fast_s']:.3f}s)"
    )


def test_scale_ab_bit_identity(benchmark):
    """Brute, fast, and columnar paths agree bit-for-bit on a mobile 500-node trial."""
    report = benchmark.pedantic(
        lambda: ab_fingerprints(), rounds=1, iterations=1
    )
    assert report["identical"], (
        f"fast/brute/columnar fingerprints diverged on {report['scenario']}: "
        f"{report['fast']} vs {report['brute']} vs {report['columnar']}"
    )
    emit(
        "fast-vs-brute bit identity",
        f"{report['scenario']}, {report['epochs']} epochs: "
        f"fingerprint {report['fast']}",
    )


# ---------------------------------------------------------------------------
# CLI mode (used by CI; also the producer of BENCH_scale.json)
# ---------------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Network-axis scaling benchmark: throughput, memory, "
        "maintenance speedup, and fast-vs-brute bit identity."
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="scaled-down CI mode: skip the 5000-node point, shorten trials",
    )
    parser.add_argument(
        "--epochs",
        type=int,
        default=None,
        help=(
            "epochs per scale-point trial (default: 120 in smoke mode, "
            f"{SCALE_BENCH_EPOCHS} otherwise)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=BENCH_SEED, help="trial seed"
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the full report as JSON to PATH",
    )
    parser.add_argument(
        "--child",
        metavar="SCENARIO",
        default=None,
        help=argparse.SUPPRESS,  # internal: run one point, print JSON stats
    )
    args = parser.parse_args(argv)

    if args.child is not None:
        stats = run_point(
            args.child, args.epochs or SCALE_BENCH_EPOCHS, args.seed
        )
        print(json.dumps(stats))
        return 0

    num_epochs = args.epochs or (120 if args.smoke else SCALE_BENCH_EPOCHS)
    points = [p for p in SCALE_POINTS if not (args.smoke and p[0] >= 5000)]

    rows = []
    report_points = []
    for num_nodes, scenario in points:
        stats = measure_point(scenario, num_epochs, args.seed)
        report_points.append(stats)
        rows.append(
            (
                scenario,
                num_nodes,
                stats["wall_s"],
                stats["epochs_per_s"],
                stats["peak_rss_mb"],
            )
        )
    print(
        format_table(
            headers=["scenario", "nodes", "wall s", "epochs/s", "peak RSS MB"],
            rows=rows,
            float_format="{:.1f}",
            title=f"scale points ({num_epochs} epochs per trial, "
            "one subprocess each)",
        )
    )

    # The maintenance benchmark is sub-second, so smoke mode runs it at
    # full length; fewer relinks would let first-call warm-up dominate.
    steps = MAINTENANCE_STEPS
    maintenance = maintenance_report(num_steps=steps, seed=args.seed)
    print(
        format_table(
            headers=["moved", "brute s", "fast s", "relinks/s", "speedup"],
            rows=[
                (
                    f"{row['moved_fraction']:.0%}",
                    row["brute_s"],
                    row["fast_s"],
                    row["fast_relinks_per_s"],
                    f"{row['speedup']:.1f}x",
                )
                for row in maintenance
            ],
            float_format="{:.2f}",
            title=f"maintenance path, {MAINTENANCE_NODES} nodes, "
            f"{steps} relinks, min of {MAINTENANCE_REPEATS} repeats",
        )
    )
    if not all(row["trees_identical"] for row in maintenance):
        print("FAIL: maintenance arms produced different trees", file=sys.stderr)
        return 1

    ab_epochs = 40 if args.smoke else AB_EPOCHS
    ab = ab_fingerprints(num_epochs=ab_epochs, seed=args.seed)
    print(
        f"A/B {ab['scenario']} ({ab_epochs} epochs): "
        f"fast {ab['fast']} brute {ab['brute']} columnar {ab['columnar']}"
    )
    if not ab["identical"]:
        print("FAIL: fast/brute/columnar fingerprints differ", file=sys.stderr)
        return 1
    print("A/B: fast, brute, and columnar paths are bit-identical")

    report = {
        "epochs_per_point": num_epochs,
        "seed": args.seed,
        "points": report_points,
        "maintenance": maintenance,
        "ab": ab,
    }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"report written to {args.json}")
    print("bench_scale: OK")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
