"""Per-scenario epoch throughput: what do the dynamics cost?

Each registered scenario runs one trial of the same length and network as
the static baseline; the recorded metric is *epoch throughput*
(epochs simulated per second), so the overhead of churn bookkeeping,
mobility re-linking and battery accounting relative to the static paper
network is tracked across revisions.

Runs as pytest-benchmark timings::

    PYTHONPATH=src python -m pytest benchmarks/bench_scenarios.py \
        -o python_files='bench_*.py' --benchmark-only

and as a CLI smoke check for CI::

    PYTHONPATH=src python -m benchmarks.bench_scenarios --smoke

The smoke mode runs a scaled-down trial of every registered scenario,
asserts bit-exact repeatability, and prints the throughput table.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

import pytest

from repro.experiments.batch import BatchRunner, TrialSpec
from repro.experiments.runner import run_experiment
from repro.metrics.report import format_table
from repro.scenarios.registry import build_config, scenario_names

from .conftest import BENCH_SEED, emit

#: Scenarios timed individually by pytest-benchmark (one per dynamic
#: dimension plus the static reference); the CLI smoke covers the full
#: catalogue.
BENCH_SCENARIOS = (
    "static-paper",
    "churn-heavy",
    "area-blast",
    "mobile-40",
    "group-mobile",
    "diurnal-60",
    "energy-tiered",
    "harsh-mixed",
    "harsh-grid",
)

#: Epochs per timed trial -- smaller than the figure benchmarks because the
#: comparison of interest is *relative* (dynamics vs static), not absolute.
SCENARIO_BENCH_EPOCHS = 600


def run_scenario(name: str, num_epochs: int = SCENARIO_BENCH_EPOCHS):
    return run_experiment(build_config(name, num_epochs=num_epochs, seed=BENCH_SEED))


def throughput_rows(num_epochs: int, names: Sequence[str]):
    """(scenario, wall s, epochs/s, overhead vs static) rows, static first."""
    timings = {}
    for name in names:
        start = time.perf_counter()
        run_scenario(name, num_epochs)
        timings[name] = time.perf_counter() - start
    static = timings.get("static-paper")
    rows = []
    for name in names:
        wall = timings[name]
        overhead = (
            f"{wall / static:.2f}x" if static and name != "static-paper" else "-"
        )
        rows.append((name, wall, num_epochs / wall, overhead))
    return rows


@pytest.mark.parametrize("name", BENCH_SCENARIOS)
def test_scenario_epoch_throughput(benchmark, name):
    """Wall-clock of one trial per scenario; the report shows epochs/s."""
    result = benchmark.pedantic(
        lambda: run_scenario(name), rounds=1, iterations=1
    )
    assert result.num_queries > 0
    assert result.config.root_id in result.alive_at_end
    emit(
        f"scenario throughput -- {name}",
        f"{SCENARIO_BENCH_EPOCHS} epochs, {result.num_queries} queries, "
        f"{len(result.alive_at_end)}/{result.num_nodes} nodes alive at end, "
        f"{len(result.scenario_events)} dynamic events, "
        f"{result.num_relinks} re-links",
    )


def test_scenario_overhead_report(benchmark):
    """One table comparing every timed scenario against the static baseline."""
    rows = benchmark.pedantic(
        lambda: throughput_rows(SCENARIO_BENCH_EPOCHS, BENCH_SCENARIOS),
        rounds=1,
        iterations=1,
    )
    emit(
        "scenario epoch throughput vs static",
        format_table(
            headers=["scenario", "wall s", "epochs/s", "overhead"],
            rows=rows,
            float_format="{:.2f}",
        ),
    )
    # Dynamics must stay within an order of magnitude of the static path
    # (documented overhead is ~2x for mobility, ~1.1x elsewhere).  The
    # bound is relative, so a loaded runner that slows everything equally
    # cannot flake it; the small constant absorbs timer noise on the
    # sub-second static baseline.
    static = next(r for r in rows if r[0] == "static-paper")
    for row in rows:
        assert row[1] < 10 * static[1] + 2.0, (
            f"{row[0]} took {row[1]:.2f}s vs static {static[1]:.2f}s"
        )


# ---------------------------------------------------------------------------
# CLI smoke mode (used by CI)
# ---------------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Per-scenario epoch-throughput benchmark / smoke check."
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="scaled-down CI mode: every scenario + determinism assert",
    )
    parser.add_argument(
        "--epochs",
        type=int,
        default=None,
        help=(
            "epochs per trial (default: 200 in smoke mode, "
            f"{SCENARIO_BENCH_EPOCHS} otherwise)"
        ),
    )
    args = parser.parse_args(argv)
    num_epochs = args.epochs or (200 if args.smoke else SCENARIO_BENCH_EPOCHS)

    names = scenario_names() if args.smoke else list(BENCH_SCENARIOS)
    rows = throughput_rows(num_epochs, names)
    print(
        format_table(
            headers=["scenario", "wall s", "epochs/s", "overhead"],
            rows=rows,
            float_format="{:.2f}",
            title=f"scenario epoch throughput ({num_epochs} epochs per trial)",
        )
    )

    if args.smoke:
        # Scenario trials must be bit-exact on repetition.
        runner = BatchRunner(max_workers=1, executor="serial", cache_dir="")
        specs = [
            TrialSpec(
                label=name,
                config=build_config(name, num_epochs=120, seed=BENCH_SEED),
            )
            for name in names
        ]
        first = [r.fingerprint() for r in runner.run(specs)]
        second = [r.fingerprint() for r in runner.run(specs)]
        if first != second:
            print("FAIL: scenario trials are not deterministic", file=sys.stderr)
            return 1
        print(
            f"smoke: {len(names)} scenarios, fingerprints reproducible"
        )
    print("bench_scenarios: OK")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
