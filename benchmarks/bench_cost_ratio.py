"""Benchmark / reproduction of the headline claim (E6).

"DirQ spends between 45 % and 55 % the cost of flooding" (abstract, §6,
§7.2) with an average overshoot of a few percent.  DirQ (with ATC) and the
flooding baseline run on the same topology, dataset and query schedule.
"""

import pytest

from repro.experiments import headline
from repro.experiments.scenarios import paper_network

from .conftest import emit


@pytest.fixture(scope="module")
def headline_result(bench_epochs, bench_seed, bench_runner, bench_replicates):
    return headline.run(
        num_epochs=bench_epochs,
        target_coverage=0.4,
        seed=bench_seed,
        base_config=paper_network(num_epochs=bench_epochs, seed=bench_seed),
        runner=bench_runner,
        replicates=bench_replicates,
    )


def test_headline_cost_ratio(benchmark, headline_result):
    """E6: total DirQ(ATC) cost vs flooding cost on an identical workload."""
    result = benchmark.pedantic(lambda: headline_result, rounds=1, iterations=1)
    emit("E6 -- headline DirQ vs flooding comparison", headline.report(result))

    # The flooding side is exact (eq. 3), so the ratio is meaningful.
    assert result.flooding.breakdown.flood_cost == pytest.approx(
        result.flooding.flooding_cost_per_query * result.flooding.num_queries
    )
    # Paper band is 45-55%; scaled-down runs carry a heavier start-up
    # transient, so accept a slightly wider neighbourhood around one half.
    assert 0.35 <= result.cost_ratio <= 0.75
    # And DirQ must never be more expensive than flooding.
    assert result.comparison.dirq_total < result.comparison.flooding_total


def test_headline_accuracy_cost_tradeoff(benchmark, headline_result):
    """DirQ's savings do not come from silently dropping queries."""
    result = benchmark.pedantic(lambda: headline_result, rounds=1, iterations=1)
    emit(
        "E6 -- delivery quality",
        f"source completeness = {result.dirq_completeness:.3f}, "
        f"mean overshoot = {result.dirq_overshoot_pp:.2f} pp",
    )
    assert result.dirq_completeness > 0.9
    assert result.dirq_overshoot_pp < 50.0
