"""Micro-benchmarks of the substrates (engine, channel, phenomena, routing).

These are conventional pytest-benchmark timings (many rounds) rather than
figure reproductions: they guard the simulator's performance envelope so the
paper-scale experiments stay tractable.
"""

import numpy as np
import pytest

from repro.core.config import DirQConfig
from repro.core.messages import RangeQuery
from repro.core.range_table import RangeTable
from repro.network.channel import WirelessChannel
from repro.network.topology import random_geometric_topology
from repro.sensors.dataset import SensorDataset
from repro.sensors.phenomena import PhenomenonField
from repro.sensors.types import default_type_specs
from repro.simulation.engine import Simulator


def test_engine_event_throughput(benchmark):
    """Schedule + execute 10k chained events."""

    def run():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.schedule_after(0.001, tick)

        sim.schedule_at(0.0, tick)
        sim.run()
        return count

    assert benchmark(run) == 10_000


def test_channel_broadcast_throughput(benchmark):
    """1 000 broadcasts over a 50-node unit-disk network."""
    rng = np.random.default_rng(0)
    topo = random_geometric_topology(50, comm_range=30.0, rng=rng)

    def run():
        sim = Simulator()
        channel = WirelessChannel(sim, topo)
        for nid in topo.node_ids:
            channel.register(nid, lambda s, f: None)
        for i in range(1_000):
            channel.broadcast(i % 50, "payload", kind="query")
        sim.run()
        return channel.stats.deliveries

    assert benchmark(run) > 0


def test_phenomena_generation_paper_scale(benchmark):
    """Generating the paper's dataset: 4 types x 50 nodes x 20 000 epochs."""
    rng = np.random.default_rng(1)
    topo = random_geometric_topology(50, comm_range=30.0, rng=rng)
    positions = topo.position_array()

    def run():
        return SensorDataset.generate(
            node_ids=topo.node_ids,
            positions=positions,
            num_epochs=20_000,
            rng=np.random.default_rng(2),
        )

    dataset = benchmark(run)
    assert dataset.num_epochs == 20_000


def test_range_table_update_throughput(benchmark):
    """100k reading observations against one Range Table."""
    rng = np.random.default_rng(3)
    readings = rng.normal(20.0, 2.0, size=100_000)

    def run():
        table = RangeTable(0, "temperature")
        delta = 0.5
        updates = 0
        for reading in readings:
            table.observe_reading(float(reading), delta)
            if table.pending_update(delta) is not None:
                table.mark_transmitted(table.aggregate())
                updates += 1
        return updates

    assert benchmark(run) > 0


def test_query_overlap_checks(benchmark):
    """A million routing predicate evaluations."""
    query = RangeQuery(0, "temperature", 20.0, 25.0)
    rng = np.random.default_rng(4)
    ranges = rng.uniform(0, 50, size=(100_000, 2))
    ranges.sort(axis=1)

    def run():
        hits = 0
        for lo, hi in ranges:
            if query.overlaps(lo, hi):
                hits += 1
        return hits

    assert 0 < benchmark(run) < 100_000
