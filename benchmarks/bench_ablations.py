"""Ablation benchmarks (E7 + DESIGN.md extras).

* Topology adaptation: kill nodes mid-run; delivery quality must recover
  after LMAC's cross-layer notifications and the tree repair (paper §4.2).
* ATC target sweep: the achieved cost ratio tracks the configured target,
  demonstrating that the controller (not a lucky constant) produces the
  45-55 % band.
* Channel loss: DirQ's directed unicasts vs increasing packet loss.
"""

import pytest

from repro.experiments import ablations

from .conftest import emit


def test_topology_adaptation(benchmark, bench_seed, bench_runner, bench_replicates):
    """E7: node failures mid-run; routing recovers via cross-layer adaptation."""
    result = benchmark.pedantic(
        lambda: ablations.run_topology_ablation(
            num_epochs=1_000, failure_epoch=400, seed=bench_seed,
            runner=bench_runner, replicates=bench_replicates,
        ),
        rounds=1,
        iterations=1,
    )
    emit("E7 -- topology adaptation ablation", ablations.report_topology(result))
    assert result.queries_after > 0
    assert result.completeness_after > 0.85
    assert result.completeness_after > result.completeness_before - 0.1


def test_atc_target_sweep(benchmark, bench_seed, bench_runner, bench_replicates):
    """The achieved DirQ/flooding ratio follows the configured ATC target."""
    points = benchmark.pedantic(
        lambda: ablations.run_atc_target_sweep(
            targets=(0.35, 0.5, 0.65), num_epochs=1_200, seed=bench_seed,
            runner=bench_runner, replicates=bench_replicates,
        ),
        rounds=1,
        iterations=1,
    )
    emit("Ablation -- ATC target-ratio sweep", ablations.report_atc_targets(points))
    achieved = [p.achieved_ratio for p in points]
    # Monotone: asking for a larger budget produces a larger realised ratio.
    assert achieved[0] < achieved[1] < achieved[2]
    # And more budget buys more updates.
    updates = [p.mean_updates_per_window for p in points]
    assert updates[0] < updates[2]


def test_channel_loss_sensitivity(benchmark, bench_seed, bench_runner, bench_replicates):
    """DirQ delivery quality degrades gracefully with packet loss."""
    points = benchmark.pedantic(
        lambda: ablations.run_loss_ablation(
            loss_rates=(0.0, 0.1, 0.2), num_epochs=600, seed=bench_seed,
            runner=bench_runner, replicates=bench_replicates,
        ),
        rounds=1,
        iterations=1,
    )
    emit("Ablation -- channel loss sensitivity", ablations.report_loss(points))
    completeness = [p.completeness for p in points]
    assert completeness[0] > 0.9
    # Monotone non-increasing delivery with loss (allowing small noise).
    assert completeness[2] <= completeness[0] + 0.02
