"""Benchmark / reproduction of Fig. 7 (E4): overshoot over time, 20% coverage.

Expected shape (paper Fig. 7): overshoot grows with the fixed threshold δ,
and the ATC keeps overshoot bounded while staying within its update budget
(the paper reports an average of ≈3.6 % for the ATC; see EXPERIMENTS.md for
the measured value and the calibration discussion).
"""

import pytest

from repro.experiments import fig7_overshoot
from repro.experiments.scenarios import paper_network

from .conftest import emit


@pytest.fixture(scope="module")
def fig7_result(bench_epochs, bench_seed, bench_runner, bench_replicates):
    return fig7_overshoot.run(
        deltas=(3.0, 5.0, 9.0),
        num_epochs=bench_epochs,
        target_coverage=0.2,
        seed=bench_seed,
        window_epochs=max(200, bench_epochs // 8),
        base_config=paper_network(num_epochs=bench_epochs, seed=bench_seed),
        runner=bench_runner,
        replicates=bench_replicates,
    )


def test_fig7_overshoot_series(benchmark, fig7_result):
    """E4 -- Fig. 7: overshoot (percentage points) for fixed δ and ATC."""
    result = benchmark.pedantic(lambda: fig7_result, rounds=1, iterations=1)
    emit("E4 -- Fig. 7 (overshoot, 20% relevant nodes)", fig7_overshoot.report(result))

    avg = result.average_overshoot
    # Overshoot grows with the fixed threshold.
    assert avg["delta=3%"] < avg["delta=9%"]
    assert avg["delta=5%"] <= avg["delta=9%"] + 1.0
    # Overshoot is bounded: no setting reaches anywhere near "everything".
    assert all(value < 60.0 for value in avg.values())


def test_fig7_atc_overshoot_bounded(benchmark, fig7_result):
    """The ATC's overshoot stays bounded while it enforces the cost band."""
    avg = benchmark.pedantic(
        lambda: fig7_result.average_overshoot, rounds=1, iterations=1
    )
    emit(
        "E4 -- average overshoot per setting (paper: ATC ~3.6%)",
        "\n".join(f"  {name:>10s} : {value:.2f} pp" for name, value in sorted(avg.items())),
    )
    assert avg["atc"] < 50.0
    # The ATC never uses thresholds wider than its clamp, so its overshoot is
    # of the same order as the widest fixed threshold, not arbitrarily worse.
    assert avg["atc"] <= avg["delta=9%"] * 2.5
