"""Microbenchmarks of the simulation hot loop (engine + channel + runner).

These guard the fast-path work: the tuple-keyed event heap with cancelled-
event compaction, batched channel fan-out, and the runner's O(1) epoch
drain.  They run both as conventional pytest-benchmark timings and as a CLI
smoke check for CI::

    PYTHONPATH=src python -m benchmarks.bench_engine --smoke --json BENCH_engine.json

The smoke mode runs scaled-down workloads and asserts the engine's
compaction bound and the smoke sweep's bit-exact determinism; event
throughput is reported (an optional ``--min-events-per-second`` floor can
gate it, off by default so shared CI runners don't flake on wall clock).

Reference numbers (this repository, one core of the CI-class container):

===========================================  ==========  ==========
workload                                       pre-PR2      PR2
===========================================  ==========  ==========
20 000-epoch headline trial (50 nodes)         ~30.8 s     ~9.8 s
2 000-epoch paper-network trial                ~4.4 s      ~1.4 s
1 000-epoch small-network trial (16 nodes)     ~0.60 s     ~0.20 s
===========================================  ==========  ==========

The 3.1x wall-clock improvement comes with bit-identical result
fingerprints (see tests/experiments/test_fastpath_determinism.py).

PR 10 adds a *columnar* arm: paired back-to-back brute/columnar runs of
the same paper-network config in one process (``columnar_pairs``),
asserting the arms' cost breakdowns and ledgers are identical before any
timing is reported.  Pairing matters on the single-vCPU reference
container — only same-pair ratios are comparable under host steal; see
docs/vectorisation.md for the methodology and the recorded numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

from repro.simulation.engine import Simulator

#: Pre-PR2 wall-clock seconds of the 20 000-epoch headline trial, recorded
#: with the serial runner on the reference container.  Kept as data so later
#: sessions can compare against the same anchor.
BASELINE_HEADLINE_20K_SECONDS = 30.8

#: Post-PR2 wall-clock seconds of the same trial on the same container.
FAST_HEADLINE_20K_SECONDS = 9.8

#: Median per-pair brute/columnar CPU-time ratio of the 20 000-epoch
#: headline trial on the reference container (PR 10; paired measurement,
#: see docs/vectorisation.md — individual pairs ranged 1.4–2.1).
COLUMNAR_HEADLINE_20K_RATIO = 1.8


# ---------------------------------------------------------------------------
# Engine workloads (shared by pytest-benchmark and the CLI smoke mode)
# ---------------------------------------------------------------------------


def chained_events(num_events: int = 10_000) -> int:
    """Schedule + execute a chain of ``num_events`` dependent events."""
    sim = Simulator()
    count = 0

    def tick() -> None:
        nonlocal count
        count += 1
        if count < num_events:
            sim.schedule_after(0.001, tick)

    sim.schedule_at(0.0, tick)
    sim.run()
    return count


def timer_churn(num_timers: int = 10_000) -> Simulator:
    """Arm-and-cancel timers, the pattern that used to leak heap entries.

    Every timer is re-armed (cancelling its predecessor) many times before
    any of them fires -- the LMAC beacon pattern.  Returns the simulator so
    callers can assert on the compaction bound.
    """
    sim = Simulator()
    handle = sim.schedule_at(1e9, lambda: None)
    for i in range(num_timers):
        handle.cancel()
        handle = sim.schedule_at(1e9 + i, lambda: None)
    return sim


def epoch_drain(num_epochs: int = 20_000) -> Simulator:
    """The runner's epoch pattern: mostly-empty run_until boundary drains."""
    sim = Simulator()
    # A sparse event population: one event every 50 epochs.
    for t in range(0, num_epochs, 50):
        sim.schedule_at(float(t) + 0.25, lambda: None)
    for epoch in range(num_epochs):
        sim.run_until(float(epoch))
        sim.run_until(epoch + 0.5)
    return sim


def columnar_pairs(num_epochs: int = 2_000, pairs: int = 1) -> dict:
    """Paired brute/columnar timing of the headline-style trial.

    Each pair runs both arms back to back in this process and times them
    with ``time.process_time`` (CPU seconds), so host steal hits both arms
    of a pair roughly equally and the per-pair ratio stays meaningful even
    when absolute wall clocks swing.  Bit-identity of the arms is asserted
    (fingerprint, cost breakdown, per-kind ledger) before any number is
    reported.
    """
    import copy
    import statistics

    from repro.experiments.batch import TrialResult, TrialSpec
    from repro.experiments.runner import run_experiment
    from repro.experiments.scenarios import paper_network

    base = paper_network(num_epochs=num_epochs, seed=1).with_atc()
    arms = {
        "brute": base.replace(tick_method="periodic"),
        "columnar": base.replace(tick_method="columnar"),
    }
    timings = {"brute": [], "columnar": []}
    prints = {}
    for _ in range(pairs):
        for label, cfg in arms.items():
            spec = TrialSpec(label=f"bench[{label}]", config=cfg)
            start = time.process_time()
            raw = run_experiment(copy.deepcopy(spec.config))
            timings[label].append(time.process_time() - start)
            result = TrialResult.from_experiment(spec, raw)
            obs = (
                result.fingerprint(include_key=False),
                result.breakdown,
                result.ledger.breakdown_by_kind(),
            )
            if label in prints and prints[label] != obs:
                raise AssertionError(f"{label} arm is not reproducible")
            prints[label] = obs
    if prints["brute"] != prints["columnar"]:
        raise AssertionError(
            "brute and columnar arms diverged: "
            f"{prints['brute'][0]} vs {prints['columnar'][0]}"
        )
    ratios = [b / c for b, c in zip(timings["brute"], timings["columnar"])]
    return {
        "num_epochs": num_epochs,
        "pairs": pairs,
        "identical": True,
        "brute_cpu_s": [round(t, 3) for t in timings["brute"]],
        "columnar_cpu_s": [round(t, 3) for t in timings["columnar"]],
        "median_pair_ratio": round(statistics.median(ratios), 3),
    }


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------


def test_engine_chained_event_throughput(benchmark):
    assert benchmark(chained_events) == 10_000


def test_engine_timer_churn_stays_compacted(benchmark):
    sim = benchmark(timer_churn)
    # Lazy cancellation must not leak: the heap may hold at most the live
    # events plus the documented compaction slack.
    assert sim.pending == 1
    assert sim.queue_size <= 2 * sim.pending + Simulator.COMPACT_MIN_CANCELLED


def test_engine_epoch_drain_fast_path(benchmark):
    sim = benchmark(epoch_drain)
    assert sim.executed == 400


def test_trial_wall_clock_smoke(benchmark):
    """A miniature end-to-end trial through the whole optimised stack."""
    from repro.experiments.runner import run_experiment
    from repro.experiments.scenarios import small_network

    def run():
        return run_experiment(small_network(num_nodes=12, num_epochs=150))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.num_queries > 0


# ---------------------------------------------------------------------------
# CLI smoke mode (used by CI)
# ---------------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Engine hot-loop microbenchmark / smoke check."
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the scaled-down CI smoke mode (asserts + throughput floor)",
    )
    parser.add_argument(
        "--events",
        type=int,
        default=200_000,
        help="chained events for the throughput measurement (default 200k)",
    )
    parser.add_argument(
        "--min-events-per-second",
        type=float,
        default=0.0,
        help=(
            "optional throughput floor; 0 (default) only reports the rate. "
            "Wall-clock floors flake on loaded shared runners, so CI gates "
            "on the deterministic checks and leaves this off."
        ),
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default="",
        help="write the measured numbers as a JSON report (the committed "
        "BENCH_engine.json artifact is produced this way)",
    )
    args = parser.parse_args(argv)

    num_events = 50_000 if args.smoke else args.events

    start = time.perf_counter()
    executed = chained_events(num_events)
    elapsed = time.perf_counter() - start
    rate = executed / elapsed
    print(f"engine: {executed} chained events in {elapsed:.3f}s ({rate:,.0f}/s)")

    sim = timer_churn(10_000)
    bound = 2 * sim.pending + Simulator.COMPACT_MIN_CANCELLED
    print(
        f"engine: timer churn leaves queue_size={sim.queue_size} "
        f"(pending={sim.pending}, bound={bound})"
    )
    if sim.queue_size > bound:
        print("FAIL: cancelled-event compaction bound violated", file=sys.stderr)
        return 1

    start = time.perf_counter()
    epoch_drain(20_000)
    drain = time.perf_counter() - start
    print(f"engine: 20k-epoch boundary drain in {drain:.3f}s")

    report = {
        "smoke": bool(args.smoke),
        "chained_events": {
            "num_events": executed,
            "wall_s": round(elapsed, 4),
            "events_per_s": round(rate, 1),
        },
        "timer_churn": {
            "pending": sim.pending,
            "queue_size": sim.queue_size,
            "compaction_bound": bound,
        },
        "epoch_drain": {"num_epochs": 20_000, "wall_s": round(drain, 4)},
    }

    if args.smoke:
        from repro.experiments.batch import BatchRunner
        from repro.experiments.scenarios import smoke_sweep

        specs = smoke_sweep(num_nodes=10, num_epochs=80)
        runner = BatchRunner(max_workers=1, executor="serial", cache_dir="")
        first = [r.fingerprint() for r in runner.run(specs)]
        second = [r.fingerprint() for r in runner.run(specs)]
        if first != second:
            print("FAIL: smoke sweep is not deterministic", file=sys.stderr)
            return 1
        print(f"smoke sweep: {len(specs)} trials, fingerprints reproducible")
        report["smoke_sweep"] = {
            "trials": len(specs),
            "deterministic": True,
            "fingerprints": first,
        }

        try:
            columnar = columnar_pairs(num_epochs=2_000, pairs=1)
        except AssertionError as exc:
            print(f"FAIL: columnar A/B: {exc}", file=sys.stderr)
            return 1
        print(
            "columnar A/B: arms bit-identical at "
            f"{columnar['num_epochs']} epochs, pair ratio "
            f"{columnar['median_pair_ratio']}x "
            f"(brute {columnar['brute_cpu_s'][0]}s CPU, "
            f"columnar {columnar['columnar_cpu_s'][0]}s CPU)"
        )
        report["columnar"] = columnar

        if args.min_events_per_second > 0 and rate < args.min_events_per_second:
            print(
                f"FAIL: event throughput {rate:,.0f}/s below floor "
                f"{args.min_events_per_second:,.0f}/s",
                file=sys.stderr,
            )
            return 1
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"report written to {args.json}")
    print("bench_engine: OK")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
