"""Benchmark / reproduction of Fig. 5 (E1, E2): effect of δ on accuracy.

One simulation per (δ, coverage) point.  Expected shape (paper Fig. 5a/5b):
the percentage of nodes that actually RECEIVE a query grows above the
percentage that SHOULD receive it as δ increases, and the gap is smaller at
60 % coverage than at 40 %.
"""

import pytest

from repro.experiments import fig5_accuracy
from repro.experiments.scenarios import paper_network

from .conftest import emit


@pytest.fixture(scope="module")
def fig5_result(bench_epochs, bench_seed, bench_runner, bench_replicates):
    return fig5_accuracy.run(
        deltas=(1.0, 3.0, 5.0, 9.0),
        coverages=(0.4, 0.6),
        num_epochs=bench_epochs,
        seed=bench_seed,
        base_config=paper_network(num_epochs=bench_epochs, seed=bench_seed),
        runner=bench_runner,
        replicates=bench_replicates,
    )


def test_fig5a_40pct_relevant(benchmark, fig5_result):
    """E1 -- Fig. 5(a): 40% relevant nodes."""
    points = benchmark.pedantic(
        lambda: fig5_result.points_for(0.4), rounds=1, iterations=1
    )
    emit("E1 -- Fig. 5(a) (40% relevant nodes)", fig5_accuracy.report(fig5_result))
    # Receive >= should for every delta, and the gap grows with delta.
    gaps = [p.receive_pct - p.should_receive_pct for p in points]
    assert all(g >= -1.0 for g in gaps)
    assert gaps[-1] > gaps[0]
    # Source percentage is independent of delta (ground truth property).
    sources = [p.source_pct for p in points]
    assert max(sources) - min(sources) < 1.0


def test_fig5b_60pct_relevant(benchmark, fig5_result):
    """E2 -- Fig. 5(b): 60% relevant nodes (delta effect less pronounced)."""
    points_60 = benchmark.pedantic(
        lambda: fig5_result.points_for(0.6), rounds=1, iterations=1
    )
    points_40 = fig5_result.points_for(0.4)
    gap_60 = points_60[-1].receive_pct - points_60[-1].should_receive_pct
    gap_40 = points_40[-1].receive_pct - points_40[-1].should_receive_pct
    emit(
        "E2 -- Fig. 5(b) (60% relevant nodes)",
        f"overshoot gap at delta=9%: 40% coverage -> {gap_40:.1f} pp, "
        f"60% coverage -> {gap_60:.1f} pp (paper: effect less pronounced at "
        "higher coverage)",
    )
    assert gap_60 < gap_40 + 2.0
    # With 60% of nodes already relevant, the receive curve saturates below 100%.
    assert all(p.receive_pct <= 100.0 for p in points_60)
