"""Tests for energy models, ledgers, and batteries."""

import pytest

from repro.energy.battery import Battery
from repro.energy.ledger import NetworkLedger, NodeLedger
from repro.energy.model import RadioEnergyModel, UnitCostModel


class TestUnitCostModel:
    def test_transmit_is_one_unit_regardless_of_receivers(self):
        model = UnitCostModel()
        assert model.transmit_cost(payload_bytes=10, n_receivers=0) == 1.0
        assert model.transmit_cost(payload_bytes=1000, n_receivers=12) == 1.0

    def test_receive_is_one_unit(self):
        assert UnitCostModel().receive_cost(64) == 1.0

    def test_custom_units(self):
        model = UnitCostModel(tx_unit=2.0, rx_unit=0.5)
        assert model.transmit_cost(0, 1) == 2.0
        assert model.receive_cost(0) == 0.5


class TestRadioEnergyModel:
    def test_costs_scale_with_payload(self):
        model = RadioEnergyModel()
        assert model.transmit_cost(0, 1) == 10.0
        assert model.transmit_cost(50, 1) == 10.0 + 100.0
        assert model.receive_cost(50) == 8.0 + 75.0

    def test_tx_more_expensive_than_rx(self):
        model = RadioEnergyModel()
        assert model.transmit_cost(32, 1) > model.receive_cost(32)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            RadioEnergyModel().transmit_cost(-1, 1)


class TestNodeLedger:
    def test_charges_accumulate_by_direction_and_kind(self):
        ledger = NodeLedger(3)
        ledger.charge_tx("query", 1.0)
        ledger.charge_tx("query", 1.0)
        ledger.charge_rx("query", 1.0)
        ledger.charge_tx("update", 1.0)
        assert ledger.count("tx", "query") == 2
        assert ledger.count("rx", "query") == 1
        assert ledger.count("tx") == 3
        assert ledger.count(kind="query") == 3
        assert ledger.total_cost() == 4.0
        assert ledger.total_cost(["update"]) == 1.0

    def test_breakdown_and_reset(self):
        ledger = NodeLedger(1)
        ledger.charge_tx("flood", 1.0)
        assert ledger.breakdown() == {("tx", "flood"): (1, 1.0)}
        ledger.reset()
        assert ledger.total_cost() == 0.0


class TestNetworkLedger:
    def test_node_ledgers_created_on_demand(self):
        net = NetworkLedger()
        net.node(4).charge_tx("query", 1.0)
        assert 4 in net
        assert net.node_ids == [4]

    def test_network_totals(self):
        net = NetworkLedger()
        net.node(0).charge_tx("query", 1.0)
        net.node(1).charge_rx("query", 1.0)
        net.node(1).charge_tx("update", 1.0)
        assert net.total_cost() == 3.0
        assert net.total_cost(["query"]) == 2.0
        assert net.total_count(direction="tx") == 2
        assert net.total_count(direction="tx", kind="update") == 1

    def test_per_node_and_kind_breakdowns(self):
        net = NetworkLedger()
        net.node(0).charge_tx("query", 1.0)
        net.node(1).charge_rx("query", 2.0)
        assert net.per_node_cost() == {0: 1.0, 1: 2.0}
        assert net.kinds() == {"query"}
        assert net.breakdown_by_kind() == {"query": (2, 3.0)}

    def test_reset_keeps_nodes_but_zeroes_costs(self):
        net = NetworkLedger()
        net.node(0).charge_tx("query", 1.0)
        net.reset()
        assert net.node_ids == [0]
        assert net.total_cost() == 0.0


class TestBattery:
    def test_infinite_by_default(self):
        b = Battery()
        assert b.draw(1e9) is True
        assert not b.depleted

    def test_finite_draw_and_depletion(self):
        b = Battery(10.0)
        assert b.draw(6.0) is True
        assert b.remaining == 4.0
        assert b.draw(5.0) is True  # the draw that empties it still succeeds
        assert b.depleted
        assert b.draw(1.0) is False

    def test_fraction_remaining(self):
        b = Battery(10.0)
        b.draw(2.5)
        assert b.fraction_remaining == pytest.approx(0.75)

    def test_recharge(self):
        b = Battery(10.0)
        b.draw(8.0)
        b.recharge(3.0)
        assert b.remaining == 5.0
        b.recharge()
        assert b.remaining == 10.0

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            Battery(0.0)
        with pytest.raises(ValueError):
            Battery(5.0).draw(-1.0)
        with pytest.raises(ValueError):
            Battery(5.0).recharge(-1.0)
