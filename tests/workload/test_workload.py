"""Tests for the query workload: ground truth, generation, schedules, prediction."""

import numpy as np
import pytest

from repro.core.messages import RangeQuery
from repro.network.spanning_tree import build_bfs_tree
from repro.workload.generator import QueryWorkloadGenerator
from repro.workload.ground_truth import (
    evaluate_query,
    involvement_fraction,
    relevant_nodes,
    source_nodes,
)
from repro.workload.injection import (
    burst_schedule,
    diurnal_schedule,
    periodic_schedule,
    poisson_schedule,
    queries_per_window,
)
from repro.workload.predictor import QueryRatePredictor

from ..helpers import constant_dataset, line_topology


class TestGroundTruth:
    @pytest.fixture
    def setup(self):
        topo = line_topology(5)
        data = constant_dataset(
            topo.node_ids, {0: 10.0, 1: 20.0, 2: 30.0, 3: 40.0, 4: 50.0}, num_epochs=10
        )
        return topo, data, build_bfs_tree(topo, root=0)

    def test_source_nodes_match_readings(self, setup):
        _, data, _ = setup
        q = RangeQuery(0, "temperature", 25.0, 45.0)
        assert source_nodes(data, q, epoch=0) == {2, 3}

    def test_source_nodes_respect_sensor_ownership(self, setup):
        _, data, _ = setup
        q = RangeQuery(0, "temperature", 25.0, 45.0)
        owners = {"temperature": {3}}
        assert source_nodes(data, q, 0, sensor_owners=owners) == {3}

    def test_source_nodes_respect_liveness(self, setup):
        _, data, _ = setup
        q = RangeQuery(0, "temperature", 25.0, 45.0)
        assert source_nodes(data, q, 0, alive={0, 1, 2, 4}) == {2}

    def test_relevant_nodes_include_forwarders_exclude_root(self, setup):
        _, _, tree = setup
        assert relevant_nodes(tree, [4]) == {1, 2, 3, 4}
        assert relevant_nodes(tree, [4], include_root=True) == {0, 1, 2, 3, 4}

    def test_evaluate_query_combines_both(self, setup):
        _, data, tree = setup
        q = RangeQuery(0, "temperature", 38.0, 55.0)
        sources, should = evaluate_query(data, tree, q, 0)
        assert sources == {3, 4}
        assert should == {1, 2, 3, 4}

    def test_involvement_fraction(self, setup):
        _, data, tree = setup
        q = RangeQuery(0, "temperature", 48.0, 55.0)  # only node 4 matches
        assert involvement_fraction(data, tree, q, 0) == pytest.approx(4 / 4)
        q2 = RangeQuery(1, "temperature", 18.0, 22.0)  # only node 1
        assert involvement_fraction(data, tree, q2, 0) == pytest.approx(1 / 4)


class TestWorkloadGenerator:
    @pytest.fixture
    def generator(self, small_topology, small_dataset, rng):
        tree = build_bfs_tree(small_topology, root=0)
        return QueryWorkloadGenerator(small_dataset, tree, rng)

    def test_generated_query_has_valid_bounds_and_ids(self, generator):
        g1 = generator.generate(epoch=10, target_coverage=0.4)
        g2 = generator.generate(epoch=10, target_coverage=0.4)
        assert g1.query.low <= g1.query.high
        assert g2.query.query_id == g1.query.query_id + 1

    def test_achieved_coverage_tracks_target(self, generator):
        for target in (0.2, 0.4, 0.6):
            achieved = [
                generator.generate(epoch, target).achieved_coverage
                for epoch in range(20, 120, 20)
            ]
            mean = sum(achieved) / len(achieved)
            assert abs(mean - target) < 0.25

    def test_higher_target_means_higher_coverage(self, generator):
        low = [generator.generate(e, 0.2).achieved_coverage for e in range(10, 60, 10)]
        high = [generator.generate(e, 0.8).achieved_coverage for e in range(10, 60, 10)]
        assert sum(high) / len(high) > sum(low) / len(low)

    def test_fixed_sensor_type_respected(self, generator):
        g = generator.generate(5, 0.4, sensor_type="humidity")
        assert g.query.sensor_type == "humidity"
        with pytest.raises(KeyError):
            generator.generate(5, 0.4, sensor_type="nonexistent")

    def test_invalid_coverage_rejected(self, generator):
        with pytest.raises(ValueError):
            generator.generate(5, 0.0)
        with pytest.raises(ValueError):
            generator.generate(5, 1.5)

    def test_generate_batch(self, generator):
        batch = generator.generate_batch([10, 30, 50], 0.3)
        assert len(batch) == 3
        assert [g.query.epoch for g in batch] == [10, 30, 50]


class TestInjectionSchedules:
    def test_periodic_matches_paper_default(self):
        schedule = periodic_schedule(200, period=20)
        assert schedule == [20, 40, 60, 80, 100, 120, 140, 160, 180]

    def test_periodic_validation(self):
        with pytest.raises(ValueError):
            periodic_schedule(0, 20)
        with pytest.raises(ValueError):
            periodic_schedule(100, 0)

    def test_poisson_mean_rate(self):
        rng = np.random.default_rng(1)
        schedule = poisson_schedule(10_000, rate_per_epoch=0.05, rng=rng)
        assert 400 < len(schedule) < 600
        assert all(0 <= e < 10_000 for e in schedule)

    def test_diurnal_schedule_peaks_and_troughs(self):
        rng = np.random.default_rng(2)
        schedule = diurnal_schedule(
            4000, mean_rate_per_epoch=0.1, epochs_per_day=2000, rng=rng, peak_to_trough=6.0
        )
        counts = queries_per_window(schedule, window=500, num_epochs=4000)
        assert max(counts) > 2 * max(1, min(counts))

    def test_burst_schedule(self):
        schedule = burst_schedule(100, burst_epochs=[50], queries_per_burst=5,
                                  background_period=25)
        assert schedule.count(50) == 5
        # Background injections every 25 epochs (starting at the warm-up offset).
        assert 20 in schedule and 45 in schedule and 95 in schedule
        with pytest.raises(ValueError):
            burst_schedule(100, [150], 2)

    def test_queries_per_window(self):
        counts = queries_per_window([5, 15, 25, 95], window=10, num_epochs=100)
        assert counts[0] == 1 and counts[1] == 1 and counts[2] == 1 and counts[9] == 1
        assert sum(counts) == 4


class TestPredictor:
    def test_initial_estimate_before_any_data(self):
        p = QueryRatePredictor(initial_estimate=25.0)
        assert p.predict() == 25.0

    def test_converges_to_constant_rate(self):
        p = QueryRatePredictor(smoothing=0.5)
        for _ in range(10):
            p.record(25)
        assert p.predict() == pytest.approx(25.0, abs=0.5)

    def test_tracks_increasing_trend(self):
        trendless = QueryRatePredictor(smoothing=0.5, trend_weight=0.0)
        trended = QueryRatePredictor(smoothing=0.5, trend_weight=0.5)
        for value in [10, 12, 14, 16, 18, 20]:
            trendless.record(value)
            trended.record(value)
        # The trend term pushes the forecast ahead of the smoothed level.
        assert trended.predict() > trendless.predict()
        assert trended.predict() > 18.0

    def test_prediction_never_negative(self):
        p = QueryRatePredictor(smoothing=1.0, trend_weight=1.0)
        p.record(100)
        p.record(0)
        assert p.predict() >= 0.0

    def test_history_bounded(self):
        p = QueryRatePredictor(history=5)
        for i in range(10):
            p.record(i)
        assert len(p.history) == 5
        assert p.history[-1] == 9

    def test_observe_query_counter(self):
        p = QueryRatePredictor()
        p.observe_query(10)
        p.observe_query(11)
        assert p.total_queries_seen == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryRatePredictor(smoothing=0.0)
        with pytest.raises(ValueError):
            QueryRatePredictor(trend_weight=2.0)
        with pytest.raises(ValueError):
            QueryRatePredictor(history=1)
        with pytest.raises(ValueError):
            QueryRatePredictor().record(-1)
