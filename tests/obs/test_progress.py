"""RunTelemetry: scripted-clock units + the campaign accounting contract.

The campaign contract: across an interrupted run and its resume, the
telemetry's ``done`` totals must equal the rows the :class:`ResultsStore`
actually holds -- the progress numbers and the durable state may never
disagree.
"""

import pytest

from repro.experiments.batch import BatchRunner
from repro.experiments.campaign import CampaignSpec, run_missing
from repro.experiments.store import ResultsStore
from repro.obs.progress import RunTelemetry

from .test_phases import scripted_clock


class TestRunTelemetry:
    def test_snapshot_with_scripted_clock(self):
        telemetry = RunTelemetry(now=scripted_clock(100.0, 110.0))
        telemetry.on_start(total=4, workers=2)

        class Done:
            from_cache = False
            runtime_seconds = 5.0

        class Cached:
            from_cache = True
            runtime_seconds = 0.0

        telemetry.on_result(Done())
        telemetry.on_result(Cached())
        telemetry.on_failure()
        snap = telemetry.snapshot()
        assert snap["total"] == 4
        # ``done`` counts *completed* trials; the failure is tallied
        # separately so done always matches the durable store rows.
        assert snap["done"] == 2
        assert snap["executed"] == 1
        assert snap["cached"] == 1
        assert snap["failed"] == 1
        assert snap["elapsed_s"] == pytest.approx(10.0)
        assert snap["trials_per_s"] == pytest.approx(0.2)
        # Two trials left at 0.2/s.
        assert snap["eta_s"] == pytest.approx(10.0)
        # 5 busy seconds over 10 elapsed on 2 workers.
        assert snap["utilisation"] == pytest.approx(0.25)

    def test_render_is_one_line(self):
        telemetry = RunTelemetry(now=scripted_clock(0.0, 1.0))
        telemetry.on_start(total=2, workers=1)
        line = telemetry.render()
        assert "\n" not in line
        assert "0/2 trials" in line

    def test_idle_snapshot_reports_zeroes(self):
        snap = RunTelemetry().snapshot()
        assert snap["done"] == 0
        assert snap["elapsed_s"] == 0.0
        assert snap["eta_s"] is None


class TestCampaignTelemetryAccounting:
    def test_totals_match_store_rows_across_interrupt_and_resume(
        self, tmp_path
    ):
        spec = CampaignSpec(
            name="obs-resume",
            scenarios=("static-paper",),
            protocols=("dirq", "flooding"),
            replicates=3,
            num_epochs=40,
            seed=1,
        )
        total = spec.total_trials
        assert total == 6
        interrupt_at = 3
        seen = 0

        def interrupting(result):
            nonlocal seen
            seen += 1
            if seen == interrupt_at:
                raise KeyboardInterrupt

        with ResultsStore(tmp_path / "s.sqlite") as store:
            first = RunTelemetry()
            runner = BatchRunner(
                max_workers=1,
                executor="serial",
                cache_dir=None,
                telemetry=first,
            )
            with pytest.raises(KeyboardInterrupt):
                run_missing(spec, store, runner=runner, progress=interrupting)
            # Every trial the telemetry saw complete is a stored row;
            # the interrupt itself registers as a failure, not a trial.
            assert first.done == store.count(spec.campaign_id) == interrupt_at
            assert first.executed == interrupt_at
            assert first.cached == 0
            assert first.failed == 1

            second = RunTelemetry()
            runner = BatchRunner(
                max_workers=1,
                executor="serial",
                cache_dir=None,
                telemetry=second,
            )
            run_missing(spec, store, runner=runner)
            # The resume only runs the missing trials, and the combined
            # executed totals cover the whole campaign exactly once.
            assert second.done == second.executed == total - interrupt_at
            assert store.count(spec.campaign_id) == total
            assert first.executed + second.executed == total
