"""Unit tests for the metrics registry and its catalogue discipline."""

import json

import pytest

from repro.obs.catalogue import METRIC_CATALOGUE, TRACE_CATALOGUE
from repro.obs.metrics import HISTOGRAM_BOUNDS, NULL_METRICS, MetricsRegistry
from repro.simulation.trace import Tracer


class TestMetricsRegistry:
    def test_counters_and_gauges_accumulate(self):
        metrics = MetricsRegistry()
        metrics.inc("engine.events_executed")
        metrics.inc("engine.events_executed", 4)
        metrics.gauge_set("dirq.table_entries", 7)
        metrics.gauge_set("dirq.table_entries", 9)  # last write wins
        snap = metrics.snapshot()
        assert snap["counters"] == {"engine.events_executed": 5}
        assert snap["gauges"] == {"dirq.table_entries": 9}

    def test_histogram_buckets_are_fixed_and_empty_free(self):
        metrics = MetricsRegistry()
        metrics.observe("channel.fanout", 1)
        metrics.observe("channel.fanout", 3)
        metrics.observe("channel.fanout", 5000)  # past the last bound
        hist = metrics.snapshot()["histograms"]["channel.fanout"]
        assert hist["count"] == 3
        assert hist["total"] == 5004
        assert hist["min"] == 1
        assert hist["max"] == 5000
        # Only the touched buckets appear; 5000 > 4096 lands in "inf".
        assert hist["buckets"] == {"1": 1, "4": 1, "inf": 1}
        assert HISTOGRAM_BOUNDS[-1] == 4096

    def test_unregistered_name_raises(self):
        metrics = MetricsRegistry()
        with pytest.raises(ValueError, match="METRIC_CATALOGUE"):
            metrics.inc("engine.bogus_counter")
        with pytest.raises(ValueError):
            metrics.gauge_set("nope", 1)
        with pytest.raises(ValueError):
            metrics.observe("nope", 1)

    def test_null_metrics_is_a_total_noop(self):
        # Even unregistered names pass silently: the disabled path must
        # do no validation work at all.
        NULL_METRICS.inc("not.even.registered")
        NULL_METRICS.gauge_set("not.even.registered", 1)
        NULL_METRICS.observe("not.even.registered", 1)
        assert NULL_METRICS.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        assert not NULL_METRICS.enabled

    def test_snapshot_is_insertion_order_independent(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for name in ("runner.epochs", "channel.broadcasts", "mac.beacons_sent"):
            a.inc(name, 2)
        for name in ("mac.beacons_sent", "runner.epochs", "channel.broadcasts"):
            b.inc(name, 2)
        assert json.dumps(a.snapshot(), sort_keys=True) == json.dumps(
            b.snapshot(), sort_keys=True
        )


class TestCatalogues:
    def test_metric_names_are_namespaced(self):
        for name in METRIC_CATALOGUE:
            subsystem, _, field = name.partition(".")
            assert subsystem and field, name
            assert subsystem in {"engine", "channel", "mac", "dirq", "runner"}

    def test_trace_catalogue_matches_live_tracer_categories(self):
        """Every category the code emits must be registered (RL503)."""
        # The catalogue is the contract; the Tracer itself doesn't
        # validate (hot path).  Cross-check a known core category.
        assert "channel.tx" in TRACE_CATALOGUE
        tracer = Tracer(enabled=True)
        tracer.record(0.0, "channel.tx", 1)
        assert tracer.summary() == {"channel.tx": 1}
