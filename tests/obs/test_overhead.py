"""The performance half of the observability contract: metrics cost ~0.

The design keeps metric accounting *out* of the hot loops -- components
carry plain int counters harvested once per trial -- so running with the
metrics registry enabled must stay within 2% of the uninstrumented
engine smoke-bench workload (the same chained-event chain
``benchmarks.bench_engine`` times).

Wall-clock assertions flake on loaded shared runners, so the comparison
is interleaved (alternating arms so thermal/load drift hits both
equally), uses the min over repeats (the noise-free floor), and retries
the whole measurement before failing.
"""

import time

from repro.obs.instrumentation import Instrumentation
from repro.obs.metrics import MetricsRegistry
from repro.simulation.engine import Simulator

#: The acceptance bound from the issue: metrics on costs < 2%.
MAX_OVERHEAD = 0.02

NUM_EVENTS = 30_000
REPEATS = 5
ATTEMPTS = 3


def chained_events(instrumentation) -> float:
    """The engine smoke-bench workload, returning its wall seconds."""
    sim = Simulator(instrumentation=instrumentation)
    count = 0

    def tick() -> None:
        nonlocal count
        count += 1
        if count < NUM_EVENTS:
            sim.schedule_after(0.001, tick)

    start = time.perf_counter()
    sim.schedule_at(0.0, tick)
    sim.run()
    elapsed = time.perf_counter() - start
    assert count == NUM_EVENTS
    return elapsed


def measure_overhead() -> float:
    """min-of-N metrics-on over metrics-off runtime, minus one."""
    on = Instrumentation(metrics=MetricsRegistry(enabled=True))
    chained_events(None)  # warm-up both code paths
    chained_events(on)
    best_off = float("inf")
    best_on = float("inf")
    for _ in range(REPEATS):
        best_off = min(best_off, chained_events(None))
        best_on = min(best_on, chained_events(on))
    return best_on / best_off - 1.0


def test_metrics_enabled_engine_overhead_below_two_percent():
    overheads = []
    for _ in range(ATTEMPTS):
        overhead = measure_overhead()
        overheads.append(overhead)
        if overhead < MAX_OVERHEAD:
            return
    raise AssertionError(
        f"metrics-enabled engine overhead exceeded {MAX_OVERHEAD:.0%} in "
        f"{ATTEMPTS} attempts: {[f'{o:.2%}' for o in overheads]}"
    )
