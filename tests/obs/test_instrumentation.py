"""The observability invariant: instruments never perturb results.

Turning metrics, phase profiling, or tracing on must leave every
``config_hash``, cache key, and ``TrialResult`` fingerprint byte-identical
to the uninstrumented run -- and the telemetry payload itself must be
deterministic across worker counts.
"""

import dataclasses
import json

import pytest

from repro.experiments.batch import (
    HASH_EXEMPT,
    BatchRunner,
    TrialSpec,
    config_hash,
)
from repro.experiments.config import ExperimentConfig
from repro.obs.instrumentation import (
    NULL_INSTRUMENTATION,
    build_instrumentation,
)
from repro.scenarios.registry import build_config
from repro.scenarios.static import smoke_sweep


def instrumented(spec: TrialSpec, instrument) -> TrialSpec:
    return dataclasses.replace(
        spec, config=spec.config.replace(instrument=instrument)
    )


class TestBuildInstrumentation:
    def test_default_is_the_shared_null_handle(self):
        cfg = ExperimentConfig()
        assert build_instrumentation(cfg) is NULL_INSTRUMENTATION

    def test_metrics_mode(self):
        inst = build_instrumentation(ExperimentConfig(instrument="metrics"))
        assert inst.metrics.enabled
        assert not inst.phases.enabled
        assert not inst.tracer.enabled

    def test_full_mode(self):
        inst = build_instrumentation(ExperimentConfig(instrument="full"))
        assert inst.metrics.enabled
        assert inst.phases.enabled
        assert inst.tracer.enabled

    def test_trace_flag_alone_keeps_seed_semantics(self):
        inst = build_instrumentation(ExperimentConfig(trace=True))
        assert inst.tracer.enabled
        assert not inst.metrics.enabled
        assert not inst.phases.enabled

    def test_config_rejects_unknown_instrument(self):
        with pytest.raises(ValueError, match="instrument"):
            ExperimentConfig(instrument="verbose")


class TestHashExemption:
    def test_instrument_never_changes_config_hash(self):
        base = ExperimentConfig()
        for mode in ("metrics", "full"):
            assert config_hash(base.replace(instrument=mode)) == config_hash(
                base
            )

    def test_exclusion_is_declared_in_hash_exempt(self):
        assert "instrument" in ExperimentConfig.HASH_EXCLUDE
        assert "ExperimentConfig.instrument" in HASH_EXEMPT


@pytest.mark.parametrize(
    "scenario,num_epochs",
    [("harsh-mixed", 40), ("scale-500", 15)],
    ids=["harsh-mixed", "scale-500"],
)
def test_full_instrumentation_keeps_fingerprints_bit_identical(
    scenario, num_epochs
):
    """The tentpole A/B: instrument=None vs "full" on real scenarios."""
    cfg = build_config(scenario, num_epochs=num_epochs, seed=1)
    plain = TrialSpec(label=scenario, config=cfg)
    full = instrumented(plain, "full")
    assert plain.key == full.key  # shared cache identity

    runner = BatchRunner(max_workers=1, executor="serial", cache_dir=None)
    r_plain = runner.run([plain])[0]
    r_full = runner.run([full])[0]
    assert r_plain.fingerprint() == r_full.fingerprint()
    assert r_plain.telemetry is None
    assert r_full.telemetry is not None
    assert set(r_full.telemetry) == {"metrics", "phases", "trace"}
    # Telemetry carries real signal, not empty shells.
    assert r_full.telemetry["metrics"]["counters"]["runner.epochs"] == (
        num_epochs
    )


class TestTelemetryNeverForksTheCache:
    def test_cached_result_is_telemetry_free_both_directions(self, tmp_path):
        spec = smoke_sweep(num_nodes=10, num_epochs=40)[0]
        runner = BatchRunner(
            max_workers=1, executor="serial", cache_dir=tmp_path
        )
        first = runner.run([instrumented(spec, "full")])[0]
        assert not first.from_cache
        assert first.telemetry is not None

        # An uninstrumented request hits the instrumented run's entry...
        plain = runner.run([spec])[0]
        assert plain.from_cache
        assert plain.telemetry is None
        # ...and an instrumented request is served from cache too (the
        # stored pickle was stripped, so no telemetry comes back).
        again = runner.run([instrumented(spec, "full")])[0]
        assert again.from_cache
        assert again.telemetry is None
        assert first.fingerprint() == plain.fingerprint()
        assert first.fingerprint() == again.fingerprint()


class TestWorkerCountDeterminism:
    def test_metrics_snapshots_identical_at_1_and_4_workers(self):
        specs = [
            instrumented(s, "metrics")
            for s in smoke_sweep(num_nodes=10, num_epochs=40)
        ]

        def run(workers):
            executor = "serial" if workers == 1 else "thread"
            runner = BatchRunner(
                max_workers=workers, executor=executor, cache_dir=None
            )
            results = runner.run(specs)
            return {
                r.spec.label: {
                    "fingerprint": r.fingerprint(),
                    "metrics": r.telemetry["metrics"],
                }
                for r in results
            }

        serial = json.dumps(run(1), sort_keys=True)
        threaded = json.dumps(run(4), sort_keys=True)
        assert serial == threaded
