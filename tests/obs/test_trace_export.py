"""Trace export: JSONL and Chrome trace-event JSON, schema-checked."""

import json

import pytest

from repro.obs.phases import PhaseTimer
from repro.obs.trace_export import (
    PHASE_PID,
    TRACE_PID,
    chrome_trace,
    tracer_to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.simulation.trace import Tracer

from .test_phases import scripted_clock


def populated_tracer() -> Tracer:
    tracer = Tracer(enabled=True)
    tracer.record(1.5, "channel.tx", 3, frame="beacon")
    tracer.record(2.0, "channel.rx", 7)
    return tracer


def populated_phases() -> PhaseTimer:
    timer = PhaseTimer(now=scripted_clock(0.0, 0.25, 0.75))
    timer.begin("mac")
    timer.begin("channel")
    timer.end()
    return timer


class TestJsonl:
    def test_round_trip(self):
        text = tracer_to_jsonl(populated_tracer())
        records = [json.loads(line) for line in text.splitlines()]
        assert records == [
            {
                "category": "channel.tx",
                "detail": {"frame": "beacon"},
                "node": 3,
                "time": 1.5,
            },
            {"category": "channel.rx", "detail": {}, "node": 7, "time": 2.0},
        ]

    def test_empty_tracer_yields_empty_file(self, tmp_path):
        path = write_jsonl(tmp_path / "t.jsonl", Tracer(enabled=True))
        assert path.read_text() == ""


class TestChromeTrace:
    def test_schema_round_trips_through_json(self, tmp_path):
        payload = chrome_trace(
            phases=populated_phases(),
            tracer=populated_tracer(),
            label="unit",
        )
        path = write_chrome_trace(tmp_path / "out" / "t.trace.json", payload)
        loaded = json.loads(path.read_text())
        validate_chrome_trace(loaded)
        assert loaded == payload

    def test_tracks_and_event_kinds(self):
        payload = chrome_trace(
            phases=populated_phases(), tracer=populated_tracer()
        )
        events = payload["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(meta) == 2  # one process_name per track
        # Host-time phase spans on one pid, sim-time instants on the
        # other; the clocks are unrelated and must never share a track.
        assert {e["pid"] for e in spans} == {PHASE_PID}
        assert {e["pid"] for e in instants} == {TRACE_PID}
        assert [e["name"] for e in spans] == ["mac", "channel"]
        # Instant events land one lane per node.
        assert {e["tid"] for e in instants} == {3, 7}
        # Microsecond integer timestamps throughout.
        assert all(isinstance(e["ts"], int) for e in events)

    def test_validate_rejects_malformed_events(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError, match="missing keys"):
            validate_chrome_trace({"traceEvents": [{"name": "x", "ph": "i"}]})
        with pytest.raises(ValueError, match="integer"):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {"name": "x", "ph": "i", "ts": 0.5, "pid": 1, "tid": 0}
                    ]
                }
            )
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 0}
                    ]
                }
            )

    def test_export_is_deterministic(self, tmp_path):
        paths = []
        for i in range(2):
            payload = chrome_trace(
                phases=populated_phases(),
                tracer=populated_tracer(),
                label="det",
            )
            paths.append(write_chrome_trace(tmp_path / f"{i}.json", payload))
        assert paths[0].read_bytes() == paths[1].read_bytes()
