"""The ``python -m repro.obs.report`` CLI, both modes."""

import json

import pytest

from repro.experiments.batch import BatchRunner
from repro.experiments.campaign import CampaignSpec, run_missing
from repro.experiments.store import ResultsStore
from repro.obs import report
from repro.obs.trace_export import validate_chrome_trace


@pytest.fixture(autouse=True)
def _isolate_cache_env(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)


class TestTrialMode:
    def test_renders_phases_metrics_and_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "t.trace.json"
        json_path = tmp_path / "t.json"
        md_path = tmp_path / "t.md"
        jsonl_path = tmp_path / "t.jsonl"
        rc = report.main(
            [
                "--scenario",
                "static-paper",
                "--epochs",
                "40",
                "--trace-out",
                str(trace_path),
                "--trace-jsonl",
                str(jsonl_path),
                "--json",
                str(json_path),
                "--markdown",
                str(md_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "epoch-tick phase profile" in out
        assert "metric snapshot" in out
        assert "trace record counts" in out

        validate_chrome_trace(json.loads(trace_path.read_text()))
        assert jsonl_path.exists()
        assert "## Phase profile" in md_path.read_text()

        payload = json.loads(json_path.read_text())
        assert payload["label"] == "static-paper"
        assert payload["metrics"]["counters"]["runner.epochs"] == 40
        assert "phase_counts" in payload
        # Deterministic export: no measured durations may enter.
        assert "totals" not in json.dumps(payload)

    def test_json_export_is_reproducible(self, tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            rc = report.main(
                [
                    "--scenario",
                    "static-paper",
                    "--epochs",
                    "30",
                    "--instrument",
                    "metrics",
                    "--json",
                    str(path),
                ]
            )
            assert rc == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_metrics_only_mode_skips_phase_table(self, tmp_path, capsys):
        rc = report.main(
            [
                "--scenario",
                "static-paper",
                "--epochs",
                "30",
                "--instrument",
                "metrics",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "metric snapshot" in out
        assert "phase profile" not in out


class TestCampaignMode:
    def test_summarises_store(self, tmp_path, capsys):
        spec = CampaignSpec(
            name="report-demo",
            scenarios=("static-paper",),
            protocols=("dirq",),
            replicates=2,
            num_epochs=40,
            seed=1,
        )
        store_path = tmp_path / "s.sqlite"
        with ResultsStore(store_path) as store:
            run_missing(
                spec,
                store,
                runner=BatchRunner(
                    max_workers=1, executor="serial", cache_dir=None
                ),
            )
        json_path = tmp_path / "c.json"
        rc = report.main(
            [
                "--campaign",
                "report-demo",
                "--store",
                str(store_path),
                "--json",
                str(json_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert spec.campaign_id in out
        assert "2/2" in out
        payload = json.loads(json_path.read_text())
        with ResultsStore(store_path) as store:
            assert payload == store.export_jsonable(spec.campaign_id)

    def test_missing_store_and_unknown_campaign_fail_cleanly(
        self, tmp_path, capsys
    ):
        rc = report.main(
            ["--campaign", "x", "--store", str(tmp_path / "absent.sqlite")]
        )
        assert rc == 2
        assert "no results store" in capsys.readouterr().err

        store_path = tmp_path / "s.sqlite"
        with ResultsStore(store_path):
            pass
        rc = report.main(["--campaign", "ghost", "--store", str(store_path)])
        assert rc == 2
