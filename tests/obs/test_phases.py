"""PhaseTimer unit tests, driven by a scripted monotonic clock."""

import pytest

from repro.obs.catalogue import PHASES
from repro.obs.phases import NULL_PHASES, PhaseTimer


def scripted_clock(*times):
    """A ``now`` callable returning the given instants in sequence."""
    it = iter(times)
    return lambda: next(it)


class TestPhaseTimer:
    def test_begin_end_accumulates(self):
        timer = PhaseTimer(now=scripted_clock(10.0, 12.5))
        timer.begin("mac")
        timer.end()
        assert timer.totals == {"mac": 2.5}
        assert timer.counts == {"mac": 1}
        assert timer.spans == [("mac", 0.0, 2.5)]

    def test_begin_implicitly_closes_open_phase(self):
        timer = PhaseTimer(now=scripted_clock(0.0, 1.0, 4.0))
        timer.begin("mac")
        timer.begin("sample")  # closes mac at t=1
        timer.end()  # closes sample at t=4
        assert timer.totals == {"mac": 1.0, "sample": 3.0}
        assert timer.spans == [("mac", 0.0, 1.0), ("sample", 1.0, 3.0)]

    def test_end_without_open_phase_is_a_noop(self):
        timer = PhaseTimer(now=scripted_clock())
        timer.end()  # must not consume the (empty) clock
        assert timer.totals == {}

    def test_unknown_phase_rejected(self):
        timer = PhaseTimer(now=scripted_clock(0.0))
        with pytest.raises(ValueError, match="PHASES taxonomy"):
            timer.begin("warp-drive")

    def test_span_budget_drops_spans_but_keeps_totals(self):
        clock = scripted_clock(*[float(t) for t in range(8)])
        timer = PhaseTimer(now=clock, max_spans=2)
        for _ in range(4):
            timer.begin("channel")
            timer.end()
        assert len(timer.spans) == 2
        assert timer.dropped_spans == 2
        assert timer.counts == {"channel": 4}
        assert timer.totals == {"channel": 4.0}
        snap = timer.snapshot()
        assert snap["spans"] == 2
        assert snap["dropped_spans"] == 2

    def test_table_rows_follow_taxonomy_order(self):
        # Feed phases in reverse taxonomy order; the table must come
        # back in PHASES order so tables from different trials align.
        phases = list(PHASES)
        clock = scripted_clock(*[float(t) for t in range(2 * len(phases))])
        timer = PhaseTimer(now=clock)
        for name in reversed(phases):
            timer.begin(name)
            timer.end()
        rows = timer.table()
        assert [row[0] for row in rows] == phases
        assert all(row[1] == 1 for row in rows)
        assert sum(row[4] for row in rows) == pytest.approx(1.0)

    def test_null_phases_is_a_total_noop(self):
        NULL_PHASES.begin("not-even-a-phase")  # no validation when off
        NULL_PHASES.end()
        assert NULL_PHASES.totals == {}
        assert not NULL_PHASES.enabled

    def test_snapshot_counts_are_deterministic_keys(self):
        timer = PhaseTimer(now=scripted_clock(0.0, 1.0, 2.0, 3.0, 4.0))
        timer.begin("sample")
        timer.begin("channel")
        timer.end()
        timer.begin("sample")
        timer.end()
        snap = timer.snapshot()
        assert snap["counts"] == {"channel": 1, "sample": 2}
        assert list(snap["counts"]) == sorted(snap["counts"])
