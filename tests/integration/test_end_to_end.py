"""End-to-end integration tests reproducing the paper's qualitative claims
on reduced-scale networks (fast enough for the unit-test suite; the
benchmarks run the paper-scale versions)."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.accuracy import delivery_completeness, mean_overshoot


@pytest.fixture(scope="module")
def base_config():
    return ExperimentConfig(
        num_nodes=25,
        comm_range=35.0,
        num_epochs=600,
        query_period=20,
        target_coverage=0.4,
        query_sensor_type="temperature",
        seed=21,
    )


@pytest.fixture(scope="module")
def results(base_config):
    """One run per setting, shared by the assertions below."""
    return {
        "delta3": run_experiment(base_config.with_fixed_delta(3.0)),
        "delta9": run_experiment(base_config.with_fixed_delta(9.0)),
        "atc": run_experiment(base_config.with_atc()),
        "flooding": run_experiment(base_config.with_flooding()),
    }


class TestCostClaims:
    def test_smaller_delta_means_more_updates(self, results):
        """§7.1 / Fig. 6: tighter thresholds transmit more update messages."""
        updates3 = results["delta3"].breakdown.update_cost
        updates9 = results["delta9"].breakdown.update_cost
        assert updates3 > updates9

    def test_directed_dissemination_is_much_cheaper_than_flooding_per_query(
        self, results
    ):
        """§5.2: C_QD is a small fraction of C_F on a realistic topology."""
        dirq = results["delta3"]
        per_query_dissemination = dirq.breakdown.query_cost / dirq.num_queries
        assert per_query_dissemination < 0.5 * dirq.flooding_cost_per_query

    def test_atc_total_cost_lands_near_half_of_flooding(self, results):
        """Headline claim: DirQ with ATC costs ~45-55% of flooding.

        A 600-epoch, 25-node run is dominated by the start-up transient
        (the paper's figure uses 20 000 epochs), so the claim is checked on
        the steady-state second half of the run with a widened band; the
        benchmark harness reproduces the tighter band at paper scale.
        """
        atc = results["atc"]
        assert atc.cost_ratio < 1.0  # never worse than flooding overall
        half = atc.num_queries // 2
        steady_query_cost = sum(atc.per_query_costs[half:])
        windows = atc.updates_per_window()
        steady_update_cost = 2.0 * sum(windows[len(windows) // 2 :])
        steady_flooding = atc.flooding_cost_per_query * (atc.num_queries - half)
        steady_ratio = (steady_query_cost + steady_update_cost) / steady_flooding
        assert 0.30 <= steady_ratio <= 0.70

    def test_atc_cheaper_than_aggressive_fixed_threshold(self, results):
        assert results["atc"].total_dirq_cost < results["delta3"].total_dirq_cost

    def test_flooding_measured_cost_matches_formula(self, results):
        flood = results["flooding"]
        expected = flood.flooding_cost_per_query * flood.num_queries
        assert flood.breakdown.flood_cost == pytest.approx(expected)


class TestAccuracyClaims:
    def test_overshoot_grows_with_delta(self, results):
        """Fig. 5: larger δ makes range information coarser."""
        assert (
            results["delta9"].mean_overshoot_percent
            > results["delta3"].mean_overshoot_percent
        )

    def test_dirq_delivers_queries_to_nearly_all_true_sources(self, results):
        for key in ("delta3", "delta9", "atc"):
            assert delivery_completeness(results[key].audit.records) > 0.85

    def test_flooding_reaches_everything(self, results):
        flood = results["flooding"]
        for record in flood.audit.records:
            assert len(record.received) == flood.num_nodes - 1

    def test_atc_overshoot_bounded_by_its_widest_threshold(self, results):
        """ATC trades some accuracy for the cost band but stays bounded."""
        assert results["atc"].mean_overshoot_percent < 60.0


class TestCoverageEffect:
    def test_delta_effect_less_pronounced_at_higher_coverage(self, base_config):
        """§7.1: the δ-induced accuracy gap shrinks as more nodes are relevant."""
        low_cov = run_experiment(
            base_config.replace(target_coverage=0.2, num_epochs=400).with_fixed_delta(9.0)
        )
        high_cov = run_experiment(
            base_config.replace(target_coverage=0.6, num_epochs=400).with_fixed_delta(9.0)
        )
        # Overshoot head-room is what matters: with 60% of nodes already
        # relevant there are simply fewer wrong nodes to reach.
        assert high_cov.mean_overshoot_percent < low_cov.mean_overshoot_percent + 15.0

    def test_higher_coverage_costs_more_to_disseminate(self, base_config):
        low_cov = run_experiment(
            base_config.replace(target_coverage=0.2, num_epochs=400).with_fixed_delta(5.0)
        )
        high_cov = run_experiment(
            base_config.replace(target_coverage=0.6, num_epochs=400).with_fixed_delta(5.0)
        )
        assert (
            high_cov.breakdown.query_cost / high_cov.num_queries
            > low_cov.breakdown.query_cost / low_cov.num_queries
        )


class TestAdaptationOverTime:
    def test_atc_update_rate_converges_towards_budget(self, results):
        """Fig. 6: after the transient the ATC's update rate stabilises."""
        series = results["atc"].updates_per_window()
        assert len(series) >= 4
        first, last = series[0], series[-1]
        steady = series[len(series) // 2 :]
        # The steady-state mean is well below the start-up transient.
        assert sum(steady) / len(steady) < first
        # And the steady state does not collapse to zero updates.
        assert min(steady) > 0
