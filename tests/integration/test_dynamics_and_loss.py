"""Integration tests for topology dynamics (cross-layer adaptation) and
lossy-channel operation."""

import pytest

from repro.experiments.config import ExperimentConfig, TopologyEvent
from repro.experiments.runner import run_experiment
from repro.metrics.accuracy import delivery_completeness
from repro.mac.crosslayer import NeighborLost


@pytest.fixture(scope="module")
def dynamic_config():
    return ExperimentConfig(
        num_nodes=20,
        comm_range=40.0,
        num_epochs=500,
        query_period=20,
        target_coverage=0.4,
        query_sensor_type="temperature",
        seed=17,
        mac_beacon_interval=5.0,
        mac_death_threshold=3,
    )


class TestNodeDeathAdaptation:
    @pytest.fixture(scope="class")
    def result(self, dynamic_config):
        cfg = dynamic_config.replace(
            topology_events=[
                TopologyEvent(epoch=200, kind=TopologyEvent.KILL, node_id=6),
                TopologyEvent(epoch=200, kind=TopologyEvent.KILL, node_id=13),
            ]
        ).with_fixed_delta(5.0)
        return run_experiment(cfg)

    def test_dead_nodes_removed_from_tree_and_liveness(self, result):
        assert 6 not in result.alive_at_end
        assert 6 not in result.tree
        assert 13 not in result.tree

    def test_queries_keep_routing_after_failures(self, result):
        after = result.audit.records_between(280, 500)
        assert len(after) > 0
        assert delivery_completeness(after) > 0.85

    def test_dead_nodes_no_longer_receive_queries(self, result):
        after = result.audit.records_between(280, 500)
        for record in after:
            assert 6 not in record.received
            assert 13 not in record.received

    def test_delivery_quality_comparable_before_and_after(self, result):
        before = delivery_completeness(result.audit.records_between(0, 199))
        after = delivery_completeness(result.audit.records_between(280, 500))
        assert after >= before - 0.15


class TestCrossLayerNotifications:
    def test_lmac_reports_death_and_dirq_prunes_tables(self, dynamic_config):
        """The §4.2 mechanism end-to-end: LMAC death detection -> DirQ pruning."""
        from repro.experiments.runner import ExperimentRunner

        cfg = dynamic_config.replace(
            num_epochs=300,
            topology_events=[
                TopologyEvent(epoch=100, kind=TopologyEvent.KILL, node_id=9)
            ],
        ).with_fixed_delta(5.0)
        runner = ExperimentRunner(cfg)
        world = runner.build()
        tree_before = world.tree
        parent_of_victim = tree_before.parent_of(9)
        runner.run()
        # The victim's old parent must have received a NeighborLost event
        # from its MAC layer and dropped the child from its range tables.
        parent_mac = world.macs[parent_of_victim]
        lost = parent_mac.crosslayer.events_of(NeighborLost)
        assert any(e.neighbor_id == 9 for e in lost)
        parent_proto = world.protocols[parent_of_victim]
        for table in parent_proto.tables.tables():
            assert 9 not in table.child_ids


class TestLedgerDeliveryInvariant:
    def test_rx_charges_match_deliveries_under_node_death(self, dynamic_config):
        """Every reception unit in the ledger corresponds to a delivery that
        actually happened, even when nodes die with frames in flight."""
        from repro.experiments.runner import ExperimentRunner

        cfg = dynamic_config.replace(
            num_epochs=300,
            topology_events=[
                TopologyEvent(epoch=100, kind=TopologyEvent.KILL, node_id=6),
                TopologyEvent(epoch=150, kind=TopologyEvent.KILL, node_id=13),
            ],
        ).with_fixed_delta(5.0)
        runner = ExperimentRunner(cfg)
        runner.build()
        result = runner.run()
        world = runner.world
        assert (
            result.ledger.total_count(direction="rx")
            == world.channel.stats.deliveries
        )


class TestLossyChannel:
    def test_dirq_still_functions_under_moderate_loss(self, dynamic_config):
        lossless = run_experiment(dynamic_config.with_fixed_delta(5.0))
        lossy = run_experiment(
            dynamic_config.replace(channel_loss=0.1).with_fixed_delta(5.0)
        )
        assert delivery_completeness(lossy.audit.records) > 0.6
        # Loss can only reduce delivered queries relative to the ideal channel.
        assert (
            delivery_completeness(lossy.audit.records)
            <= delivery_completeness(lossless.audit.records) + 1e-9
        )

    def test_loss_reduces_reception_cost_not_transmission_count(self, dynamic_config):
        lossless = run_experiment(dynamic_config.with_fixed_delta(5.0))
        lossy = run_experiment(
            dynamic_config.replace(channel_loss=0.3).with_fixed_delta(5.0)
        )
        # Same seed => same sampling behaviour; the lossy run cannot deliver
        # more receptions per transmission than the ideal one.
        rx_per_tx_lossless = lossless.ledger.total_count(
            direction="rx"
        ) / max(1, lossless.ledger.total_count(direction="tx"))
        rx_per_tx_lossy = lossy.ledger.total_count(direction="rx") / max(
            1, lossy.ledger.total_count(direction="tx")
        )
        assert rx_per_tx_lossy < rx_per_tx_lossless
