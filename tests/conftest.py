"""Shared pytest fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.topology import random_geometric_topology
from repro.sensors.dataset import SensorDataset
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams

from .helpers import (
    build_mini_world,
    constant_dataset,
    line_topology,
    ramp_dataset,
    star_topology,
)


@pytest.fixture
def sim() -> Simulator:
    """A fresh discrete-event simulator."""
    return Simulator()


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded random generator for deterministic tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def streams() -> RandomStreams:
    return RandomStreams(seed=42)


@pytest.fixture
def small_topology(rng):
    """A connected 12-node random geometric topology."""
    return random_geometric_topology(
        num_nodes=12, comm_range=40.0, area_size=80.0, rng=rng
    )


@pytest.fixture
def line5():
    """A 5-node line topology rooted at node 0."""
    return line_topology(5)


@pytest.fixture
def star4():
    """A star with 4 leaves rooted at the centre node 0."""
    return star_topology(4)


@pytest.fixture
def small_dataset(small_topology, rng) -> SensorDataset:
    """A generated dataset over the small topology (2 types, 200 epochs)."""
    from repro.sensors.types import default_type_specs

    specs = default_type_specs()
    wanted = {k: specs[k] for k in ("temperature", "humidity")}
    return SensorDataset.generate(
        node_ids=small_topology.node_ids,
        positions=small_topology.position_array(),
        num_epochs=200,
        rng=rng,
        specs=wanted,
    )


@pytest.fixture
def line_world():
    """A 5-node DirQ line network with a constant-valued dataset.

    Node readings: 0 -> 10, 1 -> 20, 2 -> 30, 3 -> 40, 4 -> 50 so range
    aggregation and query routing outcomes are easy to predict.
    """
    topo = line_topology(5)
    data = constant_dataset(
        topo.node_ids, {0: 10.0, 1: 20.0, 2: 30.0, 3: 40.0, 4: 50.0}, num_epochs=60
    )
    return build_mini_world(topo, data)


@pytest.fixture
def star_world():
    """A 5-node DirQ star with distinct constant readings per leaf."""
    topo = star_topology(4)
    data = constant_dataset(
        topo.node_ids, {0: 0.0, 1: 10.0, 2: 20.0, 3: 30.0, 4: 40.0}, num_epochs=60
    )
    return build_mini_world(topo, data)
