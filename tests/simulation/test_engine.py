"""Tests for the discrete-event engine."""

import pytest

from repro.simulation.engine import SimulationError, Simulator
from repro.simulation.events import EventPriority


class TestScheduling:
    def test_runs_events_in_time_order(self, sim):
        fired = []
        sim.schedule_at(2.0, lambda: fired.append("late"))
        sim.schedule_at(1.0, lambda: fired.append("early"))
        sim.schedule_at(1.5, lambda: fired.append("middle"))
        executed = sim.run()
        assert executed == 3
        assert fired == ["early", "middle", "late"]

    def test_same_time_ordered_by_priority(self, sim):
        fired = []
        sim.schedule_at(1.0, lambda: fired.append("app"), priority=EventPriority.APPLICATION)
        sim.schedule_at(1.0, lambda: fired.append("mac"), priority=EventPriority.MAC)
        sim.schedule_at(1.0, lambda: fired.append("ctrl"), priority=EventPriority.CONTROL)
        sim.run()
        assert fired == ["ctrl", "mac", "app"]

    def test_same_time_same_priority_fifo(self, sim):
        fired = []
        for i in range(5):
            sim.schedule_at(1.0, lambda i=i: fired.append(i))
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_schedule_after_is_relative_to_now(self, sim):
        times = []
        sim.schedule_at(3.0, lambda: sim.schedule_after(2.0, lambda: times.append(sim.now)))
        sim.run()
        assert times == [5.0]

    def test_scheduling_in_the_past_raises(self, sim):
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_negative_delay_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule_after(-0.1, lambda: None)

    def test_clock_advances_to_event_time(self, sim):
        sim.schedule_at(7.25, lambda: None)
        sim.run()
        assert sim.now == 7.25

    def test_events_scheduled_during_run_are_executed(self, sim):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule_after(1.0, lambda: chain(n + 1))

        sim.schedule_at(0.0, lambda: chain(0))
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule_at(1.0, lambda: fired.append("a"))
        assert sim.cancel(handle) is True
        sim.run()
        assert fired == []

    def test_double_cancel_returns_false(self, sim):
        handle = sim.schedule_at(1.0, lambda: None)
        assert handle.cancel() is True
        assert handle.cancel() is False

    def test_pending_excludes_cancelled(self, sim):
        h1 = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        h1.cancel()
        assert sim.pending == 1


class TestRunUntil:
    def test_run_until_stops_at_boundary(self, sim):
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(2.0, lambda: fired.append(2))
        sim.schedule_at(3.0, lambda: fired.append(3))
        sim.run_until(2.0)
        assert fired == [1, 2]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 2, 3]

    def test_run_until_advances_clock_even_without_events(self, sim):
        sim.run_until(10.0)
        assert sim.now == 10.0

    def test_run_until_does_not_execute_future_events(self, sim):
        fired = []
        sim.schedule_at(5.0, lambda: fired.append(5))
        sim.run_until(4.99)
        assert fired == []
        assert sim.pending == 1

    def test_max_events_bound(self, sim):
        for i in range(10):
            sim.schedule_at(float(i), lambda: None)
        executed = sim.run(max_events=4)
        assert executed == 4
        assert sim.pending == 6

    def test_stop_terminates_loop(self, sim):
        fired = []
        sim.schedule_at(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule_at(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_run_is_not_reentrant(self, sim):
        def nested():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule_at(1.0, nested)
        sim.run()


class TestCompaction:
    """Lazy cancellation must not leak heap entries for the whole run."""

    def test_queue_size_bounded_after_mass_cancellation(self, sim):
        handles = [sim.schedule_at(float(i + 1), lambda: None) for i in range(5000)]
        keep = handles[::1000]
        for handle in handles:
            if handle not in keep:
                handle.cancel()
        assert sim.pending == len(keep)
        # Documented invariant: cancelled entries never dominate the heap
        # beyond the compaction slack.
        assert sim.queue_size <= 2 * sim.pending + Simulator.COMPACT_MIN_CANCELLED

    def test_timer_rearm_pattern_stays_compacted(self, sim):
        # The LMAC beacon pattern: every re-arm cancels the previous timer.
        handle = sim.schedule_at(1e6, lambda: None)
        for i in range(10_000):
            handle.cancel()
            handle = sim.schedule_at(1e6 + i, lambda: None)
        assert sim.pending == 1
        assert sim.queue_size <= 2 * sim.pending + Simulator.COMPACT_MIN_CANCELLED

    def test_compaction_preserves_execution_order(self, sim):
        fired = []
        handles = [
            sim.schedule_at(float(i), lambda i=i: fired.append(i)) for i in range(500)
        ]
        for i, handle in enumerate(handles):
            if i % 2 == 0:
                handle.cancel()
        sim.run()
        assert fired == [i for i in range(500) if i % 2 == 1]

    def test_cancelled_counter_tracks_discards(self, sim):
        h1 = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        h1.cancel()
        assert sim.cancelled_in_queue == 1
        sim.run()
        assert sim.cancelled_in_queue == 0
        assert sim.executed == 1

    def test_cancel_after_execution_does_not_corrupt_pending(self, sim):
        handle = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        sim.run(max_events=1)
        # Cancelling an already-fired event keeps the old True-return
        # contract but must not decrement the pending counter.
        assert handle.cancel() is True
        assert sim.pending == 1

    def test_compaction_during_run_is_safe(self, sim):
        fired = []
        late = [sim.schedule_at(100.0 + i, lambda: fired.append("late")) for i in range(300)]

        def cancel_all():
            fired.append("cancel")
            for handle in late:
                handle.cancel()

        sim.schedule_at(1.0, cancel_all)
        sim.schedule_at(2.0, lambda: fired.append("after"))
        sim.run()
        assert fired == ["cancel", "after"]
        assert sim.pending == 0


class TestRunUntilFastPath:
    """run_until with nothing due must be O(1) and semantically unchanged."""

    def test_fast_path_advances_clock(self, sim):
        sim.schedule_at(50.0, lambda: None)
        assert sim.run_until(10.0) == 0
        assert sim.now == 10.0
        assert sim.pending == 1

    def test_boundary_event_still_runs(self, sim):
        fired = []
        sim.schedule_at(10.0, lambda: fired.append(1))
        sim.run_until(10.0)
        assert fired == [1]

    def test_cancelled_head_does_not_break_fast_path(self, sim):
        h = sim.schedule_at(5.0, lambda: None)
        sim.schedule_at(50.0, lambda: None)
        h.cancel()
        assert sim.run_until(10.0) == 0
        assert sim.now == 10.0
        assert sim.pending == 1

    def test_many_empty_drains_execute_no_events(self, sim):
        sim.schedule_at(1e6, lambda: None)
        for epoch in range(1000):
            assert sim.run_until(float(epoch)) == 0
        assert sim.executed == 0
        assert sim.now == 999.0


class TestIntrospection:
    def test_peek_time(self, sim):
        assert sim.peek_time() is None
        sim.schedule_at(3.0, lambda: None)
        sim.schedule_at(1.0, lambda: None)
        assert sim.peek_time() == 1.0

    def test_executed_counter_accumulates(self, sim):
        for i in range(3):
            sim.schedule_at(float(i), lambda: None)
        sim.run()
        sim.schedule_at(10.0, lambda: None)
        sim.run()
        assert sim.executed == 4

    def test_step_executes_single_event(self, sim):
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(2.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]
        assert sim.step() is True
        assert sim.step() is False
