"""Tests for the SimProcess module/timer abstraction."""

import pytest

from repro.simulation.process import SimProcess


class Recorder(SimProcess):
    def __init__(self, sim, name="recorder"):
        super().__init__(sim, name)
        self.started_count = 0
        self.timer_fires = []
        self.messages = []

    def on_start(self):
        self.started_count += 1

    def on_timer(self, name):
        self.timer_fires.append((name, self.now))

    def on_message(self, message, sender=None):
        self.messages.append((sender, message))


class TestLifecycle:
    def test_start_invokes_on_start_once(self, sim):
        proc = Recorder(sim)
        proc.start()
        proc.start()
        assert proc.started_count == 1
        assert proc.started is True

    def test_requires_simulator(self):
        with pytest.raises(ValueError):
            Recorder(None)


class TestTimers:
    def test_named_timer_fires_on_timer_hook(self, sim):
        proc = Recorder(sim)
        proc.set_timer("tick", 2.0)
        sim.run()
        assert proc.timer_fires == [("tick", 2.0)]

    def test_timer_with_explicit_callback(self, sim):
        proc = Recorder(sim)
        fired = []
        proc.set_timer("tick", 1.0, callback=lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.0]
        assert proc.timer_fires == []

    def test_rearming_replaces_previous_timer(self, sim):
        proc = Recorder(sim)
        proc.set_timer("tick", 1.0)
        proc.set_timer("tick", 5.0)
        sim.run()
        assert proc.timer_fires == [("tick", 5.0)]

    def test_cancel_timer(self, sim):
        proc = Recorder(sim)
        proc.set_timer("tick", 1.0)
        assert proc.cancel_timer("tick") is True
        assert proc.cancel_timer("tick") is False
        sim.run()
        assert proc.timer_fires == []

    def test_timer_pending(self, sim):
        proc = Recorder(sim)
        assert proc.timer_pending("tick") is False
        proc.set_timer("tick", 1.0)
        assert proc.timer_pending("tick") is True
        sim.run()
        assert proc.timer_pending("tick") is False

    def test_cancel_all_timers(self, sim):
        proc = Recorder(sim)
        proc.set_timer("a", 1.0)
        proc.set_timer("b", 2.0)
        assert proc.cancel_all_timers() == 2
        sim.run()
        assert proc.timer_fires == []

    def test_periodic_rearm_pattern(self, sim):
        proc = Recorder(sim)

        def tick():
            proc.timer_fires.append(("periodic", sim.now))
            if sim.now < 3.0:
                proc.set_timer("periodic", 1.0, callback=tick)

        proc.set_timer("periodic", 1.0, callback=tick)
        sim.run()
        assert [t for _, t in proc.timer_fires] == [1.0, 2.0, 3.0]


class TestMessaging:
    def test_deliver_invokes_on_message(self, sim):
        proc = Recorder(sim)
        proc.deliver({"hello": 1}, sender=7)
        assert proc.messages == [(7, {"hello": 1})]
