"""Tests for event primitives and the simulated clock."""

import pytest

from repro.simulation.clock import SimClock
from repro.simulation.events import Event, EventHandle, EventPriority


class TestEventOrdering:
    def test_sort_key_orders_by_time_first(self):
        early = Event(time=1.0, priority=50, seq=10, callback=lambda: None)
        late = Event(time=2.0, priority=0, seq=0, callback=lambda: None)
        assert early < late

    def test_sort_key_breaks_ties_by_priority(self):
        high = Event(time=1.0, priority=EventPriority.MAC, seq=5, callback=lambda: None)
        low = Event(time=1.0, priority=EventPriority.TIMER, seq=1, callback=lambda: None)
        assert high < low

    def test_sort_key_breaks_remaining_ties_by_sequence(self):
        first = Event(time=1.0, priority=10, seq=1, callback=lambda: None)
        second = Event(time=1.0, priority=10, seq=2, callback=lambda: None)
        assert first < second

    def test_priority_bands_are_ordered_bottom_up(self):
        assert EventPriority.CONTROL < EventPriority.MAC < EventPriority.APPLICATION
        assert EventPriority.APPLICATION < EventPriority.TIMER


class TestEventHandle:
    def test_handle_reports_time_and_label(self):
        event = Event(time=3.5, priority=0, seq=0, callback=lambda: None, label="x")
        handle = EventHandle(event)
        assert handle.time == 3.5
        assert handle.label == "x"
        assert handle.cancelled is False

    def test_cancel_marks_event(self):
        event = Event(time=1.0, priority=0, seq=0, callback=lambda: None)
        handle = EventHandle(event)
        assert handle.cancel() is True
        assert event.cancelled is True
        assert handle.cancel() is False


class TestSimClock:
    def test_starts_at_given_time(self):
        assert SimClock(5.0).now == 5.0

    def test_advance_moves_forward(self):
        clock = SimClock()
        clock._advance(2.0)
        assert clock.now == 2.0

    def test_advance_to_same_time_is_allowed(self):
        clock = SimClock(1.0)
        clock._advance(1.0)
        assert clock.now == 1.0

    def test_advance_backwards_raises(self):
        clock = SimClock(3.0)
        with pytest.raises(ValueError):
            clock._advance(2.999)
