"""Tests for random-stream management and the tracer."""

import pytest

from repro.simulation.rng import RandomStreams
from repro.simulation.trace import Tracer


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(7).get("topology")
        b = RandomStreams(7).get("topology")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_give_independent_streams(self):
        streams = RandomStreams(7)
        a = streams.get("alpha").random(10)
        b = streams.get("beta").random(10)
        assert list(a) != list(b)

    def test_same_name_returns_same_generator_object(self):
        streams = RandomStreams(7)
        assert streams.get("x") is streams.get("x")

    def test_different_seeds_differ(self):
        a = RandomStreams(1).get("x").random(5)
        b = RandomStreams(2).get("x").random(5)
        assert list(a) != list(b)

    def test_adding_new_stream_does_not_perturb_existing(self):
        s1 = RandomStreams(9)
        first_draw = s1.get("phenomena").random(3)

        s2 = RandomStreams(9)
        s2.get("some-new-consumer")  # extra stream created first
        second_draw = s2.get("phenomena").random(3)
        assert list(first_draw) == list(second_draw)

    def test_spawn_creates_derived_but_deterministic_factory(self):
        child_a = RandomStreams(3).spawn("rep-1").get("x").random(3)
        child_b = RandomStreams(3).spawn("rep-1").get("x").random(3)
        child_c = RandomStreams(3).spawn("rep-2").get("x").random(3)
        assert list(child_a) == list(child_b)
        assert list(child_a) != list(child_c)

    def test_invalid_inputs(self):
        with pytest.raises(TypeError):
            RandomStreams("not-an-int")
        with pytest.raises(ValueError):
            RandomStreams(1).get("")


class TestTracer:
    def test_records_are_retained_in_order(self):
        tracer = Tracer()
        tracer.record(1.0, "a", node=1, detail=1)
        tracer.record(2.0, "b", node=2)
        assert [r.category for r in tracer.records] == ["a", "b"]

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record(1.0, "a")
        assert tracer.records == []
        assert tracer.count("a") == 0

    def test_category_whitelist(self):
        tracer = Tracer(categories={"keep"})
        tracer.record(1.0, "keep")
        tracer.record(1.0, "drop")
        assert [r.category for r in tracer.records] == ["keep"]

    def test_retention_bound_drops_oldest(self):
        tracer = Tracer(max_records=3)
        for i in range(5):
            tracer.record(float(i), "x", node=i)
        assert len(tracer.records) == 3
        assert tracer.dropped == 2
        assert tracer.records[0].node == 2
        # Counts still reflect every record ever seen.
        assert tracer.count("x") == 5

    def test_filter_by_category_node_and_time(self):
        tracer = Tracer()
        tracer.record(1.0, "tx", node=1)
        tracer.record(2.0, "tx", node=2)
        tracer.record(3.0, "rx", node=1)
        assert len(list(tracer.filter(category="tx"))) == 2
        assert len(list(tracer.filter(node=1))) == 2
        assert len(list(tracer.filter(since=2.0, until=3.0))) == 2

    def test_summary_and_clear(self):
        tracer = Tracer()
        tracer.record(1.0, "a")
        tracer.record(1.0, "a")
        tracer.record(1.0, "b")
        assert tracer.summary() == {"a": 2, "b": 1}
        tracer.clear()
        assert tracer.records == []
        assert tracer.summary() == {}

    def test_invalid_max_records(self):
        with pytest.raises(ValueError):
            Tracer(max_records=0)
