"""Tests for the replication-statistics layer (`repro.metrics.stats`).

The properties the ISSUE pins down: Student-t criticals match the standard
table, CI width shrinks ~1/sqrt(n) on synthetic data, degenerate n=1 groups
report no CI instead of crashing, replicate grouping is stable across
worker counts, and report cells round-trip through the JSON export.
"""

import json
import math
import random

import pytest

from repro.metrics.report import format_mean_ci, format_replicate_table
from repro.metrics.stats import (
    DEFAULT_METRICS,
    ReplicateSummary,
    group_replicates,
    groups_to_json,
    mean_series,
    student_t_critical,
    summarize,
)


class TestStudentT:
    #: Textbook two-sided 95 % critical values.
    TABLE = {1: 12.706, 2: 4.303, 4: 2.776, 9: 2.262, 30: 2.042, 100: 1.984}

    def test_matches_the_t_table(self):
        for df, expected in self.TABLE.items():
            assert student_t_critical(df, 0.95) == pytest.approx(
                expected, abs=1e-3
            )

    def test_approaches_the_normal_quantile(self):
        assert student_t_critical(10_000, 0.95) == pytest.approx(1.96, abs=5e-3)

    def test_higher_confidence_widens(self):
        assert student_t_critical(9, 0.99) > student_t_critical(9, 0.95)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            student_t_critical(0)
        with pytest.raises(ValueError):
            student_t_critical(5, 1.0)


class TestReplicateSummary:
    def test_basic_moments(self):
        s = summarize("x", [1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.mean == pytest.approx(3.0)
        assert s.std == pytest.approx(math.sqrt(2.5))
        assert s.minimum == 1.0 and s.maximum == 5.0 and s.n == 5
        # half-width = t*(4) * s / sqrt(5)
        assert s.ci_halfwidth == pytest.approx(
            2.776 * math.sqrt(2.5) / math.sqrt(5), abs=1e-3
        )

    def test_degenerate_single_replicate_has_no_ci(self):
        s = summarize("x", [7.5])
        assert s.n == 1
        assert s.ci_halfwidth is None
        assert s.std == 0.0
        assert "±" not in s.format()
        assert s.format() == "7.500 [n=1]"

    def test_non_finite_values_degrade_gracefully(self):
        s = summarize("ratio", [float("inf"), 1.0])
        assert s.ci_halfwidth is None
        assert math.isinf(s.mean)

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            summarize("x", [])

    def test_ci_width_shrinks_like_one_over_sqrt_n(self):
        rng = random.Random(42)
        population = [rng.gauss(10.0, 2.0) for _ in range(4000)]
        # Mean CI half-width over many disjoint groups of each size: the
        # t-interval is t*(n-1) * s / sqrt(n), so quadrupling n should
        # roughly halve it (slightly more, as t* also shrinks).
        def mean_halfwidth(n):
            groups = [population[i : i + n] for i in range(0, 4000, n)]
            widths = [summarize("x", g).ci_halfwidth for g in groups]
            return sum(widths) / len(widths)

        ratio = mean_halfwidth(10) / mean_halfwidth(40)
        assert 1.7 < ratio < 2.6  # ~sqrt(40/10) = 2, plus the t* shrink

    def test_json_round_trip_preserves_cells(self):
        for values in ([1.0, 2.0, 9.0], [3.25]):
            s = summarize("metric", values)
            restored = ReplicateSummary.from_dict(
                json.loads(json.dumps(s.to_dict()))
            )
            assert restored == s
            assert format_mean_ci(restored) == format_mean_ci(s)


class TestMeanSeries:
    def test_element_wise_mean(self):
        assert mean_series([[1.0, 2.0], [3.0, 4.0]]) == [2.0, 3.0]

    def test_rejects_ragged_replicates(self):
        with pytest.raises(ValueError):
            mean_series([[1.0], [1.0, 2.0]])

    def test_empty(self):
        assert mean_series([]) == []


class _FakeSpec:
    def __init__(self, label, key, tags):
        self.label = label
        self.key = key
        self.group = "g"
        self.tags = tags


class _FakeResult:
    """Duck-typed stand-in for TrialResult (scalar metrics only)."""

    def __init__(self, label, key, tags, value, from_cache=False):
        self.spec = _FakeSpec(label, key, tags)
        self.num_queries = 4
        self.cost_ratio = value
        self.mean_overshoot_percent = value
        self.mean_accuracy = 1.0
        self.total_dirq_cost = 10 * value
        self.from_cache = from_cache

        class _Audit:
            records = []

        self.audit = _Audit()

    def updates_per_window(self):
        return [1.0, 3.0]


def _fake_group(n, base="spec-a"):
    return [
        _FakeResult(
            label=base if i == 0 else f"{base} rep={i}",
            key=f"{base}-k{i}",
            tags={"replicate": i, "base_key": base, "base_label": base},
            value=float(i + 1),
            from_cache=(i == 0),
        )
        for i in range(n)
    ]


class TestGroupReplicates:
    def test_groups_fold_by_base_key(self):
        results = _fake_group(3) + _fake_group(2, base="spec-b")
        groups = group_replicates(results)
        assert [g.label for g in groups] == ["spec-a", "spec-b"]
        assert [g.n for g in groups] == [3, 2]
        assert groups[0].metrics["cost_ratio"].mean == pytest.approx(2.0)
        # Per-group cache-hit accounting (rep 0 was cached in the fixture).
        assert groups[0].cache_hits == 1 and groups[0].executed == 2

    def test_grouping_is_order_of_first_appearance_not_arrival(self):
        # Shuffled arrival (as a multi-worker run could interleave it)
        # must produce the same groups and summaries.
        results = _fake_group(3) + _fake_group(3, base="spec-b")
        shuffled = [results[i] for i in (4, 0, 5, 2, 3, 1)]
        a = group_replicates(results)
        b = group_replicates(shuffled)
        assert [g.label for g in b] == ["spec-b", "spec-a"]
        by_label_a = {g.label: g for g in a}
        by_label_b = {g.label: g for g in b}
        for label in by_label_a:
            assert (
                by_label_a[label].to_dict() == by_label_b[label].to_dict()
            )

    def test_twin_sweep_points_stay_separate_groups(self):
        # Two sweep points whose configs hash equally (shared cache entries)
        # must NOT merge into one double-counted group: same base_key,
        # different base_label => separate rows of n values each.
        twins = []
        for label in ("loss=0", "atc-target=0.5"):
            for i in range(2):
                twins.append(
                    _FakeResult(
                        label=label if i == 0 else f"{label} rep={i}",
                        key="shared-config-hash",
                        tags={
                            "replicate": i,
                            "base_key": "shared-config-hash",
                            "base_label": label,
                        },
                        value=float(i + 1),
                    )
                )
        groups = group_replicates(twins)
        assert [g.label for g in groups] == ["loss=0", "atc-target=0.5"]
        assert [g.n for g in groups] == [2, 2]
        assert groups[0].base_key == groups[1].base_key

    def test_ungrouped_results_become_n1_groups(self):
        lone = _FakeResult("solo", "solo-key", tags={}, value=2.5)
        (group,) = group_replicates([lone])
        assert group.n == 1
        assert group.base_key == "solo-key"
        assert group.metrics["cost_ratio"].ci_halfwidth is None

    def test_to_dict_excludes_provenance(self):
        (group,) = group_replicates(_fake_group(2))
        payload = group.to_dict()
        assert "cache_hits" not in payload and "executed" not in payload
        text = groups_to_json([group], figure="test")
        assert json.loads(text)["figure"] == "test"

    def test_format_replicate_table_renders_cells(self):
        groups = group_replicates(_fake_group(3))
        text = format_replicate_table(groups, title="stats")
        assert "stats" in text and "trial" in text
        assert "± " in text and "[n=3]" in text
        for name in DEFAULT_METRICS:
            assert name in text
