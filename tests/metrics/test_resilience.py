"""Tests for the resilience metrics (degradation + recovery time)."""

from types import SimpleNamespace

import pytest

from repro.core.messages import RangeQuery
from repro.metrics.audit import QueryRecord
from repro.metrics.resilience import (
    DegradationRow,
    degradation_rows,
    first_disruption_epoch,
    format_degradation_table,
    recovery_epochs,
    recovery_summary,
    recovery_time,
    resilience_to_jsonable,
    windowed_accuracy,
)
from repro.metrics.stats import ReplicateSummary


def record(qid: int, epoch: int, should: int, received: int) -> QueryRecord:
    query = RangeQuery(
        query_id=qid, sensor_type="temperature", low=0.0, high=1.0, epoch=epoch
    )
    return QueryRecord(
        query=query,
        sources=set(),
        should_receive=set(range(should)),
        received=set(range(received)),
        injection_epoch=epoch,
        population=20,
    )


def trial(records, kills=()):
    """A TrialResult-shaped duck for the resilience functions."""
    return SimpleNamespace(
        audit=SimpleNamespace(records=list(records)),
        scenario_events=[(epoch, "kill", nid) for epoch, nid in kills],
    )


class TestWindowedAccuracy:
    def test_groups_and_averages_by_window(self):
        records = [
            record(0, 10, 10, 10),   # acc 1.0
            record(1, 90, 10, 5),    # acc 0.5 -> window 0 mean 0.75
            record(2, 150, 10, 8),   # acc 0.8 -> window 100
        ]
        series = windowed_accuracy(records, 100)
        assert series == [(0, pytest.approx(0.75)), (100, pytest.approx(0.8))]

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            windowed_accuracy([], 0)


class TestRecovery:
    def make_records(self):
        # Healthy before the event at epoch 200, degraded for one window,
        # recovered afterwards.
        return [
            record(0, 50, 10, 10),
            record(1, 150, 10, 10),
            record(2, 250, 10, 4),   # window 200: acc 0.4 (degraded)
            record(3, 350, 10, 10),  # window 300: recovered
        ]

    def test_recovery_epoch_is_end_of_recovered_window(self):
        out = recovery_epochs(self.make_records(), event_epoch=200,
                              window_epochs=100, tolerance=0.1)
        # Window [300, 400) is the first back within tolerance; recovery is
        # counted to its end: 400 - 200.
        assert out == 200

    def test_immediate_recovery_when_accuracy_holds(self):
        records = [record(i, e, 10, 10) for i, e in enumerate((50, 250, 350))]
        assert recovery_epochs(records, 200, 100, 0.1) == 100

    def test_no_pre_event_traffic_returns_none(self):
        records = [record(0, 250, 10, 10)]
        assert recovery_epochs(records, 200, 100) is None

    def test_never_recovering_returns_none(self):
        records = [
            record(0, 50, 10, 10),
            record(1, 250, 10, 2),
            record(2, 350, 10, 2),
        ]
        assert recovery_epochs(records, 200, 100, 0.1) is None

    def test_straddling_window_cannot_pass_on_pre_event_traffic(self):
        # Healthy queries fill window [100, 200) right up to the event at
        # epoch 199; everything afterwards is permanently degraded.  The
        # straddling window must not count as a recovery.
        records = [record(i, 100 + i, 10, 10) for i in range(99)]
        records += [record(200 + i, 210 + 50 * i, 10, 2) for i in range(4)]
        assert recovery_epochs(records, 199, 100, 0.1) is None

    def test_first_disruption_epoch(self):
        assert first_disruption_epoch(trial([], kills=[(120, 3), (80, 5)])) == 80
        assert first_disruption_epoch(trial([])) is None

    def test_recovery_time_anchors_at_first_kill(self):
        t = trial(self.make_records(), kills=[(200, 7)])
        assert recovery_time(t, window_epochs=100, tolerance=0.1) == 200
        assert recovery_time(trial(self.make_records())) is None

    def test_recovery_summary_across_replicates(self):
        ts = [
            trial(self.make_records(), kills=[(200, 7)]),
            trial(self.make_records(), kills=[(200, 9)]),
            trial(self.make_records()),  # no disruption: excluded
        ]
        summary = recovery_summary(ts, window_epochs=100, tolerance=0.1)
        assert summary is not None
        assert summary.n == 2
        assert summary.mean == pytest.approx(200.0)

    def test_recovery_summary_none_when_undefined(self):
        assert recovery_summary([trial([])]) is None


class TestDegradation:
    def group(self, **means):
        return SimpleNamespace(
            metrics={
                name: ReplicateSummary.from_values(name, [value])
                for name, value in means.items()
            }
        )

    def test_rows_compare_shared_metrics(self):
        baseline = self.group(mean_accuracy=1.0, cost_ratio=0.5)
        scenario = self.group(mean_accuracy=0.8, cost_ratio=0.6)
        rows = degradation_rows(scenario, baseline)
        by_metric = {r.metric: r for r in rows}
        assert set(by_metric) == {"mean_accuracy", "cost_ratio"}
        acc = by_metric["mean_accuracy"]
        assert acc.delta == pytest.approx(-0.2)
        assert acc.delta_percent == pytest.approx(-20.0)

    def test_zero_baseline_has_no_percentage(self):
        rows = degradation_rows(
            self.group(mean_overshoot_pp=1.0),
            self.group(mean_overshoot_pp=0.0),
        )
        assert rows[0].delta_percent is None

    def test_explicit_metric_selection_preserves_order(self):
        baseline = self.group(a=1.0, b=2.0)
        scenario = self.group(a=2.0, b=1.0)
        rows = degradation_rows(scenario, baseline, metrics=["b", "a"])
        assert [r.metric for r in rows] == ["b", "a"]

    def test_format_table_and_json(self):
        rows = [
            DegradationRow("mean_accuracy", 1.0, 0.8, -0.2, -20.0),
            DegradationRow("x", 0.0, 1.0, 1.0, None),
        ]
        text = format_degradation_table(rows, title="t")
        assert "mean_accuracy" in text and "-20.0%" in text
        payload = resilience_to_jsonable(rows, baseline_label="static")
        assert payload["baseline"] == "static"
        assert payload["degradation"][0]["delta_percent"] == -20.0
        assert payload["recovery"] is None

    def test_empty_rows_format(self):
        assert "no shared metrics" in format_degradation_table([])
