"""Tests for the metrics layer: audit, accuracy, cost, series, reports."""

import pytest

from repro.core.messages import RangeQuery
from repro.energy.ledger import NetworkLedger
from repro.metrics.accuracy import (
    delivery_completeness,
    fig5_percentages,
    mean_accuracy,
    mean_overshoot,
    overshoot_series,
    query_accuracy,
)
from repro.metrics.audit import QueryAudit
from repro.metrics.cost import compare_costs, cost_breakdown, per_node_cost_share
from repro.metrics.report import format_key_values, format_series, format_table
from repro.metrics.series import SeriesSet, UpdateRateRecorder, WindowedCounter


def make_record(
    audit, qid, sources, should, received, epoch=0, population=10, claims=()
):
    q = RangeQuery(qid, "temperature", 0.0, 1.0, epoch=epoch)
    audit.register_query(q, sources, should, epoch, population=population)
    for nid in received:
        audit.record_receipt(qid, nid)
    for nid in claims:
        audit.record_source_claim(qid, nid)
    return audit.record(qid)


class TestAudit:
    def test_register_and_report(self):
        audit = QueryAudit()
        record = make_record(audit, 0, {1, 2}, {1, 2, 3}, {1, 2, 3, 4}, claims={1})
        assert record.spurious == {4}
        assert record.missed == set()
        assert record.missed_sources == set()
        assert len(audit) == 1
        assert 0 in audit

    def test_duplicate_registration_rejected(self):
        audit = QueryAudit()
        make_record(audit, 0, set(), set(), set())
        with pytest.raises(ValueError):
            make_record(audit, 0, set(), set(), set())

    def test_receipt_for_unknown_query_ignored(self):
        audit = QueryAudit()
        audit.record_receipt(99, 1)  # must not raise
        with pytest.raises(KeyError):
            audit.record(99)

    def test_records_between_filters_by_epoch(self):
        audit = QueryAudit()
        make_record(audit, 0, set(), set(), set(), epoch=10)
        make_record(audit, 1, set(), set(), set(), epoch=50)
        make_record(audit, 2, set(), set(), set(), epoch=90)
        assert [r.query_id for r in audit.records_between(40, 95)] == [1, 2]


class TestAccuracy:
    def test_exact_delivery_has_zero_overshoot(self):
        audit = QueryAudit()
        record = make_record(audit, 0, {1}, {1, 2}, {1, 2})
        acc = query_accuracy(record)
        assert acc.overshoot_percent == 0.0
        assert acc.accuracy == 1.0
        assert acc.num_missed == 0

    def test_overshoot_in_population_percentage_points(self):
        audit = QueryAudit()
        # 2 extra nodes over a population of 10 -> 20 percentage points.
        record = make_record(audit, 0, {1}, {1, 2}, {1, 2, 3, 4}, population=10)
        acc = query_accuracy(record)
        assert acc.overshoot_percent == pytest.approx(20.0)
        assert acc.relative_overshoot_percent == pytest.approx(100.0)

    def test_under_delivery_is_negative_overshoot(self):
        audit = QueryAudit()
        record = make_record(audit, 0, {1, 2}, {1, 2, 3}, {1}, population=10)
        acc = query_accuracy(record)
        assert acc.overshoot_percent == pytest.approx(-20.0)
        assert acc.accuracy == pytest.approx(1 / 3)

    def test_mean_metrics_over_records(self):
        audit = QueryAudit()
        make_record(audit, 0, {1}, {1}, {1}, population=10)
        make_record(audit, 1, {1}, {1}, {1, 2}, population=10)
        records = audit.records
        assert mean_overshoot(records) == pytest.approx(5.0)
        assert mean_accuracy(records) == pytest.approx(1.5)
        assert delivery_completeness(records) == 1.0

    def test_delivery_completeness_counts_missed_sources(self):
        audit = QueryAudit()
        make_record(audit, 0, {1, 2}, {1, 2}, {1}, population=10)
        assert delivery_completeness(audit.records) == pytest.approx(0.5)

    def test_overshoot_series_buckets_by_window(self):
        audit = QueryAudit()
        make_record(audit, 0, {1}, {1}, {1, 2}, epoch=10, population=10)
        make_record(audit, 1, {1}, {1}, {1}, epoch=150, population=10)
        series = overshoot_series(audit.records, window_epochs=100, num_epochs=300)
        assert series == [(0, pytest.approx(10.0)), (100, pytest.approx(0.0))]

    def test_fig5_percentages(self):
        audit = QueryAudit()
        make_record(audit, 0, {1, 2}, {1, 2, 3, 4}, {1, 2, 3, 4, 5}, population=10)
        point = fig5_percentages(audit.records, num_nodes=10, delta_percent=5.0,
                                 target_coverage=0.4)
        assert point.should_receive_pct == pytest.approx(40.0)
        assert point.receive_pct == pytest.approx(50.0)
        assert point.source_pct == pytest.approx(20.0)
        assert point.should_not_receive_pct == pytest.approx(60.0)
        assert point.num_queries == 1

    def test_fig5_empty_records(self):
        point = fig5_percentages([], num_nodes=10, delta_percent=3.0, target_coverage=0.2)
        assert point.num_queries == 0
        assert point.should_not_receive_pct == 100.0


class TestCost:
    def make_ledger(self):
        ledger = NetworkLedger()
        ledger.node(0).charge_tx("query", 1.0)
        ledger.node(1).charge_rx("query", 1.0)
        ledger.node(1).charge_tx("update", 1.0)
        ledger.node(0).charge_rx("update", 1.0)
        ledger.node(0).charge_tx("estimate", 1.0)
        ledger.node(2).charge_tx("flood", 1.0)
        return ledger

    def test_cost_breakdown(self):
        breakdown = cost_breakdown(self.make_ledger())
        assert breakdown.query_cost == 2.0
        assert breakdown.update_cost == 2.0
        assert breakdown.estimate_cost == 1.0
        assert breakdown.flood_cost == 1.0
        assert breakdown.total_dirq_cost == 5.0
        assert breakdown.update_fraction == pytest.approx(3 / 5)

    def test_compare_costs_against_total_and_per_query(self):
        ledger = self.make_ledger()
        cmp_total = compare_costs(ledger, flooding_reference=10.0, num_queries=1)
        assert cmp_total.ratio == pytest.approx(0.5)
        assert cmp_total.within_band()
        cmp_perq = compare_costs(
            ledger, flooding_reference=5.0, num_queries=2, flooding_is_total=False
        )
        assert cmp_perq.flooding_total == 10.0
        assert cmp_perq.dirq_per_query == pytest.approx(2.5)

    def test_per_node_cost_share_sums_to_one(self):
        shares = per_node_cost_share(self.make_ledger())
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_compare_costs_validation(self):
        with pytest.raises(ValueError):
            compare_costs(NetworkLedger(), 10.0, num_queries=-1)


class TestSeries:
    def test_windowed_counter_differences(self):
        counter = WindowedCounter(window_epochs=100)
        counter.close_window(0, running_total=10)
        counter.close_window(100, running_total=25)
        assert [p.value for p in counter.points] == [10.0, 15.0]
        assert counter.total() == 25.0
        assert counter.mean() == pytest.approx(12.5)

    def test_windowed_counter_rejects_out_of_order_windows(self):
        counter = WindowedCounter(100)
        counter.close_window(0, 1)
        with pytest.raises(ValueError):
            counter.close_window(0, 2)

    def test_update_rate_recorder_reads_ledger(self):
        ledger = NetworkLedger()
        recorder = UpdateRateRecorder(ledger, window_epochs=100)
        ledger.node(1).charge_tx("update", 1.0)
        ledger.node(2).charge_tx("update", 1.0)
        recorder.on_window_end(0)
        ledger.node(1).charge_tx("update", 1.0)
        recorder.on_window_end(100)
        assert [p.value for p in recorder.series] == [2.0, 1.0]

    def test_series_set_statistics(self):
        counter = WindowedCounter(100)
        counter.close_window(0, 10)
        counter.close_window(100, 20)
        counter.close_window(200, 32)
        series = SeriesSet(window_epochs=100)
        series.add_series("atc", counter.points)
        series.add_reference("umax", 20.0)
        assert series.mean_of("atc") == pytest.approx((10 + 10 + 12) / 3)
        assert series.fraction_within("atc", 9.0, 11.0) == pytest.approx(2 / 3)
        assert series.fraction_within("atc", 9.0, 11.0, skip_windows=1) == pytest.approx(0.5)
        starts, values = series.as_arrays("atc")
        assert list(starts) == [0, 100, 200]


class TestReportFormatting:
    def test_format_table_aligns_and_formats_floats(self):
        text = format_table(["name", "value"], [("a", 1.234), ("bb", 10.0)])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert "1.23" in text and "10.00" in text

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_format_series_downsamples(self):
        text = format_series("s", list(range(0, 1000, 10)), [1.0] * 100, max_points=5)
        assert "mean=1.0" in text
        assert text.count(":") <= 12  # name + a handful of samples

    def test_format_series_empty(self):
        assert "empty" in format_series("s", [], [])

    def test_format_key_values(self):
        text = format_key_values("Title", [("alpha", 1.0), ("beta", "x")])
        assert text.startswith("Title")
        assert "alpha" in text and "beta" in text
