"""Tests for TDMA schedule bookkeeping, frames, and the cross-layer bus."""

import pytest

from repro.mac.crosslayer import CrossLayerBus, NeighborFound, NeighborLost
from repro.mac.frames import MAC_CONTROL_KIND, ControlSection, MACFrame
from repro.mac.schedule import SlotSchedule
from repro.network.addresses import BROADCAST


class TestSlotSchedule:
    def test_claim_and_release(self):
        sched = SlotSchedule(owner=1, slots_per_frame=8)
        sched.claim(3)
        assert sched.own_slot == 3
        sched.release()
        assert sched.own_slot is None

    def test_claim_out_of_range_rejected(self):
        sched = SlotSchedule(owner=1, slots_per_frame=8)
        with pytest.raises(ValueError):
            sched.claim(8)

    def test_neighbor_slot_tracking(self):
        sched = SlotSchedule(owner=0, slots_per_frame=8)
        sched.record_neighbor_slot(5, 2)
        assert sched.slot_owner(2) == 5
        # Neighbour moves to another slot: stale claim is dropped.
        sched.record_neighbor_slot(5, 6)
        assert sched.slot_owner(2) is None
        assert sched.slot_owner(6) == 5

    def test_free_slots_excludes_two_hop_occupancy(self):
        sched = SlotSchedule(owner=0, slots_per_frame=4)
        sched.claim(0)
        sched.record_neighbor_slot(1, 1)
        sched.record_reported_occupancy({2})
        assert sched.free_slots() == [3]
        assert sched.occupied_first_hop() == {0, 1}
        assert sched.occupied_anywhere() == {0, 1, 2}

    def test_conflict_detection(self):
        sched = SlotSchedule(owner=7, slots_per_frame=4)
        sched.claim(2)
        assert sched.conflicts_with_neighbor() is None
        sched.record_neighbor_slot(3, 2)
        assert sched.conflicts_with_neighbor() == 3

    def test_forget_neighbor_frees_slots(self):
        sched = SlotSchedule(owner=0, slots_per_frame=4)
        sched.record_neighbor_slot(9, 1)
        sched.record_reported_occupancy({2, 3})
        sched.forget_neighbor(9)
        assert sched.slot_owner(1) is None
        assert sched.free_slots() == [0, 1, 2, 3]

    def test_invalid_frame_length(self):
        with pytest.raises(ValueError):
            SlotSchedule(owner=0, slots_per_frame=0)


class TestFrames:
    def test_broadcast_and_payload_flags(self):
        control = ControlSection(slot=1, occupied_slots=frozenset({1}), sequence=3)
        beacon = MACFrame(source=1, destination=BROADCAST, control=control)
        assert beacon.is_broadcast
        assert not beacon.has_payload
        assert beacon.payload_kind == MAC_CONTROL_KIND

        data = MACFrame(
            source=1, destination=2, control=control, payload={"q": 1}, payload_kind="query"
        )
        assert not data.is_broadcast
        assert data.has_payload


class TestCrossLayerBus:
    def test_publish_reaches_subscribers_in_order(self):
        bus = CrossLayerBus()
        seen = []
        bus.subscribe(lambda e: seen.append(("a", e.neighbor_id)))
        bus.subscribe(lambda e: seen.append(("b", e.neighbor_id)))
        bus.publish(NeighborLost(node_id=1, neighbor_id=9, time=2.0))
        assert seen == [("a", 9), ("b", 9)]

    def test_duplicate_subscription_ignored(self):
        bus = CrossLayerBus()
        seen = []
        cb = lambda e: seen.append(e)  # noqa: E731
        bus.subscribe(cb)
        bus.subscribe(cb)
        bus.publish(NeighborFound(node_id=0, neighbor_id=2, time=1.0, slot=4))
        assert len(seen) == 1

    def test_unsubscribe(self):
        bus = CrossLayerBus()
        seen = []
        cb = lambda e: seen.append(e)  # noqa: E731
        bus.subscribe(cb)
        assert bus.unsubscribe(cb) is True
        assert bus.unsubscribe(cb) is False
        bus.publish(NeighborLost(node_id=0, neighbor_id=1, time=0.0))
        assert seen == []

    def test_history_and_filtering(self):
        bus = CrossLayerBus()
        bus.publish(NeighborLost(node_id=0, neighbor_id=1, time=0.0))
        bus.publish(NeighborFound(node_id=0, neighbor_id=2, time=1.0, slot=3))
        assert len(bus.history) == 2
        assert len(bus.events_of(NeighborLost)) == 1
        assert bus.events_of(NeighborFound)[0].neighbor_id == 2
