"""Tests for the LMAC TDMA protocol: election, delivery, death detection."""

import numpy as np
import pytest

from repro.mac.crosslayer import NeighborFound, NeighborLost
from repro.mac.frames import MAC_CONTROL_KIND
from repro.mac.lmac import LMACProtocol
from repro.network.addresses import BROADCAST
from repro.network.channel import WirelessChannel
from repro.simulation.engine import Simulator

from ..helpers import line_topology, star_topology


def build_macs(topology, beacon_interval=5.0, death_threshold=3):
    sim = Simulator()
    channel = WirelessChannel(sim, topology)
    macs = {
        nid: LMACProtocol(
            sim,
            channel,
            nid,
            rng=np.random.default_rng(100 + nid),
            beacon_interval=beacon_interval,
            death_threshold=death_threshold,
        )
        for nid in topology.node_ids
    }
    for mac in macs.values():
        mac.start()
    return sim, channel, macs


class TestSlotElection:
    def test_every_node_owns_a_slot_after_start(self, star4):
        sim, _, macs = build_macs(star4)
        sim.run_until(1.0)
        for mac in macs.values():
            assert mac.own_slot is not None

    def test_neighbors_hold_distinct_slots_after_settling(self):
        topo = star_topology(6)
        sim, _, macs = build_macs(topo)
        sim.run_until(60.0)
        centre_slot = macs[0].own_slot
        leaf_slots = [macs[nid].own_slot for nid in range(1, 7)]
        assert centre_slot not in leaf_slots

    def test_conflict_resolution_prefers_lower_id(self):
        topo = star_topology(2)
        sim, _, macs = build_macs(topo)
        # Force a collision: both leaves claim slot 3.
        macs[1].schedule.claim(3)
        macs[2].schedule.claim(3)
        sim.run_until(40.0)
        # Leaves are two hops apart (through the centre); after the centre
        # reports occupancy both cannot keep colliding with the centre's view,
        # and direct conflicts with the centre are resolved lower-id-wins.
        assert macs[0].own_slot != macs[1].own_slot
        assert macs[0].own_slot != macs[2].own_slot


class TestNeighborDiscovery:
    def test_beacons_populate_neighbor_tables(self, star4):
        sim, _, macs = build_macs(star4)
        sim.run_until(12.0)
        assert macs[0].neighbors.neighbor_ids == [1, 2, 3, 4]
        for leaf in (1, 2, 3, 4):
            assert macs[leaf].neighbors.neighbor_ids == [0]

    def test_neighbor_found_published_on_first_contact(self, star4):
        sim, _, macs = build_macs(star4)
        events = []
        macs[0].crosslayer.subscribe(lambda e: events.append(e))
        sim.run_until(12.0)
        found = [e for e in events if isinstance(e, NeighborFound)]
        assert {e.neighbor_id for e in found} == {1, 2, 3, 4}

    def test_control_beacons_use_mac_control_kind(self, star4):
        sim, channel, _ = build_macs(star4)
        sim.run_until(12.0)
        assert channel.ledger.total_count(kind=MAC_CONTROL_KIND) > 0


class TestPayloadTransport:
    def test_unicast_payload_reaches_upper_layer(self, line5):
        sim, _, macs = build_macs(line5)
        received = []
        macs[1].set_upper_handler(lambda sender, payload: received.append((sender, payload)))
        macs[0].send(1, {"type": "query"}, kind="query")
        sim.run_until(1.0)
        assert received == [(0, {"type": "query"})]

    def test_broadcast_payload_reaches_all_neighbors(self, star4):
        sim, _, macs = build_macs(star4)
        received = {nid: [] for nid in (1, 2, 3, 4)}
        for nid in received:
            macs[nid].set_upper_handler(
                lambda sender, payload, nid=nid: received[nid].append(payload)
            )
        macs[0].broadcast("estimate", kind="estimate")
        sim.run_until(1.0)
        assert all(msgs == ["estimate"] for msgs in received.values())

    def test_payload_not_delivered_to_non_destination(self, star4):
        sim, _, macs = build_macs(star4)
        received = []
        macs[2].set_upper_handler(lambda s, p: received.append(p))
        macs[0].send(1, "private", kind="query")
        sim.run_until(1.0)
        assert received == []

    def test_dead_node_does_not_send(self, star4):
        sim, channel, macs = build_macs(star4)
        channel.set_alive(1, False)
        before = channel.ledger.total_count(direction="tx", kind="query")
        macs[1].send(0, "x", kind="query")
        sim.run_until(1.0)
        assert channel.ledger.total_count(direction="tx", kind="query") == before


class TestDeathDetection:
    def test_silent_neighbor_declared_dead(self, star4):
        sim, channel, macs = build_macs(star4, beacon_interval=5.0, death_threshold=3)
        sim.run_until(12.0)
        assert 1 in macs[0].neighbors

        lost = []
        macs[0].crosslayer.subscribe(
            lambda e: lost.append(e) if isinstance(e, NeighborLost) else None
        )
        channel.set_alive(1, False)
        macs[1].shutdown()
        # Three missed beacon intervals plus margin.
        sim.run_until(12.0 + 5.0 * 5)
        assert any(e.neighbor_id == 1 for e in lost)
        assert 1 not in macs[0].neighbors

    def test_alive_neighbors_are_not_declared_dead(self, star4):
        sim, _, macs = build_macs(star4)
        lost = []
        macs[0].crosslayer.subscribe(
            lambda e: lost.append(e) if isinstance(e, NeighborLost) else None
        )
        sim.run_until(60.0)
        assert lost == []

    def test_wake_restarts_beaconing(self, star4):
        sim, channel, macs = build_macs(star4)
        sim.run_until(12.0)
        channel.set_alive(1, False)
        macs[1].shutdown()
        sim.run_until(40.0)
        assert 1 not in macs[0].neighbors
        channel.set_alive(1, True)
        macs[1].wake()
        sim.run_until(60.0)
        assert 1 in macs[0].neighbors


class TestValidation:
    def test_invalid_parameters_rejected(self, star4):
        sim = Simulator()
        channel = WirelessChannel(sim, star4)
        with pytest.raises(ValueError):
            LMACProtocol(sim, channel, 0, beacon_interval=0.0)
        with pytest.raises(ValueError):
            LMACProtocol(sim, channel, 1, death_threshold=0)
