"""Tests for the reprolint contract linter (``tools/reprolint``).

Each rule family gets at least one known-bad and one known-good fixture,
pragma suppression is exercised, and the CLI's JSON schema and exit codes
are pinned.  The corpus under ``tools/reprolint/corpus`` is additionally
checked by the linter's own ``--self-test``.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import json
import textwrap
from pathlib import Path
from typing import List, Optional, Set

import pytest

from tools._common import REPO_ROOT
from tools.reprolint import cli, core
from tools.reprolint import (
    rules_determinism,
    rules_hashcov,
    rules_layering,
    rules_obs,
    rules_streams,
)
from tools.reprolint.rules_layering import ImportEdge

SPEC_PATH = REPO_ROOT / "src" / "repro" / "scenarios" / "spec.py"
CORPUS = sorted((Path(cli.CORPUS_DIR)).glob("*.py"))


def make_source(
    tmp_path: Path,
    source: str,
    *,
    name: str = "snippet.py",
    module: Optional[str] = None,
    determinism_critical: bool = False,
) -> core.SourceFile:
    """Write a snippet and load it as a policy-flagged SourceFile."""
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    src, parse_finding = core.load_source_file(path, tmp_path)
    assert parse_finding is None, parse_finding
    assert src is not None
    src.module = module
    src.determinism_critical = determinism_critical
    return src


def determinism_codes(src: core.SourceFile) -> List[str]:
    findings, _ = core.apply_pragmas(rules_determinism.check([src]), [src])
    return sorted(f.code for f in findings)


class TestDeterminismRules:
    def test_rl101_import_random(self, tmp_path):
        src = make_source(tmp_path, "import random\n")
        assert determinism_codes(src) == ["RL101"]

    def test_rl102_wall_clock_call(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert "RL102" in determinism_codes(src)

    def test_rl103_uuid_and_urandom(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            import os
            import uuid

            def token():
                return os.urandom(8)
            """,
        )
        assert determinism_codes(src) == ["RL103", "RL103"]

    def test_rl104_direct_numpy_rng(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            import numpy as np

            def fresh():
                return np.random.default_rng()
            """,
        )
        assert "RL104" in determinism_codes(src)

    def test_rng_module_is_exempt(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            import numpy as np

            def fresh(seq):
                return np.random.default_rng(seq)
            """,
        )
        src.rng_exempt = True
        assert determinism_codes(src) == []

    def test_rl110_set_iteration_in_critical_code(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            def kill_all(dead: set):
                for nid in dead:
                    print(nid)
            """,
            determinism_critical=True,
        )
        assert determinism_codes(src) == ["RL110"]

    def test_rl110_sorted_iteration_is_clean(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            def kill_all(dead: set):
                for nid in sorted(dead):
                    print(nid)
            """,
            determinism_critical=True,
        )
        assert determinism_codes(src) == []

    def test_rl110_only_applies_to_critical_modules(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            def kill_all(dead: set):
                for nid in dead:
                    print(nid)
            """,
            determinism_critical=False,
        )
        assert determinism_codes(src) == []

    def test_line_pragma_suppresses(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            import numpy as np

            def fresh():
                return np.random.default_rng()  # reprolint: disable=RL104
            """,
        )
        findings, suppressed = core.apply_pragmas(
            rules_determinism.check([src]), [src]
        )
        assert findings == []
        assert suppressed == 1

    def test_file_pragma_suppresses_family(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            # reprolint: disable-file=RL1
            import random
            import uuid
            """,
        )
        findings, suppressed = core.apply_pragmas(
            rules_determinism.check([src]), [src]
        )
        assert findings == []
        assert suppressed == 2

    def test_pragma_for_other_code_does_not_suppress(self, tmp_path):
        src = make_source(
            tmp_path,
            "import random  # reprolint: disable=RL104\n",
        )
        assert determinism_codes(src) == ["RL101"]


class TestHashCoverageRules:
    def _class_codes(self, source: str, exempt: Set[str] = frozenset()):
        tree = ast.parse(textwrap.dedent(source))
        codes: List[str] = []
        for node in rules_hashcov.iter_config_classes(tree):
            codes.extend(
                f.code
                for f in rules_hashcov.check_class_ast(
                    node, "snippet.py", set(exempt)
                )
            )
        return sorted(codes)

    def test_real_spec_module_is_clean(self):
        tree = ast.parse(SPEC_PATH.read_text(encoding="utf-8"))
        for node in rules_hashcov.iter_config_classes(tree):
            findings = rules_hashcov.check_class_ast(
                node, "src/repro/scenarios/spec.py", set()
            )
            assert findings == [], [f.render() for f in findings]

    def test_scratch_field_on_churnconfig_is_caught(self):
        # The acceptance demo: graft an unhashed scratch knob onto the
        # real ChurnConfig source and the linter must object.
        source = SPEC_PATH.read_text(encoding="utf-8")
        needle = "class ChurnConfig:"
        assert needle in source
        patched = source.replace(
            needle,
            needle + "\n    scratch_knob: ClassVar[float] = 0.5",
            1,
        )
        tree = ast.parse(patched)
        churn = next(
            node
            for node in rules_hashcov.iter_config_classes(tree)
            if node.name == "ChurnConfig"
        )
        findings = rules_hashcov.check_class_ast(churn, "spec.py", set())
        assert [f.code for f in findings] == ["RL201"]
        assert "scratch_knob" in findings[0].message

    def test_hash_exempt_silences_rl201(self):
        source = SPEC_PATH.read_text(encoding="utf-8")
        patched = source.replace(
            "class ChurnConfig:",
            "class ChurnConfig:\n    scratch_knob: ClassVar[float] = 0.5",
            1,
        )
        tree = ast.parse(patched)
        churn = next(
            node
            for node in rules_hashcov.iter_config_classes(tree)
            if node.name == "ChurnConfig"
        )
        findings = rules_hashcov.check_class_ast(
            churn, "spec.py", {"ChurnConfig.scratch_knob"}
        )
        assert findings == []

    def test_rl202_omit_entry_must_default_to_none(self):
        codes = self._class_codes(
            """
            import dataclasses

            @dataclasses.dataclass(frozen=True)
            class DemoConfig:
                HASH_OMIT_WHEN_UNSET = ("rate", "ghost")
                rate: float = 1.0
            """
        )
        # "rate" has a non-None default; "ghost" is not a field.
        assert codes == ["RL202", "RL202"]

    def test_rl203_smuggled_setattr(self):
        codes = self._class_codes(
            """
            import dataclasses

            @dataclasses.dataclass(frozen=True)
            class DemoConfig:
                HASH_OMIT_WHEN_UNSET = ()
                rate: float = 1.0

                def __post_init__(self):
                    object.__setattr__(self, "hidden", 2 * self.rate)
            """
        )
        assert codes == ["RL203"]

    def test_rl210_detects_canonical_gap(self):
        # check_hash_coverage is parameterized on the canonical function
        # precisely so this failure mode stays demonstrable: drop a field
        # from the payload and the field must be reported.
        from repro.scenarios.spec import ChurnConfig

        def canonical_missing_rate(obj):
            payload = {
                f.name: getattr(obj, f.name)
                for f in dataclasses.fields(obj)
            }
            payload.pop("death_rate", None)
            return payload

        missing = rules_hashcov.check_hash_coverage(
            ChurnConfig, ChurnConfig(), canonical_missing_rate, set()
        )
        assert missing == ["death_rate"]
        # ... unless the gap is explicitly exempted.
        missing = rules_hashcov.check_hash_coverage(
            ChurnConfig,
            ChurnConfig(),
            canonical_missing_rate,
            {"ChurnConfig.death_rate"},
        )
        assert missing == []

    def test_rl210_real_canonical_covers_every_field(self):
        from repro.experiments.batch import HASH_EXEMPT, _canonical
        from repro.scenarios.spec import ChurnConfig

        missing = rules_hashcov.check_hash_coverage(
            ChurnConfig, ChurnConfig(), _canonical, set(HASH_EXEMPT)
        )
        assert missing == []

    def test_repo_dynamic_check_is_clean(self):
        src, parse_finding = core.load_source_file(
            REPO_ROOT / "src" / "repro" / "experiments" / "batch.py",
            REPO_ROOT,
        )
        assert parse_finding is None and src is not None
        findings = rules_hashcov.check([src], dynamic=True)
        assert findings == [], [f.render() for f in findings]


class TestLayeringRules:
    MODULE_FILES = {
        "repro.metrics.cost": ("src/repro/metrics/cost.py", 1),
        "repro.experiments.runner": ("src/repro/experiments/runner.py", 1),
        "repro.simulation.engine": ("src/repro/simulation/engine.py", 1),
        "repro.core.node": ("src/repro/core/node.py", 1),
        "repro.scenarios.spec": ("src/repro/scenarios/spec.py", 1),
        "repro.scenarios.registry": ("src/repro/scenarios/registry.py", 1),
    }

    def _codes(self, edges):
        return sorted(
            f.code
            for f in rules_layering.check_graph(edges, self.MODULE_FILES)
        )

    def test_rl301_direct_forbidden_edge(self):
        edges = [
            ImportEdge(
                "repro.metrics.cost", "repro.experiments.runner", "eager", 3
            )
        ]
        assert "RL301" in self._codes(edges)

    def test_rl301_transitive_chain_reported(self):
        # spec -> registry -> experiments: no direct edge, but the eager
        # chain still drags experiments into scenario-spec imports.
        edges = [
            ImportEdge(
                "repro.scenarios.spec", "repro.scenarios.registry", "eager", 2
            ),
            ImportEdge(
                "repro.scenarios.registry",
                "repro.experiments.runner",
                "eager",
                4,
            ),
        ]
        findings = rules_layering.check_graph(edges, self.MODULE_FILES)
        transitive = [f for f in findings if f.code == "RL301"]
        assert transitive
        assert any("->" in f.message for f in transitive)

    def test_rl302_eager_cycle(self):
        edges = [
            ImportEdge(
                "repro.core.node", "repro.simulation.engine", "eager", 1
            ),
            ImportEdge(
                "repro.simulation.engine", "repro.core.node", "eager", 1
            ),
        ]
        assert "RL302" in self._codes(edges)

    def test_lazy_edges_break_cycles(self):
        edges = [
            ImportEdge(
                "repro.core.node", "repro.simulation.engine", "eager", 1
            ),
            ImportEdge(
                "repro.simulation.engine", "repro.core.node", "lazy", 1
            ),
        ]
        codes = self._codes(edges)
        assert "RL302" not in codes

    def test_rl303_upward_import(self):
        edges = [
            ImportEdge(
                "repro.simulation.engine", "repro.core.node", "eager", 7
            )
        ]
        assert "RL303" in self._codes(edges)

    def test_downward_import_is_clean(self):
        edges = [
            ImportEdge(
                "repro.core.node", "repro.simulation.engine", "eager", 7
            ),
            ImportEdge(
                "repro.experiments.runner", "repro.metrics.cost", "eager", 9
            ),
        ]
        assert self._codes(edges) == []

    def test_real_tree_has_no_layering_findings(self):
        findings, _, _ = cli.lint_paths(
            [REPO_ROOT / "src" / "repro"], REPO_ROOT, dynamic=False
        )
        rl3 = [f for f in findings if f.code.startswith("RL3")]
        assert rl3 == [], [f.render() for f in rl3]


class TestStreamRules:
    def _check(self, src):
        return rules_streams.check([src], REPO_ROOT, repo_mode=False)

    def test_rl401_computed_name(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            def build(streams, i):
                return streams.get(f"mac-{i}")
            """,
            module="repro.experiments.runner",
        )
        assert [f.code for f in self._check(src)] == ["RL401"]

    def test_rl402_unregistered_name(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            def build(streams):
                return streams.get("totally-new-stream")
            """,
            module="repro.experiments.runner",
        )
        assert [f.code for f in self._check(src)] == ["RL402"]

    def test_rl403_foreign_module(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            def sneaky(streams):
                return streams.get("topology")
            """,
            module="repro.mac.lmac",
        )
        assert [f.code for f in self._check(src)] == ["RL403"]

    def test_owner_module_is_clean(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            def build(streams):
                return streams.get("topology")
            """,
            module="repro.experiments.runner",
        )
        assert self._check(src) == []

    def test_rl404_dead_registry_entry(self, tmp_path):
        registry_dir = tmp_path / "src" / "repro" / "simulation"
        registry_dir.mkdir(parents=True)
        registry_path = registry_dir / "rng.py"
        registry_path.write_text(
            textwrap.dedent(
                """
                STREAM_REGISTRY = {
                    "topology": "repro.experiments.runner",
                    "ghost": "repro.experiments.runner",
                }
                """
            ),
            encoding="utf-8",
        )
        registry_src, err = core.load_source_file(registry_path, tmp_path)
        assert err is None and registry_src is not None
        user = make_source(
            tmp_path,
            """
            def build(streams):
                return streams.get("topology")
            """,
            module="repro.experiments.runner",
        )
        findings = rules_streams.check(
            [registry_src, user], tmp_path, repo_mode=True
        )
        assert [f.code for f in findings] == ["RL404"]
        assert "ghost" in findings[0].message

    def test_rl405_missing_registry(self, tmp_path):
        user = make_source(
            tmp_path,
            """
            def build(streams):
                return streams.get("topology")
            """,
            module="repro.experiments.runner",
        )
        findings = rules_streams.check([user], tmp_path, repo_mode=True)
        assert [f.code for f in findings] == ["RL405"]

    def test_registry_matches_call_sites_in_repo(self):
        # Every registered stream is used, every use is registered: the
        # repo-wide RL4xx scan must be silent.
        findings, _, _ = cli.lint_paths(
            [REPO_ROOT / "src" / "repro"], REPO_ROOT, dynamic=False
        )
        rl4 = [f for f in findings if f.code.startswith("RL4")]
        assert rl4 == [], [f.render() for f in rl4]


class TestObsRules:
    def _check(self, src):
        return rules_obs.check([src], REPO_ROOT, repo_mode=False)

    def test_rl501_computed_metric_name(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            def bump(metrics, kind):
                metrics.inc("engine." + kind)
            """,
        )
        assert [f.code for f in self._check(src)] == ["RL501"]

    def test_rl502_unregistered_metric(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            def bump(metrics):
                metrics.inc("engine.bogus_counter")
            """,
        )
        assert [f.code for f in self._check(src)] == ["RL502"]

    def test_rl503_unregistered_trace_category(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            def note(tracer, now):
                tracer.record(now, "bogus.category", 1)
            """,
        )
        assert [f.code for f in self._check(src)] == ["RL503"]

    def test_rl504_clock_read_in_payload(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            import time

            def bump(metrics):
                metrics.observe("channel.fanout", time.perf_counter())
            """,
        )
        assert [f.code for f in self._check(src)] == ["RL504"]

    def test_rl505_unjustified_hash_exclude(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            class ProbeConfig:
                HASH_EXCLUDE = ("secret_knob",)
            """,
        )
        findings = self._check(src)
        assert [f.code for f in findings] == ["RL505"]
        assert "secret_knob" in findings[0].message

    def test_registered_literals_are_clean(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            def ok(metrics, tracer, now, fanout):
                metrics.inc("engine.events_executed")
                metrics.observe("channel.fanout", fanout)
                tracer.record(now, "channel.tx", 1)
            """,
        )
        assert self._check(src) == []

    def test_repo_wide_obs_scan_is_silent(self):
        findings, _, _ = cli.lint_paths(
            [REPO_ROOT / "src" / "repro"], REPO_ROOT, dynamic=False
        )
        rl5 = [f for f in findings if f.code.startswith("RL5")]
        assert rl5 == [], [f.render() for f in rl5]


@pytest.mark.parametrize("snippet", CORPUS, ids=lambda p: p.name)
def test_corpus_snippet_matches_expectation(snippet, capsys):
    expected = cli._expected_codes(snippet.read_text(encoding="utf-8"))
    assert expected is not None, f"{snippet.name} lacks an expect= header"
    src, parse_finding = core.load_source_file(snippet, REPO_ROOT)
    if parse_finding is not None:
        found = {parse_finding.code}
    else:
        assert src is not None
        src.determinism_critical = True
        findings = []
        findings.extend(rules_determinism.check([src]))
        findings.extend(rules_hashcov.check([src], dynamic=False))
        findings.extend(rules_streams.check([src], REPO_ROOT, repo_mode=False))
        findings.extend(rules_obs.check([src], REPO_ROOT, repo_mode=False))
        findings, _ = core.apply_pragmas(findings, [src])
        found = {f.code for f in findings}
    assert found == set(expected)


def test_self_test_passes():
    buffer = io.StringIO()
    assert cli.run_self_test(stdout=buffer) == 0
    assert "self-test passed" in buffer.getvalue()


class TestCLI:
    BAD = Path(cli.CORPUS_DIR) / "bad_rl101_ambient_random.py"

    def test_repo_at_head_is_clean(self, capsys):
        assert cli.main([]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_bad_file_exits_nonzero(self, capsys):
        assert cli.main([str(self.BAD)]) == 1
        out = capsys.readouterr().out
        assert "RL101" in out

    def test_every_bad_corpus_file_exits_nonzero(self, capsys):
        for snippet in CORPUS:
            if not snippet.name.startswith("bad_"):
                continue
            assert cli.main([str(snippet)]) == 1, snippet.name
        capsys.readouterr()

    def test_json_format_schema(self, capsys):
        assert cli.main([str(self.BAD), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["count"] == len(payload["findings"]) >= 1
        assert set(payload) == {
            "version", "count", "suppressed", "files", "findings",
        }
        for finding in payload["findings"]:
            assert set(finding) == {"code", "path", "line", "message"}
            assert finding["code"].startswith("RL")
            assert finding["line"] >= 1

    def test_select_filters_to_family(self, capsys):
        assert cli.main([str(self.BAD), "--select", "RL4"]) == 0
        capsys.readouterr()

    def test_ignore_drops_findings(self, capsys):
        assert cli.main([str(self.BAD), "--ignore", "RL101"]) == 0
        capsys.readouterr()

    def test_missing_path_is_usage_error(self, capsys):
        assert cli.main(["definitely/not/a/path.py"]) == 2
        capsys.readouterr()

    def test_list_rules_covers_catalogue(self, capsys):
        assert cli.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in core.RULES:
            assert code in out

    def test_self_test_flag(self, capsys):
        assert cli.main(["--self-test"]) == 0
        capsys.readouterr()

    def test_syntax_error_reports_rl001(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n", encoding="utf-8")
        assert cli.main([str(bad)]) == 1
        assert "RL001" in capsys.readouterr().out


class TestBucketTableRules:
    """RL110 extension: dict-of-sets bucket tables drained in raw order."""

    def test_annotated_bucket_dict_iteration_flagged(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            from typing import Dict, Set, Tuple

            def drain(buckets: Dict[Tuple[int, int], Set[int]]):
                for cell in buckets:
                    print(cell)
            """,
            determinism_critical=True,
        )
        assert determinism_codes(src) == ["RL110"]

    def test_defaultdict_of_sets_assignment_flagged(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            from collections import defaultdict

            def group(pairs):
                table = defaultdict(set)
                for key, nid in pairs:
                    table[key].add(nid)
                return [key for key in table]
            """,
            determinism_critical=True,
        )
        assert determinism_codes(src) == ["RL110"]

    def test_bucket_subscript_iteration_flagged(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            from typing import Dict, Set

            def members(buckets: Dict[int, Set[int]], cell: int):
                return [nid for nid in buckets[cell]]
            """,
            determinism_critical=True,
        )
        assert determinism_codes(src) == ["RL110"]

    def test_bucket_get_iteration_flagged(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            from typing import Dict, Set

            def members(buckets: Dict[int, Set[int]], cell: int):
                for nid in buckets.get(cell, frozenset()):
                    yield nid
            """,
            determinism_critical=True,
        )
        assert determinism_codes(src) == ["RL110"]

    def test_items_and_keys_drains_flagged(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            from typing import Dict, Set

            def pairs(buckets: Dict[int, Set[int]]):
                for cell, members in buckets.items():
                    print(cell, members)
                for cell in buckets.keys():
                    print(cell)
            """,
            determinism_critical=True,
        )
        assert determinism_codes(src) == ["RL110", "RL110"]

    def test_sorted_bucket_iteration_is_clean(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            from typing import Dict, Set

            def drain(buckets: Dict[int, Set[int]], cell: int):
                for key in sorted(buckets):
                    yield key
                for nid in sorted(buckets[cell]):
                    yield nid
                for nid in sorted(buckets.get(cell, frozenset())):
                    yield nid
            """,
            determinism_critical=True,
        )
        assert determinism_codes(src) == []

    def test_plain_dict_is_not_a_bucket_table(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            from typing import Dict

            def drain(counts: Dict[str, int], key: str):
                for name in counts:
                    yield name
                print(counts[key])
            """,
            determinism_critical=True,
        )
        assert determinism_codes(src) == []

    def test_self_attr_bucket_iteration_flagged(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            from typing import Dict, Set

            class Grid:
                def __init__(self):
                    self._buckets: Dict[int, Set[int]] = {}

                def drain(self):
                    for cell in self._buckets:
                        yield cell
            """,
            determinism_critical=True,
        )
        assert determinism_codes(src) == ["RL110"]

    def test_collect_global_bucket_attrs_cross_file(self, tmp_path):
        declaring = make_source(
            tmp_path,
            """
            from collections import defaultdict

            class Index:
                def __init__(self):
                    self._cells = defaultdict(set)
            """,
            name="declares.py",
        )
        using = make_source(
            tmp_path,
            """
            class View:
                def walk(self, index):
                    for cell in index._cells:
                        yield cell
            """,
            name="uses.py",
            determinism_critical=True,
        )
        attrs = rules_determinism.collect_global_bucket_attrs([declaring])
        assert attrs == {"_cells"}
        findings, _ = core.apply_pragmas(
            rules_determinism.check([declaring, using]), [declaring, using]
        )
        assert [f.code for f in findings] == ["RL110"]
        assert findings[0].path.endswith("uses.py")
