"""Tests for the low-rank (random Fourier feature) phenomena path.

The low-rank field is the scalability escape hatch for 1 000+ node
datasets.  Two contracts matter: the exact path is byte-unchanged by the
new ``spatial_method`` parameter (the default draws the same numbers it
always did), and the low-rank field is a faithful statistical stand-in
(same marginal scale, correlation decaying with distance, deterministic
under a fixed seed).
"""

import numpy as np
import pytest

from repro.sensors.dataset import SensorDataset
from repro.sensors.phenomena import PhenomenonField, generate_fields
from repro.sensors.types import SensorTypeSpec


@pytest.fixture
def positions(rng):
    return rng.uniform(0, 100, size=(40, 2))


SPEC = SensorTypeSpec("t", base_value=20.0, amplitude=2.0, spatial_scale=25.0)


class TestLowRankField:
    def test_shape_and_finiteness(self, positions):
        field = PhenomenonField(
            SPEC,
            positions,
            rng=np.random.default_rng(1),
            spatial_method="lowrank",
        )
        data = field.generate(120)
        assert data.shape == (120, len(positions))
        assert np.isfinite(data).all()

    def test_invalid_method_rejected(self, positions):
        with pytest.raises(ValueError, match="spatial_method"):
            PhenomenonField(
                SPEC,
                positions,
                rng=np.random.default_rng(1),
                spatial_method="sparse",
            )

    def test_deterministic_for_same_seed(self, positions):
        a = PhenomenonField(
            SPEC,
            positions,
            rng=np.random.default_rng(9),
            spatial_method="lowrank",
        ).generate(50)
        b = PhenomenonField(
            SPEC,
            positions,
            rng=np.random.default_rng(9),
            spatial_method="lowrank",
        ).generate(50)
        assert np.array_equal(a, b)

    def test_marginal_scale_matches_exact_path(self, positions):
        exact = PhenomenonField(
            SPEC, positions, rng=np.random.default_rng(3)
        ).generate(600)
        lowrank = PhenomenonField(
            SPEC,
            positions,
            rng=np.random.default_rng(3),
            spatial_method="lowrank",
        ).generate(600)
        assert np.mean(lowrank) == pytest.approx(np.mean(exact), abs=1.0)
        assert np.std(lowrank) == pytest.approx(np.std(exact), rel=0.35)

    def test_correlation_decays_with_distance(self):
        # Three collinear nodes: near pair 5 m apart, far pair 90 m apart.
        positions = np.array([[0.0, 0.0], [5.0, 0.0], [90.0, 0.0]])
        data = PhenomenonField(
            SPEC,
            positions,
            rng=np.random.default_rng(5),
            spatial_method="lowrank",
            num_features=512,
        ).generate(4000)
        corr = np.corrcoef(data.T)
        assert corr[0, 1] > 0.7
        assert corr[0, 1] > corr[0, 2] + 0.3

    def test_scales_to_thousands_of_nodes(self, rng):
        positions = rng.uniform(0, 1000, size=(3000, 2))
        data = PhenomenonField(
            SPEC,
            positions,
            rng=np.random.default_rng(7),
            spatial_method="lowrank",
        ).generate(10)
        assert data.shape == (10, 3000)
        assert np.isfinite(data).all()


class TestExactPathUnchanged:
    def test_default_equals_explicit_exact(self, positions):
        default = PhenomenonField(
            SPEC, positions, rng=np.random.default_rng(11)
        ).generate(80)
        explicit = PhenomenonField(
            SPEC,
            positions,
            rng=np.random.default_rng(11),
            spatial_method="exact",
        ).generate(80)
        assert np.array_equal(default, explicit)

    def test_dataset_generate_default_is_exact(self, positions):
        ids = list(range(len(positions)))
        default = SensorDataset.generate(
            ids, positions, 60, rng=np.random.default_rng(13)
        )
        explicit = SensorDataset.generate(
            ids,
            positions,
            60,
            rng=np.random.default_rng(13),
            spatial_method="exact",
        )
        for stype in default.sensor_types:
            assert np.array_equal(
                default.readings[stype], explicit.readings[stype]
            )

    def test_generate_fields_lowrank_plumbs_through(self, positions):
        fields = generate_fields(
            {"t": SPEC},
            positions,
            30,
            rng=np.random.default_rng(17),
            spatial_method="lowrank",
        )
        assert fields["t"].shape == (30, len(positions))
