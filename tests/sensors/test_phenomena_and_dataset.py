"""Tests for the synthetic phenomena generator and the dataset container."""

import numpy as np
import pytest

from repro.sensors.dataset import SensorDataset
from repro.sensors.phenomena import (
    PhenomenonField,
    ar1_coefficient,
    empirical_spatial_correlation,
    spatial_covariance,
)
from repro.sensors.sensor import SamplingCounter, Sensor
from repro.sensors.types import SensorTypeSpec, default_type_specs


@pytest.fixture
def positions(rng):
    return rng.uniform(0, 100, size=(30, 2))


class TestSpatialCovariance:
    def test_diagonal_is_one_plus_jitter(self, positions):
        cov = spatial_covariance(positions, spatial_scale=20.0)
        assert np.allclose(np.diag(cov), 1.0, atol=1e-6)

    def test_symmetric_positive_definite(self, positions):
        cov = spatial_covariance(positions, spatial_scale=20.0)
        assert np.allclose(cov, cov.T)
        np.linalg.cholesky(cov)  # raises if not PD

    def test_correlation_decays_with_distance(self):
        pos = np.array([[0.0, 0.0], [5.0, 0.0], [60.0, 0.0]])
        cov = spatial_covariance(pos, spatial_scale=20.0)
        assert cov[0, 1] > cov[0, 2]

    def test_invalid_inputs(self, positions):
        with pytest.raises(ValueError):
            spatial_covariance(positions, spatial_scale=0.0)
        with pytest.raises(ValueError):
            spatial_covariance(np.zeros((3, 3)), spatial_scale=1.0)


class TestAR1:
    def test_coefficient_in_unit_interval(self):
        assert 0.0 < ar1_coefficient(10.0) < 1.0

    def test_longer_scale_means_higher_coefficient(self):
        assert ar1_coefficient(500.0) > ar1_coefficient(5.0)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            ar1_coefficient(0.0)


class TestPhenomenonField:
    def test_output_shape_and_finiteness(self, positions, rng):
        spec = SensorTypeSpec("temperature", amplitude=2.0, spatial_scale=25.0)
        field = PhenomenonField(spec, positions, rng)
        data = field.generate(300)
        assert data.shape == (300, 30)
        assert np.isfinite(data).all()

    def test_mean_close_to_base_value(self, positions, rng):
        spec = SensorTypeSpec("t", base_value=20.0, amplitude=1.0, spatial_scale=25.0)
        data = PhenomenonField(spec, positions, rng).generate(2000)
        assert abs(data.mean() - 20.0) < 1.5

    def test_nearby_nodes_more_correlated_than_distant(self, rng):
        # The property the paper relies on: spatial relatedness.
        pos = rng.uniform(0, 100, size=(40, 2))
        spec = SensorTypeSpec("t", amplitude=2.0, spatial_scale=20.0, temporal_scale=50.0)
        data = PhenomenonField(spec, pos, rng).generate(2000)
        near, far = empirical_spatial_correlation(data, pos, near_threshold=25.0)
        assert near > far

    def test_temporal_autocorrelation_present(self, positions, rng):
        spec = SensorTypeSpec("t", amplitude=2.0, spatial_scale=25.0, temporal_scale=200.0)
        data = PhenomenonField(spec, positions, rng).generate(2000)
        series = data[:, 0] - data[:, 0].mean()
        lag1 = np.corrcoef(series[:-1], series[1:])[0, 1]
        assert lag1 > 0.9  # slow field: adjacent epochs highly correlated

    def test_reproducible_for_same_rng_seed(self, positions):
        spec = SensorTypeSpec("t", amplitude=1.0, spatial_scale=25.0)
        a = PhenomenonField(spec, positions, np.random.default_rng(3)).generate(50)
        b = PhenomenonField(spec, positions, np.random.default_rng(3)).generate(50)
        assert np.array_equal(a, b)

    def test_diurnal_cycle_visible(self, positions, rng):
        spec = SensorTypeSpec(
            "t", amplitude=0.01, diurnal_amplitude=5.0, spatial_scale=25.0
        )
        field = PhenomenonField(spec, positions, rng, epochs_per_day=100)
        data = field.generate(200)
        node0 = data[:, 0]
        assert node0.max() - node0.min() > 7.0  # ~2 x diurnal amplitude

    def test_invalid_epochs(self, positions, rng):
        spec = SensorTypeSpec("t")
        with pytest.raises(ValueError):
            PhenomenonField(spec, positions, rng).generate(0)


class TestSensorDataset:
    def test_generate_covers_all_types_and_epochs(self, small_topology, rng):
        ds = SensorDataset.generate(
            node_ids=small_topology.node_ids,
            positions=small_topology.position_array(),
            num_epochs=100,
            rng=rng,
        )
        assert ds.num_epochs == 100
        assert ds.num_nodes == small_topology.num_nodes
        assert set(ds.sensor_types) == {"temperature", "humidity", "light", "pressure"}

    def test_reading_and_slices_consistent(self, small_dataset):
        ds = small_dataset
        nid = ds.node_ids[3]
        assert ds.reading("temperature", nid, 7) == pytest.approx(
            ds.epoch_slice("temperature", 7)[ds.column_of(nid)]
        )
        assert ds.node_series("temperature", nid)[7] == pytest.approx(
            ds.reading("temperature", nid, 7)
        )

    def test_matching_nodes_agrees_with_direct_comparison(self, small_dataset):
        ds = small_dataset
        values = ds.epoch_slice("temperature", 10)
        lo, hi = float(np.percentile(values, 25)), float(np.percentile(values, 75))
        expected = {ds.node_ids[i] for i, v in enumerate(values) if lo <= v <= hi}
        assert set(ds.matching_nodes("temperature", 10, lo, hi)) == expected

    def test_value_range_and_rate_of_change(self, small_dataset):
        lo, hi = small_dataset.value_range("temperature")
        assert lo < hi
        roc = small_dataset.rate_of_change("temperature")
        assert roc.shape == (small_dataset.num_nodes,)
        assert (roc >= 0).all()

    def test_restrict_types(self, small_dataset):
        only_t = small_dataset.restrict_types(["temperature"])
        assert only_t.sensor_types == ["temperature"]
        with pytest.raises(KeyError):
            small_dataset.restrict_types(["nonexistent"])

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            SensorDataset(node_ids=[0, 0], readings={"t": np.zeros((5, 2))})
        with pytest.raises(ValueError):
            SensorDataset(node_ids=[0, 1], readings={"t": np.zeros((5, 3))})
        with pytest.raises(ValueError):
            SensorDataset(node_ids=[0], readings={})
        ds = SensorDataset(node_ids=[0, 1], readings={"t": np.zeros((5, 2))})
        with pytest.raises(IndexError):
            ds.reading("t", 0, 5)
        with pytest.raises(KeyError):
            ds.column_of(9)
        with pytest.raises(ValueError):
            ds.matching_nodes("t", 0, low=2.0, high=1.0)


class TestSensor:
    def test_sample_returns_dataset_value(self, small_dataset):
        nid = small_dataset.node_ids[0]
        sensor = Sensor(nid, "temperature", small_dataset)
        assert sensor.sample(5) == small_dataset.reading("temperature", nid, 5)

    def test_calibration_offset_applied(self, small_dataset):
        nid = small_dataset.node_ids[0]
        sensor = Sensor(nid, "temperature", small_dataset, calibration_offset=1.5)
        truth = small_dataset.reading("temperature", nid, 5)
        assert sensor.sample(5) == pytest.approx(truth + 1.5)

    def test_sampling_counter_tracks_acquisitions(self, small_dataset):
        counter = SamplingCounter()
        nid = small_dataset.node_ids[0]
        sensor = Sensor(nid, "temperature", small_dataset, counter=counter)
        for epoch in range(4):
            sensor.sample(epoch)
        assert counter.count(node_id=nid) == 4
        assert counter.count(sensor_type="temperature") == 4
        counter.reset()
        assert counter.count() == 0

    def test_unknown_type_or_node_rejected(self, small_dataset):
        with pytest.raises(KeyError):
            Sensor(small_dataset.node_ids[0], "nonexistent", small_dataset)
        with pytest.raises(KeyError):
            Sensor(9999, "temperature", small_dataset)


class TestDefaultSpecs:
    def test_four_types_with_positive_scales(self):
        specs = default_type_specs()
        assert len(specs) == 4
        for spec in specs.values():
            assert spec.spatial_scale > 0
            assert spec.temporal_scale > 0
            assert spec.full_scale is not None and spec.full_scale > 0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SensorTypeSpec("")
        with pytest.raises(ValueError):
            SensorTypeSpec("x", spatial_scale=-1.0)
        with pytest.raises(ValueError):
            SensorTypeSpec("x", full_scale=0.0)
