"""Tier-1 guard for the documentation suite.

The docs promise exact commands; this keeps them from drifting by running
``tools/check_docs.py`` (module resolution + ``--help`` smoke for every
CLI the docs mention) and by pinning the files the README links to.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

EXPECTED_DOCS = (
    "docs/architecture.md",
    "docs/experiments.md",
    "docs/reproducing.md",
    "docs/vectorisation.md",
)


def test_docs_suite_exists_and_is_linked():
    readme = (REPO_ROOT / "README.md").read_text()
    for doc in EXPECTED_DOCS:
        assert (REPO_ROOT / doc).is_file(), f"{doc} missing"
        assert doc in readme, f"README does not link {doc}"


def test_documented_commands_smoke():
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_docs.py")],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, f"docs check failed:\n{proc.stdout}\n{proc.stderr}"
