"""Property-based tests for the analytical model and spanning-tree invariants."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analytical import (
    build_kary_tree,
    dirq_total_cost,
    f_max,
    flooding_cost,
    flooding_cost_by_enumeration,
    max_query_cost_by_enumeration,
    max_query_dissemination_cost,
    max_update_cost,
    max_update_cost_by_enumeration,
    tree_num_leaves,
    tree_num_links,
    tree_num_nodes,
)
from repro.network.spanning_tree import build_bfs_tree
from repro.network.topology import Topology

small_k = st.integers(min_value=2, max_value=5)
small_d = st.integers(min_value=1, max_value=4)


class TestAnalyticalProperties:
    @given(k=small_k, d=small_d)
    @settings(max_examples=60, deadline=None)
    def test_closed_forms_agree_with_enumeration(self, k, d):
        """Equations (3)-(6) equal brute-force costs on the explicit tree."""
        tree = build_kary_tree(k, d)
        assert flooding_cost(k, d) == flooding_cost_by_enumeration(tree)
        assert max_query_dissemination_cost(k, d) == max_query_cost_by_enumeration(tree)
        assert max_update_cost(k, d) == max_update_cost_by_enumeration(tree)

    @given(k=small_k, d=small_d)
    @settings(max_examples=60, deadline=None)
    def test_tree_counts_consistent(self, k, d):
        assert tree_num_nodes(k, d) == tree_num_links(k, d) + 1
        assert tree_num_leaves(k, d) <= tree_num_nodes(k, d)
        assert tree_num_nodes(k, d) == sum(k**i for i in range(d + 1))

    @given(k=small_k, d=small_d)
    @settings(max_examples=60, deadline=None)
    def test_fmax_is_the_breakeven_frequency(self, k, d):
        """C_TD(f_max) == C_F, below is cheaper, above is more expensive."""
        fm = f_max(k, d)
        assert fm > 0
        assert abs(dirq_total_cost(k, d, fm) - flooding_cost(k, d)) < 1e-9
        assert dirq_total_cost(k, d, fm * 0.9) < flooding_cost(k, d)
        assert dirq_total_cost(k, d, fm * 1.1) > flooding_cost(k, d)

    @given(k=small_k, d=small_d)
    @settings(max_examples=60, deadline=None)
    def test_directed_dissemination_never_exceeds_flooding(self, k, d):
        """Even in the worst case (every leaf relevant) C_QD_max < C_F."""
        assert max_query_dissemination_cost(k, d) < flooding_cost(k, d)


def random_connected_graph(draw):
    """Build a random connected graph via a random tree plus extra edges."""
    n = draw(st.integers(min_value=2, max_value=20))
    parent_choices = [draw(st.integers(min_value=0, max_value=i - 1)) for i in range(1, n)]
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for child, parent in enumerate(parent_choices, start=1):
        graph.add_edge(child, parent)
    extra = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=15
    ))
    for a, b in extra:
        if a != b:
            graph.add_edge(a, b)
    positions = {i: (float(i), 0.0) for i in range(n)}
    return Topology(graph=graph, positions=positions, comm_range=None)


connected_topologies = st.builds(lambda: None).flatmap(
    lambda _: st.composite(lambda draw: random_connected_graph(draw))()
)


class TestSpanningTreeProperties:
    @given(topo=connected_topologies)
    @settings(max_examples=100, deadline=None)
    def test_bfs_tree_spans_every_node_without_cycles(self, topo):
        tree = build_bfs_tree(topo, root=0)
        assert sorted(tree.node_ids) == topo.node_ids
        # Exactly n-1 parent links and every non-root path reaches the root.
        non_root = [n for n in tree.node_ids if n != 0]
        assert all(tree.parent_of(n) is not None for n in non_root)
        for node in tree.node_ids:
            path = tree.path_to_root(node)
            assert path[-1] == 0
            assert len(path) == len(set(path))  # no cycles

    @given(topo=connected_topologies)
    @settings(max_examples=100, deadline=None)
    def test_tree_depths_are_shortest_path_lengths(self, topo):
        tree = build_bfs_tree(topo, root=0)
        lengths = nx.single_source_shortest_path_length(topo.graph, 0)
        for node in tree.node_ids:
            assert tree.depth_of(node) == lengths[node]

    @given(topo=connected_topologies)
    @settings(max_examples=100, deadline=None)
    def test_forwarding_set_is_union_of_paths(self, topo):
        tree = build_bfs_tree(topo, root=0)
        sources = [n for n in tree.node_ids if n % 3 == 1]
        involved = tree.forwarding_set(sources)
        expected = set()
        for s in sources:
            expected.update(tree.path_to_root(s))
        assert involved == expected

    @given(topo=connected_topologies, victim=st.integers(min_value=1, max_value=19))
    @settings(max_examples=100, deadline=None)
    def test_repair_preserves_tree_invariants(self, topo, victim):
        if victim not in topo.node_ids:
            return
        tree = build_bfs_tree(topo, root=0)

        def alive_neighbors(node):
            return [n for n in topo.neighbors(node) if n != victim]

        repaired = tree.repair(victim, alive_neighbors)
        assert victim not in repaired
        assert repaired.root == 0
        # Every surviving attached node reaches the root over surviving links.
        for node in repaired.node_ids:
            parent = repaired.parent_of(node)
            if parent is not None:
                assert topo.has_link(node, parent)
            path = repaired.path_to_root(node)
            assert path[-1] == 0
            assert victim not in path
