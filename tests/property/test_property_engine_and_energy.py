"""Property-based tests for the simulation engine, ledger, and phenomena."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.ledger import NetworkLedger
from repro.sensors.phenomena import spatial_covariance
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams


class TestEngineProperties:
    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=200)
    def test_events_execute_in_non_decreasing_time_order(self, times):
        sim = Simulator()
        executed = []
        for t in times:
            sim.schedule_at(t, lambda t=t: executed.append(sim.now))
        sim.run()
        assert len(executed) == len(times)
        assert executed == sorted(executed)
        assert sim.now == max(times)

    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=50,
        ),
        boundary=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    )
    @settings(max_examples=200)
    def test_run_until_executes_exactly_the_due_events(self, times, boundary):
        sim = Simulator()
        fired = []
        for t in times:
            sim.schedule_at(t, lambda t=t: fired.append(t))
        sim.run_until(boundary)
        assert sorted(fired) == sorted(t for t in times if t <= boundary)
        assert sim.pending == sum(1 for t in times if t > boundary)

    @given(seed=st.integers(min_value=0, max_value=2**31), name=st.text(min_size=1, max_size=20))
    @settings(max_examples=100)
    def test_named_streams_are_reproducible(self, seed, name):
        a = RandomStreams(seed).get(name).random(4)
        b = RandomStreams(seed).get(name).random(4)
        assert np.array_equal(a, b)


class TestLedgerProperties:
    charges = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=20),          # node
            st.sampled_from(["query", "update", "estimate", "flood"]),
            st.booleans(),                                    # tx?
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        ),
        max_size=200,
    )

    @given(charges=charges)
    @settings(max_examples=200)
    def test_totals_equal_sum_of_parts(self, charges):
        ledger = NetworkLedger()
        for node, kind, is_tx, cost in charges:
            if is_tx:
                ledger.node(node).charge_tx(kind, cost)
            else:
                ledger.node(node).charge_rx(kind, cost)
        total = sum(cost for _, _, _, cost in charges)
        assert ledger.total_cost() == np.float64(0) + sum(
            c for *_rest, c in charges
        ) or abs(ledger.total_cost() - total) < 1e-6
        # Per-kind costs partition the total.
        by_kind = sum(ledger.total_cost([k]) for k in ("query", "update", "estimate", "flood"))
        assert abs(by_kind - total) < 1e-6
        # Per-node costs partition the total as well.
        per_node = sum(ledger.per_node_cost().values())
        assert abs(per_node - total) < 1e-6
        # Counts match the number of charges.
        assert ledger.total_count() == len(charges)


class TestPhenomenaProperties:
    @given(
        n=st.integers(min_value=2, max_value=25),
        scale=st.floats(min_value=1.0, max_value=200.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_spatial_covariance_is_valid_correlation_matrix(self, n, scale, seed):
        rng = np.random.default_rng(seed)
        positions = rng.uniform(0, 100, size=(n, 2))
        cov = spatial_covariance(positions, scale)
        assert cov.shape == (n, n)
        assert np.allclose(cov, cov.T)
        assert np.all(cov <= 1.0 + 1e-8)
        assert np.all(cov >= 0.0)
        # Positive definiteness (Cholesky succeeds).
        np.linalg.cholesky(cov)
