"""Property-based tests (hypothesis) for Range Table invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.range_table import RangeTable

readings = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
deltas = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)


class TestOwnEntryInvariants:
    @given(sequence=st.lists(readings, min_size=1, max_size=50), delta=deltas)
    @settings(max_examples=200)
    def test_own_entry_always_contains_latest_significant_reading(self, sequence, delta):
        """After any observation sequence the own entry brackets the last
        reading that caused a change (eq. 1-2), and therefore the most
        recent reading always lies inside the entry."""
        table = RangeTable(0, "t")
        for reading in sequence:
            table.observe_reading(reading, delta)
            assert table.own_entry is not None
            assert table.own_entry.min_threshold <= reading <= table.own_entry.max_threshold
            # Entry width is 2 * delta around the reference reading (up to
            # floating-point rounding of reading ± delta).
            width = table.own_entry.max_threshold - table.own_entry.min_threshold
            assert abs(width - 2 * delta) <= 1e-9 * max(1.0, abs(reading), delta)

    @given(sequence=st.lists(readings, min_size=2, max_size=50), delta=deltas)
    @settings(max_examples=100)
    def test_entry_changes_only_when_reading_escapes_thresholds(self, sequence, delta):
        table = RangeTable(0, "t")
        table.observe_reading(sequence[0], delta)
        for reading in sequence[1:]:
            entry_before = table.own_entry.as_tuple
            inside = table.own_entry.contains(reading)
            changed = table.observe_reading(reading, delta)
            assert changed != inside
            if inside:
                assert table.own_entry.as_tuple == entry_before


class TestAggregateInvariants:
    child_updates = st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=8),
            st.tuples(readings, readings).map(lambda p: (min(p), max(p))),
        ),
        max_size=40,
    )

    @given(own=st.one_of(st.none(), readings), updates=child_updates, delta=deltas)
    @settings(max_examples=200)
    def test_aggregate_is_envelope_of_all_entries(self, own, updates, delta):
        table = RangeTable(0, "t")
        if own is not None:
            table.observe_reading(own, delta)
        for child, (lo, hi) in updates:
            table.update_child(child, lo, hi)
        aggregate = table.aggregate()
        entries = list(table.entries())
        if not entries:
            assert aggregate is None
            return
        lows = [e.min_threshold for _, e in entries]
        highs = [e.max_threshold for _, e in entries]
        assert aggregate == (min(lows), max(highs))
        # The envelope contains every stored entry.
        for _, entry in entries:
            assert aggregate[0] <= entry.min_threshold
            assert aggregate[1] >= entry.max_threshold

    @given(updates=child_updates, delta=st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=200)
    def test_update_trigger_fires_iff_aggregate_moved_beyond_delta(self, updates, delta):
        """Fig. 3's trigger rule, checked against an independent reference."""
        table = RangeTable(0, "t")
        last_sent = None
        for child, (lo, hi) in updates:
            table.update_child(child, lo, hi)
            pending = table.pending_update(delta)
            current = table.aggregate()
            if last_sent is None:
                assert pending == current
            else:
                should_fire = (
                    abs(current[0] - last_sent[0]) > delta
                    or abs(current[1] - last_sent[1]) > delta
                )
                assert (pending is not None) == should_fire
            if pending is not None:
                table.mark_transmitted(pending)
                last_sent = pending

    @given(updates=child_updates)
    @settings(max_examples=100)
    def test_no_update_pending_immediately_after_transmission_with_positive_delta(
        self, updates
    ):
        table = RangeTable(0, "t")
        for child, (lo, hi) in updates:
            table.update_child(child, lo, hi)
        pending = table.pending_update(0.5)
        if pending is not None:
            table.mark_transmitted(pending)
        assert table.pending_update(0.5) is None
