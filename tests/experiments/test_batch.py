"""Tests for the batched, parallel experiment orchestrator.

The two properties the batch layer must guarantee:

* **Determinism regardless of worker count** -- the same specs produce
  bit-identical :class:`TrialResult`s whether executed inline, by one
  worker, or fanned across four processes.
* **Cache short-circuiting** -- a re-run of a sweep against a populated
  cache executes zero new trials and returns identical results.
* **Interruption durability** -- a failing trial or a ``KeyboardInterrupt``
  mid-sweep never discards trials that already finished: they are drained
  to the on-disk cache before the exception propagates, so a resumed sweep
  re-executes only what was genuinely in flight.
"""

import concurrent.futures
import dataclasses
import threading

import pytest

from repro.experiments import batch as batch_mod
from repro.experiments import fig5_accuracy
from repro.experiments.batch import (
    BatchRunner,
    TrialResult,
    TrialSpec,
    config_hash,
    run_sweep,
)
from repro.experiments.config import ExperimentConfig, TopologyEvent
from repro.experiments.scenarios import small_network, smoke_sweep
from repro.metrics.report import format_batch_summary
from repro.simulation.rng import RandomStreams


@pytest.fixture(autouse=True)
def _isolate_cache_env(monkeypatch):
    """Keep a developer's REPRO_CACHE_DIR from leaking into executed counts."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)


def tiny_config(seed: int = 3, **changes) -> ExperimentConfig:
    cfg = ExperimentConfig(
        num_nodes=12,
        comm_range=45.0,
        num_epochs=120,
        query_period=20,
        target_coverage=0.4,
        query_sensor_type="temperature",
        seed=seed,
    )
    return cfg.replace(**changes) if changes else cfg


def tiny_specs():
    return [
        TrialSpec(
            label=f"delta={delta:g}",
            config=tiny_config().with_fixed_delta(delta),
            group="test",
            tags={"delta": delta},
        )
        for delta in (3.0, 5.0, 9.0)
    ]


class TestConfigHash:
    def test_equal_configs_hash_equal(self):
        assert config_hash(tiny_config()) == config_hash(tiny_config())

    def test_every_declared_field_matters(self):
        base = config_hash(tiny_config())
        assert config_hash(tiny_config(seed=99)) != base
        assert config_hash(tiny_config(num_epochs=121)) != base
        assert config_hash(tiny_config().with_fixed_delta(7.0)) != base
        assert config_hash(tiny_config().with_flooding()) != base

    def test_initially_dead_set_order_is_canonical(self):
        a = tiny_config(initially_dead={3, 5, 7})
        b = tiny_config(initially_dead={7, 3, 5})
        assert config_hash(a) == config_hash(b)


class TestTrialSpec:
    def test_snapshots_config_at_creation(self):
        cfg = tiny_config().with_fixed_delta(5.0)
        spec = TrialSpec(label="t", config=cfg)
        key = spec.key
        # Mutating the caller's config afterwards must not change identity.
        cfg.dirq.full_scale["temperature"] = 123.0
        cfg.num_epochs = 999
        assert spec.config is not cfg
        assert spec.config.num_epochs == 120
        assert spec.key == key == config_hash(spec.config)

    def test_replicates_derive_independent_reproducible_seeds(self):
        spec = TrialSpec(label="base", config=tiny_config())
        reps = spec.replicates(3)
        seeds = [r.config.seed for r in reps]
        assert len(set(seeds)) == 3
        # Replicate 0 IS the base configuration (same seed, same cache key),
        # so previously cached single trials compose into replicate groups.
        assert seeds == [3] + [
            RandomStreams.derive_seed(3, f"rep-{i}") for i in (1, 2)
        ]
        assert reps[0].key == spec.key
        assert reps[0].label == "base"
        # Every replicate is stamped with the group-folding tags.
        assert [r.tags["replicate"] for r in reps] == [0, 1, 2]
        assert all(r.tags["base_key"] == spec.key for r in reps)
        assert all(r.tags["base_label"] == "base" for r in reps)
        # Re-deriving produces the same specs (same keys).
        assert [r.key for r in spec.replicates(3)] == [r.key for r in reps]
        with pytest.raises(ValueError):
            spec.replicates(0)


class TestBatchRunnerDeterminism:
    def test_serial_and_parallel_results_are_bit_identical(self):
        specs = tiny_specs()
        serial = BatchRunner(max_workers=1).run(specs)
        parallel = BatchRunner(max_workers=4, executor="process").run(specs)
        assert [r.fingerprint() for r in serial] == [
            r.fingerprint() for r in parallel
        ]
        # And the distilled record matches what the serial runner measured.
        for a, b in zip(serial, parallel):
            assert a.num_queries == b.num_queries
            assert a.per_query_costs == b.per_query_costs
            assert a.total_dirq_cost == b.total_dirq_cost
            assert [r.received for r in a.records] == [
                r.received for r in b.records
            ]

    def test_results_returned_in_input_order(self):
        specs = tiny_specs()
        results = BatchRunner(max_workers=4).run(specs)
        assert [r.spec.label for r in results] == [s.label for s in specs]

    def test_duplicate_specs_execute_once_and_share_results(self):
        spec = tiny_specs()[0]
        twin = TrialSpec(label="twin", config=spec.config, group="test")
        runner = BatchRunner(max_workers=1)
        results = runner.run([spec, twin])
        assert runner.last_stats.executed == 1
        assert runner.last_stats.deduplicated == 1
        assert results[0].fingerprint() == results[1].fingerprint()
        # Each returned result is bound to the spec that requested it.
        assert results[0].spec.label == spec.label
        assert results[1].spec.label == "twin"

    def test_trial_result_mirrors_experiment_result_summaries(self):
        (result,) = run_sweep([tiny_specs()[0]], BatchRunner(max_workers=1))
        assert isinstance(result, TrialResult)
        assert result.num_queries == len(result.records) > 0
        assert result.total_dirq_cost > 0
        assert result.cost_ratio > 0
        assert len(result.updates_per_window()) == 1  # 120 epochs, 100 window
        assert result.mean_accuracy > 0

    def test_worker_failure_is_reported_with_trial_label(self):
        # Killing the root passes config validation but raises at run time.
        bad = TrialSpec(
            label="kills-the-root",
            config=tiny_config(
                num_epochs=50,
                topology_events=[
                    TopologyEvent(epoch=10, kind=TopologyEvent.KILL, node_id=0)
                ],
            ).with_fixed_delta(5.0),
        )
        with pytest.raises(RuntimeError, match="kills-the-root"):
            BatchRunner(max_workers=2, executor="process").run([bad])


class TestBatchRunnerCache:
    def test_cache_short_circuits_already_run_trials(self, tmp_path):
        specs = tiny_specs()
        first = BatchRunner(max_workers=2, cache_dir=tmp_path)
        fresh = first.run(specs)
        assert first.last_stats.executed == len(specs)
        assert first.last_stats.cached == 0

        second = BatchRunner(max_workers=2, cache_dir=tmp_path)
        cached = second.run(specs)
        assert second.last_stats.executed == 0
        assert second.last_stats.cached == len(specs)
        assert all(r.from_cache for r in cached)
        assert [r.fingerprint() for r in fresh] == [
            r.fingerprint() for r in cached
        ]

    def test_partial_cache_executes_only_missing_trials(self, tmp_path):
        specs = tiny_specs()
        BatchRunner(max_workers=1, cache_dir=tmp_path).run(specs[:2])
        runner = BatchRunner(max_workers=1, cache_dir=tmp_path)
        runner.run(specs)
        assert runner.last_stats.cached == 2
        assert runner.last_stats.executed == 1

    def test_corrupt_cache_entry_falls_back_to_execution(self, tmp_path):
        spec = tiny_specs()[0]
        runner = BatchRunner(max_workers=1, cache_dir=tmp_path)
        runner.run([spec])
        (tmp_path / f"{spec.key}.pkl").write_bytes(b"not a pickle")
        rerun = BatchRunner(max_workers=1, cache_dir=tmp_path)
        rerun.run([spec])
        assert rerun.last_stats.executed == 1

    def test_cache_hit_rebinds_result_to_requesting_sweeps_spec(self, tmp_path):
        """A result cached by one sweep must not leak its tags into another.

        ``with_atc()`` and ``with_atc(target_cost_ratio=0.5)`` hash equally
        (0.5 is the default), so the loss ablation at loss 0 and the ATC
        target sweep at 0.5 share a cache entry; the consuming sweep must
        still see its own spec tags.
        """
        from repro.experiments import ablations

        first = BatchRunner(max_workers=1, cache_dir=tmp_path)
        ablations.run_loss_ablation(
            loss_rates=(0.0,), num_epochs=200, seed=3, runner=first,
            replicates=1,
        )
        assert first.last_stats.executed == 1

        second = BatchRunner(max_workers=1, cache_dir=tmp_path)
        points = ablations.run_atc_target_sweep(
            targets=(0.5,), num_epochs=200, seed=3, runner=second,
            replicates=1,
        )
        assert second.last_stats.cached == 1
        assert second.last_stats.executed == 0
        assert points[0].target_ratio == 0.5

    def test_fig5_sweep_cached_rerun_executes_zero_trials(self, tmp_path):
        base = small_network(num_nodes=12, num_epochs=120)
        kwargs = dict(
            deltas=(3.0, 9.0),
            coverages=(0.4,),
            num_epochs=120,
            base_config=base,
            replicates=1,
        )
        first = BatchRunner(max_workers=2, cache_dir=tmp_path)
        result_a = fig5_accuracy.run(runner=first, **kwargs)
        assert first.last_stats.executed == 2

        second = BatchRunner(max_workers=2, cache_dir=tmp_path)
        result_b = fig5_accuracy.run(runner=second, **kwargs)
        assert second.last_stats.executed == 0
        assert second.last_stats.cached == 2
        assert result_a.points == result_b.points
        assert result_a.completeness == result_b.completeness


class TestBatchRunnerInterruption:
    """A killed sweep loses at most the trials that were in flight."""

    @pytest.fixture()
    def template(self):
        """One real TrialResult to clone (keeps fake executors picklable-free)."""
        return BatchRunner(max_workers=1).run([tiny_specs()[0]])[0]

    def test_parallel_failure_still_caches_finished_siblings(
        self, tmp_path, monkeypatch, template
    ):
        """Bug regression: results finished before a sibling's failure used to
        be discarded un-cached when the failure propagated."""
        specs = tiny_specs()
        goods_done = threading.Event()
        finished = []
        lock = threading.Lock()

        def fake_execute(spec):
            if spec.label == "delta=5":
                # Fail only after both siblings have finished, so their
                # results are provably complete when the error surfaces.
                assert goods_done.wait(timeout=30)
                raise ValueError("boom")
            result = dataclasses.replace(template, spec=spec)
            with lock:
                finished.append(spec.key)
                if len(finished) == 2:
                    goods_done.set()
            return result

        monkeypatch.setattr(batch_mod, "_execute_trial", fake_execute)
        runner = BatchRunner(
            max_workers=3, executor="thread", cache_dir=tmp_path
        )
        with pytest.raises(RuntimeError, match="delta=5"):
            runner.run(specs)
        assert (tmp_path / f"{specs[0].key}.pkl").is_file()
        assert (tmp_path / f"{specs[2].key}.pkl").is_file()
        assert not (tmp_path / f"{specs[1].key}.pkl").exists()
        assert runner.last_stats.executed == 2
        # The resume only re-runs the trial that actually failed.
        resumed = BatchRunner(
            max_workers=3, executor="thread", cache_dir=tmp_path
        )
        monkeypatch.setattr(
            batch_mod,
            "_execute_trial",
            lambda spec: dataclasses.replace(template, spec=spec),
        )
        resumed.run(specs)
        assert resumed.last_stats.cached == 2
        assert resumed.last_stats.executed == 1

    def test_keyboard_interrupt_drains_completed_futures_to_cache(
        self, tmp_path, monkeypatch, template
    ):
        """Ctrl-C between a future finishing and its consumption must not
        lose the finished result."""
        monkeypatch.setattr(
            batch_mod,
            "_execute_trial",
            lambda spec: dataclasses.replace(template, spec=spec),
        )

        def interrupting_wait(futures, return_when=None):
            # Let every submitted trial actually finish, then interrupt the
            # coordinator before it can consume a single future -- the
            # worst-case Ctrl-C timing.
            concurrent.futures.wait(
                list(futures),
                return_when=concurrent.futures.ALL_COMPLETED,
            )
            raise KeyboardInterrupt

        monkeypatch.setattr(batch_mod, "wait", interrupting_wait)
        specs = tiny_specs()
        runner = BatchRunner(
            max_workers=2, executor="thread", cache_dir=tmp_path
        )
        with pytest.raises(KeyboardInterrupt):
            runner.run(specs)
        for spec in specs:
            assert (tmp_path / f"{spec.key}.pkl").is_file()
        assert runner.last_stats.executed == len(specs)
        second = BatchRunner(max_workers=1, cache_dir=tmp_path)
        second.run(specs)
        assert second.last_stats.executed == 0
        assert second.last_stats.cached == len(specs)

    def test_executed_result_is_cached_before_progress_fires(self, tmp_path):
        """An interruption inside a progress callback cannot lose the trial
        the callback is reporting on."""
        specs = tiny_specs()
        reported = []

        def bomb(result):
            reported.append(result.spec.key)
            raise KeyboardInterrupt

        runner = BatchRunner(max_workers=1, cache_dir=tmp_path)
        with pytest.raises(KeyboardInterrupt):
            runner.run(specs, progress=bomb)
        assert len(reported) == 1
        assert (tmp_path / f"{reported[0]}.pkl").is_file()
        assert runner.last_stats.executed == 1


class TestBatchRunnerApi:
    def test_run_map_keys_by_label_and_rejects_duplicates(self):
        specs = smoke_sweep(num_nodes=10, num_epochs=60)
        results = BatchRunner(max_workers=2).run_map(specs)
        assert set(results) == {s.label for s in specs}
        dup = [specs[0], TrialSpec(label=specs[0].label, config=tiny_config())]
        with pytest.raises(ValueError):
            BatchRunner(max_workers=1).run_map(dup)

    def test_progress_callback_sees_every_trial(self, tmp_path):
        specs = tiny_specs()
        seen = []
        runner = BatchRunner(max_workers=1, cache_dir=tmp_path)
        runner.run(specs, progress=seen.append)
        assert len(seen) == len(specs)
        # Cache hits report progress too.
        seen.clear()
        BatchRunner(max_workers=1, cache_dir=tmp_path).run(
            specs, progress=seen.append
        )
        assert len(seen) == len(specs)

    def test_progress_fires_once_per_input_spec_rebound(self, tmp_path):
        """Bug regression: deduplicated twins used to get no callback, and
        cache hits used to report the cached twin's spec (wrong label)."""
        spec = tiny_specs()[0]
        twin = TrialSpec(label="twin", config=spec.config, group="test")
        seen = []
        runner = BatchRunner(max_workers=1, cache_dir=tmp_path)
        runner.run([spec, twin], progress=lambda r: seen.append(r.spec.label))
        assert seen == [spec.label, "twin"]
        assert runner.last_stats.deduplicated == 1
        # Cache-hit path: the dedup twin of a cached spec is notified too,
        # and each callback sees its own spec's label.
        seen.clear()
        cached = BatchRunner(max_workers=1, cache_dir=tmp_path)
        cached.run([spec, twin], progress=lambda r: seen.append(r.spec.label))
        assert seen == [spec.label, "twin"]
        assert cached.last_stats.executed == 0

    def test_invalid_arguments_are_rejected(self):
        with pytest.raises(ValueError):
            BatchRunner(executor="gpu")
        with pytest.raises(ValueError):
            BatchRunner(max_workers=0)

    def test_format_batch_summary_renders_stats_and_rows(self):
        runner = BatchRunner(max_workers=1)
        results = runner.run(tiny_specs()[:2])
        text = format_batch_summary(runner.last_stats, results)
        assert "2 trials" in text
        assert "delta=3" in text and "delta=5" in text
        assert "cost ratio" in text
