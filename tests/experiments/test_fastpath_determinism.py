"""Determinism guard for the hot-loop fast path (PR 2).

The scheduler rewrite, the batched channel fan-out and the runner's epoch
fast path are pure optimisations: a sweep must produce bit-identical
fingerprints whether deliveries are batched (the fast path) or scheduled
one event per receiver (the reference formulation the simulator used
before), and repeated runs must reproduce exactly.
"""

import pytest

import repro.experiments.runner as runner_module
from repro.experiments.batch import BatchRunner
from repro.experiments.scenarios import smoke_sweep
from repro.network.channel import WirelessChannel


def _serial_runner() -> BatchRunner:
    # Serial + in-process so monkeypatching the runner module is effective.
    return BatchRunner(max_workers=1, executor="serial", cache_dir="")


@pytest.fixture(scope="module")
def fast_fingerprints():
    specs = smoke_sweep(num_nodes=10, num_epochs=100)
    results = _serial_runner().run(specs)
    return [r.fingerprint() for r in results]


class TestFastPathDeterminism:
    def test_batched_and_unbatched_delivery_bit_identical(
        self, monkeypatch, fast_fingerprints
    ):
        """The old one-event-per-receiver path and the new batched path
        must agree bit-for-bit on the whole smoke sweep."""

        class UnbatchedChannel(WirelessChannel):
            def __init__(self, *args, **kwargs):
                kwargs.setdefault("batched_delivery", False)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(runner_module, "WirelessChannel", UnbatchedChannel)
        specs = smoke_sweep(num_nodes=10, num_epochs=100)
        reference = [r.fingerprint() for r in _serial_runner().run(specs)]
        assert reference == fast_fingerprints

    def test_fast_path_reproducible_across_runs(self, fast_fingerprints):
        specs = smoke_sweep(num_nodes=10, num_epochs=100)
        again = [r.fingerprint() for r in _serial_runner().run(specs)]
        assert again == fast_fingerprints

    def test_lossy_trial_bit_identical_across_delivery_modes(self, monkeypatch):
        """Loss draws are vectorised per transmission; the stream must match
        the per-receiver formulation draw for draw."""
        from repro.experiments.runner import run_experiment
        from repro.experiments.scenarios import small_network

        cfg = small_network(num_nodes=12, num_epochs=150).replace(channel_loss=0.2)
        fast = run_experiment(cfg)

        class UnbatchedChannel(WirelessChannel):
            def __init__(self, *args, **kwargs):
                kwargs.setdefault("batched_delivery", False)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(runner_module, "WirelessChannel", UnbatchedChannel)
        reference = run_experiment(cfg)
        assert (
            reference.ledger.breakdown_by_kind() == fast.ledger.breakdown_by_kind()
        )
        assert reference.per_query_costs == fast.per_query_costs
        assert reference.mean_accuracy == fast.mean_accuracy
        assert reference.mean_overshoot_percent == fast.mean_overshoot_percent
