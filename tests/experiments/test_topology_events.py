"""Edge-case tests for scripted :class:`TopologyEvent` handling.

Covers the corners of the kill/activate path: killing the root's only
child (the tree degenerates to the root alone), activating a node that is
already alive (a no-op that must not perturb any measurement), and the
ordering semantics of a kill and an activation of the same node scheduled
for the same epoch (events apply in declaration order).
"""

import pytest

from repro.experiments.config import ExperimentConfig, TopologyEvent
from repro.experiments.runner import run_experiment
from repro.scenarios.static import small_network


def two_node_config(num_epochs: int = 120, **overrides) -> ExperimentConfig:
    """Root plus exactly one child (comm_range covers the whole field)."""
    return ExperimentConfig(
        num_nodes=2,
        comm_range=160.0,
        area_size=100.0,
        num_epochs=num_epochs,
        query_period=20,
        query_sensor_type="temperature",
        seed=3,
        **overrides,
    )


def measurements(result):
    """The deterministic payload compared for run-equivalence."""
    return (
        result.num_queries,
        result.per_query_costs,
        sorted(result.alive_at_end),
        sorted(result.ledger.breakdown_by_kind().items()),
        [
            (r.query_id, sorted(r.received), sorted(r.should_receive))
            for r in result.audit.records
        ],
    )


class TestKillRootsOnlyChild:
    def test_run_survives_and_root_ends_alone(self):
        cfg = two_node_config(
            topology_events=[
                TopologyEvent(epoch=50, kind=TopologyEvent.KILL, node_id=1)
            ]
        )
        result = run_experiment(cfg)
        assert result.alive_at_end == {0}
        assert result.tree.node_ids == [0]
        # Queries keep being injected and audited after the network empties.
        post = [r for r in result.audit.records if r.injection_epoch > 50]
        assert post
        assert all(r.received == set() for r in post)

    def test_killed_child_can_come_back(self):
        cfg = two_node_config(
            topology_events=[
                TopologyEvent(epoch=40, kind=TopologyEvent.KILL, node_id=1),
                TopologyEvent(epoch=80, kind=TopologyEvent.ACTIVATE, node_id=1),
            ]
        )
        result = run_experiment(cfg)
        assert result.alive_at_end == {0, 1}
        assert result.tree.parent_of(1) == 0

    def test_killing_the_root_is_rejected(self):
        cfg = two_node_config(
            topology_events=[
                TopologyEvent(epoch=10, kind=TopologyEvent.KILL, node_id=0)
            ]
        )
        with pytest.raises(ValueError, match="root"):
            run_experiment(cfg)


class TestActivateAlreadyAlive:
    def test_is_a_measurement_noop(self):
        base = small_network(num_nodes=10, num_epochs=100, seed=7)
        noop = base.replace(
            topology_events=[
                TopologyEvent(epoch=30, kind=TopologyEvent.ACTIVATE, node_id=4)
            ]
        )
        assert measurements(run_experiment(base)) == measurements(
            run_experiment(noop)
        )


class TestSameEpochOrdering:
    def test_kill_then_activate_leaves_node_alive(self):
        cfg = small_network(num_nodes=10, num_epochs=100, seed=7).replace(
            topology_events=[
                TopologyEvent(epoch=40, kind=TopologyEvent.KILL, node_id=5),
                TopologyEvent(epoch=40, kind=TopologyEvent.ACTIVATE, node_id=5),
            ]
        )
        result = run_experiment(cfg)
        assert 5 in result.alive_at_end
        assert 5 in result.tree

    def test_activate_then_kill_leaves_node_dead(self):
        cfg = small_network(num_nodes=10, num_epochs=100, seed=7).replace(
            topology_events=[
                TopologyEvent(epoch=40, kind=TopologyEvent.ACTIVATE, node_id=5),
                TopologyEvent(epoch=40, kind=TopologyEvent.KILL, node_id=5),
            ]
        )
        result = run_experiment(cfg)
        assert 5 not in result.alive_at_end
        assert 5 not in result.tree

    def test_double_kill_matches_single_kill(self):
        base = small_network(num_nodes=10, num_epochs=100, seed=7)
        single = base.replace(
            topology_events=[
                TopologyEvent(epoch=40, kind=TopologyEvent.KILL, node_id=5)
            ]
        )
        double = base.replace(
            topology_events=[
                TopologyEvent(epoch=40, kind=TopologyEvent.KILL, node_id=5),
                TopologyEvent(epoch=40, kind=TopologyEvent.KILL, node_id=5),
            ]
        )
        assert measurements(run_experiment(single)) == measurements(
            run_experiment(double)
        )
