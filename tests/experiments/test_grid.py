"""Tests for the scenario × protocol evaluation grid and its CLI."""

import json

import pytest

from repro.experiments.batch import BatchRunner
from repro.experiments import grid
from repro.metrics.resilience import grid_degradation
from repro.scenarios.registry import scenario_spec

#: Small-but-real grid used throughout: 2 scenarios x 2 protocols.
SCENARIOS = ["static-paper", "churn-heavy"]
PROTOCOLS = ["dirq", "flooding"]
EPOCHS = 100


def runner(cache_dir="", workers=1):
    if workers == 1:
        return BatchRunner(max_workers=1, executor="serial", cache_dir=cache_dir)
    return BatchRunner(max_workers=workers, cache_dir=cache_dir)


class TestGridSpecs:
    def test_cross_product_row_major(self):
        specs = grid.grid_specs(SCENARIOS, PROTOCOLS, num_epochs=EPOCHS, seed=1)
        assert [s.label for s in specs] == [
            "static-paper/dirq",
            "static-paper/flooding",
            "churn-heavy/dirq",
            "churn-heavy/flooding",
        ]
        assert specs[2].tags == {
            "scenario": "churn-heavy",
            "scenario_kind": "churn",
            "protocol": "dirq",
        }

    def test_dirq_cell_shares_cache_key_with_scenario_spec(self):
        """The cache-composition contract: grid dirq cell == scenarios.run trial."""
        specs = grid.grid_specs(["churn-heavy"], ["dirq"], num_epochs=EPOCHS, seed=1)
        assert specs[0].key == scenario_spec("churn-heavy", num_epochs=EPOCHS).key

    def test_protocol_transforms_change_the_key(self):
        dirq, atc, flood = grid.grid_specs(
            ["churn-heavy"], ["dirq", "atc", "flooding"], num_epochs=EPOCHS
        )
        assert len({dirq.key, atc.key, flood.key}) == 3
        assert flood.config.protocol == "flooding"
        assert atc.config.dirq.threshold_mode == "atc"

    def test_unknown_names_raise(self):
        with pytest.raises(KeyError, match="no-such"):
            grid.grid_specs(["no-such-scenario"], ["dirq"], num_epochs=EPOCHS)
        with pytest.raises(KeyError, match="gossip"):
            grid.grid_specs(["static-paper"], ["gossip"], num_epochs=EPOCHS)

    def test_duplicate_names_rejected(self):
        """Duplicate cells would double-count replicates into one group."""
        with pytest.raises(ValueError, match="duplicate scenario"):
            grid.grid_specs(
                ["churn-heavy", "churn-heavy"], ["dirq"], num_epochs=EPOCHS
            )
        with pytest.raises(ValueError, match="duplicate protocol"):
            grid.grid_specs(
                ["churn-heavy"], ["dirq", "dirq"], num_epochs=EPOCHS
            )

    def test_cli_csv_deduplicates_in_order(self):
        assert grid._csv("a, b,a ,c,b") == ["a", "b", "c"]


class TestRunGrid:
    def test_cells_and_metrics(self):
        cells, stats = grid.run_grid(
            SCENARIOS, PROTOCOLS, replicates=2, num_epochs=EPOCHS, runner=runner()
        )
        assert set(cells) == {(s, p) for s in SCENARIOS for p in PROTOCOLS}
        assert stats.total == 8
        group = cells[("churn-heavy", "dirq")]
        assert group.n == 2
        assert "total_energy" in group.metrics
        assert group.metrics["total_energy"].mean > 0

    def test_degradation_compares_same_protocol_columns(self):
        cells, _ = grid.run_grid(
            SCENARIOS, PROTOCOLS, replicates=1, num_epochs=EPOCHS, runner=runner()
        )
        entries = grid_degradation(cells, "static-paper")
        assert [(s, p) for s, p, _ in entries] == [
            ("churn-heavy", "dirq"),
            ("churn-heavy", "flooding"),
        ]
        for _, protocol, rows in entries:
            assert rows, "no shared metrics compared"
            base = cells[("static-paper", protocol)]
            for row in rows:
                assert row.baseline_mean == base.metrics[row.metric].mean

    def test_json_bit_identical_1_vs_4_workers(self, tmp_path):
        def payload(workers, cache_dir):
            cells, _ = grid.run_grid(
                SCENARIOS,
                PROTOCOLS,
                replicates=2,
                num_epochs=EPOCHS,
                runner=runner(cache_dir=cache_dir, workers=workers),
            )
            recovery = grid.grid_recovery(cells)
            degradation = grid_degradation(cells, "static-paper")
            return json.dumps(
                grid.grid_to_jsonable(
                    cells, SCENARIOS, PROTOCOLS, recovery, degradation,
                    baseline="static-paper",
                ),
                sort_keys=True,
            )

        serial = payload(1, tmp_path / "a")
        parallel = payload(4, tmp_path / "b")
        assert serial == parallel

    def test_warm_cache_executes_zero_trials(self, tmp_path):
        first = runner(cache_dir=tmp_path)
        grid.run_grid(
            SCENARIOS, PROTOCOLS, replicates=2, num_epochs=EPOCHS, runner=first
        )
        assert first.last_stats.executed == 8
        second = runner(cache_dir=tmp_path)
        grid.run_grid(
            SCENARIOS, PROTOCOLS, replicates=2, num_epochs=EPOCHS, runner=second
        )
        assert second.last_stats.executed == 0
        assert second.last_stats.cached == 8

    def test_grid_composes_with_scenario_run_cache(self, tmp_path):
        """Cells already simulated by repro.scenarios.run are cache hits."""
        pre = runner(cache_dir=tmp_path)
        pre.run_replicated(
            [scenario_spec("churn-heavy", num_epochs=EPOCHS)], n=2
        )
        assert pre.last_stats.executed == 2
        after = runner(cache_dir=tmp_path)
        grid.run_grid(
            ["churn-heavy"], ["dirq", "flooding"], replicates=2,
            num_epochs=EPOCHS, runner=after,
        )
        assert after.last_stats.cached == 2  # the dirq column came for free
        assert after.last_stats.executed == 2  # only flooding ran


class TestGridCli:
    def cli(self, tmp_path, *extra, workers=1):
        argv = [
            "--scenarios", ",".join(SCENARIOS),
            "--protocols", ",".join(PROTOCOLS),
            "--replicates", "2",
            "--epochs", str(EPOCHS),
            "--workers", str(workers),
            "--cache-dir", str(tmp_path / "cache"),
            *extra,
        ]
        return grid.main(argv)

    def test_end_to_end_and_cached_bit_identity(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        assert self.cli(tmp_path, "--json", str(a)) == 0
        out = capsys.readouterr().out
        assert "mean_accuracy" in out and "degradation vs static-paper" in out
        assert "churn-heavy" in out
        b = tmp_path / "b.json"
        assert (
            self.cli(tmp_path, "--json", str(b), "--require-cached", workers=4)
            == 0
        )
        assert a.read_bytes() == b.read_bytes()

    def test_require_cached_fails_on_cold_cache(self, tmp_path, capsys):
        assert (
            self.cli(
                tmp_path, "--require-cached",
                "--json", str(tmp_path / "cold.json"),
            )
            == 1
        )
        assert "FAIL" in capsys.readouterr().err

    def test_markdown_export(self, tmp_path, capsys):
        md = tmp_path / "grid.md"
        assert self.cli(tmp_path, "--markdown", str(md)) == 0
        text = md.read_text()
        assert "| scenario | dirq | flooding |" in text
        assert "## mean_accuracy" in text

    def test_baseline_appended_when_absent(self, tmp_path, capsys):
        argv = [
            "--scenarios", "churn-heavy",
            "--protocols", "dirq",
            "--replicates", "1",
            "--epochs", str(EPOCHS),
            "--workers", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--json", str(tmp_path / "g.json"),
        ]
        assert grid.main(argv) == 0
        payload = json.loads((tmp_path / "g.json").read_text())
        assert payload["scenarios"] == ["churn-heavy", "static-paper"]
        assert payload["degradation"]["cells"]

    def test_baseline_none_disables_degradation(self, tmp_path, capsys):
        argv = [
            "--scenarios", "churn-heavy",
            "--protocols", "dirq",
            "--replicates", "1",
            "--epochs", str(EPOCHS),
            "--workers", "1",
            "--baseline", "none",
            "--cache-dir", str(tmp_path / "cache"),
            "--json", str(tmp_path / "g.json"),
        ]
        assert grid.main(argv) == 0
        payload = json.loads((tmp_path / "g.json").read_text())
        assert payload["scenarios"] == ["churn-heavy"]
        assert payload["degradation"]["cells"] == []

    def test_unknown_scenario_exits_2(self, tmp_path, capsys):
        argv = [
            "--scenarios", "no-such",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert grid.main(argv) == 2
        assert "no-such" in capsys.readouterr().err

    def test_list_prints_catalogue(self, capsys):
        assert grid.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "area-blast" in out and "group-mobile" in out
        assert "flooding" in out
