"""Tests for replicated sweeps: ``BatchRunner.run_replicated`` + the CLI.

Covers the replication layer's end-to-end contract: cached single trials
compose into replicate groups without re-running (replicate 0 is the base
config), group summaries are bit-identical at any worker count, and the
``python -m repro.experiments.replicate`` CLI emits ± cells plus a JSON
export and is fully cache-served on a re-run.
"""

import json

import pytest

from repro.experiments import replicate
from repro.experiments.batch import BatchRunner, TrialSpec
from repro.experiments.config import ExperimentConfig


@pytest.fixture(autouse=True)
def _isolate_cache_env(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)


def tiny_config(seed: int = 3) -> ExperimentConfig:
    return ExperimentConfig(
        num_nodes=10,
        comm_range=45.0,
        num_epochs=80,
        query_period=20,
        target_coverage=0.4,
        query_sensor_type="temperature",
        seed=seed,
    )


def tiny_spec(label="base", seed=3, **tags) -> TrialSpec:
    return TrialSpec(
        label=label,
        config=tiny_config(seed=seed).with_fixed_delta(5.0),
        group="test",
        tags=tags,
    )


class TestRunReplicated:
    def test_one_group_per_spec_with_n_replicates(self, tmp_path):
        runner = BatchRunner(max_workers=1, cache_dir=tmp_path)
        groups = runner.run_replicated(
            [tiny_spec("a"), tiny_spec("b", seed=11)], n=3
        )
        assert [g.label for g in groups] == ["a", "b"]
        assert [g.n for g in groups] == [3, 3]
        assert runner.last_stats.total == 6
        for group in groups:
            assert group.executed == 3 and group.cache_hits == 0
            assert group.metrics["cost_ratio"].n == 3

    def test_accepts_a_single_spec(self):
        runner = BatchRunner(max_workers=1, cache_dir="")
        (group,) = runner.run_replicated(tiny_spec(), n=2)
        assert group.n == 2

    def test_cached_single_trial_composes_into_group(self, tmp_path):
        spec = tiny_spec()
        first = BatchRunner(max_workers=1, cache_dir=tmp_path)
        first.run([spec])  # an un-replicated run populates the cache
        assert first.last_stats.executed == 1

        second = BatchRunner(max_workers=1, cache_dir=tmp_path)
        (group,) = second.run_replicated(spec, n=3)
        # Replicate 0 is the base config: only the 2 new seeds execute.
        assert second.last_stats.cached == 1
        assert second.last_stats.executed == 2
        assert group.cache_hits == 1 and group.executed == 2
        assert group.results[0].config.seed == spec.config.seed

    def test_groups_bit_identical_across_worker_counts(self):
        specs = [tiny_spec("a"), tiny_spec("b", seed=11)]
        serial = BatchRunner(max_workers=1, cache_dir="").run_replicated(
            specs, n=2
        )
        threaded = BatchRunner(
            max_workers=3, cache_dir="", executor="thread"
        ).run_replicated(specs, n=2)
        assert [g.to_dict() for g in serial] == [g.to_dict() for g in threaded]
        fingerprints = lambda groups: [
            r.fingerprint() for g in groups for r in g.results
        ]
        assert fingerprints(serial) == fingerprints(threaded)

    def test_replicate_summaries_have_intervals(self):
        runner = BatchRunner(max_workers=1, cache_dir="")
        (group,) = runner.run_replicated(tiny_spec(), n=3)
        summary = group.metrics["total_dirq_cost"]
        assert summary.n == 3
        assert summary.ci_halfwidth is not None
        assert summary.minimum <= summary.mean <= summary.maximum


class TestReplicateCli:
    def run_cli(self, tmp_path, *extra):
        argv = [
            "--figure",
            "smoke",
            "--replicates",
            "2",
            "--epochs",
            "60",
            "--workers",
            "1",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--json",
            str(tmp_path / "out.json"),
            *extra,
        ]
        return replicate.main(argv)

    def test_emits_ci_cells_and_json_export(self, tmp_path, capsys):
        assert self.run_cli(tmp_path) == 0
        out = capsys.readouterr().out
        assert "± " in out and "[n=2]" in out
        payload = json.loads((tmp_path / "out.json").read_text())
        assert payload["figure"] == "smoke"
        assert payload["replicates"] == 2
        assert len(payload["groups"]) == 4  # two deltas, atc, flooding
        for group in payload["groups"]:
            assert group["n"] == 2
            assert group["metrics"]["cost_ratio"]["ci_halfwidth"] is not None

    def test_rerun_is_fully_cache_served_and_bit_identical(
        self, tmp_path, capsys
    ):
        assert self.run_cli(tmp_path) == 0
        first = (tmp_path / "out.json").read_bytes()
        capsys.readouterr()
        assert self.run_cli(tmp_path, "--require-cached") == 0
        out = capsys.readouterr().out
        assert "executed 0" in out
        assert (tmp_path / "out.json").read_bytes() == first

    def test_require_cached_fails_on_cold_cache(self, tmp_path, capsys):
        assert self.run_cli(tmp_path, "--require-cached") == 1

    def test_specs_for_covers_every_figure(self):
        for figure in replicate.FIGURES:
            specs, title = replicate.specs_for(figure, epochs=100, seed=1)
            assert specs, figure
            assert title
        with pytest.raises(ValueError):
            replicate.specs_for("fig99", epochs=100, seed=1)
