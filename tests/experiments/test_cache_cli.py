"""Tests for the cache manifest sidecars and ``python -m repro.experiments.cache``."""

import json
import pickle

import pytest

from repro.experiments import cache as cache_cli
from repro.experiments.batch import CACHE_VERSION, BatchRunner, TrialSpec
from repro.experiments.config import ExperimentConfig


@pytest.fixture(autouse=True)
def _isolate_cache_env(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)


def tiny_spec(seed=3, label="tiny") -> TrialSpec:
    config = ExperimentConfig(
        num_nodes=8,
        comm_range=50.0,
        num_epochs=60,
        query_period=20,
        query_sensor_type="temperature",
        seed=seed,
    )
    return TrialSpec(label=label, config=config, group="test", tags={"k": 1})


class TestManifestSidecar:
    def test_manifest_written_next_to_pickle(self, tmp_path):
        spec = tiny_spec()
        BatchRunner(max_workers=1, cache_dir=tmp_path).run([spec])
        pkl = tmp_path / f"{spec.key}.pkl"
        manifest_path = tmp_path / f"{spec.key}.json"
        assert pkl.is_file() and manifest_path.is_file()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["version"] == CACHE_VERSION
        assert manifest["key"] == spec.key
        assert manifest["label"] == "tiny"
        assert manifest["group"] == "test"
        assert manifest["tags"] == {"k": 1}
        assert manifest["config"]["num_nodes"] == 8

    def test_manifest_is_deterministic(self, tmp_path):
        spec = tiny_spec()
        BatchRunner(max_workers=1, cache_dir=tmp_path / "a").run([spec])
        BatchRunner(max_workers=1, cache_dir=tmp_path / "b").run([spec])
        a = (tmp_path / "a" / f"{spec.key}.json").read_bytes()
        b = (tmp_path / "b" / f"{spec.key}.json").read_bytes()
        assert a == b


class TestScanAndPrune:
    def populate(self, tmp_path):
        spec = tiny_spec()
        BatchRunner(max_workers=1, cache_dir=tmp_path).run([spec])
        return spec

    def test_scan_reports_ok_entry(self, tmp_path):
        spec = self.populate(tmp_path)
        (entry,) = cache_cli.scan_cache(tmp_path)
        assert entry.key == spec.key
        assert entry.status == cache_cli.STATUS_OK
        assert entry.version == CACHE_VERSION
        assert entry.label == "tiny"

    def test_scan_flags_stale_orphan_and_legacy(self, tmp_path):
        self.populate(tmp_path)
        # Stale entry: old version stamp in pickle + manifest.
        (tmp_path / "aaaa.pkl").write_bytes(
            pickle.dumps({"version": CACHE_VERSION - 1, "result": None})
        )
        (tmp_path / "aaaa.json").write_text(
            json.dumps(
                {"version": CACHE_VERSION - 1, "key": "aaaa", "label": "old"}
            )
        )
        # Orphan manifest without a pickle.
        (tmp_path / "bbbb.json").write_text(
            json.dumps({"version": CACHE_VERSION, "key": "bbbb"})
        )
        # Legacy pickle without a manifest.
        (tmp_path / "cccc.pkl").write_bytes(
            pickle.dumps({"version": CACHE_VERSION, "result": None})
        )
        statuses = {e.key: e.status for e in cache_cli.scan_cache(tmp_path)}
        assert statuses["aaaa"] == cache_cli.STATUS_STALE
        assert statuses["bbbb"] == cache_cli.STATUS_ORPHAN
        assert statuses["cccc"] == cache_cli.STATUS_NO_MANIFEST
        assert sum(1 for s in statuses.values() if s == cache_cli.STATUS_OK) == 1

    def test_prune_removes_stale_and_orphans_keeps_ok(self, tmp_path):
        spec = self.populate(tmp_path)
        (tmp_path / "aaaa.pkl").write_bytes(
            pickle.dumps({"version": CACHE_VERSION - 1, "result": None})
        )
        (tmp_path / "bbbb.json").write_text(
            json.dumps({"version": 1, "key": "bbbb"})
        )
        assert cache_cli.main(["--prune", "--cache-dir", str(tmp_path)]) == 0
        remaining = sorted(p.name for p in tmp_path.iterdir())
        assert remaining == [f"{spec.key}.json", f"{spec.key}.pkl"]

    def test_foreign_json_next_to_valid_pickle_is_ignored(self, tmp_path):
        """A same-stem non-manifest JSON must not poison (or die with) its .pkl."""
        spec = self.populate(tmp_path)
        foreign = tmp_path / f"{spec.key}.json"
        foreign.write_text(json.dumps({"unrelated": True}))
        (entry,) = cache_cli.scan_cache(tmp_path)
        # Version falls back to the pickle stamp: still a valid entry.
        assert entry.status == cache_cli.STATUS_NO_MANIFEST
        assert entry.version == CACHE_VERSION
        assert cache_cli.main(["--prune", "--cache-dir", str(tmp_path)]) == 0
        assert (tmp_path / f"{spec.key}.pkl").is_file()
        assert foreign.is_file()
        assert cache_cli.main(["--prune", "--all", "--cache-dir", str(tmp_path)]) == 0
        assert not (tmp_path / f"{spec.key}.pkl").exists()
        assert foreign.is_file()

    def test_prune_never_touches_unrelated_json(self, tmp_path):
        """Non-manifest JSON in the cache dir (CLI exports, configs) is not ours."""
        self.populate(tmp_path)
        export = tmp_path / "scenario-churn-heavy.json"
        export.write_text(json.dumps({"groups": [], "replicates": 2}))
        broken = tmp_path / "not-json.json"
        broken.write_text("{nope")
        assert (
            cache_cli.main(["--prune", "--all", "--cache-dir", str(tmp_path)]) == 0
        )
        assert export.is_file() and broken.is_file()
        assert not list(tmp_path.glob("*.pkl"))

    def test_prune_all_empties_the_cache(self, tmp_path):
        self.populate(tmp_path)
        assert (
            cache_cli.main(["--prune", "--all", "--cache-dir", str(tmp_path)]) == 0
        )
        assert list(tmp_path.iterdir()) == []

    def test_prune_older_than(self, tmp_path):
        import os
        import time

        spec = self.populate(tmp_path)
        old = time.time() - 10 * 86400
        for path in tmp_path.iterdir():
            os.utime(path, (old, old))
        entries = cache_cli.scan_cache(tmp_path)
        targets = cache_cli.prune_targets(entries, older_than_days=5)
        assert [t.key for t in targets] == [spec.key]
        assert cache_cli.prune_targets(entries, older_than_days=30) == []

    def test_prune_older_than_with_injected_clock(self, tmp_path):
        """--prune --older-than is a pure function of the injected ``now``.

        File mtimes are pinned to a fixed epoch and the reference time is
        passed via ``main(now=...)``, so the test never reads the host
        clock (reprolint RL102 discipline: wall time enters exactly once,
        at the CLI entry point).
        """
        import os

        spec = self.populate(tmp_path)
        epoch = 1_000_000_000.0
        for path in tmp_path.iterdir():
            os.utime(path, (epoch, epoch))

        # Seven days later: a 10-day cutoff keeps the entry...
        now = epoch + 7 * 86400
        args = [
            "--prune", "--older-than", "10", "--cache-dir", str(tmp_path)
        ]
        assert cache_cli.main(args, now=now) == 0
        assert (tmp_path / f"{spec.key}.pkl").is_file()
        # ... and a 5-day cutoff removes it, at the same frozen instant.
        args = ["--prune", "--older-than", "5", "--cache-dir", str(tmp_path)]
        assert cache_cli.main(args, now=now) == 0
        assert not (tmp_path / f"{spec.key}.pkl").exists()

    def test_list_ages_use_injected_clock(self, tmp_path, capsys):
        import os

        self.populate(tmp_path)
        epoch = 1_000_000_000.0
        for path in tmp_path.iterdir():
            os.utime(path, (epoch, epoch))
        args = ["--list", "--cache-dir", str(tmp_path)]
        assert cache_cli.main(args, now=epoch + 3 * 86400) == 0
        out = capsys.readouterr().out
        assert "3.0" in out  # the age column, in days

    def test_list_cli_output(self, tmp_path, capsys):
        self.populate(tmp_path)
        assert cache_cli.main(["--list", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "tiny" in out and "ok" in out

    def test_list_shows_scenario_name_when_present(self, tmp_path, capsys):
        """Grid/scenario cache entries are inspectable by scenario name."""
        from repro.scenarios.registry import scenario_spec

        spec = scenario_spec("churn-heavy", num_epochs=60)
        BatchRunner(max_workers=1, cache_dir=tmp_path).run([spec])
        self.populate(tmp_path)  # a non-scenario entry alongside
        entries = {e.key: e for e in cache_cli.scan_cache(tmp_path)}
        assert entries[spec.key].scenario == "churn-heavy"
        assert cache_cli.main(["--list", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "scenario" in out  # the column header
        assert "churn-heavy" in out
        # The non-scenario entry renders a placeholder, not an empty cell.
        tiny_line = next(line for line in out.splitlines() if "tiny" in line)
        assert " - " in tiny_line

    def test_list_shows_campaign_id_when_present(self, tmp_path, capsys):
        """Store-backed and ad-hoc cache entries are distinguishable."""
        from repro.experiments.campaign import CampaignSpec, run_missing
        from repro.experiments.store import ResultsStore

        spec = CampaignSpec(
            name="cachetest",
            scenarios=("static-paper",),
            protocols=("dirq",),
            num_epochs=60,
        )
        runner = BatchRunner(max_workers=1, cache_dir=tmp_path)
        with ResultsStore(tmp_path / "s.sqlite") as store:
            run_missing(spec, store, runner=runner)
        self.populate(tmp_path)  # an ad-hoc entry alongside
        entries = {e.key: e for e in cache_cli.scan_cache(tmp_path)}
        (trial,) = spec.trial_specs()
        assert entries[trial.key].campaign == spec.campaign_id
        assert cache_cli.main(["--list", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "campaign" in out  # the column header
        assert spec.campaign_id in out
        # The ad-hoc entry renders a placeholder in the campaign column.
        tiny_line = next(line for line in out.splitlines() if "tiny" in line)
        assert tiny_line.count(" - ") >= 2  # scenario and campaign

    def test_list_empty_cache(self, tmp_path, capsys):
        assert cache_cli.main(["--cache-dir", str(tmp_path / "none")]) == 0
        assert "empty" in capsys.readouterr().out

    def test_prune_selectors_require_prune(self, tmp_path):
        with pytest.raises(SystemExit):
            cache_cli.main(["--older-than", "30", "--cache-dir", str(tmp_path)])
        with pytest.raises(SystemExit):
            cache_cli.main(["--all", "--cache-dir", str(tmp_path)])

    def test_cached_result_survives_a_prune_pass(self, tmp_path):
        spec = self.populate(tmp_path)
        cache_cli.main(["--prune", "--cache-dir", str(tmp_path)])
        runner = BatchRunner(max_workers=1, cache_dir=tmp_path)
        runner.run([spec])
        assert runner.last_stats.cached == 1 and runner.last_stats.executed == 0
