"""Tests for resumable campaigns: spec expansion, the results store, resume
semantics, and the ``python -m repro.experiments.campaign`` CLI.

The two properties this layer exists for:

* **Resume with zero re-work** -- a campaign killed at an arbitrary trial
  resumes executing exactly the missing trials (store rows survive, nothing
  recorded is ever re-run), even with the pickle cache disabled.
* **Deterministic exports** -- the JSON export of a campaign is
  byte-identical whether it ran uninterrupted on one worker or was
  interrupted and resumed on four.
"""

import dataclasses
import json

import pytest

from repro.experiments import batch as batch_mod
from repro.experiments import campaign as campaign_cli
from repro.experiments.batch import BatchRunner
from repro.experiments.campaign import (
    CampaignSpec,
    campaign_status,
    run_missing,
)
from repro.experiments.store import (
    METRIC_COLUMNS,
    ResultsStore,
)
from repro.scenarios.registry import scenario_spec


@pytest.fixture(autouse=True)
def _isolate_cache_env(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)


def tiny_campaign(**changes) -> CampaignSpec:
    base = dict(
        name="tiny",
        scenarios=("static-paper",),
        protocols=("dirq", "flooding"),
        replicates=2,
        num_epochs=60,
        seed=1,
    )
    base.update(changes)
    return CampaignSpec(**base)


@pytest.fixture(scope="module")
def trial_template():
    """One real TrialResult to clone in the fake-executor tests."""
    spec = scenario_spec("static-paper", num_epochs=60)
    return BatchRunner(max_workers=1, cache_dir=None).run([spec])[0]


def fake_executor(template):
    def execute(spec):
        return dataclasses.replace(template, spec=spec)

    return execute


class TestCampaignSpec:
    def test_expansion_is_deterministic_and_row_major(self):
        spec = tiny_campaign()
        trials = spec.trial_specs()
        assert len(trials) == spec.total_trials == 1 * 2 * 1 * 2
        # scenarios > protocols > sweep > replicates, row-major.
        assert [t.tags["protocol"] for t in trials] == [
            "dirq", "dirq", "flooding", "flooding",
        ]
        assert [t.tags["replicate"] for t in trials] == [0, 1, 0, 1]
        assert [t.key for t in spec.trial_specs()] == [t.key for t in trials]
        assert len({t.key for t in trials}) == len(trials)
        assert all(t.tags["campaign"] == spec.campaign_id for t in trials)

    def test_campaign_id_is_content_addressed(self):
        spec = tiny_campaign()
        assert spec.campaign_id == tiny_campaign().campaign_id
        assert spec.campaign_id.startswith("tiny-")
        assert (
            tiny_campaign(replicates=3).campaign_id != spec.campaign_id
        )
        assert (
            tiny_campaign(name="spaced name").campaign_id.startswith(
                "spaced-name-"
            )
        )

    def test_dirq_cell_shares_cache_key_with_scenario_cli(self):
        """The campaign tag lives in the spec tags, not the config, so the
        plain dirq cell hashes exactly like the scenario CLI's spec."""
        spec = tiny_campaign(protocols=("dirq",), replicates=1)
        (trial,) = spec.trial_specs()
        assert trial.key == scenario_spec("static-paper", num_epochs=60).key

    def test_sweep_cross_product_and_epoch_special_case(self):
        spec = tiny_campaign(
            protocols=("dirq",),
            replicates=1,
            sweep={
                "target_coverage": (0.2, 0.4),
                "num_epochs": (60, 80),
            },
        )
        points = spec.sweep_points()
        assert len(points) == 4
        trials = spec.trial_specs()
        assert spec.total_trials == len(trials) == 4
        # num_epochs routes through the scenario factory.
        assert sorted({t.config.num_epochs for t in trials}) == [60, 80]
        assert sorted({t.config.target_coverage for t in trials}) == [0.2, 0.4]
        assert len({t.key for t in trials}) == 4

    def test_jsonable_roundtrip_preserves_identity(self):
        spec = tiny_campaign(sweep={"target_coverage": (0.2, 0.4)})
        clone = CampaignSpec.from_jsonable(
            json.loads(json.dumps(spec.to_jsonable()))
        )
        assert clone == spec
        assert clone.campaign_id == spec.campaign_id

    def test_validation_rejects_bad_spaces(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            tiny_campaign(scenarios=("no-such",))
        with pytest.raises(KeyError, match="unknown protocol"):
            tiny_campaign(protocols=("udp",))
        with pytest.raises(ValueError, match="duplicate scenario"):
            tiny_campaign(scenarios=("static-paper", "static-paper"))
        with pytest.raises(ValueError, match="replicates"):
            tiny_campaign(replicates=0)
        with pytest.raises(ValueError, match="cannot sweep"):
            tiny_campaign(sweep={"seed": (1, 2)})
        with pytest.raises(ValueError, match="cannot sweep"):
            tiny_campaign(sweep={"no_such_field": (1,)})
        with pytest.raises(ValueError, match="no values"):
            tiny_campaign(sweep={"target_coverage": ()})
        with pytest.raises(ValueError, match="duplicate values"):
            tiny_campaign(sweep={"target_coverage": (0.2, 0.2)})
        with pytest.raises(ValueError, match="scalars"):
            tiny_campaign(sweep={"target_coverage": ([0.2],)})


class TestResultsStore:
    def populate(self, tmp_path, template, spec=None):
        spec = spec or tiny_campaign()
        store = ResultsStore(tmp_path / "s.sqlite")
        runner = BatchRunner(max_workers=1, executor="serial", cache_dir=None)
        real = batch_mod._execute_trial
        batch_mod._execute_trial = fake_executor(template)
        try:
            stats = run_missing(spec, store, runner=runner)
        finally:
            batch_mod._execute_trial = real
        return spec, store, stats

    def test_register_is_idempotent_but_rejects_spec_drift(self, tmp_path):
        spec = tiny_campaign()
        with ResultsStore(tmp_path / "s.sqlite") as store:
            for _ in range(2):
                store.register_campaign(
                    spec.campaign_id, spec.name, spec.spec_json, 4
                )
            assert store.campaign(spec.campaign_id).total_trials == 4
            with pytest.raises(ValueError, match="different spec"):
                store.register_campaign(
                    spec.campaign_id, spec.name, "{}", 4
                )

    def test_record_query_and_completed_keys(self, tmp_path, trial_template):
        spec, store, stats = self.populate(tmp_path, trial_template)
        with store:
            assert stats.executed == stats.stored == 4
            assert store.count(spec.campaign_id) == 4
            keys = store.completed_keys(spec.campaign_id)
            assert keys == {t.key for t in spec.trial_specs()}
            rows = store.query(spec.campaign_id)
            # Deterministic order: protocol before replicate.
            assert [(r["protocol"], r["replicate"]) for r in rows] == [
                ("dirq", 0), ("dirq", 1), ("flooding", 0), ("flooding", 1),
            ]
            assert all(
                isinstance(r[name], float) for r in rows for name in METRIC_COLUMNS
            )
            only = store.query(spec.campaign_id, protocol="dirq", replicate=1)
            assert len(only) == 1 and only[0]["replicate"] == 1
            # Re-recording is an upsert, not a duplicate row.
            assert store.count(spec.campaign_id) == 4

    def test_resolve_campaign_by_id_name_and_ambiguity(
        self, tmp_path, trial_template
    ):
        spec, store, _ = self.populate(tmp_path, trial_template)
        with store:
            assert store.resolve_campaign(spec.campaign_id).name == "tiny"
            assert (
                store.resolve_campaign("tiny").campaign_id == spec.campaign_id
            )
            with pytest.raises(KeyError, match="unknown campaign"):
                store.resolve_campaign("nope")
            other = tiny_campaign(replicates=3)
            store.register_campaign(
                other.campaign_id, other.name, other.spec_json,
                other.total_trials,
            )
            with pytest.raises(KeyError, match="ambiguous"):
                store.resolve_campaign("tiny")

    def test_replicate_groups_fold_cells(self, tmp_path, trial_template):
        spec, store, _ = self.populate(tmp_path, trial_template)
        with store:
            groups = store.replicate_groups(spec.campaign_id)
            assert len(groups) == 2  # one per (scenario, protocol)
            assert all(g.n == 2 for g in groups)
            assert {g.tags["protocol"] for g in groups} == {
                "dirq", "flooding",
            }
            for group in groups:
                assert set(METRIC_COLUMNS) <= set(group.metrics)

    def test_export_contains_no_provenance(self, tmp_path, trial_template):
        spec, store, _ = self.populate(tmp_path, trial_template)
        with store:
            payload = store.export_jsonable(spec.campaign_id)
        assert payload["completed_trials"] == payload["total_trials"] == 4
        text = json.dumps(payload)
        assert "runtime" not in text and "from_cache" not in text
        assert all(
            set(METRIC_COLUMNS) == set(t["metrics"]) for t in payload["trials"]
        )


class TestRunMissingResume:
    def big_campaign(self) -> CampaignSpec:
        # 2 scenarios x 2 protocols x (5 x 5 sweep points) x 10 replicates
        # = 1000 cells, per the acceptance criteria.
        return CampaignSpec(
            name="big",
            scenarios=("static-paper", "churn-heavy"),
            protocols=("dirq", "atc"),
            replicates=10,
            num_epochs=60,
            sweep={
                "target_coverage": (0.1, 0.2, 0.3, 0.4, 0.5),
                "query_period": (10, 20, 30, 40, 50),
            },
        )

    def run(self, spec, store, template, workers=1, progress=None,
            counter=None):
        """run_missing with a fake executor (threads, no pickle cache)."""
        executor = "serial" if workers == 1 else "thread"
        runner = BatchRunner(
            max_workers=workers, executor=executor, cache_dir=None
        )
        real = batch_mod._execute_trial
        base = fake_executor(template)

        def counting(spec_):
            if counter is not None:
                counter.append(spec_.key)
            return base(spec_)

        batch_mod._execute_trial = counting
        try:
            return run_missing(spec, store, runner=runner, progress=progress)
        finally:
            batch_mod._execute_trial = real

    def test_thousand_cell_campaign_resumes_with_zero_rework(
        self, tmp_path, trial_template
    ):
        spec = self.big_campaign()
        assert spec.total_trials == 1000
        interrupt_at = 137  # an arbitrary mid-campaign trial
        seen = []

        def interrupting(result):
            seen.append(result)
            if len(seen) == interrupt_at:
                raise KeyboardInterrupt

        with ResultsStore(tmp_path / "s.sqlite") as store:
            with pytest.raises(KeyboardInterrupt):
                self.run(
                    spec, store, trial_template, progress=interrupting
                )
            # Every trial recorded before the kill survived it.
            assert store.count(spec.campaign_id) == interrupt_at

            executed = []
            stats = self.run(spec, store, trial_template, counter=executed)
            assert stats.complete_before == interrupt_at
            assert stats.scheduled == 1000 - interrupt_at
            assert stats.executed == len(executed) == 1000 - interrupt_at
            # Nothing recorded was re-executed.
            assert not {k for k in executed} & {
                r.spec.key for r in seen[:interrupt_at]
            }
            assert store.count(spec.campaign_id) == 1000

            # A third pass over the complete campaign executes nothing.
            third = self.run(spec, store, trial_template)
            assert third.scheduled == third.executed == 0
            assert store.count(spec.campaign_id) == 1000

    def test_interrupted_multiworker_export_matches_serial_run(
        self, tmp_path, trial_template
    ):
        spec = tiny_campaign(
            replicates=3, sweep={"target_coverage": (0.2, 0.4)}
        )

        with ResultsStore(tmp_path / "serial.sqlite") as store:
            self.run(spec, store, trial_template, workers=1)
            reference = json.dumps(
                store.export_jsonable(spec.campaign_id), sort_keys=True,
                indent=2,
            )

        calls = []

        def interrupting(result):
            calls.append(result)
            if len(calls) == 5:
                raise KeyboardInterrupt

        with ResultsStore(tmp_path / "resumed.sqlite") as store:
            with pytest.raises(KeyboardInterrupt):
                self.run(
                    spec, store, trial_template, workers=4,
                    progress=interrupting,
                )
            self.run(spec, store, trial_template, workers=4)
            resumed = json.dumps(
                store.export_jsonable(spec.campaign_id), sort_keys=True,
                indent=2,
            )
        assert resumed == reference

    def test_campaign_composes_with_scenario_cli_cache(self, tmp_path):
        """A trial cached by repro.scenarios.run is not re-run -- but it IS
        recorded in the store."""
        cache_dir = tmp_path / "cache"
        cli_spec = scenario_spec("static-paper", num_epochs=60)
        BatchRunner(max_workers=1, cache_dir=cache_dir).run([cli_spec])

        spec = tiny_campaign(protocols=("dirq",), replicates=1)
        runner = BatchRunner(max_workers=1, cache_dir=cache_dir)
        with ResultsStore(tmp_path / "s.sqlite") as store:
            stats = run_missing(spec, store, runner=runner)
            assert stats.executed == 0
            assert stats.cached == 1
            assert stats.stored == 1
            (row,) = store.query(spec.campaign_id)
            # The store row carries the campaign's identity, not the cached
            # twin's label.
            assert row["scenario"] == "static-paper"
            assert row["label"] == "static-paper/dirq"

    def test_campaign_status_counts_cells(self, tmp_path, trial_template):
        spec = tiny_campaign()
        with ResultsStore(tmp_path / "s.sqlite") as store:
            store.register_campaign(
                spec.campaign_id, spec.name, spec.spec_json, spec.total_trials
            )
            store.record_trial(
                spec.campaign_id,
                dataclasses.replace(trial_template, spec=spec.trial_specs()[0]),
            )
            rows = campaign_status(spec, store)
        assert rows == [
            ("static-paper", "dirq", 1, 2),
            ("static-paper", "flooding", 0, 2),
        ]


class TestCampaignCli:
    def base_args(self, tmp_path):
        return [
            "--name", "clitest",
            "--scenarios", "static-paper",
            "--protocols", "dirq",
            "--replicates", "2",
            "--epochs", "60",
            "--workers", "1",
            "--store", str(tmp_path / "s.sqlite"),
            "--cache-dir", str(tmp_path / "cache"),
        ]

    def test_new_resume_status_query_roundtrip(self, tmp_path, capsys):
        args = self.base_args(tmp_path)
        export = tmp_path / "out.json"
        md = tmp_path / "out.md"
        assert campaign_cli.main(["--new"] + args) == 0
        out = capsys.readouterr().out
        assert "executed 2" in out and "2/2 trials" in out

        # --new on an existing campaign refuses; --resume is a no-op run.
        assert campaign_cli.main(["--new"] + args) == 2
        assert "already exists" in capsys.readouterr().err
        assert campaign_cli.main(
            ["--resume", "--export", str(export), "--markdown", str(md)]
            + args
        ) == 0
        out = capsys.readouterr().out
        assert "executed 0" in out
        payload = json.loads(export.read_text())
        assert payload["completed_trials"] == 2
        assert "clitest" in md.read_text()

        # --status/--query by campaign name, plus the CI guard.
        assert campaign_cli.main(
            ["--status", "--campaign", "clitest", "--require-complete",
             "--store", str(tmp_path / "s.sqlite")]
        ) == 0
        assert "2/2" in capsys.readouterr().out
        assert campaign_cli.main(
            ["--query", "--campaign", "clitest", "--replicate", "1",
             "--store", str(tmp_path / "s.sqlite")]
        ) == 0
        out = capsys.readouterr().out
        assert "1 stored trials" in out and "cost_ratio" in out

    def test_resume_unknown_campaign_fails(self, tmp_path, capsys):
        assert campaign_cli.main(["--resume"] + self.base_args(tmp_path)) == 2
        assert "not registered" in capsys.readouterr().err

    def test_status_of_empty_store_lists_nothing(self, tmp_path, capsys):
        store = str(tmp_path / "s.sqlite")
        assert campaign_cli.main(["--status", "--store", store]) == 0
        assert "no campaigns" in capsys.readouterr().out
        assert (
            campaign_cli.main(
                ["--status", "--store", store, "--require-complete"]
            ) == 1
        )

    def test_require_complete_fails_on_partial_campaign(
        self, tmp_path, capsys, trial_template, monkeypatch
    ):
        args = self.base_args(tmp_path)
        calls = []

        def interrupt_after_first(spec):
            if calls:
                raise KeyboardInterrupt
            calls.append(spec.key)
            return dataclasses.replace(trial_template, spec=spec)

        monkeypatch.setattr(batch_mod, "_execute_trial", interrupt_after_first)
        assert campaign_cli.main(["--new"] + args) == 130
        assert "resume" in capsys.readouterr().err
        assert (
            campaign_cli.main(["--status", "--require-complete"] + args) == 1
        )
        assert "FAIL" in capsys.readouterr().err

    def test_grid_renders_from_campaign_store(self, tmp_path, capsys):
        """--from-campaign renders matrices without executing trials."""
        from repro.experiments import grid as grid_cli

        args = self.base_args(tmp_path)
        assert campaign_cli.main(["--new"] + args) == 0
        capsys.readouterr()
        json_path = tmp_path / "grid.json"
        assert grid_cli.main(
            [
                "--from-campaign", "clitest",
                "--store", str(tmp_path / "s.sqlite"),
                "--json", str(json_path),
                "--baseline", "none",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "0 trials executed" in out
        assert "mean_accuracy" in out
        payload = json.loads(json_path.read_text())
        assert [c["scenario"] for c in payload["cells"]] == ["static-paper"]
        assert payload["cells"][0]["n"] == 2

    def test_grid_from_campaign_rejects_swept_campaigns(
        self, tmp_path, capsys, trial_template, monkeypatch
    ):
        from repro.experiments import grid as grid_cli

        monkeypatch.setattr(
            batch_mod, "_execute_trial", fake_executor(trial_template)
        )
        args = self.base_args(tmp_path)
        assert campaign_cli.main(
            ["--new", "--sweep", "target_coverage=0.2,0.4"] + args
        ) == 0
        capsys.readouterr()
        assert grid_cli.main(
            ["--from-campaign", "clitest", "--store", str(tmp_path / "s.sqlite")]
        ) == 2
        assert "sweep points" in capsys.readouterr().err
