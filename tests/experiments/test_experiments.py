"""Tests for the experiment configuration, runner, and figure harnesses.

These use deliberately small networks and epoch counts so the whole module
runs in seconds; the benchmarks exercise the paper-scale settings.
"""

import pytest

from repro.core.config import ThresholdMode
from repro.experiments.config import ExperimentConfig, ProtocolName, TopologyEvent
from repro.experiments.runner import ExperimentRunner, run_experiment
from repro.experiments.scenarios import paper_network, small_network
from repro.experiments import fig5_accuracy, fig6_updates, fig7_overshoot, headline
from repro.experiments import table_analytical
from repro.metrics.accuracy import delivery_completeness


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        num_nodes=15,
        comm_range=40.0,
        num_epochs=200,
        query_period=20,
        target_coverage=0.4,
        query_sensor_type="temperature",
        seed=5,
    )


@pytest.fixture(scope="module")
def tiny_result(tiny_config):
    return run_experiment(tiny_config.with_fixed_delta(5.0))


class TestExperimentConfig:
    def test_defaults_match_paper_setup(self):
        cfg = paper_network()
        assert cfg.num_nodes == 50
        assert cfg.query_period == 20
        assert cfg.num_epochs == 20_000

    def test_with_fixed_delta_and_atc(self, tiny_config):
        fixed = tiny_config.with_fixed_delta(9.0)
        assert fixed.dirq.delta_percent == 9.0
        assert fixed.dirq.threshold_mode == ThresholdMode.FIXED
        atc = tiny_config.with_atc(target_cost_ratio=0.4)
        assert atc.dirq.threshold_mode == ThresholdMode.ADAPTIVE
        assert atc.dirq.atc_target_cost_ratio == 0.4
        flood = tiny_config.with_flooding()
        assert flood.protocol == ProtocolName.FLOODING

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(num_nodes=1)
        with pytest.raises(ValueError):
            ExperimentConfig(target_coverage=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(protocol="carrier-pigeon")
        with pytest.raises(ValueError):
            ExperimentConfig(initially_dead={0})
        with pytest.raises(ValueError):
            TopologyEvent(epoch=1, kind="explode", node_id=2)


class TestRunnerDirQ:
    def test_injects_expected_number_of_queries(self, tiny_result, tiny_config):
        expected = len(range(tiny_config.query_period, tiny_config.num_epochs,
                             tiny_config.query_period))
        assert tiny_result.num_queries == expected
        assert len(tiny_result.audit.records) == expected
        assert len(tiny_result.per_query_costs) == expected

    def test_flooding_reference_uses_alive_topology(self, tiny_result, tiny_config):
        # N + 2L for 15 nodes: at least 15 + 2*14.
        assert tiny_result.flooding_cost_per_query >= 15 + 2 * 14

    def test_queries_are_mostly_delivered(self, tiny_result):
        assert delivery_completeness(tiny_result.audit.records) > 0.9

    def test_cost_breakdown_contains_query_and_update_traffic(self, tiny_result):
        assert tiny_result.breakdown.query_cost > 0
        assert tiny_result.breakdown.update_cost > 0
        assert tiny_result.breakdown.flood_cost == 0

    def test_update_series_covers_run(self, tiny_result, tiny_config):
        assert len(tiny_result.update_series) == tiny_config.num_epochs // tiny_config.window_epochs

    def test_reproducible_with_same_seed(self, tiny_config):
        a = run_experiment(tiny_config.with_fixed_delta(5.0))
        b = run_experiment(tiny_config.with_fixed_delta(5.0))
        assert a.total_dirq_cost == b.total_dirq_cost
        assert a.mean_overshoot_percent == b.mean_overshoot_percent
        assert [r.received for r in a.audit.records] == [
            r.received for r in b.audit.records
        ]

    def test_different_seed_changes_workload(self, tiny_config):
        a = run_experiment(tiny_config.with_fixed_delta(5.0))
        b = run_experiment(tiny_config.replace(seed=99).with_fixed_delta(5.0))
        assert a.total_dirq_cost != b.total_dirq_cost

    def test_build_is_idempotent(self, tiny_config):
        runner = ExperimentRunner(tiny_config)
        assert runner.build() is runner.build()


class TestRunnerFlooding:
    def test_flooding_cost_matches_analytic_reference(self, tiny_config):
        result = run_experiment(tiny_config.with_flooding())
        expected = result.flooding_cost_per_query * result.num_queries
        assert result.breakdown.flood_cost == pytest.approx(expected)

    def test_flooding_reaches_every_alive_node(self, tiny_config):
        result = run_experiment(tiny_config.with_flooding())
        for record in result.audit.records:
            assert len(record.received) == tiny_config.num_nodes - 1


class TestRunnerDynamics:
    def test_node_failures_are_survivable(self):
        base = ExperimentConfig(
            num_nodes=15,
            comm_range=45.0,
            num_epochs=300,
            query_period=20,
            target_coverage=0.4,
            query_sensor_type="temperature",
            seed=8,
            topology_events=[
                TopologyEvent(epoch=100, kind=TopologyEvent.KILL, node_id=5),
                TopologyEvent(epoch=100, kind=TopologyEvent.KILL, node_id=9),
            ],
        )
        result = run_experiment(base.with_fixed_delta(5.0))
        assert result.alive_at_end == set(range(15)) - {5, 9}
        assert 5 not in result.tree
        late_records = result.audit.records_between(150, 300)
        assert delivery_completeness(late_records) > 0.8

    def test_killing_root_is_rejected(self):
        cfg = ExperimentConfig(
            num_nodes=10,
            comm_range=45.0,
            num_epochs=100,
            topology_events=[TopologyEvent(epoch=10, kind="kill", node_id=0)],
        )
        with pytest.raises(ValueError):
            run_experiment(cfg)

    def test_initially_dead_node_can_be_activated(self):
        cfg = ExperimentConfig(
            num_nodes=12,
            comm_range=45.0,
            num_epochs=200,
            query_period=20,
            query_sensor_type="temperature",
            seed=4,
            initially_dead={7},
            topology_events=[
                TopologyEvent(epoch=80, kind=TopologyEvent.ACTIVATE, node_id=7)
            ],
        )
        result = run_experiment(cfg.with_fixed_delta(5.0))
        assert 7 in result.alive_at_end
        assert 7 in result.tree

    def test_initially_dead_results_ignore_set_insertion_order(self):
        # {1, 9} and {9, 1} compare equal but iterate in different orders
        # under CPython (9 % 8 collides with 1).  The runner must kill in
        # sorted order so set-equal configs -- which share a config_hash --
        # also share their results (reprolint RL110; cache v5).
        def run_with(dead):
            cfg = ExperimentConfig(
                num_nodes=25,
                comm_range=45.0,
                num_epochs=60,
                query_period=20,
                seed=0,
                initially_dead=dead,
            )
            return run_experiment(cfg.with_fixed_delta(5.0))

        a, b = run_with({1, 9}), run_with({9, 1})
        assert a.breakdown == b.breakdown
        assert a.ledger.per_node_cost() == b.ledger.per_node_cost()
        assert a.alive_at_end == b.alive_at_end
        assert a.per_query_costs == b.per_query_costs

    def test_heterogeneous_assignment(self):
        cfg = ExperimentConfig(
            num_nodes=12,
            comm_range=45.0,
            num_epochs=150,
            query_period=30,
            seed=6,
            sensors_per_node=2,
        )
        result = run_experiment(cfg.with_fixed_delta(5.0))
        assert result.num_queries > 0
        assert delivery_completeness(result.audit.records) > 0.7


class TestFigureHarnesses:
    def test_fig5_run_produces_points_per_delta_and_coverage(self):
        result = fig5_accuracy.run(
            deltas=(3.0, 9.0),
            coverages=(0.4,),
            num_epochs=150,
            base_config=small_network(num_nodes=14, num_epochs=150),
            replicates=2,
        )
        assert len(result.points) == 2
        # One replicate group per (delta, coverage) point, n=2 each.
        assert [g.n for g in result.stats] == [2, 2]
        assert all(
            g.metrics["cost_ratio"].ci_halfwidth is not None
            for g in result.stats
        )
        text = fig5_accuracy.report(result)
        assert "RECEIVE" in text and "delta" in text
        assert "± " in text and "[n=2]" in text
        assert '"figure": "fig5"' in result.to_json()

    def test_fig6_run_produces_series_and_references(self):
        result = fig6_updates.run(
            deltas=(5.0,),
            num_epochs=200,
            base_config=small_network(num_nodes=14, num_epochs=200),
            replicates=2,
        )
        assert "atc" in result.series.names()
        assert result.umax_per_window > 0
        assert "delta=5%" in result.cost_ratios
        assert {g.label for g in result.stats} == {"delta=5%", "atc"}
        text = fig6_updates.report(result)
        assert "U_max" in text and "[n=2]" in text

    def test_fig7_run_produces_overshoot_series(self):
        result = fig7_overshoot.run(
            deltas=(5.0,),
            num_epochs=200,
            include_atc=False,
            window_epochs=100,
            base_config=small_network(num_nodes=14, num_epochs=200),
            replicates=2,
        )
        assert "delta=5%" in result.series
        assert result.stats[0].n == 2
        assert "Overshoot" in fig7_overshoot.report(result)
        assert '"figure": "fig7"' in result.to_json()

    def test_headline_comparison(self):
        result = headline.run(
            num_epochs=200,
            base_config=small_network(num_nodes=14, num_epochs=200),
            replicates=2,
        )
        assert result.comparison.flooding_total > 0
        assert 0 < result.cost_ratio < 2.0
        # Replicate i of DirQ and flooding must share one workload seed.
        assert (
            result.stats[0].results[1].config.seed
            == result.stats[1].results[1].config.seed
        )
        assert "flooding" in headline.report(result)

    def test_analytical_experiment_consistency(self):
        rows, checks, example = table_analytical.run()
        assert all(c.consistent for c in checks)
        assert example["f_max"] == pytest.approx(0.7667, abs=1e-3)
        assert "f_max" in table_analytical.report(rows, checks, example)
