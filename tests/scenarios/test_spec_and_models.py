"""Unit tests for the scenario spec dataclasses and runtime models."""

import math

import numpy as np
import pytest

from repro.scenarios.models import (
    ChurnModel,
    EnergyProfile,
    MobilityModel,
    TrafficProfile,
    rebuild_spanning_tree,
)
from repro.scenarios.spec import (
    EVENT_ACTIVATE,
    EVENT_KILL,
    ChurnConfig,
    EnergyConfig,
    MobilityConfig,
    ScenarioConfig,
    TrafficConfig,
)
from tests.helpers import line_topology


def rng(seed: int = 7) -> np.random.Generator:
    return np.random.default_rng(seed)


class TestSpecValidation:
    def test_churn_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ChurnConfig(death_rate=-0.1)
        with pytest.raises(ValueError):
            ChurnConfig(start_epoch=10, end_epoch=10)
        with pytest.raises(ValueError):
            ChurnConfig(revive_after=0)

    def test_mobility_rejects_bad_values(self):
        with pytest.raises(ValueError):
            MobilityConfig(speed_min=2.0, speed_max=1.0)
        with pytest.raises(ValueError):
            MobilityConfig(relink_period=0)
        with pytest.raises(ValueError):
            MobilityConfig(mobile_fraction=0.0)

    def test_traffic_rejects_bad_values(self):
        with pytest.raises(ValueError):
            TrafficConfig(mode="steady")
        with pytest.raises(ValueError):
            TrafficConfig(mode="bursty", queries_per_burst=0)
        with pytest.raises(ValueError):
            TrafficConfig(mode="diurnal", peak_to_trough=0.5)
        with pytest.raises(ValueError):
            TrafficConfig(mode="ramp", coverage_start=0.2)  # end missing

    def test_energy_rejects_bad_values(self):
        with pytest.raises(ValueError):
            EnergyConfig(distribution="gaussian")
        with pytest.raises(ValueError):
            EnergyConfig(capacity_low=10.0, capacity_high=5.0)
        with pytest.raises(ValueError):
            EnergyConfig(check_period=0)

    def test_scenario_requires_a_dimension(self):
        with pytest.raises(ValueError):
            ScenarioConfig(name="empty")

    def test_dimensions_property(self):
        scenario = ScenarioConfig(
            churn=ChurnConfig(), energy=EnergyConfig()
        )
        assert scenario.dimensions == ("churn", "energy")


class TestChurnModel:
    def test_deterministic_per_seed(self):
        cfg = ChurnConfig(death_rate=0.05, max_deaths=10)
        nodes = list(range(20))
        a = ChurnModel(cfg).events(nodes, 0, 400, rng(3))
        b = ChurnModel(cfg).events(nodes, 0, 400, rng(3))
        c = ChurnModel(cfg).events(nodes, 0, 400, rng(4))
        assert a == b
        assert a != c

    def test_never_kills_the_root(self):
        cfg = ChurnConfig(death_rate=0.5)
        events = ChurnModel(cfg).events(list(range(5)), 0, 200, rng())
        assert all(nid != 0 for _, _, nid in events)

    def test_respects_max_deaths_and_window(self):
        cfg = ChurnConfig(
            death_rate=0.5, start_epoch=50, end_epoch=150, max_deaths=3
        )
        events = ChurnModel(cfg).events(list(range(30)), 0, 400, rng())
        kills = [e for e in events if e[1] == EVENT_KILL]
        assert len(kills) == 3
        assert all(50 <= e[0] < 150 for e in kills)

    def test_kills_are_unique_without_revival(self):
        cfg = ChurnConfig(death_rate=0.3)
        events = ChurnModel(cfg).events(list(range(10)), 0, 300, rng())
        killed = [nid for _, kind, nid in events if kind == EVENT_KILL]
        assert len(killed) == len(set(killed))

    def test_revive_after_schedules_activations(self):
        cfg = ChurnConfig(death_rate=0.1, revive_after=40, max_deaths=5)
        events = ChurnModel(cfg).events(list(range(12)), 0, 1000, rng())
        deaths = {
            (epoch, nid) for epoch, kind, nid in events if kind == EVENT_KILL
        }
        revivals = {
            (epoch, nid) for epoch, kind, nid in events if kind == EVENT_ACTIVATE
        }
        for epoch, nid in deaths:
            if epoch + 40 < 1000:
                assert (epoch + 40, nid) in revivals

    def test_events_sorted_by_epoch(self):
        cfg = ChurnConfig(death_rate=0.2, revive_after=10)
        events = ChurnModel(cfg).events(list(range(15)), 0, 300, rng())
        epochs = [e[0] for e in events]
        assert epochs == sorted(epochs)

    def test_zero_rate_is_empty(self):
        cfg = ChurnConfig(death_rate=0.0)
        assert ChurnModel(cfg).events(list(range(5)), 0, 100, rng()) == []


class TestTrafficProfile:
    def test_bursty_counts(self):
        profile = TrafficProfile(
            TrafficConfig(
                mode="bursty",
                burst_every=100,
                queries_per_burst=5,
                background_period=0,
            )
        )
        schedule = profile.schedule(400, 400, rng())
        assert schedule == sorted(schedule)
        # Bursts at 100, 200, 300: five queries each.
        assert len(schedule) == 15
        assert schedule.count(100) == 5

    def test_bursty_with_background(self):
        profile = TrafficProfile(
            TrafficConfig(
                mode="bursty",
                burst_every=200,
                queries_per_burst=3,
                background_period=50,
            )
        )
        schedule = profile.schedule(400, 400, rng())
        # Background: every 50 epochs from the warm-up start at 20.
        assert 20 in schedule and 70 in schedule
        assert schedule.count(200) >= 3

    def test_ramp_is_deterministic_and_densifies(self):
        profile = TrafficProfile(
            TrafficConfig(mode="ramp", period_start=50, period_end=10)
        )
        a = profile.schedule(1000, 1000, rng(1))
        b = profile.schedule(1000, 1000, rng(2))
        assert a == b  # no randomness consumed
        first_half = sum(1 for e in a if e < 500)
        second_half = sum(1 for e in a if e >= 500)
        assert second_half > first_half

    def test_diurnal_deterministic_per_seed(self):
        profile = TrafficProfile(TrafficConfig(mode="diurnal", mean_rate=0.1))
        assert profile.schedule(500, 250, rng(9)) == profile.schedule(
            500, 250, rng(9)
        )

    def test_coverage_ramp(self):
        profile = TrafficProfile(
            TrafficConfig(mode="ramp", coverage_start=0.2, coverage_end=0.6)
        )
        assert profile.coverage_at(0, 101, base=0.4) == pytest.approx(0.2)
        assert profile.coverage_at(100, 101, base=0.4) == pytest.approx(0.6)

    def test_coverage_defaults_to_base(self):
        profile = TrafficProfile(TrafficConfig(mode="bursty"))
        assert profile.coverage_at(10, 100, base=0.4) == 0.4


class TestEnergyProfile:
    def test_root_budget_is_infinite(self):
        caps = EnergyProfile(EnergyConfig()).capacities(range(10), 0, rng())
        assert caps[0] == float("inf")

    def test_uniform_within_bounds(self):
        cfg = EnergyConfig(
            distribution="uniform", capacity_low=100.0, capacity_high=200.0
        )
        caps = EnergyProfile(cfg).capacities(range(50), 0, rng())
        others = [caps[n] for n in range(1, 50)]
        assert all(100.0 <= c <= 200.0 for c in others)

    def test_two_tier_values(self):
        cfg = EnergyConfig(
            distribution="two_tier",
            capacity_low=50.0,
            capacity_high=500.0,
            fraction_low=0.5,
        )
        caps = EnergyProfile(cfg).capacities(range(200), 0, rng())
        others = [caps[n] for n in range(1, 200)]
        assert set(others) == {50.0, 500.0}
        low_share = sum(1 for c in others if c == 50.0) / len(others)
        assert 0.35 < low_share < 0.65

    def test_lognormal_positive_and_deterministic(self):
        cfg = EnergyConfig(distribution="lognormal", median_capacity=100.0)
        a = EnergyProfile(cfg).capacities(range(20), 0, rng(5))
        b = EnergyProfile(cfg).capacities(range(20), 0, rng(5))
        assert a == b
        assert all(c > 0 for c in a.values())

    def test_batteries_match_capacities(self):
        cfg = EnergyConfig(capacity_low=10.0, capacity_high=10.0)
        batteries = EnergyProfile(cfg).batteries(range(4), 0, rng())
        assert batteries[1].capacity == 10.0
        assert not batteries[1].depleted


class TestMobilityModel:
    def make(self, fraction=1.0, seed=11, n=10):
        model = MobilityModel(
            MobilityConfig(
                mobile_fraction=fraction, speed_min=1.0, speed_max=2.0,
                relink_period=10,
            ),
            area_size=100.0,
        )
        positions = {i: (float(i), float(i)) for i in range(n)}
        model.initialise(positions, root_id=0, rng=rng(seed))
        return model

    def test_root_never_moves(self):
        model = self.make()
        assert 0 not in model.mobile
        model.step()
        assert model.positions[0] == (0.0, 0.0)

    def test_fraction_selects_count(self):
        model = self.make(fraction=0.4, n=11)
        assert len(model.mobile) == 4  # 40 % of the 10 non-root nodes

    def test_positions_stay_in_area(self):
        model = self.make()
        for _ in range(50):
            model.step()
        for x, y in model.positions.values():
            assert 0.0 <= x <= 100.0 and 0.0 <= y <= 100.0

    def test_step_moves_at_most_speed_times_period(self):
        model = self.make()
        before = dict(model.positions)
        model.step()
        for nid in model.mobile:
            dist = math.dist(before[nid], model.positions[nid])
            assert dist <= 2.0 * 10 + 1e-9

    def test_deterministic_per_seed(self):
        a, b = self.make(seed=3), self.make(seed=3)
        for _ in range(5):
            assert a.step() == b.step()

    def test_step_requires_initialise(self):
        model = MobilityModel(MobilityConfig(), area_size=100.0)
        with pytest.raises(RuntimeError):
            model.step()


class TestRebuildSpanningTree:
    def test_full_tree_on_connected_topology(self):
        topo = line_topology(5)
        tree = rebuild_spanning_tree(topo, set(range(5)), root=0)
        assert tree.node_ids == [0, 1, 2, 3, 4]
        assert tree.parent_of(3) == 2

    def test_partitioned_nodes_are_dropped(self):
        topo = line_topology(5)
        # Node 2 dead: 3 and 4 cannot reach the root.
        tree = rebuild_spanning_tree(topo, {0, 1, 3, 4}, root=0)
        assert tree.node_ids == [0, 1]

    def test_deterministic_parent_choice(self):
        topo = line_topology(4)
        a = rebuild_spanning_tree(topo, set(range(4)), root=0)
        b = rebuild_spanning_tree(topo, set(range(4)), root=0)
        assert a.parent == b.parent
