"""Tests for the correlated-area-failure and group-mobility extensions."""

import math

import numpy as np
import pytest

from repro.experiments.batch import config_hash
from repro.experiments.runner import run_experiment
from repro.scenarios.models import ChurnModel, MobilityModel
from repro.scenarios.spec import (
    EVENT_ACTIVATE,
    EVENT_KILL,
    ChurnConfig,
    MobilityConfig,
    ScenarioConfig,
)
from repro.scenarios.static import small_network


def rng(seed: int = 7) -> np.random.Generator:
    return np.random.default_rng(seed)


def grid_positions(n: int = 16, spacing: float = 10.0):
    """Node i at (spacing * (i % 4), spacing * (i // 4))."""
    return {i: (spacing * (i % 4), spacing * (i // 4)) for i in range(n)}


class TestAreaSpecValidation:
    def test_area_fields_must_pair(self):
        with pytest.raises(ValueError):
            ChurnConfig(area_epoch=10)  # radius missing
        with pytest.raises(ValueError):
            ChurnConfig(area_radius=5.0)  # epoch missing

    def test_dependent_fields_require_area(self):
        with pytest.raises(ValueError):
            ChurnConfig(area_center=(1.0, 2.0))
        with pytest.raises(ValueError):
            ChurnConfig(area_revive_after=10)
        with pytest.raises(ValueError):
            ChurnConfig(area_revive_stagger=1)

    def test_bad_area_values(self):
        with pytest.raises(ValueError):
            ChurnConfig(area_epoch=10, area_radius=0.0)
        with pytest.raises(ValueError):
            ChurnConfig(area_epoch=-1, area_radius=5.0)
        with pytest.raises(ValueError):
            ChurnConfig(area_epoch=10, area_radius=5.0, area_center=(1.0,))
        with pytest.raises(ValueError):
            ChurnConfig(area_epoch=10, area_radius=5.0, area_revive_after=0)
        with pytest.raises(ValueError):
            # A stagger without a revive delay would be silently ignored.
            ChurnConfig(area_epoch=10, area_radius=5.0, area_revive_stagger=5)

    def test_center_normalised_to_float_tuple(self):
        cfg = ChurnConfig(area_epoch=10, area_radius=5.0, area_center=(1, 2))
        assert cfg.area_center == (1.0, 2.0)


class TestAreaHashCompatibility:
    def test_unset_area_fields_do_not_change_the_hash(self):
        # Two configs built through dataclasses with/without the new fields
        # present-but-None must canonicalise identically; the registry
        # golden hashes in test_registry_and_runner.py pin the absolute
        # pre-extension values.
        base = small_network(num_nodes=10, num_epochs=80)
        a = base.with_scenario(ScenarioConfig(churn=ChurnConfig(death_rate=0.02)))
        b = base.with_scenario(
            ScenarioConfig(
                churn=ChurnConfig(
                    death_rate=0.02,
                    area_epoch=None,
                    area_radius=None,
                    area_center=None,
                )
            )
        )
        assert config_hash(a) == config_hash(b)

    def test_area_parameters_enter_the_hash(self):
        base = small_network(num_nodes=10, num_epochs=80)

        def with_area(radius):
            return base.with_scenario(
                ScenarioConfig(
                    churn=ChurnConfig(
                        death_rate=0.0, area_epoch=20, area_radius=radius
                    )
                )
            )

        plain = base.with_scenario(ScenarioConfig(churn=ChurnConfig()))
        assert config_hash(with_area(10.0)) != config_hash(plain)
        assert config_hash(with_area(10.0)) != config_hash(with_area(20.0))
        assert config_hash(with_area(10.0)) == config_hash(with_area(10.0))


class TestAreaChurnModel:
    def area_cfg(self, **kw):
        kw.setdefault("death_rate", 0.0)
        kw.setdefault("area_epoch", 50)
        kw.setdefault("area_radius", 12.0)
        return ChurnConfig(**kw)

    def test_explicit_center_membership(self):
        positions = grid_positions()
        cfg = self.area_cfg(area_center=(0.0, 0.0))
        events = ChurnModel(cfg).events(
            list(range(16)), 0, 200, rng(), positions=positions
        )
        killed = {nid for _, kind, nid in events if kind == EVENT_KILL}
        expected = {
            nid
            for nid, (x, y) in positions.items()
            if nid != 0 and math.hypot(x, y) <= 12.0
        }
        assert killed == expected
        assert all(epoch == 50 for epoch, _, _ in events)

    def test_sampled_center_is_deterministic_and_enters_no_extra_draws(self):
        positions = grid_positions()
        cfg = self.area_cfg()
        a = ChurnModel(cfg).events(list(range(16)), 0, 200, rng(3), positions=positions)
        b = ChurnModel(cfg).events(list(range(16)), 0, 200, rng(3), positions=positions)
        assert a == b
        assert a, "sampled-centre blast killed nobody"

    def test_sampled_center_hits_at_least_one_node(self):
        # The centre is a node's own position, so the disc always contains
        # that node (unless the draw picks... it cannot: radius > 0).
        positions = grid_positions()
        for seed in range(10):
            events = ChurnModel(self.area_cfg(area_radius=0.5)).events(
                list(range(16)), 0, 200, rng(seed), positions=positions
            )
            assert len(events) >= 1

    def test_root_survives_a_blast_covering_everything(self):
        positions = grid_positions()
        cfg = self.area_cfg(area_center=(15.0, 15.0), area_radius=1e9)
        events = ChurnModel(cfg).events(
            list(range(16)), 0, 200, rng(), positions=positions
        )
        killed = {nid for _, kind, nid in events if kind == EVENT_KILL}
        assert killed == set(range(1, 16))

    def test_staggered_revival_schedule(self):
        positions = grid_positions()
        cfg = self.area_cfg(
            area_center=(0.0, 0.0),
            area_radius=12.0,
            area_revive_after=30,
            area_revive_stagger=5,
        )
        events = ChurnModel(cfg).events(
            list(range(16)), 0, 400, rng(), positions=positions
        )
        kills = sorted(nid for _, kind, nid in events if kind == EVENT_KILL)
        revives = {
            nid: epoch for epoch, kind, nid in events if kind == EVENT_ACTIVATE
        }
        for k, nid in enumerate(kills):
            assert revives[nid] == 50 + 30 + 5 * k

    def test_revivals_past_the_run_end_are_dropped(self):
        positions = grid_positions()
        cfg = self.area_cfg(
            area_center=(0.0, 0.0), area_revive_after=1000
        )
        events = ChurnModel(cfg).events(
            list(range(16)), 0, 200, rng(), positions=positions
        )
        assert all(kind == EVENT_KILL for _, kind, _ in events)

    def test_blast_composes_with_poisson_churn(self):
        positions = grid_positions()
        cfg = ChurnConfig(
            death_rate=0.05,
            start_epoch=60,
            area_epoch=50,
            area_radius=12.0,
            area_center=(0.0, 0.0),
        )
        events = ChurnModel(cfg).events(
            list(range(16)), 0, 400, rng(), positions=positions
        )
        blast = {nid for e, kind, nid in events if kind == EVENT_KILL and e == 50}
        later = [
            nid for e, kind, nid in events if kind == EVENT_KILL and e > 50
        ]
        # Poisson victims are drawn from the survivors: no double kill.
        assert blast.isdisjoint(later)
        assert len(later) == len(set(later))

    def test_positions_required_for_area(self):
        with pytest.raises(ValueError, match="positions"):
            ChurnModel(self.area_cfg()).events(list(range(16)), 0, 200, rng())

    def test_area_blast_run_degrades_gracefully(self):
        """A disc covering the whole network leaves a root-only network running."""
        cfg = small_network(num_nodes=10, num_epochs=160, seed=5).with_scenario(
            ScenarioConfig(
                churn=ChurnConfig(
                    death_rate=0.0,
                    area_epoch=40,
                    area_radius=1e9,
                    area_center=(50.0, 50.0),
                )
            )
        )
        result = run_experiment(cfg)
        kills = [e for e in result.scenario_events if e[1] == "kill"]
        assert len(kills) == 9
        assert result.alive_at_end == {0}
        assert result.num_queries > 0  # queries keep flowing post-blast

    def test_area_blast_revive_restores_the_network(self):
        cfg = small_network(num_nodes=10, num_epochs=240, seed=5).with_scenario(
            ScenarioConfig(
                churn=ChurnConfig(
                    death_rate=0.0,
                    area_epoch=40,
                    area_radius=60.0,
                    area_center=(50.0, 50.0),
                    area_revive_after=40,
                    area_revive_stagger=2,
                )
            )
        )
        result = run_experiment(cfg)
        kinds = {e[1] for e in result.scenario_events}
        assert kinds == {"kill", "activate"}
        assert len(result.alive_at_end) == 10


class TestGroupMobilitySpec:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            MobilityConfig(mode="swarm")
        with pytest.raises(ValueError):
            MobilityConfig(mode="group")  # params missing
        with pytest.raises(ValueError):
            MobilityConfig(num_groups=3)  # mode missing
        with pytest.raises(ValueError):
            MobilityConfig(mode="group", num_groups=0, group_jitter=5.0)
        with pytest.raises(ValueError):
            MobilityConfig(mode="group", num_groups=2, group_jitter=0.0)

    def test_waypoint_mode_alias(self):
        cfg = MobilityConfig(mode="waypoint")
        assert MobilityModel(cfg, area_size=100.0).mode == "waypoint"

    def test_group_params_enter_the_hash(self):
        base = small_network(num_nodes=10, num_epochs=80)

        def scen(jitter):
            return base.with_scenario(
                ScenarioConfig(
                    mobility=MobilityConfig(
                        mode="group", num_groups=3, group_jitter=jitter
                    )
                )
            )

        plain = base.with_scenario(ScenarioConfig(mobility=MobilityConfig()))
        assert config_hash(scen(5.0)) != config_hash(plain)
        assert config_hash(scen(5.0)) != config_hash(scen(9.0))

    def test_unset_group_fields_do_not_change_the_hash(self):
        base = small_network(num_nodes=10, num_epochs=80)
        a = base.with_scenario(ScenarioConfig(mobility=MobilityConfig()))
        b = base.with_scenario(
            ScenarioConfig(
                mobility=MobilityConfig(
                    mode=None, num_groups=None, group_jitter=None
                )
            )
        )
        assert config_hash(a) == config_hash(b)


class TestGroupMobilityModel:
    def make(self, n=13, num_groups=3, jitter=5.0, seed=11):
        model = MobilityModel(
            MobilityConfig(
                mode="group",
                num_groups=num_groups,
                group_jitter=jitter,
                mobile_fraction=1.0,
                speed_min=1.0,
                speed_max=2.0,
                relink_period=10,
            ),
            area_size=100.0,
        )
        positions = {i: (float(7 * i % 90), float(5 * i % 90)) for i in range(n)}
        model.initialise(positions, root_id=0, rng=rng(seed))
        return model

    def test_groups_partition_the_mobile_set(self):
        model = self.make()
        assert len(model.heads) == 3
        assert sorted(model.head_of) == model.mobile
        assert set(model.head_of.values()) == set(model.heads)
        for head in model.heads:
            assert model.head_of[head] == head

    def test_members_stay_within_jitter_radius_of_their_head(self):
        model = self.make(jitter=5.0)
        for _ in range(20):
            model.step()
            for nid, head in model.head_of.items():
                if nid == head:
                    continue
                dist = math.dist(model.positions[nid], model.positions[head])
                assert dist <= 5.0 + 1e-9

    def test_positions_stay_in_area(self):
        model = self.make(jitter=40.0)
        for _ in range(30):
            model.step()
        for x, y in model.positions.values():
            assert 0.0 <= x <= 100.0 and 0.0 <= y <= 100.0

    def test_deterministic_per_seed(self):
        a, b = self.make(seed=3), self.make(seed=3)
        for _ in range(5):
            assert a.step() == b.step()

    def test_root_never_moves(self):
        model = self.make()
        assert 0 not in model.mobile
        before = model.positions[0]
        model.step()
        assert model.positions[0] == before

    def test_more_groups_than_mobile_nodes(self):
        model = self.make(n=4, num_groups=10)
        assert len(model.heads) == len(model.mobile)
        moved = model.step()
        assert set(moved) == set(model.mobile)

    def test_group_mobility_full_run(self):
        cfg = small_network(num_nodes=12, num_epochs=120, seed=5).with_scenario(
            ScenarioConfig(
                mobility=MobilityConfig(
                    mode="group",
                    num_groups=3,
                    group_jitter=6.0,
                    mobile_fraction=0.8,
                    relink_period=30,
                )
            )
        )
        result = run_experiment(cfg)
        assert result.num_relinks == 3
        assert len(result.alive_at_end) == 12
