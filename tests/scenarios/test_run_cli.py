"""End-to-end tests for ``python -m repro.scenarios.run``."""

import json

import pytest

from repro.scenarios import run as run_cli


@pytest.fixture(autouse=True)
def _isolate_cache_env(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.chdir(tmp_path)


def invoke(tmp_path, extra=(), json_name="out.json"):
    argv = [
        "--scenario", "churn-heavy",
        "--replicates", "2",
        "--epochs", "120",
        "--workers", "1",
        "--cache-dir", str(tmp_path / "cache"),
        "--json", str(tmp_path / json_name),
        *extra,
    ]
    return run_cli.main(argv)


class TestRunCLI:
    def test_list_prints_catalogue(self, capsys):
        assert run_cli.main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("churn-heavy", "mobile-40", "diurnal-60", "energy-tiered"):
            assert name in out

    def test_unknown_scenario_fails_cleanly(self, tmp_path, capsys):
        code = run_cli.main(
            ["--scenario", "nope", "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_unknown_baseline_fails_cleanly(self, tmp_path, capsys):
        code = run_cli.main(
            [
                "--scenario", "churn-heavy",
                "--baseline", "typo",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_scenario_requires_name_or_list(self, capsys):
        with pytest.raises(SystemExit):
            run_cli.main([])

    def test_recovery_flags_validated_before_running(self):
        with pytest.raises(SystemExit):
            run_cli.main(["--scenario", "churn-heavy", "--recovery-window", "0"])
        with pytest.raises(SystemExit):
            run_cli.main(
                ["--scenario", "churn-heavy", "--recovery-tolerance", "-0.1"]
            )

    def test_full_run_writes_tables_and_json(self, tmp_path, capsys):
        assert invoke(tmp_path) == 0
        out = capsys.readouterr().out
        assert "churn-heavy" in out
        assert "resilience: churn-heavy vs static-paper" in out
        assert "recovery after first disruption" in out
        payload = json.loads((tmp_path / "out.json").read_text())
        assert payload["scenario"] == "churn-heavy"
        assert payload["replicates"] == 2
        labels = [g["label"] for g in payload["groups"]]
        assert labels == ["churn-heavy", "static-paper"]
        assert payload["resilience"]["baseline"] == "static-paper"
        assert payload["resilience"]["degradation"]
        for group in payload["groups"]:
            assert group["n"] == 2

    def test_cached_rerun_is_bit_identical(self, tmp_path, capsys):
        assert invoke(tmp_path, json_name="a.json") == 0
        assert (
            invoke(tmp_path, extra=["--require-cached"], json_name="b.json") == 0
        )
        assert (tmp_path / "a.json").read_bytes() == (
            tmp_path / "b.json"
        ).read_bytes()
        assert "executed 0" in capsys.readouterr().out

    def test_require_cached_fails_on_cold_cache(self, tmp_path, capsys):
        assert invoke(tmp_path, extra=["--require-cached"]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_baseline_none_skips_comparison_but_keeps_recovery(self, tmp_path, capsys):
        assert invoke(tmp_path, extra=["--baseline", "none"]) == 0
        out = capsys.readouterr().out
        assert "resilience:" not in out
        payload = json.loads((tmp_path / "out.json").read_text())
        assert [g["label"] for g in payload["groups"]] == ["churn-heavy"]
        # Recovery is scenario-only and must survive without a baseline.
        resilience = payload["resilience"]
        assert resilience["baseline"] == ""
        assert resilience["degradation"] == []
        assert resilience["recovery"] is not None
