"""Registry contract + end-to-end scenario runs through the experiment layer.

Also pins the hash/fingerprint back-compatibility contract: adding the
``scenario`` field must not change the cache key or fingerprint of any
scenario-free configuration.
"""

import pytest

import repro.scenarios.static as static
from repro.experiments import scenarios as experiment_scenarios
from repro.experiments.batch import BatchRunner, TrialSpec, config_hash
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner, run_experiment
from repro.scenarios.registry import (
    build_config,
    get_scenario,
    scenario_defs,
    scenario_names,
    scenario_spec,
    scenario_sweep,
)
from repro.scenarios.spec import (
    ChurnConfig,
    EnergyConfig,
    MobilityConfig,
    ScenarioConfig,
    TrafficConfig,
)
from repro.scenarios.static import small_network

# Golden values computed before the scenario subsystem existed; they pin
# the promise that scenario-free configs keep their cache identity and
# bit-exact measurements across the subsystem's introduction.
GOLDEN_DEFAULT_HASH = "ddf46843e039ea619dab"
GOLDEN_PAPER_HASH = "3dc18157e5e868d10b40"
GOLDEN_SMALL_KEY = "523dd1a10f7090c16772"
GOLDEN_SMALL_FINGERPRINT = (
    "e0447a83ddfa3e3b65cabd903305114e8934a3381e5f34d6b3a33c4d75a51bfd"
)

# Golden scenario-config hashes computed before the area-failure /
# group-mobility fields were added to ChurnConfig / MobilityConfig; they
# pin the HASH_OMIT_WHEN_UNSET convention -- extending a scenario
# dataclass with optional fields must not move any existing cache key.
GOLDEN_SCENARIO_HASHES = {
    "churn-heavy": "d74a57e002f3e429dac4",
    "mobile-40": "d4f2d501808d2f269602",
    "harsh-mixed": "2779a75cfe57caa0bfaf",
}


def serial_runner() -> BatchRunner:
    return BatchRunner(max_workers=1, executor="serial", cache_dir="")


class TestHashCompatibility:
    def test_scenario_free_hashes_unchanged(self):
        assert config_hash(ExperimentConfig()) == GOLDEN_DEFAULT_HASH
        assert config_hash(static.paper_network()) == GOLDEN_PAPER_HASH

    def test_scenario_free_fingerprint_unchanged(self):
        spec = TrialSpec(
            label="golden", config=small_network(num_nodes=10, num_epochs=80)
        )
        assert spec.key == GOLDEN_SMALL_KEY
        (result,) = serial_runner().run([spec])
        assert result.fingerprint() == GOLDEN_SMALL_FINGERPRINT

    def test_pre_extension_scenario_hashes_unchanged(self):
        for name, golden in GOLDEN_SCENARIO_HASHES.items():
            assert config_hash(build_config(name, 400, 1)) == golden, name

    def test_scenario_parameters_enter_the_hash(self):
        base = small_network(num_nodes=10, num_epochs=80)
        a = base.with_scenario(
            ScenarioConfig(churn=ChurnConfig(death_rate=0.01))
        )
        b = base.with_scenario(
            ScenarioConfig(churn=ChurnConfig(death_rate=0.02))
        )
        assert config_hash(base) != config_hash(a)
        assert config_hash(a) != config_hash(b)
        assert config_hash(a) == config_hash(
            base.with_scenario(ScenarioConfig(churn=ChurnConfig(death_rate=0.01)))
        )


class TestRegistry:
    def test_catalogue_covers_every_dimension(self):
        names = scenario_names()
        assert len(names) >= 6
        kinds = {d.kind for d in scenario_defs()}
        assert {"static", "churn", "mobility", "traffic", "energy"} <= kinds

    def test_every_factory_builds_a_config(self):
        for name in scenario_names():
            cfg = build_config(name, num_epochs=100, seed=2)
            assert isinstance(cfg, ExperimentConfig)
            assert cfg.num_epochs == 100 and cfg.seed == 2
            if get_scenario(name).kind == "static":
                assert cfg.scenario is None
            else:
                assert cfg.scenario is not None
                assert cfg.scenario.name == name

    def test_unknown_scenario_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="churn-heavy"):
            get_scenario("no-such-scenario")

    def test_scenario_spec_tags(self):
        spec = scenario_spec("churn-heavy", num_epochs=100, seed=2)
        assert spec.label == "churn-heavy"
        assert spec.tags["scenario"] == "churn-heavy"
        assert spec.tags["scenario_kind"] == "churn"

    def test_paper_network_has_one_definition(self):
        # The experiments-layer module lazily re-exports the canonical
        # definitions from repro.scenarios.static.
        assert experiment_scenarios.paper_network is static.paper_network
        assert experiment_scenarios.smoke_sweep is static.smoke_sweep

    def test_experiments_package_reexports_lazily(self):
        import repro.experiments as E

        assert E.paper_network is static.paper_network
        with pytest.raises(AttributeError):
            E.no_such_symbol


def churn_config(num_epochs=200, seed=5):
    return small_network(num_nodes=12, num_epochs=num_epochs, seed=seed).with_scenario(
        ScenarioConfig(
            name="test-churn",
            churn=ChurnConfig(death_rate=0.05, start_epoch=40, max_deaths=4),
        )
    )


class TestScenarioRuns:
    def test_churn_kills_nodes_and_records_events(self):
        result = run_experiment(churn_config())
        kills = [e for e in result.scenario_events if e[1] == "kill"]
        assert kills, "churn scenario produced no deaths"
        assert len(result.alive_at_end) == 12 - len(kills)
        for epoch, _, nid in kills:
            assert 40 <= epoch < 200
            assert nid not in result.alive_at_end

    def test_churn_revival_restores_nodes(self):
        cfg = small_network(num_nodes=12, num_epochs=200, seed=5).with_scenario(
            ScenarioConfig(
                churn=ChurnConfig(
                    death_rate=0.05, start_epoch=20, end_epoch=80,
                    revive_after=30, max_deaths=4,
                )
            )
        )
        result = run_experiment(cfg)
        kinds = {e[1] for e in result.scenario_events}
        assert kinds == {"kill", "activate"}
        # Every node killed before epoch 170 revives within the run.
        assert len(result.alive_at_end) == 12

    def test_energy_budgets_kill_cheap_nodes(self):
        cfg = small_network(num_nodes=12, num_epochs=200, seed=5).with_scenario(
            ScenarioConfig(
                energy=EnergyConfig(
                    distribution="two_tier",
                    capacity_low=40.0,
                    capacity_high=1e9,
                    fraction_low=0.4,
                    check_period=2,
                )
            )
        )
        runner = ExperimentRunner(cfg)
        result = runner.run()
        assert runner.world.batteries, "energy scenario assigned no batteries"
        kills = [e for e in result.scenario_events if e[1] == "kill"]
        assert kills, "no node exhausted its battery"
        for _, _, nid in kills:
            assert runner.world.batteries[nid].depleted
        assert 0 in result.alive_at_end  # the root is mains-powered

    def test_activation_recharges_a_depleted_battery(self):
        # Reactivation models a battery swap: composing revive-churn with
        # finite energy must not flap (a revived node dying again at the
        # very next energy check because its old battery was empty).
        cfg = small_network(num_nodes=10, num_epochs=100, seed=5).with_scenario(
            ScenarioConfig(
                energy=EnergyConfig(capacity_low=50.0, capacity_high=50.0)
            )
        )
        runner = ExperimentRunner(cfg)
        world = runner.build()
        nid = sorted(world.alive - {cfg.root_id})[0]
        battery = world.batteries[nid]
        battery.draw(battery.capacity)
        assert battery.depleted
        runner._apply_kill(world, nid)
        runner._apply_activation(world, nid)
        assert nid in world.alive
        assert not battery.depleted
        assert battery.remaining == battery.capacity

    def test_fresh_battery_does_not_inherit_pre_death_spend(self):
        # A node dies mid-check-interval and is revived with a fresh
        # battery (a battery swap).  The energy it spent between its last
        # energy check and its death -- never checkpointed, because checks
        # skip dead nodes -- must not be debited from the new battery at
        # the next check, or the swap re-kills the node.  Checks land at
        # 55/110/165; the kill at 108 leaves ~50 epochs of un-checkpointed
        # spend, and the victim's capacity sits between its post-revival
        # spend (one check interval) and that spend plus the dead tail, so
        # inheriting the tail would deplete the battery at epoch 165.
        from repro.energy.battery import Battery
        from repro.experiments.config import TopologyEvent

        victim = 5
        cfg = small_network(num_nodes=8, num_epochs=180, seed=7).replace(
            topology_events=[
                TopologyEvent(epoch=108, kind=TopologyEvent.KILL, node_id=victim),
                TopologyEvent(epoch=112, kind=TopologyEvent.ACTIVATE, node_id=victim),
            ],
            scenario=ScenarioConfig(
                energy=EnergyConfig(
                    capacity_low=1e9, capacity_high=1e9, check_period=55
                )
            ),
        )
        runner = ExperimentRunner(cfg)
        runner.build().batteries[victim] = Battery(capacity=85.0)
        result = runner.run()
        battery_kills = {
            nid for epoch, kind, nid in result.scenario_events
            if kind == "kill" and epoch > 112
        }
        assert victim not in battery_kills
        assert victim in result.alive_at_end
        battery = runner.world.batteries[victim]
        assert not battery.depleted
        # The fresh battery paid only for post-revival traffic: one check
        # interval's spend, well under the pre-death tail + interval sum.
        assert 0.0 < battery.capacity - battery.remaining < 85.0

    def test_activating_an_alive_node_does_not_forgive_its_spend(self):
        # A scripted ACTIVATE on an already-alive node is a measurement
        # no-op (PR 4 contract) -- it must not checkpoint the energy
        # ledger either, or the spend since the last check would never be
        # drawn from the node's unchanged battery.  With checks at 55/110
        # and a budget below the node's epoch-0..55 spend, the battery
        # kill must land on the *first* check despite the epoch-50
        # activation; a forgiving checkpoint would defer it to epoch 110.
        from repro.energy.battery import Battery
        from repro.experiments.config import TopologyEvent

        victim = 5
        cfg = small_network(num_nodes=8, num_epochs=120, seed=7).replace(
            topology_events=[
                TopologyEvent(
                    epoch=50, kind=TopologyEvent.ACTIVATE, node_id=victim
                ),
            ],
            scenario=ScenarioConfig(
                energy=EnergyConfig(
                    capacity_low=1e9, capacity_high=1e9, check_period=55
                )
            ),
        )
        runner = ExperimentRunner(cfg)
        runner.build().batteries[victim] = Battery(capacity=20.0)
        result = runner.run()
        kills = [
            (epoch, nid)
            for epoch, kind, nid in result.scenario_events
            if kind == "kill"
        ]
        assert (55, victim) in kills

    def test_churn_revive_composes_with_finite_energy(self):
        cfg = small_network(num_nodes=12, num_epochs=240, seed=5).with_scenario(
            ScenarioConfig(
                churn=ChurnConfig(
                    death_rate=0.1, start_epoch=20, end_epoch=60,
                    revive_after=20, max_deaths=3,
                ),
                energy=EnergyConfig(
                    distribution="uniform",
                    capacity_low=60.0,
                    capacity_high=120.0,
                    check_period=1,
                ),
            )
        )
        result = run_experiment(cfg)
        revived = {
            nid for _, kind, nid in result.scenario_events if kind == "activate"
        }
        assert revived, "no revival happened"
        # No pathological flapping: every (kill, activate) pair for a node
        # is driven by the churn schedule or a genuine battery depletion,
        # never an immediate re-kill of a freshly revived node.
        events_per_node = {}
        for epoch, kind, nid in result.scenario_events:
            events_per_node.setdefault(nid, []).append((epoch, kind))
        for nid, events in events_per_node.items():
            for (e1, k1), (e2, k2) in zip(events, events[1:]):
                if k1 == "activate" and k2 == "kill":
                    assert e2 - e1 > 1, f"node {nid} flapped at epoch {e1}"

    def test_mobility_relinks_and_moves_nodes(self):
        cfg = small_network(num_nodes=12, num_epochs=120, seed=5).with_scenario(
            ScenarioConfig(
                mobility=MobilityConfig(
                    mobile_fraction=0.5, speed_min=1.0, speed_max=2.0,
                    relink_period=30,
                )
            )
        )
        runner = ExperimentRunner(cfg)
        before = dict(runner.build().topology.positions)
        result = runner.run()
        assert result.num_relinks == 3  # epochs 30, 60, 90
        after = runner.world.topology.positions
        assert after != before
        assert runner.world.tree.root == cfg.root_id
        # The root (and non-mobile nodes) never move.
        assert after[cfg.root_id] == before[cfg.root_id]

    def test_traffic_profile_changes_the_load(self):
        base = small_network(num_nodes=12, num_epochs=200, seed=5)
        static_result = run_experiment(base)
        bursty = base.with_scenario(
            ScenarioConfig(
                traffic=TrafficConfig(
                    mode="bursty", burst_every=50, queries_per_burst=5,
                    background_period=0,
                )
            )
        )
        bursty_result = run_experiment(bursty)
        assert bursty_result.num_queries == 15  # bursts at 50/100/150
        assert bursty_result.num_queries != static_result.num_queries

    def test_scenarios_bit_identical_across_worker_counts(self):
        specs = scenario_sweep(
            ["churn-heavy", "mobile-40", "diurnal-60", "energy-tiered"],
            num_epochs=120,
            seed=9,
        )
        serial = [r.fingerprint() for r in serial_runner().run(specs)]
        parallel = [
            r.fingerprint()
            for r in BatchRunner(max_workers=2, cache_dir="").run(specs)
        ]
        assert serial == parallel

    def test_scenario_results_cache_and_stay_bit_identical(self, tmp_path):
        spec = TrialSpec(label="churn", config=churn_config())
        first = BatchRunner(max_workers=1, cache_dir=tmp_path)
        (a,) = first.run([spec])
        assert first.last_stats.executed == 1
        second = BatchRunner(max_workers=1, cache_dir=tmp_path)
        (b,) = second.run([spec])
        assert second.last_stats.cached == 1 and second.last_stats.executed == 0
        assert b.from_cache
        assert a.fingerprint() == b.fingerprint()
        assert b.scenario_events == a.scenario_events

    def test_static_run_has_no_scenario_telemetry(self):
        result = run_experiment(small_network(num_nodes=10, num_epochs=80))
        assert result.scenario_events == []
        assert result.num_relinks == 0
