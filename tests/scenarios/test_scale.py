"""Large-N scaling scenarios: registry entries, hash compatibility,
fast-vs-brute bit identity, and 500-node determinism.

Three promises are pinned here:

* the ``neighbor_method`` / ``tree_repair`` / ``phenomena_method`` config
  fields are omitted from the hash when unset, so every pre-existing
  cache key and fingerprint survives the scaling work unchanged;
* the spatial/incremental fast path is an implementation detail -- a
  brute-force run of the same trial yields bit-identical measurements;
* 500-node trials with mobility and churn are deterministic across
  repetition and across BatchRunner worker counts.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.batch import BatchRunner, TrialSpec, config_hash
from repro.experiments.config import ExperimentConfig
from repro.scenarios.registry import build_config, scenario_names
from repro.scenarios.static import scaled_network

from .test_registry_and_runner import (
    GOLDEN_DEFAULT_HASH,
    GOLDEN_SCENARIO_HASHES,
)

#: Epoch budget for the 500-node determinism trials: several query and
#: re-link periods while keeping each trial around a second.
SCALE_TEST_EPOCHS = 40


def serial_runner() -> BatchRunner:
    return BatchRunner(max_workers=1, executor="serial", cache_dir="")


class TestScaledNetwork:
    def test_density_preserving_area(self):
        base = scaled_network(50)
        assert base.area_size == pytest.approx(100.0)
        big = scaled_network(5000)
        assert big.area_size == pytest.approx(100.0 * math.sqrt(100.0))
        assert big.comm_range == base.comm_range == 30.0

    def test_rejects_degenerate_sizes(self):
        with pytest.raises(ValueError, match="num_nodes"):
            scaled_network(1)

    def test_registry_entries_exist_and_build(self):
        names = scenario_names()
        for name, nodes in [
            ("scale-500", 500),
            ("scale-500-mobile", 500),
            ("scale-500-churn", 500),
            ("scale-5000", 5000),
        ]:
            assert name in names
            cfg = build_config(name, num_epochs=100, seed=3)
            assert cfg.num_nodes == nodes
            assert cfg.num_epochs == 100 and cfg.seed == 3

    def test_scale_5000_uses_lowrank_phenomena(self):
        cfg = build_config("scale-5000", num_epochs=100, seed=1)
        assert cfg.phenomena_method == "lowrank"
        # The 500-node tier keeps the exact field (still tractable).
        assert build_config("scale-500", 100, 1).phenomena_method is None


class TestConfigFieldValidation:
    @pytest.mark.parametrize(
        "field,good,bad",
        [
            ("neighbor_method", "brute", "quadtree"),
            ("tree_repair", "incremental", "lazy"),
            ("phenomena_method", "lowrank", "sparse"),
        ],
    )
    def test_strategy_fields_validated(self, field, good, bad):
        ExperimentConfig(**{field: good})  # accepted
        ExperimentConfig(**{field: None})  # accepted (the default)
        with pytest.raises(ValueError, match=field):
            ExperimentConfig(**{field: bad})


class TestHashCompatibility:
    def test_unset_strategy_fields_leave_hashes_unchanged(self):
        assert config_hash(ExperimentConfig()) == GOLDEN_DEFAULT_HASH
        for name, golden in GOLDEN_SCENARIO_HASHES.items():
            assert config_hash(build_config(name, 400, 1)) == golden, name

    def test_set_strategy_fields_enter_the_hash(self):
        base = ExperimentConfig()
        assert config_hash(base.replace(neighbor_method="brute")) != (
            config_hash(base)
        )
        assert config_hash(base.replace(tree_repair="full")) != (
            config_hash(base)
        )
        assert config_hash(base.replace(phenomena_method="lowrank")) != (
            config_hash(base)
        )
        # Explicit spatial/incremental hash differently from unset too:
        # None means "the default, whatever it becomes", a set value is a
        # recorded experimental choice.
        assert config_hash(base.replace(neighbor_method="spatial")) != (
            config_hash(base)
        )


class TestFastBrutePathIdentity:
    def test_mobile_trial_fingerprints_match(self):
        fast_cfg = build_config(
            "scale-500-mobile", num_epochs=SCALE_TEST_EPOCHS, seed=1
        )
        brute_cfg = fast_cfg.replace(
            neighbor_method="brute", tree_repair="full"
        )
        fast, brute = serial_runner().run(
            [
                TrialSpec(label="fast", config=fast_cfg),
                TrialSpec(label="brute", config=brute_cfg),
            ]
        )
        # Config hashes differ (the strategy is recorded), so the keyed
        # fingerprints differ; the measurements must not.
        assert fast.fingerprint() != brute.fingerprint()
        assert fast.fingerprint(include_key=False) == brute.fingerprint(
            include_key=False
        )


class TestLargeNDeterminism:
    @pytest.fixture(scope="class")
    def specs(self):
        return [
            TrialSpec(
                label=name,
                config=build_config(
                    name, num_epochs=SCALE_TEST_EPOCHS, seed=2
                ),
            )
            for name in ("scale-500-mobile", "scale-500-churn")
        ]

    def test_repeated_runs_are_bit_identical(self, specs):
        first = [r.fingerprint() for r in serial_runner().run(specs)]
        second = [r.fingerprint() for r in serial_runner().run(specs)]
        assert first == second

    def test_worker_count_does_not_change_results(self, specs):
        serial = [r.fingerprint() for r in serial_runner().run(specs)]
        parallel = [
            r.fingerprint()
            for r in BatchRunner(max_workers=4, cache_dir="").run(specs)
        ]
        assert serial == parallel
