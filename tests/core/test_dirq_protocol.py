"""Behavioural tests for the DirQ node/root protocol over miniature networks."""

import pytest

from repro.core.config import DirQConfig
from repro.core.messages import RangeQuery, UpdateMessage
from repro.workload.ground_truth import evaluate_query

from ..helpers import (
    build_mini_world,
    constant_dataset,
    line_topology,
    ramp_dataset,
    star_topology,
)


def fixed_config(delta_percent=5.0, **kwargs):
    return DirQConfig(delta_percent=delta_percent, epochs_per_hour=100, **kwargs)


class TestRangePropagation:
    def test_ranges_propagate_to_root_within_one_epoch(self, line_world):
        world = line_world
        world.run_epoch(0)
        root_table = world.root.tables.table("temperature")
        assert root_table is not None
        # The root's aggregate must cover every node's constant reading
        # (10..50) within the delta padding.
        low, high = root_table.aggregate()
        assert low <= 10.0
        assert high >= 50.0

    def test_child_entries_summarise_whole_subtrees(self, line_world):
        world = line_world
        world.run_epoch(0)
        # Node 1's entry at the root covers nodes 1..4 (readings 20..50).
        entry = world.root.tables.table("temperature").child_entry(1)
        assert entry.min_threshold <= 20.0
        assert entry.max_threshold >= 50.0

    def test_stable_readings_do_not_retrigger_updates(self, line_world):
        world = line_world
        world.run_epochs(0, 5)
        updates_after_first = world.ledger.total_count(direction="tx", kind="update")
        world.run_epochs(6, 20)
        # Constant dataset: no further updates after the initial advertisement.
        assert (
            world.ledger.total_count(direction="tx", kind="update")
            == updates_after_first
        )

    def test_changing_readings_trigger_updates_and_refresh_root_view(self):
        topo = line_topology(3)
        # Node 2 ramps from 10 to 10 + 40 over 40 epochs; others constant.
        data = ramp_dataset(
            topo.node_ids, start={0: 0.0, 1: 5.0, 2: 10.0}, slope={2: 1.0}, num_epochs=50
        )
        world = build_mini_world(topo, data, config=fixed_config(2.0))
        world.run_epochs(0, 40)
        low, high = world.root.tables.table("temperature").aggregate()
        assert high >= 45.0  # root tracked node 2's climb
        assert world.ledger.total_count(direction="tx", kind="update") > 2

    def test_larger_delta_produces_fewer_updates(self):
        topo = line_topology(4)
        data = ramp_dataset(
            topo.node_ids,
            start={nid: 10.0 * nid for nid in topo.node_ids},
            slope={nid: 0.5 for nid in topo.node_ids},
            num_epochs=60,
        )
        counts = {}
        for delta in (2.0, 10.0):
            world = build_mini_world(topo, data, config=fixed_config(delta))
            world.run_epochs(0, 59)
            counts[delta] = world.ledger.total_count(direction="tx", kind="update")
        assert counts[10.0] < counts[2.0]


class TestQueryRouting:
    def test_query_reaches_only_relevant_branch_of_a_star(self, star_world):
        world = star_world
        world.run_epoch(0)
        # Leaves hold 10 / 20 / 30 / 40; query [28, 42] matches leaves 3 and 4.
        query = RangeQuery(0, "temperature", 28.0, 42.0, epoch=1)
        sources, should = evaluate_query(world.dataset, world.tree, query, 1)
        world.audit.register_query(query, sources, should, 1, population=4)
        world.root.inject_query(query)
        world.settle(2.0)
        record = world.audit.record(0)
        assert record.received == {3, 4}
        assert record.missed == set()

    def test_query_travels_through_forwarding_nodes_on_a_line(self, line_world):
        world = line_world
        world.run_epoch(0)
        # Only node 4 (reading 50) matches; nodes 1-3 must forward.
        query = RangeQuery(0, "temperature", 48.0, 55.0, epoch=1)
        sources, should = evaluate_query(world.dataset, world.tree, query, 1)
        assert sources == {4}
        assert should == {1, 2, 3, 4}
        world.audit.register_query(query, sources, should, 1, population=4)
        world.root.inject_query(query)
        world.settle(2.0)
        assert world.audit.record(0).received == {1, 2, 3, 4}

    def test_query_for_unknown_sensor_type_dies_at_root(self, line_world):
        world = line_world
        world.run_epoch(0)
        query = RangeQuery(5, "radiation", 0.0, 1.0, epoch=1)
        forwarded = world.root.inject_query(query)
        world.settle(2.0)
        assert forwarded == 0
        assert world.ledger.total_count(direction="tx", kind="query") == 0

    def test_non_matching_query_is_not_disseminated(self, star_world):
        world = star_world
        world.run_epoch(0)
        query = RangeQuery(1, "temperature", 900.0, 950.0, epoch=1)
        forwarded = world.root.inject_query(query)
        world.settle(2.0)
        assert forwarded == 0

    def test_source_claims_recorded(self, star_world):
        world = star_world
        world.run_epoch(0)
        query = RangeQuery(2, "temperature", 18.0, 22.0, epoch=1)
        sources, should = evaluate_query(world.dataset, world.tree, query, 1)
        world.audit.register_query(query, sources, should, 1, population=4)
        world.root.inject_query(query)
        world.settle(2.0)
        assert 2 in world.audit.record(2).source_claims

    def test_query_cost_charged_as_query_kind(self, star_world):
        world = star_world
        world.run_epoch(0)
        query = RangeQuery(3, "temperature", 8.0, 42.0, epoch=1)
        world.root.inject_query(query)
        world.settle(2.0)
        # All four leaves overlap: 4 unicasts = 8 cost units.
        assert world.ledger.total_cost(["query"]) == pytest.approx(8.0)


class TestEstimatesAndStatistics:
    def test_estimate_propagates_to_every_node(self, line_world):
        world = line_world
        world.run_epoch(0)
        world.root.set_network_size(5)
        world.root.start_new_hour(epoch=1)
        world.settle(2.0)
        # 4 hops down the line = 4 estimate transmissions.
        assert world.ledger.total_count(direction="tx", kind="estimate") == 4
        for nid in (1, 2, 3, 4):
            assert world.protocols[nid]._last_estimate_hour == 0

    def test_duplicate_estimates_not_relayed_twice(self, line_world):
        world = line_world
        world.run_epoch(0)
        world.root.set_network_size(5)
        message = world.root.start_new_hour(epoch=1)
        world.settle(2.0)
        before = world.ledger.total_count(direction="tx", kind="estimate")
        # Replay the same estimate at node 1: it must not relay again.
        world.protocols[1].on_payload(0, message)
        world.settle(3.0)
        assert world.ledger.total_count(direction="tx", kind="estimate") == before

    def test_root_counts_injections_and_updates(self, star_world):
        world = star_world
        world.run_epoch(0)
        q = RangeQuery(0, "temperature", 0.0, 100.0, epoch=1)
        world.root.inject_query(q)
        world.settle(2.0)
        assert world.root.queries_injected == 1
        assert sum(p.updates_sent for p in world.protocols.values()) >= 4


class TestHeterogeneousSensorTypes:
    def test_tables_exist_only_on_paths_to_type_owners(self):
        """Fig. 4: a table for type X exists iff X is in the node's subtree."""
        topo = line_topology(4)  # 0 - 1 - 2 - 3
        import numpy as np

        from repro.sensors.dataset import SensorDataset

        data = SensorDataset(
            node_ids=topo.node_ids,
            readings={
                "temperature": np.full((30, 4), 20.0),
                "humidity": np.full((30, 4), 60.0),
            },
        )
        # Only node 3 (deepest) carries humidity; all carry temperature.
        assignment = {
            0: ["temperature"],
            1: ["temperature"],
            2: ["temperature"],
            3: ["temperature", "humidity"],
        }
        world = build_mini_world(topo, data, sensor_assignment=assignment)
        world.run_epochs(0, 2)
        # Humidity tables exist along the whole path 3 -> 2 -> 1 -> 0.
        for nid in (0, 1, 2, 3):
            assert "humidity" in world.protocols[nid].known_sensor_types()
        # A humidity query is routable end to end.
        q = RangeQuery(0, "humidity", 55.0, 65.0, epoch=3)
        world.audit.register_query(q, {3}, {1, 2, 3}, 3, population=3)
        world.root.inject_query(q)
        world.settle(4.0)
        assert world.audit.record(0).received == {1, 2, 3}

    def test_new_sensor_type_added_after_deployment_becomes_routable(self):
        topo = line_topology(3)
        import numpy as np

        from repro.sensors.dataset import SensorDataset
        from repro.sensors.sensor import Sensor

        data = SensorDataset(
            node_ids=topo.node_ids,
            readings={
                "temperature": np.full((40, 3), 20.0),
                "co2": np.full((40, 3), 400.0),
            },
        )
        assignment = {0: ["temperature"], 1: ["temperature"], 2: ["temperature"]}
        world = build_mini_world(topo, data, sensor_assignment=assignment)
        world.run_epochs(0, 2)
        assert "co2" not in world.root.known_sensor_types()
        # A CO2 sensor is mounted on node 2 after deployment (paper §1).
        world.nodes[2].attach_sensor(Sensor(2, "co2", data))
        world.run_epochs(3, 5)
        assert "co2" in world.root.known_sensor_types()
        q = RangeQuery(0, "co2", 390.0, 410.0, epoch=6)
        world.audit.register_query(q, {2}, {1, 2}, 6, population=2)
        world.root.inject_query(q)
        world.settle(7.0)
        assert world.audit.record(0).received == {1, 2}
