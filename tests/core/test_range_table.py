"""Tests for Range Tables (paper §4.1, Figs. 1-4)."""

import pytest

from repro.core.range_table import RangeEntry, RangeTable, RangeTableSet


class TestRangeEntry:
    def test_contains_and_overlaps(self):
        entry = RangeEntry(10.0, 20.0)
        assert entry.contains(10.0) and entry.contains(20.0) and entry.contains(15.0)
        assert not entry.contains(9.99)
        assert entry.overlaps(18.0, 25.0)
        assert entry.overlaps(5.0, 10.0)  # touching boundary counts
        assert not entry.overlaps(21.0, 30.0)

    def test_invalid_entry(self):
        with pytest.raises(ValueError):
            RangeEntry(5.0, 4.0)


class TestOwnEntryMaintenance:
    """Equations (1)-(2) and Fig. 1."""

    def test_first_reading_creates_entry(self):
        table = RangeTable(owner=1, sensor_type="temperature")
        changed = table.observe_reading(25.0, delta=2.0)
        assert changed
        assert table.own_entry.as_tuple == (23.0, 27.0)
        assert table.reference_reading == 25.0

    def test_reading_inside_thresholds_leaves_table_unchanged(self):
        table = RangeTable(1, "t")
        table.observe_reading(25.0, delta=2.0)
        assert table.observe_reading(26.9, delta=2.0) is False
        assert table.own_entry.as_tuple == (23.0, 27.0)
        assert table.reference_reading == 25.0

    def test_reading_outside_thresholds_recomputes_entry(self):
        table = RangeTable(1, "t")
        table.observe_reading(25.0, delta=2.0)
        assert table.observe_reading(28.0, delta=2.0) is True
        assert table.own_entry.as_tuple == (26.0, 30.0)

    def test_boundary_reading_is_inside(self):
        table = RangeTable(1, "t")
        table.observe_reading(25.0, delta=2.0)
        assert table.observe_reading(27.0, delta=2.0) is False

    def test_non_finite_reading_rejected(self):
        table = RangeTable(1, "t")
        with pytest.raises(ValueError):
            table.observe_reading(float("nan"), delta=1.0)

    def test_negative_delta_rejected(self):
        table = RangeTable(1, "t")
        with pytest.raises(ValueError):
            table.observe_reading(1.0, delta=-0.5)

    def test_clear_own_entry(self):
        table = RangeTable(1, "t")
        table.observe_reading(25.0, delta=2.0)
        assert table.clear_own_entry() is True
        assert table.own_entry is None
        assert table.clear_own_entry() is False


class TestChildEntries:
    def test_update_child_stores_tuple(self):
        table = RangeTable(0, "t")
        assert table.update_child(3, 10.0, 15.0) is True
        assert table.child_entry(3).as_tuple == (10.0, 15.0)
        assert table.child_ids == [3]

    def test_identical_update_reports_no_change(self):
        table = RangeTable(0, "t")
        table.update_child(3, 10.0, 15.0)
        assert table.update_child(3, 10.0, 15.0) is False

    def test_remove_child(self):
        table = RangeTable(0, "t")
        table.update_child(3, 10.0, 15.0)
        assert table.remove_child(3) is True
        assert table.remove_child(3) is False
        assert table.child_entry(3) is None

    def test_num_entries_counts_own_plus_children(self):
        """A node with n children stores n+1 tuples (paper §4.1)."""
        table = RangeTable(0, "t")
        table.observe_reading(20.0, delta=1.0)
        table.update_child(1, 10.0, 12.0)
        table.update_child(2, 30.0, 31.0)
        assert table.num_entries == 3
        entries = list(table.entries())
        assert entries[0][0] is None  # own entry first
        assert [e[0] for e in entries[1:]] == [1, 2]


class TestAggregationAndUpdateTrigger:
    """Fig. 2 (min/max extraction) and Fig. 3 (transmission trigger)."""

    def test_aggregate_spans_own_and_children(self):
        table = RangeTable(0, "t")
        table.observe_reading(20.0, delta=1.0)       # [19, 21]
        table.update_child(1, 5.0, 8.0)
        table.update_child(2, 30.0, 35.0)
        assert table.aggregate() == (5.0, 35.0)

    def test_aggregate_of_empty_table_is_none(self):
        assert RangeTable(0, "t").aggregate() is None
        assert RangeTable(0, "t").is_empty

    def test_first_aggregate_always_triggers_update(self):
        table = RangeTable(0, "t")
        table.observe_reading(20.0, delta=1.0)
        assert table.pending_update(delta=1.0) == (19.0, 21.0)

    def test_no_update_within_delta_of_last_transmission(self):
        table = RangeTable(0, "t")
        table.observe_reading(20.0, delta=1.0)
        table.mark_transmitted(table.aggregate())
        # Child entry nudges the max by less than delta: no update due.
        table.update_child(1, 19.5, 21.5)
        assert table.pending_update(delta=1.0) is None

    def test_update_due_when_min_moves_by_more_than_delta(self):
        table = RangeTable(0, "t")
        table.observe_reading(20.0, delta=1.0)
        table.mark_transmitted(table.aggregate())
        table.update_child(1, 15.0, 20.0)
        assert table.pending_update(delta=1.0) == (15.0, 21.0)

    def test_update_due_when_max_moves_by_more_than_delta(self):
        table = RangeTable(0, "t")
        table.observe_reading(20.0, delta=1.0)
        table.mark_transmitted(table.aggregate())
        table.update_child(1, 20.0, 26.0)
        assert table.pending_update(delta=1.0) == (19.0, 26.0)

    def test_shrinking_range_also_triggers_update(self):
        table = RangeTable(0, "t")
        table.update_child(1, 0.0, 100.0)
        table.mark_transmitted(table.aggregate())
        table.update_child(1, 40.0, 60.0)
        assert table.pending_update(delta=5.0) == (40.0, 60.0)

    def test_pending_update_rejects_negative_delta(self):
        table = RangeTable(0, "t")
        table.observe_reading(1.0, delta=1.0)
        with pytest.raises(ValueError):
            table.pending_update(delta=-1.0)


class TestRangeTableSet:
    """Fig. 4: one table per sensor type present in the subtree."""

    def test_tables_created_lazily_per_type(self):
        tables = RangeTableSet(owner=0)
        assert tables.table("temperature") is None
        created = tables.table("temperature", create=True)
        assert created is tables.table("temperature")
        assert "temperature" in tables
        assert tables.sensor_types == ["temperature"]

    def test_table_per_type_independent(self):
        tables = RangeTableSet(0)
        tables.table("a", create=True).observe_reading(1.0, 0.1)
        tables.table("b", create=True).update_child(5, 10.0, 20.0)
        assert tables.table("a").aggregate() == (0.9, 1.1)
        assert tables.table("b").aggregate() == (10.0, 20.0)
        assert len(tables) == 2
        assert tables.total_entries() == 2

    def test_remove_child_everywhere_reports_changed_types(self):
        tables = RangeTableSet(0)
        tables.table("a", create=True).update_child(7, 0.0, 1.0)
        tables.table("b", create=True).update_child(7, 5.0, 6.0)
        tables.table("c", create=True).update_child(8, 5.0, 6.0)
        assert tables.remove_child_everywhere(7) == ["a", "b"]
        assert tables.table("a").is_empty
        assert not tables.table("c").is_empty

    def test_drop_table(self):
        tables = RangeTableSet(0)
        tables.table("a", create=True)
        assert tables.drop("a") is True
        assert tables.drop("a") is False
        assert "a" not in tables
