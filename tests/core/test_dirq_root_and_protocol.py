"""Focused tests for DirQRoot behaviour and the protocol base class."""

import pytest

from repro.core.config import DirQConfig, ThresholdMode
from repro.core.dirq_root import DirQRoot
from repro.core.messages import QueryResponse, RangeQuery
from repro.core.protocol import DisseminationProtocol

from ..helpers import build_mini_world, constant_dataset, line_topology, star_topology


@pytest.fixture
def atc_world():
    topo = star_topology(4)
    data = constant_dataset(
        topo.node_ids, {0: 0.0, 1: 10.0, 2: 20.0, 3: 30.0, 4: 40.0}, num_epochs=60
    )
    cfg = DirQConfig(
        threshold_mode=ThresholdMode.ADAPTIVE, epochs_per_hour=20, atc_window_epochs=10
    )
    return build_mini_world(topo, data, config=cfg)


class TestDirQRoot:
    def test_root_requires_root_node(self, line_world):
        world = line_world
        with pytest.raises(ValueError):
            DirQRoot(
                world.sim,
                world.nodes[1],           # not the root node
                world.macs[1],
                world.config,
            )

    def test_next_query_id_monotone(self, line_world):
        root = line_world.root
        ids = [root.next_query_id() for _ in range(5)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_calibration_setters_validate(self, line_world):
        root = line_world.root
        with pytest.raises(ValueError):
            root.set_network_size(0)
        with pytest.raises(ValueError):
            root.set_flooding_cost(0.0)
        root.set_network_size(5)
        root.set_flooding_cost(100.0)
        assert root.flooding_cost_per_query == 100.0

    def test_injecting_at_dead_root_raises(self, line_world):
        world = line_world
        world.nodes[0].kill()
        with pytest.raises(RuntimeError):
            world.root.inject_query(RangeQuery(0, "temperature", 0.0, 1.0))

    def test_estimate_carries_budget_only_in_adaptive_mode(self, atc_world, line_world):
        # Fixed-threshold root: no budget in the estimate.
        line_world.run_epoch(0)
        line_world.root.set_network_size(5)
        msg_fixed = line_world.root.start_new_hour(1)
        assert msg_fixed.node_update_budget is None

        # Adaptive root with flooding cost installed: budget present.
        atc_world.run_epoch(0)
        atc_world.root.set_network_size(5)
        atc_world.root.set_flooding_cost(40.0)
        msg_atc = atc_world.root.start_new_hour(1)
        assert msg_atc.node_update_budget is not None
        assert msg_atc.node_update_budget >= 0.0
        assert atc_world.root.last_plan is not None

    def test_hour_index_increments_and_queries_counted_per_hour(self, atc_world):
        world = atc_world
        world.run_epoch(0)
        world.root.set_network_size(5)
        world.root.set_flooding_cost(40.0)
        first = world.root.start_new_hour(0)
        world.root.inject_query(RangeQuery(10, "temperature", 0.0, 100.0, epoch=1))
        world.settle(2.0)
        second = world.root.start_new_hour(20)
        assert second.hour_index == first.hour_index + 1
        # The completed hour's realised count (1 query) feeds the predictor.
        assert world.root.predictor.history[-1] == 1

    def test_responses_collected_at_root(self):
        topo = line_topology(3)
        data = constant_dataset(topo.node_ids, {0: 1.0, 1: 2.0, 2: 3.0}, num_epochs=30)
        world = build_mini_world(topo, data)
        # Rebuild protocols with responses enabled is heavy; instead deliver a
        # response payload directly through the MAC path.
        response = QueryResponse(query_id=7, source=2, sensor_type="temperature", value=3.0)
        world.protocols[1].on_payload(2, response)   # forwarder relays upward
        world.settle(1.0)
        assert world.root.responses_received == [response]

    def test_root_can_be_a_source_itself(self, star_world):
        world = star_world
        world.run_epoch(0)
        # Root's own reading is 0.0; query matching it must register a claim.
        query = RangeQuery(9, "temperature", -1.0, 1.0, epoch=1)
        world.audit.register_query(query, {0}, set(), 1, population=4)
        world.root.inject_query(query)
        world.settle(2.0)
        assert 0 in world.audit.record(9).source_claims


class TestDisseminationProtocolBase:
    def test_set_tree_links_rejects_self_parent(self, line_world):
        with pytest.raises(ValueError):
            line_world.protocols[2].set_tree_links(2, [])

    def test_children_are_sorted(self, line_world):
        proto = line_world.protocols[1]
        proto.set_tree_links(0, [4, 2, 3])
        assert proto.children == [2, 3, 4]

    def test_dead_node_ignores_mac_payloads(self, line_world):
        world = line_world
        world.run_epoch(0)
        world.nodes[2].kill()
        before = world.protocols[2].queries_received
        world.protocols[2]._on_mac_payload(1, RangeQuery(3, "temperature", 0.0, 99.0))
        assert world.protocols[2].queries_received == before

    def test_audit_helpers_tolerate_missing_audit(self, line5):
        data = constant_dataset(line5.node_ids, {i: 1.0 for i in line5.node_ids})
        world = build_mini_world(line5, data)
        proto = world.protocols[3]
        proto.audit = None
        # Must not raise even without an audit installed.
        proto.record_query_receipt(0)
        proto.record_source_claim(0)

    def test_base_class_requires_on_payload_override(self, sim, line5):
        from repro.mac.lmac import LMACProtocol
        from repro.network.channel import WirelessChannel
        from repro.network.node import SensorNode

        channel = WirelessChannel(sim, line5)
        node = SensorNode(1, (0.0, 0.0))
        mac = LMACProtocol(sim, channel, 1)
        proto = DisseminationProtocol(sim, node, mac)
        with pytest.raises(NotImplementedError):
            proto.on_payload(0, "anything")


class TestAdaptiveNodeBehaviour:
    def test_atc_nodes_adjust_thresholds_over_windows(self, atc_world):
        world = atc_world
        world.run_epoch(0)
        world.root.set_network_size(5)
        world.root.set_flooding_cost(40.0)
        # Prime the predictor with a realistic load so the hourly plan hands
        # every node a non-zero update budget.
        world.root.predictor.record(10)
        world.root.start_new_hour(0)
        world.settle(0.99)
        initial = world.protocols[1].current_delta_percent("temperature")
        world.run_epochs(1, 40)
        final = world.protocols[1].current_delta_percent("temperature")
        # Constant data -> almost no updates -> the controller narrows delta.
        assert final < initial

    def test_fixed_mode_exposes_config_delta(self, line_world):
        proto = line_world.protocols[1]
        assert proto.current_delta_percent("temperature") == line_world.config.delta_percent
        assert proto.current_delta("temperature") == pytest.approx(
            line_world.config.absolute_delta("temperature")
        )
