"""Tests for the §5 analytical cost model."""

import pytest

from repro.core.analytical import (
    analytical_table,
    build_kary_tree,
    dirq_total_cost,
    f_max,
    flooding_cost,
    flooding_cost_by_enumeration,
    flooding_cost_general,
    max_query_cost_by_enumeration,
    max_query_dissemination_cost,
    max_update_cost,
    max_update_cost_by_enumeration,
    paper_example,
    tree_num_internal,
    tree_num_leaves,
    tree_num_links,
    tree_num_nodes,
    update_budget_per_hour,
)


class TestTreeCounts:
    def test_binary_tree_counts(self):
        assert tree_num_nodes(2, 4) == 31
        assert tree_num_links(2, 4) == 30
        assert tree_num_leaves(2, 4) == 16
        assert tree_num_internal(2, 4) == 15

    def test_degenerate_path(self):
        assert tree_num_nodes(1, 5) == 6
        assert tree_num_leaves(1, 5) == 1

    def test_depth_zero(self):
        assert tree_num_nodes(3, 0) == 1
        assert tree_num_links(3, 0) == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            tree_num_nodes(0, 3)
        with pytest.raises(ValueError):
            tree_num_nodes(2, -1)


class TestClosedForms:
    def test_flooding_cost_is_nodes_plus_twice_links(self):
        # eq. (3): N + 2L for the k-ary tree.
        assert flooding_cost(2, 4) == 31 + 2 * 30
        assert flooding_cost(3, 3) == 40 + 2 * 39

    def test_flooding_cost_general(self):
        assert flooding_cost_general(50, 150) == 50 + 300
        with pytest.raises(ValueError):
            flooding_cost_general(-1, 0)

    def test_query_cost_counts_internal_tx_and_nonroot_rx(self):
        # eq. (5): internal nodes transmit once, non-root nodes receive once.
        assert max_query_dissemination_cost(2, 4) == 15 + 30

    def test_update_cost_is_two_per_nonroot_node(self):
        # eq. (6): every non-root node unicasts one update (tx + rx).
        assert max_update_cost(2, 4) == 2 * 30

    def test_total_cost_combines_query_and_updates(self):
        assert dirq_total_cost(2, 4, f=0.0) == max_query_dissemination_cost(2, 4)
        assert dirq_total_cost(2, 4, f=1.0) == pytest.approx(45 + 60)
        with pytest.raises(ValueError):
            dirq_total_cost(2, 4, f=-0.1)

    def test_paper_worked_example_fmax(self):
        """§5.3: for k=2, d=4 the paper reports f_max < 0.76 (~0.767)."""
        value = f_max(2, 4)
        assert value == pytest.approx((91.0 - 45.0) / 60.0)
        assert 0.74 < value < 0.78

    def test_fmax_threshold_property(self):
        """At f = f_max DirQ's worst case exactly equals flooding."""
        for k, d in [(2, 3), (3, 3), (4, 2), (8, 2)]:
            assert dirq_total_cost(k, d, f_max(k, d)) == pytest.approx(
                flooding_cost(k, d)
            )

    def test_dirq_cheaper_than_flooding_below_fmax(self):
        k, d = 3, 4
        assert dirq_total_cost(k, d, 0.5 * f_max(k, d)) < flooding_cost(k, d)
        assert dirq_total_cost(k, d, 1.5 * f_max(k, d)) > flooding_cost(k, d)


class TestEnumerationCrossCheck:
    @pytest.mark.parametrize("k,d", [(2, 2), (2, 4), (3, 2), (3, 3), (4, 3), (8, 2)])
    def test_closed_forms_match_enumeration(self, k, d):
        tree = build_kary_tree(k, d)
        assert flooding_cost(k, d) == flooding_cost_by_enumeration(tree)
        assert max_query_dissemination_cost(k, d) == max_query_cost_by_enumeration(tree)
        assert max_update_cost(k, d) == max_update_cost_by_enumeration(tree)

    def test_built_tree_structure(self):
        tree = build_kary_tree(3, 2)
        assert tree.num_nodes == 13
        assert tree.depth == 2
        assert tree.max_branching == 3
        assert len(tree.leaves) == 9


class TestUpdateBudget:
    def test_budget_scales_with_query_rate(self):
        b1 = update_budget_per_hour(10, flooding_cost_per_query=400, query_cost_per_query=50)
        b2 = update_budget_per_hour(20, flooding_cost_per_query=400, query_cost_per_query=50)
        assert b2 == pytest.approx(2 * b1)

    def test_budget_formula(self):
        # 25 queries/hour, headroom (400-60) per query, 2 units per update.
        assert update_budget_per_hour(25, 400.0, 60.0) == pytest.approx(25 * 340 / 2)

    def test_budget_never_negative(self):
        assert update_budget_per_hour(10, 100.0, 150.0) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            update_budget_per_hour(-1, 100, 10)
        with pytest.raises(ValueError):
            update_budget_per_hour(1, 100, 10, cost_per_update=0)


class TestReportHelpers:
    def test_analytical_table_rows(self):
        rows = analytical_table([(2, 4), (3, 3)])
        assert len(rows) == 2
        assert rows[0].num_nodes == 31
        assert rows[0].f_max == pytest.approx(f_max(2, 4))

    def test_paper_example_dict(self):
        example = paper_example()
        assert example["num_nodes"] == 31
        assert example["flooding_cost"] == 91.0
        assert example["f_max"] == pytest.approx(f_max(2, 4))
