"""Tests for the flooding baseline and its §5.1 cost properties."""

import pytest

from repro.core.analytical import flooding_cost_general
from repro.core.messages import RangeQuery
from repro.workload.ground_truth import evaluate_query

from ..helpers import build_mini_world, constant_dataset, line_topology, star_topology


def make_flood_world(topology, values):
    data = constant_dataset(topology.node_ids, values, num_epochs=30)
    return build_mini_world(topology, data, protocol="flooding")


class TestFloodingDelivery:
    def test_flood_reaches_every_node(self, star4):
        world = make_flood_world(star4, {i: 10.0 * i for i in star4.node_ids})
        world.run_epoch(0)
        query = RangeQuery(0, "temperature", 0.0, 100.0, epoch=1)
        sources, should = evaluate_query(world.dataset, world.tree, query, 1)
        world.audit.register_query(query, sources, should, 1, population=4)
        world.root.inject_query(query)
        world.settle(3.0)
        assert world.audit.record(0).received == {1, 2, 3, 4}

    def test_flood_reaches_multihop_nodes(self):
        topo = line_topology(6)
        world = make_flood_world(topo, {i: float(i) for i in topo.node_ids})
        world.run_epoch(0)
        query = RangeQuery(0, "temperature", -1.0, 10.0, epoch=1)
        world.audit.register_query(query, set(), set(range(1, 6)), 1, population=5)
        world.root.inject_query(query)
        world.settle(3.0)
        assert world.audit.record(0).received == {1, 2, 3, 4, 5}

    def test_each_node_rebroadcasts_exactly_once(self, star4):
        world = make_flood_world(star4, {i: 1.0 for i in star4.node_ids})
        world.run_epoch(0)
        world.root.inject_query(RangeQuery(0, "temperature", 0.0, 2.0, epoch=1))
        world.settle(3.0)
        for proto in world.protocols.values():
            assert proto.queries_rebroadcast == 1

    def test_source_evaluation_uses_live_reading(self, star4):
        world = make_flood_world(star4, {0: 0.0, 1: 10.0, 2: 20.0, 3: 30.0, 4: 40.0})
        world.run_epoch(0)
        query = RangeQuery(0, "temperature", 25.0, 45.0, epoch=1)
        world.audit.register_query(query, {3, 4}, {3, 4}, 1, population=4)
        world.root.inject_query(query)
        world.settle(3.0)
        assert world.audit.record(0).source_claims == {3, 4}


class TestFloodingCost:
    """Simulated flooding must reproduce eq. (3) exactly: C_F = N + 2L."""

    @pytest.mark.parametrize("builder,n", [(star_topology, 6), (line_topology, 7)])
    def test_cost_matches_closed_form(self, builder, n):
        topo = builder(n) if builder is line_topology else builder(n - 1)
        world = make_flood_world(topo, {i: 1.0 for i in topo.node_ids})
        world.run_epoch(0)
        world.root.inject_query(RangeQuery(0, "temperature", 0.0, 2.0, epoch=1))
        world.settle(3.0)
        expected = flooding_cost_general(topo.num_nodes, topo.num_links)
        assert world.ledger.total_cost(["flood"]) == pytest.approx(expected)

    def test_cost_on_random_topology(self, small_topology):
        world = make_flood_world(
            small_topology, {i: 1.0 for i in small_topology.node_ids}
        )
        world.run_epoch(0)
        world.root.inject_query(RangeQuery(0, "temperature", 0.0, 2.0, epoch=1))
        world.settle(3.0)
        expected = flooding_cost_general(
            small_topology.num_nodes, small_topology.num_links
        )
        assert world.ledger.total_cost(["flood"]) == pytest.approx(expected)

    def test_two_queries_cost_twice_as_much(self, star4):
        world = make_flood_world(star4, {i: 1.0 for i in star4.node_ids})
        world.run_epoch(0)
        world.root.inject_query(RangeQuery(0, "temperature", 0.0, 2.0, epoch=1))
        world.settle(2.0)
        one = world.ledger.total_cost(["flood"])
        world.root.inject_query(RangeQuery(1, "temperature", 0.0, 2.0, epoch=1))
        world.settle(3.0)
        assert world.ledger.total_cost(["flood"]) == pytest.approx(2 * one)

    def test_flooding_sends_no_updates_or_estimates(self, star4):
        world = make_flood_world(star4, {i: 1.0 for i in star4.node_ids})
        world.run_epochs(0, 5)
        world.root.inject_query(RangeQuery(0, "temperature", 0.0, 2.0, epoch=5))
        world.settle(7.0)
        assert world.ledger.total_count(kind="update") == 0
        assert world.ledger.total_count(kind="estimate") == 0

    def test_duplicate_receptions_are_charged_but_not_rebroadcast(self):
        # In a triangle every node hears the query twice but rebroadcasts once.
        import networkx as nx

        from repro.network.topology import Topology

        graph = nx.Graph([(0, 1), (1, 2), (0, 2)])
        topo = Topology(
            graph=graph, positions={0: (0, 0), 1: (1, 0), 2: (0, 1)}, comm_range=None
        )
        world = make_flood_world(topo, {0: 1.0, 1: 1.0, 2: 1.0})
        world.run_epoch(0)
        world.root.inject_query(RangeQuery(0, "temperature", 0.0, 2.0, epoch=1))
        world.settle(3.0)
        # N + 2L = 3 + 6 = 9.
        assert world.ledger.total_cost(["flood"]) == pytest.approx(9.0)
        assert all(p.queries_rebroadcast == 1 for p in world.protocols.values())
