"""Tests for protocol messages, DirQ configuration, and the ATC controller."""

import pytest

from repro.core.atc import AdaptiveThresholdController, RootBudgetPlanner
from repro.core.config import DirQConfig, ThresholdMode
from repro.core.messages import (
    EstimateMessage,
    QueryResponse,
    RangeQuery,
    UpdateMessage,
)


class TestRangeQuery:
    def test_matches_inclusive_bounds(self):
        q = RangeQuery(1, "temperature", 22.0, 25.0)
        assert q.matches(22.0) and q.matches(25.0) and q.matches(23.5)
        assert not q.matches(21.99)

    def test_overlaps_subtree_range(self):
        q = RangeQuery(1, "temperature", 22.0, 25.0)
        assert q.overlaps(20.0, 22.0)       # touching
        assert q.overlaps(24.0, 30.0)
        assert q.overlaps(0.0, 100.0)       # containing
        assert not q.overlaps(25.1, 30.0)
        assert not q.overlaps(0.0, 21.9)

    def test_invalid_query(self):
        with pytest.raises(ValueError):
            RangeQuery(1, "temperature", 25.0, 22.0)
        with pytest.raises(ValueError):
            RangeQuery(1, "", 0.0, 1.0)


class TestOtherMessages:
    def test_update_message_range_tuple(self):
        msg = UpdateMessage(3, "humidity", 40.0, 55.0, epoch=7)
        assert msg.range_tuple == (40.0, 55.0)

    def test_update_message_validation(self):
        with pytest.raises(ValueError):
            UpdateMessage(3, "humidity", 55.0, 40.0)
        # Removal updates carry no meaningful range and skip the check.
        UpdateMessage(3, "humidity", 0.0, 0.0, removed=True)

    def test_estimate_message_validation(self):
        EstimateMessage(expected_queries=10.0, hour_index=2, node_update_budget=3.5)
        with pytest.raises(ValueError):
            EstimateMessage(expected_queries=-1.0, hour_index=0)
        with pytest.raises(ValueError):
            EstimateMessage(expected_queries=1.0, hour_index=0, node_update_budget=-2.0)

    def test_query_response_fields(self):
        r = QueryResponse(query_id=4, source=9, sensor_type="light", value=312.0)
        assert r.source == 9 and r.value == 312.0


class TestDirQConfig:
    def test_defaults_are_valid(self):
        cfg = DirQConfig()
        assert cfg.threshold_mode == ThresholdMode.FIXED
        assert not cfg.adaptive

    def test_absolute_delta_uses_full_scale(self):
        cfg = DirQConfig(delta_percent=5.0, full_scale={"temperature": 20.0})
        assert cfg.absolute_delta("temperature") == pytest.approx(1.0)
        assert cfg.absolute_delta("temperature", delta_percent=10.0) == pytest.approx(2.0)
        # Unknown types fall back to the default full scale.
        assert cfg.absolute_delta("unknown") == pytest.approx(5.0)

    def test_replace_returns_modified_copy(self):
        cfg = DirQConfig()
        adaptive = cfg.replace(threshold_mode=ThresholdMode.ADAPTIVE)
        assert adaptive.adaptive
        assert not cfg.adaptive

    def test_validation(self):
        with pytest.raises(ValueError):
            DirQConfig(threshold_mode="bogus")
        with pytest.raises(ValueError):
            DirQConfig(delta_percent=0.0)
        with pytest.raises(ValueError):
            DirQConfig(epochs_per_hour=0)
        with pytest.raises(ValueError):
            DirQConfig(atc_target_cost_ratio=1.5)
        with pytest.raises(ValueError):
            DirQConfig(atc_delta_min_percent=10.0, atc_delta_max_percent=5.0)


class TestRootBudgetPlanner:
    def test_budget_targets_fraction_of_flooding(self):
        cfg = DirQConfig(atc_target_cost_ratio=0.5)
        planner = RootBudgetPlanner(cfg)
        planner.observe_query_cost(60.0)
        plan = planner.plan(
            hour_index=0, expected_queries=20, flooding_cost_per_query=400.0, network_size=50
        )
        # Headroom per query = 0.5*400 - 60 = 140 -> 70 updates per query.
        assert plan.network_update_budget == pytest.approx(20 * 140 / 2.0)
        assert plan.node_update_budget == pytest.approx(plan.network_update_budget / 49)

    def test_query_cost_feedback_is_smoothed(self):
        planner = RootBudgetPlanner(DirQConfig())
        planner.observe_query_cost(100.0)
        planner.observe_query_cost(0.0)
        assert 0.0 < planner.average_query_cost < 100.0

    def test_budget_clamped_at_zero(self):
        cfg = DirQConfig(atc_target_cost_ratio=0.5)
        planner = RootBudgetPlanner(cfg)
        planner.observe_query_cost(500.0)  # dissemination alone exceeds target
        plan = planner.plan(0, 10, flooding_cost_per_query=400.0, network_size=10)
        assert plan.network_update_budget == 0.0

    def test_default_query_cost_assumption_before_feedback(self):
        planner = RootBudgetPlanner(DirQConfig(atc_target_cost_ratio=0.5))
        plan = planner.plan(0, 10, flooding_cost_per_query=400.0, network_size=10)
        assert plan.query_cost_per_query == pytest.approx(60.0)  # 15% of C_F

    def test_invalid_inputs(self):
        planner = RootBudgetPlanner(DirQConfig())
        with pytest.raises(ValueError):
            planner.observe_query_cost(-1.0)
        with pytest.raises(ValueError):
            planner.plan(0, 10, flooding_cost_per_query=0.0, network_size=10)
        with pytest.raises(ValueError):
            planner.plan(0, 10, flooding_cost_per_query=10.0, network_size=0)
        with pytest.raises(ValueError):
            planner.plan(0, -1, flooding_cost_per_query=10.0, network_size=5)


class TestAdaptiveThresholdController:
    def make(self, **cfg_kwargs):
        cfg = DirQConfig(
            threshold_mode=ThresholdMode.ADAPTIVE,
            full_scale={"temperature": 20.0},
            epochs_per_hour=200,
            atc_window_epochs=50,
            **cfg_kwargs,
        )
        return cfg, AdaptiveThresholdController(cfg, ["temperature"])

    def test_initial_delta_is_config_default(self):
        cfg, atc = self.make()
        assert atc.delta_percent("temperature") == cfg.atc_initial_delta_percent
        assert atc.delta_absolute("temperature") == pytest.approx(
            cfg.atc_initial_delta_percent / 100 * 20.0
        )

    def test_unknown_type_gets_default_threshold_lazily(self):
        _, atc = self.make()
        assert atc.delta_percent("new-type") == 3.0

    def test_over_budget_widens_threshold(self):
        _, atc = self.make()
        atc.on_estimate(node_update_budget=4.0)  # 1 per window
        before = atc.delta_percent("temperature")
        for _ in range(10):
            atc.on_update_sent()
        atc.end_window()
        assert atc.delta_percent("temperature") > before

    def test_under_budget_narrows_threshold(self):
        _, atc = self.make()
        atc.on_estimate(node_update_budget=40.0)  # 10 per window
        before = atc.delta_percent("temperature")
        atc.on_update_sent()  # only 1 sent
        atc.end_window()
        assert atc.delta_percent("temperature") < before

    def test_within_tolerance_leaves_threshold_unchanged(self):
        _, atc = self.make()
        atc.on_estimate(node_update_budget=8.0)  # 2 per window
        before = atc.delta_percent("temperature")
        atc.on_update_sent()
        atc.on_update_sent()
        atc.end_window()
        assert atc.delta_percent("temperature") == pytest.approx(before)

    def test_threshold_clamped_to_configured_range(self):
        cfg, atc = self.make(atc_delta_max_percent=6.0)
        atc.on_estimate(node_update_budget=0.5)
        for _ in range(20):
            for _ in range(50):
                atc.on_update_sent()
            atc.end_window()
        assert atc.delta_percent("temperature") <= 6.0

    def test_no_adjustment_before_any_estimate(self):
        _, atc = self.make()
        before = atc.delta_percent("temperature")
        for _ in range(10):
            atc.on_update_sent()
        atc.end_window()
        assert atc.delta_percent("temperature") == pytest.approx(before)

    def test_update_counter_resets_each_window(self):
        _, atc = self.make()
        atc.on_estimate(node_update_budget=4.0)
        for _ in range(10):
            atc.on_update_sent()
        atc.end_window()
        widened = atc.delta_percent("temperature")
        atc.end_window()  # no updates in this window -> narrows again
        assert atc.delta_percent("temperature") < widened

    def test_rate_of_change_tracked_and_seeds_delta(self):
        _, atc = self.make()
        atc.on_estimate(node_update_budget=10.0)
        for epoch in range(10):
            atc.on_reading("temperature", 20.0 + 0.5 * epoch)
        assert atc.rate_of_change("temperature") > 0.0
        # Seeding kicked in: threshold reflects the observed drift.
        assert atc.delta_percent("temperature") != 3.0

    def test_window_budget_prorates_hourly_budget(self):
        _, atc = self.make()
        assert atc.window_budget() is None
        atc.on_estimate(node_update_budget=20.0)
        assert atc.window_budget() == pytest.approx(5.0)  # 200/50 = 4 windows

    def test_snapshot(self):
        _, atc = self.make()
        assert atc.snapshot() == {"temperature": 3.0}
