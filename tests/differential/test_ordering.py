"""The threshold-crossing fan-out order is part of the contract.

The brute loop visits ``(node, sensor_type)`` pairs in sorted node-id
order (the runner's alive list) and sorted sensor-type order within a
node (``SensorNode.sensors_sorted``).  Every update transmission -- and
therefore every MAC send, energy charge, and RNG draw downstream --
happens in that order, so the columnar fan-out must reproduce it exactly
even though its row arrays are laid out type-major for the numpy pass.

These tests spy on ``DirQNode._maybe_send_update`` (the single funnel
both paths route crossings through) and compare call sequences, using a
heterogeneous network whose sensor types *interleave*: consecutive node
ids mount different, overlapping type subsets, so a type-major walk
would visibly scramble the sequence.
"""

from __future__ import annotations

import pytest

from repro.core.dirq_node import DirQNode
from repro.experiments.runner import run_experiment
from repro.scenarios.static import small_network
from repro.sensors.types import HUMIDITY, LIGHT, PRESSURE, TEMPERATURE

from tests.differential.abharness import assert_bit_identical

NUM_NODES = 12

#: Interleaved mounts: neighbours in id order share some types and differ
#: in others, and the subsets are deliberately not sorted in the mapping.
INTERLEAVED = {
    nid: [
        [LIGHT, TEMPERATURE],
        [PRESSURE, HUMIDITY, TEMPERATURE],
        [HUMIDITY, LIGHT],
        [TEMPERATURE, PRESSURE],
    ][nid % 4]
    for nid in range(NUM_NODES)
}


def _config():
    return small_network(num_nodes=NUM_NODES, num_epochs=160).replace(
        sensors_per_node=dict(INTERLEAVED), query_sensor_type=None
    )


def _crossing_sequence(monkeypatch, config, tick_only=False):
    """Run one arm, recording every (epoch, node, sensor_type) call.

    Epoch-tick crossings pass ``table=``/``delta=`` (both the brute loop
    and the columnar fan-out do); message- and repair-handler calls do
    not.  ``tick_only`` keeps just the former -- the handler calls happen
    at event-delivery times and are *not* subject to the sorted-order
    contract (they are still covered by the full-sequence equality test).
    """
    calls = []
    original = DirQNode._maybe_send_update

    def spy(self, sensor_type, epoch, **kwargs):
        if not tick_only or "table" in kwargs:
            calls.append((epoch, self.node_id, sensor_type))
        return original(self, sensor_type, epoch, **kwargs)

    monkeypatch.setattr(DirQNode, "_maybe_send_update", spy)
    try:
        run_experiment(config)
    finally:
        monkeypatch.undo()
    return calls


class TestCrossingOrder:
    def test_columnar_sequence_equals_brute_sequence(self, monkeypatch):
        cfg = _config()
        brute = _crossing_sequence(monkeypatch, cfg.replace(tick_method=None))
        columnar = _crossing_sequence(
            monkeypatch, cfg.replace(tick_method="columnar")
        )
        assert brute, "the spy should observe at least one crossing"
        assert columnar == brute

    def test_brute_order_is_the_documented_sort(self, monkeypatch):
        """Pin the reference semantics the columnar path must mirror:
        within an epoch, crossings are sorted by (node id, sensor type)."""
        seq = _crossing_sequence(
            monkeypatch, _config().replace(tick_method=None), tick_only=True
        )
        per_epoch = {}
        for epoch, nid, stype in seq:
            per_epoch.setdefault(epoch, []).append((nid, stype))
        assert per_epoch
        for epoch, pairs in per_epoch.items():
            assert pairs == sorted(pairs), f"epoch {epoch}"

    def test_interleaved_types_bit_identical(self):
        """Full-observable A/B on the interleaved network (the fan-out
        permutation covers rows of several types per node)."""
        assert_bit_identical(_config(), context="interleaved-types")
