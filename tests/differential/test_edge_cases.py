"""Batch-sampling edge cases for the columnar tick.

The columnar pass gathers rows for the *alive* protocol set and rebuilds
on topology change; these tests pin the awkward boundaries: nodes dying
and reviving mid-run (scripted and churn-driven), nodes that mount no
sensor of the queried type, the minimal legal network, and the lowrank
phenomena field (the large-N synthesis path) under columnar reads.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig, TopologyEvent
from repro.scenarios.spec import ChurnConfig, ScenarioConfig
from repro.scenarios.static import small_network
from repro.sensors.types import HUMIDITY, LIGHT, TEMPERATURE

from tests.differential.abharness import assert_bit_identical, run_arm


class TestDeadAndRevivingNodes:
    def test_scripted_kill_and_revive(self):
        """Scripted deaths force a columnar rebuild mid-run; a later
        activation of an initially-dead node forces another."""
        cfg = small_network(num_nodes=14, num_epochs=240).replace(
            initially_dead={13},
            topology_events=[
                TopologyEvent(epoch=60, kind=TopologyEvent.KILL, node_id=5),
                TopologyEvent(epoch=90, kind=TopologyEvent.KILL, node_id=9),
                TopologyEvent(
                    epoch=140, kind=TopologyEvent.ACTIVATE, node_id=13
                ),
            ],
        )
        assert_bit_identical(cfg, context="scripted-kill-revive")

    def test_churn_deaths_with_revival(self):
        """Random churn with revive_after: rows leave and re-enter the
        alive set repeatedly."""
        cfg = small_network(num_nodes=16, num_epochs=260).with_scenario(
            ScenarioConfig(
                name="edge-churn",
                churn=ChurnConfig(death_rate=0.01, revive_after=30),
            )
        )
        assert_bit_identical(cfg, context="churn-revive")


class TestHeterogeneousMounts:
    def test_nodes_without_the_swept_type(self):
        """Some nodes mount no sensor of the queried type: their rows
        simply don't exist for that type's segment, and queries covering
        them must resolve identically."""
        mounts = {
            nid: ([TEMPERATURE, HUMIDITY] if nid % 3 else [LIGHT])
            for nid in range(12)
        }
        cfg = small_network(num_nodes=12, num_epochs=200).replace(
            sensors_per_node=mounts, query_sensor_type=TEMPERATURE
        )
        assert_bit_identical(cfg, context="missing-swept-type")

    def test_random_subset_mounts(self):
        cfg = small_network(num_nodes=14, num_epochs=200).replace(
            sensors_per_node=2, query_sensor_type=None
        )
        assert_bit_identical(cfg, context="k-random-mounts")


class TestMinimalNetworks:
    def test_minimal_two_node_network(self):
        """num_nodes=2 is the smallest legal config (a root plus one
        sensing node): one row per sensor type."""
        cfg = small_network(num_nodes=2, num_epochs=160)
        assert_bit_identical(cfg, context="n=2")

    def test_single_node_network_rejected_in_both_arms(self):
        """n=1 is a config error, not a columnar special case."""
        for method in (None, "columnar"):
            with pytest.raises(ValueError, match="num_nodes"):
                ExperimentConfig(num_nodes=1, tick_method=method)


class TestPhenomenaField:
    def test_lowrank_field_bit_identical_under_columnar(self):
        """The lowrank synthesis draws a different dataset than exact --
        the columnar gather must be bit-identical to brute *within* each
        synthesis method."""
        cfg = small_network(num_nodes=16, num_epochs=200).replace(
            phenomena_method="lowrank"
        )
        assert_bit_identical(cfg, context="lowrank")

    def test_exact_field_pinned_explicitly(self):
        cfg = small_network(num_nodes=16, num_epochs=200).replace(
            phenomena_method="exact"
        )
        assert_bit_identical(cfg, context="exact")

    def test_lowrank_and_exact_fields_differ(self):
        """Guard the guard: lowrank is an *approximation*, so the two
        synthesis methods must not silently alias (if they did, the
        lowrank A/B above would not be testing a distinct code path)."""
        exact = run_arm(
            small_network(num_nodes=16, num_epochs=200), "columnar"
        )
        lowrank = run_arm(
            small_network(num_nodes=16, num_epochs=200).replace(
                phenomena_method="lowrank"
            ),
            "columnar",
        )
        assert exact.fingerprint(include_key=False) != lowrank.fingerprint(
            include_key=False
        )
