"""Randomized-config property tests for the columnar tick.

Each case draws a configuration from a seeded generator -- network size,
channel loss, threshold mode and δ, sensor heterogeneity, churn -- and
asserts the columnar arm is bit-identical to the brute arm.  On failure
the case shrinks ``num_epochs`` by bisection and prints a paste-able
minimal reproduction, so a red CI run hands the next session a small
regression test instead of a random seed.
"""

from __future__ import annotations

import random

import pytest

from repro.scenarios.spec import ChurnConfig, ScenarioConfig
from repro.scenarios.static import small_network

from tests.differential.abharness import (
    describe,
    mismatched_observables,
    shrink_num_epochs,
)

#: Bump to re-roll the whole corpus; individual cases derive from it.
CORPUS_SEED = 20_260_808
NUM_CASES = 6


def draw_config(case_seed: int):
    """One random configuration; every choice comes from ``case_seed``."""
    rng = random.Random(CORPUS_SEED + case_seed)
    num_nodes = rng.randrange(8, 28)
    cfg = small_network(
        num_nodes=num_nodes,
        num_epochs=rng.randrange(120, 260),
        seed=rng.randrange(1, 10_000),
    )
    cfg = cfg.replace(
        channel_loss=rng.choice([0.0, 0.0, 0.1, 0.35]),
        query_period=rng.choice([10, 20]),
    )
    if rng.random() < 0.5:
        cfg = cfg.with_atc()
    else:
        cfg = cfg.with_fixed_delta(rng.choice([0.5, 2.0, 5.0, 12.0]))
    mode = rng.random()
    if mode < 0.3:
        # Heterogeneous mounts: k random sensor types per node.
        cfg = cfg.replace(sensors_per_node=rng.choice([1, 2, 3]))
    if rng.random() < 0.4:
        cfg = cfg.with_scenario(
            ScenarioConfig(
                name=f"prop-churn-{case_seed}",
                churn=ChurnConfig(
                    death_rate=rng.choice([0.002, 0.01]),
                    revive_after=rng.choice([None, 40]),
                ),
            )
        )
    return cfg


@pytest.mark.parametrize("case_seed", range(NUM_CASES))
def test_random_config_bit_identical(case_seed):
    cfg = draw_config(case_seed)
    bad, _, _ = mismatched_observables(cfg)
    if bad:
        shrunk = shrink_num_epochs(cfg)
        pytest.fail(
            f"case {case_seed} diverged on {bad}.\n"
            f"Shrunk reproduction ({shrunk.num_epochs} epochs):\n"
            f"  from tests.differential.abharness import assert_bit_identical\n"
            f"  assert_bit_identical({describe(shrunk)})\n"
            f"full config: {describe(cfg)}"
        )


def test_corpus_is_diverse():
    """The generator must actually exercise the interesting axes --
    lossy channels, fixed and adaptive thresholds, heterogeneous mounts,
    and churn -- so a green run means something."""
    cfgs = [draw_config(s) for s in range(NUM_CASES)]
    assert any(c.channel_loss > 0 for c in cfgs)
    assert any(c.channel_loss == 0 for c in cfgs)
    assert len({c.dirq.threshold_mode for c in cfgs}) == 2
    assert any(c.sensors_per_node is not None for c in cfgs)
    assert any(c.scenario is not None for c in cfgs)
