"""Cache-identity pins for ``tick_method``.

The flag follows the HASH_OMIT_WHEN_UNSET convention: while ``None`` it
is absent from the canonical hash payload (every pre-existing cache key,
golden hash, and fingerprint survives its introduction); once pinned to
a strategy it enters the payload, so the brute and columnar arms of an
A/B sweep can never alias in the result cache.  These pins, plus the
reprolint corpus entry ``bad_rl202_strategy_flag_default.py`` and the
repo-wide RL210 dynamic hash-coverage check, are what keep the field
from silently entering (or silently leaving) ``_canonical``.
"""

from __future__ import annotations

import pytest

from repro.experiments.batch import TrialSpec, _canonical, config_hash
from repro.experiments.config import ExperimentConfig
from repro.scenarios import static
from repro.scenarios.static import small_network

# Same golden values tests/scenarios/test_registry_and_runner.py pins:
# computed before tick_method (and the scenario subsystem) existed.
GOLDEN_DEFAULT_HASH = "ddf46843e039ea619dab"
GOLDEN_PAPER_HASH = "3dc18157e5e868d10b40"
GOLDEN_SMALL_KEY = "523dd1a10f7090c16772"


class TestTickMethodHashContract:
    def test_flag_is_registered_omit_when_unset(self):
        assert "tick_method" in ExperimentConfig.HASH_OMIT_WHEN_UNSET

    def test_unset_flag_preserves_golden_hashes(self):
        assert config_hash(ExperimentConfig()) == GOLDEN_DEFAULT_HASH
        assert config_hash(static.paper_network()) == GOLDEN_PAPER_HASH
        spec = TrialSpec(
            label="golden", config=small_network(num_nodes=10, num_epochs=80)
        )
        assert spec.key == GOLDEN_SMALL_KEY

    def test_unset_flag_absent_from_canonical_payload(self):
        payload = _canonical(ExperimentConfig())
        assert "tick_method" not in payload

    def test_pinned_flag_enters_canonical_payload(self):
        for method in ("periodic", "columnar"):
            payload = _canonical(ExperimentConfig(tick_method=method))
            assert payload["tick_method"] == method

    def test_each_strategy_hashes_distinctly(self):
        hashes = {
            method: config_hash(ExperimentConfig(tick_method=method))
            for method in (None, "periodic", "columnar")
        }
        assert hashes[None] == GOLDEN_DEFAULT_HASH
        assert len(set(hashes.values())) == 3

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError, match="tick_method"):
            ExperimentConfig(tick_method="vectorised")


def test_periodic_is_an_explicit_brute_pin():
    """tick_method="periodic" names the default strategy: measurements
    equal the unset config's, only the cache key differs."""
    from tests.differential.abharness import run_arm

    cfg = small_network(num_nodes=10, num_epochs=120)
    unset = run_arm(cfg, None)
    periodic = run_arm(cfg, "periodic")
    assert unset.fingerprint(include_key=False) == periodic.fingerprint(
        include_key=False
    )
    assert unset.spec.key != periodic.spec.key
