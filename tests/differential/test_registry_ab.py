"""Columnar-vs-brute A/B over a representative registry slice.

One granular test per scenario (serial, in-process, per-observable diffs)
plus a batch-level run through :class:`BatchRunner` at 1 and 4 workers
that pins fingerprints across worker counts and asserts the warm-cache
re-run executes zero trials -- the same contract the CI ``differential``
job drives.
"""

from __future__ import annotations

import pytest

from repro.experiments.batch import BatchRunner, TrialSpec
from repro.scenarios.registry import build_config

from tests.differential.abharness import assert_bit_identical, run_arm

#: (scenario, epochs): epochs are scaled to keep each arm in the seconds
#: range while still crossing several ATC windows / churn cycles; scale-500
#: runs shorter because the 500-node build dominates.
REGISTRY_SLICE = (
    ("static-paper", 300),
    ("harsh-mixed", 300),
    ("scale-500", 60),
    ("energy-tiered", 300),
)


@pytest.mark.parametrize("name,epochs", REGISTRY_SLICE, ids=lambda v: str(v))
def test_registry_scenario_bit_identical(name, epochs):
    """Fingerprint, ledger, and accuracy-series equality per scenario."""
    assert_bit_identical(build_config(name, num_epochs=epochs), context=name)


class TestWorkerInvariance:
    """The A/B suite must hold at 1 and 4 workers, cache included."""

    SCENARIOS = (("static-paper", 200), ("harsh-mixed", 200))

    def _specs(self):
        specs = []
        for name, epochs in self.SCENARIOS:
            cfg = build_config(name, num_epochs=epochs)
            for arm in (None, "columnar"):
                specs.append(
                    TrialSpec(
                        label=f"{name}[{arm or 'brute'}]",
                        config=cfg.replace(tick_method=arm),
                    )
                )
        return specs

    @pytest.mark.parametrize("workers", [1, 4])
    def test_arms_agree_at_any_worker_count(self, workers, tmp_path):
        runner = BatchRunner(
            max_workers=workers,
            executor="process",
            cache_dir=tmp_path / f"w{workers}",
        )
        results = runner.run(self._specs())
        prints = [r.fingerprint(include_key=False) for r in results]
        # Results arrive in spec order: (brute, columnar) per scenario.
        for i in range(0, len(prints), 2):
            assert prints[i] == prints[i + 1], results[i].label

        # Warm-cache re-run: served entirely from the cache, bit-identical.
        again = runner.run(self._specs())
        assert runner.last_stats.executed == 0
        assert all(r.from_cache for r in again)
        assert [r.fingerprint(include_key=False) for r in again] == prints

    def test_cache_does_not_alias_the_two_arms(self, tmp_path):
        """The arms must hash to *different* cache keys (tick_method set
        enters the canonical payload), so an A/B sweep can never serve one
        arm's cached result to the other."""
        specs = self._specs()
        keys = [s.key for s in specs]
        assert len(set(keys)) == len(keys)


def test_repeated_columnar_runs_reproduce():
    """The fast path is deterministic run-to-run, not just brute-equal."""
    cfg = build_config("static-paper", num_epochs=200)
    first = run_arm(cfg, "columnar").fingerprint(include_key=False)
    second = run_arm(cfg, "columnar").fingerprint(include_key=False)
    assert first == second
