"""Columnar-vs-brute A/B harness (PR 10).

``tick_method="columnar"`` is a pure implementation strategy: every
observable of a trial -- the cost breakdown, the per-window update series,
the query audit, the energy ledger down to per-(kind, direction) entries,
ATC's δ history, scenario telemetry -- must be *bit-identical* to the
brute per-node loop.  This module is the single definition of "identical":
it runs both arms of a configuration and either returns the list of
observables that disagree (empty = equivalent) or asserts equivalence
with a per-observable diff.

The catch-all instrument is :meth:`TrialResult.fingerprint` with
``include_key=False`` (the two arms hash differently by design -- the
flag enters the cache key when set -- but must measure identically), the
same digest the batch cache and the campaign store use for bit-identity
guarantees.  The granular comparisons exist so a regression fails on the
*first* observable that diverges, with both values printed, instead of on
an opaque digest.
"""

from __future__ import annotations

import copy
from typing import List, Optional, Tuple

from repro.experiments.batch import TrialResult, TrialSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment


def run_arm(config: ExperimentConfig, tick_method: Optional[str]) -> TrialResult:
    """Run one arm of the A/B pair and distil it into a `TrialResult`.

    Mirrors the batch worker entry point: the spec snapshots the config,
    and the runner gets a private deep copy so mutations during the build
    (``dirq.full_scale`` filled from the dataset) never leak between arms.
    """
    spec = TrialSpec(
        label=f"ab[{tick_method or 'brute'}]",
        config=config.replace(tick_method=tick_method),
    )
    result = run_experiment(copy.deepcopy(spec.config))
    return TrialResult.from_experiment(spec, result)


#: Observable name -> extractor.  Ordered from the most diagnostic (a
#: ledger entry names the node, kind, and direction that drifted) to the
#: broadest; ``assert_bit_identical`` checks them in this order.
OBSERVABLES = (
    ("ledger.breakdown_by_kind", lambda r: r.ledger.breakdown_by_kind()),
    ("breakdown", lambda r: r.breakdown),
    ("update_series", lambda r: r.update_series),
    ("per_query_costs", lambda r: r.per_query_costs),
    ("num_queries", lambda r: r.num_queries),
    ("atc_delta_history", lambda r: r.atc_delta_history),
    ("alive_at_end", lambda r: r.alive_at_end),
    ("scenario_events", lambda r: r.scenario_events),
    ("num_relinks", lambda r: r.num_relinks),
    (
        # The per-query accuracy series: every audit record, with its
        # injection epoch, queried population, and exact receiver sets.
        "audit_records",
        lambda r: [
            (
                rec.query_id,
                rec.injection_epoch,
                rec.population,
                sorted(rec.sources),
                sorted(rec.should_receive),
                sorted(rec.received),
                sorted(rec.source_claims),
            )
            for rec in r.audit.records
        ],
    ),
)


def mismatched_observables(
    config: ExperimentConfig,
) -> Tuple[List[str], TrialResult, TrialResult]:
    """Run both arms; return the names of observables that differ."""
    brute = run_arm(config, None)
    columnar = run_arm(config, "columnar")
    bad = [
        name
        for name, extract in OBSERVABLES
        if extract(brute) != extract(columnar)
    ]
    if brute.fingerprint(include_key=False) != columnar.fingerprint(
        include_key=False
    ):
        bad.append("fingerprint")
    return bad, brute, columnar


def assert_bit_identical(config: ExperimentConfig, context: str = "") -> None:
    """Assert columnar == brute on every observable, diffing the first."""
    prefix = f"{context}: " if context else ""
    bad, brute, columnar = mismatched_observables(config)
    if not bad:
        return
    name = bad[0]
    extract = dict(OBSERVABLES).get(name)
    detail = ""
    if extract is not None:
        detail = (
            f"\n  brute:    {extract(brute)!r}"
            f"\n  columnar: {extract(columnar)!r}"
        )
    raise AssertionError(
        f"{prefix}columnar tick diverged from the brute loop on "
        f"{bad} (config={describe(config)}){detail}"
    )


def describe(config: ExperimentConfig) -> str:
    """A paste-able summary of the fields a repro needs."""
    return (
        f"ExperimentConfig(num_nodes={config.num_nodes}, "
        f"num_epochs={config.num_epochs}, seed={config.seed}, "
        f"channel_loss={config.channel_loss}, "
        f"sensors_per_node={config.sensors_per_node!r}, "
        f"threshold_mode={config.dirq.threshold_mode!r}, "
        f"delta_percent={config.dirq.delta_percent}, "
        f"scenario={config.scenario!r}, "
        f"phenomena_method={config.phenomena_method!r})"
    )


def shrink_num_epochs(config: ExperimentConfig) -> ExperimentConfig:
    """Shrink a *failing* config to the fewest epochs that still fail.

    Bisects on ``num_epochs`` (the dominant cost axis), re-running the
    A/B pair at each candidate.  Used by the randomized property tests to
    print a minimal reproduction when a seed finds a divergence, so the
    committed regression test can be small.
    """
    failing = config.num_epochs
    lo = 1
    while lo < failing:
        mid = (lo + failing) // 2
        bad, _, _ = mismatched_observables(config.replace(num_epochs=mid))
        if bad:
            failing = mid
        else:
            lo = mid + 1
    return config.replace(num_epochs=failing)
