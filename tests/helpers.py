"""Shared test helpers: hand-built miniature worlds.

The experiment runner assembles full 50-node networks; unit and integration
tests often need something much smaller and fully controlled instead.  The
helpers here build a tiny line / star / tree network with a deterministic
dataset so protocol behaviour can be asserted node by node.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import networkx as nx
import numpy as np

from repro.core.config import DirQConfig
from repro.core.dirq_node import DirQNode
from repro.core.dirq_root import DirQRoot
from repro.core.flooding import FloodingNode, FloodingRoot
from repro.energy.ledger import NetworkLedger
from repro.mac.lmac import LMACProtocol
from repro.metrics.audit import QueryAudit
from repro.network.channel import WirelessChannel
from repro.network.node import SensorNode
from repro.network.spanning_tree import SpanningTree, build_bfs_tree
from repro.network.topology import Topology
from repro.sensors.dataset import SensorDataset
from repro.sensors.sensor import Sensor
from repro.simulation.engine import Simulator
from repro.workload.predictor import QueryRatePredictor


def line_topology(num_nodes: int, spacing: float = 10.0) -> Topology:
    """A simple path 0 - 1 - 2 - ... with node 0 as the root."""
    graph = nx.Graph()
    positions = {}
    for i in range(num_nodes):
        graph.add_node(i)
        positions[i] = (i * spacing, 0.0)
        if i > 0:
            graph.add_edge(i - 1, i)
    return Topology(graph=graph, positions=positions, comm_range=spacing * 1.2)


def star_topology(num_leaves: int, spacing: float = 10.0) -> Topology:
    """Node 0 at the centre connected to ``num_leaves`` leaves."""
    graph = nx.Graph()
    positions = {0: (0.0, 0.0)}
    graph.add_node(0)
    for i in range(1, num_leaves + 1):
        angle = 2 * np.pi * i / num_leaves
        positions[i] = (spacing * np.cos(angle), spacing * np.sin(angle))
        graph.add_node(i)
        graph.add_edge(0, i)
    return Topology(graph=graph, positions=positions, comm_range=spacing * 1.2)


def constant_dataset(
    node_ids: Sequence[int],
    values: Dict[int, float],
    num_epochs: int = 50,
    sensor_type: str = "temperature",
) -> SensorDataset:
    """Dataset where every node holds a constant reading over time."""
    arr = np.zeros((num_epochs, len(node_ids)))
    for col, nid in enumerate(node_ids):
        arr[:, col] = values.get(nid, 0.0)
    return SensorDataset(node_ids=list(node_ids), readings={sensor_type: arr})


def ramp_dataset(
    node_ids: Sequence[int],
    start: Dict[int, float],
    slope: Dict[int, float],
    num_epochs: int = 50,
    sensor_type: str = "temperature",
) -> SensorDataset:
    """Dataset where each node's reading ramps linearly over epochs."""
    arr = np.zeros((num_epochs, len(node_ids)))
    epochs = np.arange(num_epochs)
    for col, nid in enumerate(node_ids):
        arr[:, col] = start.get(nid, 0.0) + slope.get(nid, 0.0) * epochs
    return SensorDataset(node_ids=list(node_ids), readings={sensor_type: arr})


@dataclasses.dataclass
class MiniWorld:
    """A hand-assembled protocol stack over a small topology."""

    sim: Simulator
    topology: Topology
    channel: WirelessChannel
    ledger: NetworkLedger
    dataset: SensorDataset
    tree: SpanningTree
    nodes: Dict[int, SensorNode]
    macs: Dict[int, LMACProtocol]
    protocols: Dict[int, object]
    audit: QueryAudit
    config: Optional[DirQConfig]

    @property
    def root(self):
        return self.protocols[self.tree.root]

    def run_epoch(self, epoch: int) -> None:
        """Advance one epoch: drain, sample, drain again."""
        self.sim.run_until(float(epoch))
        for nid in sorted(self.protocols):
            if self.nodes[nid].alive:
                self.protocols[nid].on_epoch(epoch)
        self.sim.run_until(epoch + 0.9)

    def run_epochs(self, first: int, last: int) -> None:
        for epoch in range(first, last + 1):
            self.run_epoch(epoch)

    def settle(self, until: float) -> None:
        self.sim.run_until(until)


def build_mini_world(
    topology: Topology,
    dataset: SensorDataset,
    protocol: str = "dirq",
    config: Optional[DirQConfig] = None,
    root_id: int = 0,
    sensor_assignment: Optional[Dict[int, List[str]]] = None,
    start: bool = True,
    loss_probability: float = 0.0,
    seed: int = 0,
) -> MiniWorld:
    """Assemble a miniature DirQ or flooding stack over ``topology``.

    ``sensor_assignment`` maps node id -> list of sensor types to mount;
    every dataset type on every node by default.
    """
    sim = Simulator()
    ledger = NetworkLedger()
    rng = np.random.default_rng(seed)
    channel = WirelessChannel(
        sim,
        topology,
        ledger=ledger,
        loss_probability=loss_probability,
        rng=rng,
    )
    tree = build_bfs_tree(topology, root=root_id)
    audit = QueryAudit()
    cfg = config if config is not None else DirQConfig(epochs_per_hour=100)
    # Percentage thresholds need a full-scale reference for each type.
    for stype in dataset.sensor_types:
        lo, hi = dataset.value_range(stype)
        cfg.full_scale.setdefault(stype, max(hi - lo, 10.0))

    nodes: Dict[int, SensorNode] = {}
    macs: Dict[int, LMACProtocol] = {}
    protocols: Dict[int, object] = {}
    for nid in topology.node_ids:
        node = SensorNode(nid, topology.position(nid), is_root=(nid == root_id))
        types = (
            sensor_assignment.get(nid, [])
            if sensor_assignment is not None
            else dataset.sensor_types
        )
        for stype in types:
            node.attach_sensor(Sensor(nid, stype, dataset))
        nodes[nid] = node
        macs[nid] = LMACProtocol(
            sim,
            channel,
            nid,
            rng=np.random.default_rng(seed * 1000 + nid),
            beacon_interval=5.0,
        )

    for nid in topology.node_ids:
        node, mac = nodes[nid], macs[nid]
        if protocol == "dirq":
            if nid == root_id:
                protocols[nid] = DirQRoot(
                    sim, node, mac, cfg, audit=audit, predictor=QueryRatePredictor()
                )
            else:
                protocols[nid] = DirQNode(sim, node, mac, cfg, audit=audit)
        elif protocol == "flooding":
            if nid == root_id:
                protocols[nid] = FloodingRoot(sim, node, mac, audit=audit)
            else:
                protocols[nid] = FloodingNode(sim, node, mac, audit=audit)
        else:
            raise ValueError(f"unknown protocol {protocol!r}")
        protocols[nid].set_tree_links(
            tree.parent_of(nid) if nid in tree else None,
            tree.children(nid) if nid in tree else [],
        )

    if start:
        for nid in topology.node_ids:
            macs[nid].start()
            protocols[nid].start()

    return MiniWorld(
        sim=sim,
        topology=topology,
        channel=channel,
        ledger=ledger,
        dataset=dataset,
        tree=tree,
        nodes=nodes,
        macs=macs,
        protocols=protocols,
        audit=audit,
        config=cfg,
    )
