"""Tests for the grid-bucket spatial hash (``repro.network.spatial``).

Two layers: unit tests of the ``SpatialHash`` container contract
(deterministic sorted drains, inclusive range predicate, cell geometry)
and randomized equivalence properties pinning the spatial neighbour
derivation to the brute-force reference -- same edge sets, same adjacency
insertion order, same inclusive boundary behaviour -- because experiment
fingerprints depend on that byte-level agreement.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.network.links import within_range
from repro.network.spatial import SpatialHash, unit_disk_edges
from repro.network.topology import (
    NEIGHBOR_METHODS,
    Topology,
    _unit_disk_graph,
    random_geometric_topology,
)


def brute_edges(positions, comm_range):
    """Reference O(n^2) edge derivation with the shared predicate."""
    ids = sorted(positions)
    return [
        (a, b)
        for i, a in enumerate(ids)
        for b in ids[i + 1 :]
        if within_range(positions[a], positions[b], comm_range)
    ]


class TestSpatialHashContainer:
    def test_insert_len_contains_position(self):
        grid = SpatialHash(cell_size=10.0)
        assert len(grid) == 0 and 1 not in grid
        grid.insert(1, (3.0, 4.0))
        assert len(grid) == 1 and 1 in grid
        assert grid.position(1) == (3.0, 4.0)

    def test_duplicate_insert_rejected(self):
        grid = SpatialHash({1: (0.0, 0.0)}, cell_size=5.0)
        with pytest.raises(ValueError, match="already indexed"):
            grid.insert(1, (1.0, 1.0))

    def test_remove_unknown_rejected(self):
        grid = SpatialHash(cell_size=5.0)
        with pytest.raises(KeyError):
            grid.remove(9)

    def test_remove_drops_empty_buckets(self):
        grid = SpatialHash({1: (1.0, 1.0), 2: (1.5, 1.5)}, cell_size=10.0)
        assert grid.cells() == [(0, 0)]
        grid.remove(1)
        assert grid.bucket((0, 0)) == [2]
        grid.remove(2)
        assert grid.cells() == []

    def test_move_within_and_across_cells(self):
        grid = SpatialHash({7: (1.0, 1.0)}, cell_size=10.0)
        grid.move(7, (8.0, 9.0))
        assert grid.cell_for(grid.position(7)) == (0, 0)
        grid.move(7, (11.0, -0.5))
        assert grid.cells() == [(1, -1)]
        assert grid.position(7) == (11.0, -0.5)

    def test_move_unknown_rejected(self):
        grid = SpatialHash(cell_size=5.0)
        with pytest.raises(KeyError):
            grid.move(3, (0.0, 0.0))

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.inf, math.nan])
    def test_cell_size_must_be_positive_finite(self, bad):
        with pytest.raises(ValueError):
            SpatialHash(cell_size=bad)

    def test_cell_for_uses_floor_on_negative_coordinates(self):
        grid = SpatialHash(cell_size=10.0)
        assert grid.cell_for((-0.1, 0.1)) == (-1, 0)
        assert grid.cell_for((-10.0, -10.0)) == (-1, -1)
        assert grid.cell_for((0.0, 0.0)) == (0, 0)

    def test_bulk_init_matches_per_node_insert(self):
        rng = np.random.default_rng(3)
        positions = {
            int(i): (float(x), float(y))
            for i, (x, y) in enumerate(rng.uniform(-50, 50, (40, 2)))
        }
        bulk = SpatialHash(positions, cell_size=7.5)
        singly = SpatialHash(cell_size=7.5)
        for nid in sorted(positions):
            singly.insert(nid, positions[nid])
        assert list(bulk.items()) == list(singly.items())
        assert bulk.cells() == singly.cells()

    def test_sorted_drain_order(self):
        grid = SpatialHash(
            {5: (25.0, 5.0), 1: (5.0, 5.0), 3: (5.0, 6.0)}, cell_size=10.0
        )
        cells = grid.cells()
        assert cells == sorted(cells)
        assert grid.bucket((0, 0)) == [1, 3]
        drained = list(grid.items())
        assert [cell for cell, _ in drained] == cells
        assert all(members == sorted(members) for _, members in drained)


class TestSpatialHashQueries:
    def test_query_returns_sorted_ids(self):
        grid = SpatialHash(
            {9: (1.0, 0.0), 2: (0.0, 1.0), 5: (1.0, 1.0)}, cell_size=3.0
        )
        assert grid.query((0.0, 0.0), 2.0) == [2, 5, 9]

    def test_query_exclude_and_zero_radius(self):
        grid = SpatialHash({1: (0.0, 0.0), 2: (0.5, 0.0)}, cell_size=2.0)
        assert grid.query((0.0, 0.0), 1.0, exclude=1) == [2]
        assert grid.query((0.0, 0.0), 0.0) == [1]

    def test_query_inclusive_at_exact_range(self):
        # 3-4-5 triangle: the distance is exactly representable, so the
        # inclusive predicate must include the boundary node.
        grid = SpatialHash({1: (0.0, 0.0), 2: (3.0, 4.0)}, cell_size=5.0)
        assert grid.query((0.0, 0.0), 5.0) == [1, 2]
        assert grid.neighbors_within(1, 5.0) == [2]
        assert grid.query((0.0, 0.0), np.nextafter(5.0, 0.0)) == [1]

    def test_query_spans_cell_boundaries(self):
        # Node sitting exactly on a cell border must be found from the
        # neighbouring cell's perspective.
        grid = SpatialHash({1: (10.0, 0.0), 2: (9.999, 0.0)}, cell_size=10.0)
        assert grid.cell_for((10.0, 0.0)) == (1, 0)
        assert grid.query((0.5, 0.0), 9.6) == [1, 2]

    def test_query_radius_larger_than_cell(self):
        rng = np.random.default_rng(11)
        positions = {
            int(i): (float(x), float(y))
            for i, (x, y) in enumerate(rng.uniform(0, 100, (60, 2)))
        }
        grid = SpatialHash(positions, cell_size=4.0)
        centre = (50.0, 50.0)
        expected = sorted(
            nid
            for nid, pos in positions.items()
            if within_range(centre, pos, 37.0)
        )
        assert grid.query(centre, 37.0) == expected


class TestUnitDiskEquivalence:
    def test_edges_match_brute_force_randomized(self):
        rng = np.random.default_rng(21)
        for _ in range(25):
            n = int(rng.integers(2, 90))
            area = float(rng.uniform(10, 200))
            comm = float(rng.uniform(3, 90))
            positions = {
                int(i): (float(x), float(y))
                for i, (x, y) in enumerate(rng.uniform(0, area, (n, 2)))
            }
            assert unit_disk_edges(positions, comm) == brute_edges(
                positions, comm
            )

    def test_graph_builders_agree_including_adjacency_order(self):
        rng = np.random.default_rng(22)
        for _ in range(15):
            n = int(rng.integers(2, 80))
            comm = float(rng.uniform(5, 60))
            positions = {
                int(i): (float(x), float(y))
                for i, (x, y) in enumerate(rng.uniform(0, 100, (n, 2)))
            }
            spatial = _unit_disk_graph(positions, comm, method="spatial")
            brute = _unit_disk_graph(positions, comm, method="brute")
            assert list(spatial.nodes) == list(brute.nodes)
            assert sorted(spatial.edges) == sorted(brute.edges)
            for node in spatial.nodes:
                # Adjacency *order* feeds broadcast fan-out order, which
                # feeds fingerprints -- it must match exactly.
                assert list(spatial[node]) == list(brute[node])

    def test_shared_edge_attribute_invariant(self):
        positions = {0: (0.0, 0.0), 1: (1.0, 0.0), 2: (0.0, 1.0)}
        g = _unit_disk_graph(positions, 2.0, method="spatial")
        for a, b in g.edges:
            assert g[a][b] is g[b][a]

    def test_grid_aligned_positions(self):
        # Nodes exactly on cell corners and cell-size-equal spacing: the
        # classic off-by-one window for floor-based hashing.
        positions = {
            i * 4 + j: (float(i * 10), float(j * 10))
            for i in range(4)
            for j in range(4)
        }
        assert unit_disk_edges(positions, 10.0) == brute_edges(
            positions, 10.0
        )

    def test_method_validation(self):
        positions = {0: (0.0, 0.0), 1: (1.0, 0.0)}
        with pytest.raises(ValueError, match="neighbor method"):
            _unit_disk_graph(positions, 2.0, method="kdtree")
        assert set(NEIGHBOR_METHODS) == {"spatial", "brute"}


class TestWithPositionsDelta:
    def _random_topology(self, seed, n=60):
        return random_geometric_topology(
            n, comm_range=30.0, area_size=120.0, rng=np.random.default_rng(seed)
        )

    def test_empty_updates_is_identity(self):
        topo = self._random_topology(1)
        new, dirty = topo.with_positions_delta({})
        assert new is topo and dirty == set()

    def test_unknown_node_rejected(self):
        topo = self._random_topology(2)
        with pytest.raises(KeyError, match="unknown nodes"):
            topo.with_positions_delta({999: (0.0, 0.0)})

    def test_requires_comm_range(self):
        topo = self._random_topology(3)
        bare = Topology(
            graph=topo.graph, positions=topo.positions, comm_range=None
        )
        with pytest.raises(ValueError, match="comm_range"):
            bare.with_positions_delta({0: (1.0, 1.0)})

    @pytest.mark.parametrize("method", ["spatial", "brute"])
    def test_chained_moves_match_full_rebuild(self, method):
        topo = self._random_topology(5)
        reference = topo
        rng = np.random.default_rng(17)
        for _ in range(12):
            ids = sorted(topo.positions)
            k = int(rng.integers(1, 10))
            chosen = rng.choice(len(ids), size=k, replace=False)
            updates = {
                ids[int(i)]: (
                    float(rng.uniform(0, 120)),
                    float(rng.uniform(0, 120)),
                )
                for i in sorted(chosen)
            }
            topo, _ = topo.with_positions_delta(updates, method=method)
            moved_positions = {
                nid: updates.get(nid, pos)
                for nid, pos in reference.positions.items()
            }
            reference = Topology(
                graph=_unit_disk_graph(moved_positions, 30.0, "brute"),
                positions=moved_positions,
                comm_range=30.0,
            )
            assert sorted(topo.graph.edges) == sorted(reference.graph.edges)
            for node in topo.graph.nodes:
                assert list(topo.graph[node]) == list(reference.graph[node])

    @pytest.mark.parametrize("method", ["spatial", "brute"])
    def test_dirty_set_is_exactly_the_changed_neighbourhoods(self, method):
        topo = self._random_topology(7)
        rng = np.random.default_rng(23)
        for _ in range(10):
            ids = sorted(topo.positions)
            chosen = rng.choice(len(ids), size=4, replace=False)
            updates = {
                ids[int(i)]: (
                    float(rng.uniform(0, 120)),
                    float(rng.uniform(0, 120)),
                )
                for i in sorted(chosen)
            }
            old_neighbours = {
                nid: set(topo.graph.neighbors(nid)) for nid in topo.graph
            }
            topo, dirty = topo.with_positions_delta(updates, method=method)
            expected = {
                nid
                for nid in topo.graph
                if set(topo.graph.neighbors(nid)) != old_neighbours[nid]
            }
            assert dirty == expected

    def test_methods_agree_on_dirty_and_graph(self):
        topo = self._random_topology(9)
        rng = np.random.default_rng(31)
        ids = sorted(topo.positions)
        chosen = rng.choice(len(ids), size=6, replace=False)
        updates = {
            ids[int(i)]: (float(rng.uniform(0, 120)), float(rng.uniform(0, 120)))
            for i in sorted(chosen)
        }
        spatial_topo, spatial_dirty = topo.with_positions_delta(
            updates, method="spatial"
        )
        brute_topo, brute_dirty = topo.with_positions_delta(
            updates, method="brute"
        )
        assert spatial_dirty == brute_dirty
        assert sorted(spatial_topo.graph.edges) == sorted(
            brute_topo.graph.edges
        )
        for node in spatial_topo.graph.nodes:
            assert list(spatial_topo.graph[node]) == list(
                brute_topo.graph[node]
            )


class TestInclusiveRangeContract:
    def test_three_four_five_tie_is_inclusive(self):
        assert within_range((0.0, 0.0), (3.0, 4.0), 5.0)
        assert not within_range(
            (0.0, 0.0), (3.0, 4.0), np.nextafter(5.0, 0.0)
        )

    def test_predicate_matches_numpy_rounding(self):
        # The predicate must round exactly like the vectorised reference
        # (same sqrt(dx*dx + dy*dy) evaluation order), or spatial and
        # brute derivations would disagree on knife-edge pairs.
        rng = np.random.default_rng(41)
        pts = rng.uniform(0, 100, (200, 2))
        comm = 30.0
        for (ax, ay), (bx, by) in zip(pts[:100], pts[100:]):
            diff = np.array([ax, ay]) - np.array([bx, by])
            numpy_dist = float(np.sqrt((diff**2).sum()))
            assert within_range((ax, ay), (bx, by), comm) == (
                numpy_dist <= comm
            )

    def test_zero_range_requires_coincidence(self):
        assert within_range((1.0, 1.0), (1.0, 1.0), 0.0)
        assert not within_range((1.0, 1.0), (1.0, 1.0000001), 0.0)
