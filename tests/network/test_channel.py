"""Tests for the wireless channel: delivery, cost accounting, dynamics."""

import numpy as np
import pytest

from repro.energy.model import RadioEnergyModel
from repro.network.addresses import BROADCAST
from repro.network.channel import WirelessChannel
from repro.simulation.engine import Simulator


def make_channel(topology, **kwargs):
    sim = Simulator()
    return sim, WirelessChannel(sim, topology, **kwargs)


class Collector:
    """Records frames delivered to one node."""

    def __init__(self):
        self.received = []

    def __call__(self, sender, frame):
        self.received.append((sender, frame))


class TestDelivery:
    def test_broadcast_reaches_all_neighbors(self, star4):
        sim, channel = make_channel(star4)
        sinks = {nid: Collector() for nid in star4.node_ids}
        for nid, sink in sinks.items():
            channel.register(nid, sink)
        delivered = channel.broadcast(0, "hello", kind="test")
        sim.run()
        assert delivered == 4
        for leaf in (1, 2, 3, 4):
            assert sinks[leaf].received == [(0, "hello")]
        assert sinks[0].received == []

    def test_unicast_reaches_only_destination(self, star4):
        sim, channel = make_channel(star4)
        sinks = {nid: Collector() for nid in star4.node_ids}
        for nid, sink in sinks.items():
            channel.register(nid, sink)
        assert channel.unicast(0, 2, "msg", kind="test") == 1
        sim.run()
        assert sinks[2].received == [(0, "msg")]
        assert sinks[1].received == []

    def test_unicast_to_non_neighbor_is_paid_but_lost(self, line5):
        sim, channel = make_channel(line5)
        sink = Collector()
        channel.register(4, sink)
        assert channel.unicast(0, 4, "msg", kind="test") == 0
        sim.run()
        assert sink.received == []
        assert channel.ledger.total_count(direction="tx", kind="test") == 1
        assert channel.ledger.total_count(direction="rx", kind="test") == 0

    def test_delivery_is_delayed_not_immediate(self, star4):
        sim, channel = make_channel(star4)
        sink = Collector()
        channel.register(1, sink)
        channel.unicast(0, 1, "m", kind="test")
        assert sink.received == []  # nothing before the event loop runs
        sim.run()
        assert sink.received == [(0, "m")]

    def test_register_unknown_node_raises(self, star4):
        _, channel = make_channel(star4)
        with pytest.raises(KeyError):
            channel.register(42, Collector())

    def test_unknown_sender_raises(self, star4):
        _, channel = make_channel(star4)
        with pytest.raises(KeyError):
            channel.broadcast(42, "x", kind="test")


class TestCostAccounting:
    def test_broadcast_costs_one_tx_and_one_rx_per_neighbor(self, star4):
        sim, channel = make_channel(star4)
        channel.broadcast(0, "x", kind="query")
        sim.run()
        ledger = channel.ledger
        assert ledger.node(0).count("tx", "query") == 1
        assert ledger.total_count(direction="rx", kind="query") == 4
        assert ledger.total_cost(["query"]) == 5.0  # unit model: 1 + 4

    def test_unicast_costs_exactly_two_units(self, line5):
        sim, channel = make_channel(line5)
        channel.unicast(1, 2, "x", kind="update")
        sim.run()
        assert channel.ledger.total_cost(["update"]) == 2.0

    def test_costs_attributed_per_kind(self, star4):
        sim, channel = make_channel(star4)
        channel.broadcast(0, "a", kind="query")
        channel.unicast(0, 1, "b", kind="update")
        sim.run()
        assert channel.ledger.total_cost(["query"]) == 5.0
        assert channel.ledger.total_cost(["update"]) == 2.0
        assert channel.ledger.total_cost() == 7.0

    def test_radio_energy_model_scales_with_payload(self, star4):
        sim, channel = make_channel(star4, energy_model=RadioEnergyModel())
        channel.unicast(0, 1, "x", kind="data", payload_bytes=100)
        sim.run()
        tx = 10.0 + 2.0 * 100
        rx = 8.0 + 1.5 * 100
        assert channel.ledger.total_cost(["data"]) == pytest.approx(tx + rx)


class TestDynamics:
    def test_dead_node_does_not_transmit(self, star4):
        sim, channel = make_channel(star4)
        channel.set_alive(1, False)
        assert channel.broadcast(1, "x", kind="test") == 0
        assert channel.stats.drops_dead_node == 1

    def test_dead_node_does_not_receive(self, star4):
        sim, channel = make_channel(star4)
        sink = Collector()
        channel.register(2, sink)
        channel.set_alive(2, False)
        delivered = channel.broadcast(0, "x", kind="test")
        sim.run()
        assert delivered == 3  # only the three alive leaves
        assert sink.received == []

    def test_neighbors_excludes_dead_nodes(self, star4):
        _, channel = make_channel(star4)
        channel.set_alive(3, False)
        assert channel.neighbors(0) == [1, 2, 4]

    def test_num_links_counts_only_alive_pairs(self, star4):
        _, channel = make_channel(star4)
        assert channel.num_links == 4
        channel.set_alive(1, False)
        assert channel.num_links == 3

    def test_add_node_by_range(self, line5):
        sim, channel = make_channel(line5)
        channel.add_node(10, (5.0, 0.0))
        assert set(channel.neighbors(10)) == {0, 1}
        sink = Collector()
        channel.register(10, sink)
        channel.unicast(0, 10, "welcome", kind="test")
        sim.run()
        assert sink.received == [(0, "welcome")]

    def test_channel_loss_drops_fraction_of_receptions(self, star4):
        sim, channel = make_channel(
            star4, loss_probability=0.5, rng=np.random.default_rng(0)
        )
        total = 0
        for _ in range(200):
            total += channel.broadcast(0, "x", kind="test")
        sim.run()
        # 200 broadcasts x 4 neighbours = 800 potential receptions at 50% loss.
        assert 300 < total < 500
        assert channel.stats.drops_loss == 800 - total

    def test_invalid_loss_probability(self, star4):
        with pytest.raises(ValueError):
            make_channel(star4, loss_probability=1.5)


class TestLossValidation:
    def test_loss_probability_one_is_accepted_and_drops_everything(self, star4):
        """The 'all receptions fail' ablation is a legitimate setting."""
        sim, channel = make_channel(
            star4, loss_probability=1.0, rng=np.random.default_rng(0)
        )
        sink = Collector()
        channel.register(1, sink)
        assert channel.broadcast(0, "x", kind="test") == 0
        sim.run()
        assert sink.received == []
        assert channel.stats.drops_loss == 4
        # The transmission itself is still paid for; nothing is received.
        assert channel.ledger.total_count(direction="tx") == 1
        assert channel.ledger.total_count(direction="rx") == 0

    def test_negative_loss_probability_rejected(self, star4):
        with pytest.raises(ValueError):
            make_channel(star4, loss_probability=-0.1)

    def test_lossy_channel_without_rng_raises_at_construction(self, star4):
        """A lossy channel must never silently behave as an ideal one."""
        with pytest.raises(ValueError, match="rng"):
            make_channel(star4, loss_probability=0.3, rng=None)

    def test_ideal_channel_needs_no_rng(self, star4):
        _, channel = make_channel(star4, loss_probability=0.0, rng=None)
        assert channel.loss_probability == 0.0


class TestDeliveryTimeAccounting:
    """Reception energy is charged at delivery; the ledger and the stats
    must agree about receptions that actually happened."""

    def test_rx_not_charged_before_delivery(self, star4):
        sim, channel = make_channel(star4)
        channel.unicast(0, 1, "m", kind="test")
        # Transmit cost is immediate, reception is still in flight.
        assert channel.ledger.total_count(direction="tx", kind="test") == 1
        assert channel.ledger.total_count(direction="rx", kind="test") == 0
        sim.run()
        assert channel.ledger.total_count(direction="rx", kind="test") == 1

    def test_target_dying_in_flight_is_never_charged(self, star4):
        sim, channel = make_channel(star4)
        sink = Collector()
        channel.register(1, sink)
        channel.unicast(0, 1, "m", kind="test")
        channel.set_alive(1, False)  # dies while the frame is in the air
        sim.run()
        assert sink.received == []
        assert channel.stats.drops_dead_node == 1
        assert channel.stats.deliveries == 0
        assert channel.ledger.total_count(direction="rx", kind="test") == 0
        assert channel.ledger.total_cost(["test"]) == 1.0  # tx only

    def test_in_flight_death_no_double_drop_count(self, star4):
        sim, channel = make_channel(star4)
        channel.unicast(0, 1, "m", kind="test")
        channel.set_alive(1, False)
        sim.run()
        # Exactly one drop is recorded for the one lost reception.
        assert channel.stats.drops_dead_node == 1

    def test_broadcast_partial_in_flight_death(self, star4):
        sim, channel = make_channel(star4)
        sinks = {nid: Collector() for nid in (1, 2, 3, 4)}
        for nid, sink in sinks.items():
            channel.register(nid, sink)
        channel.broadcast(0, "x", kind="test")
        channel.set_alive(3, False)
        sim.run()
        assert channel.stats.deliveries == 3
        assert channel.stats.drops_dead_node == 1
        assert channel.ledger.total_count(direction="rx", kind="test") == 3
        assert sinks[3].received == []

    def test_charged_equals_delivered_invariant(self, star4):
        """Ledger rx count == stats.deliveries when every node registers."""
        rng = np.random.default_rng(7)
        sim, channel = make_channel(
            star4, loss_probability=0.4, rng=np.random.default_rng(1)
        )
        for nid in star4.node_ids:
            channel.register(nid, Collector())
        for i in range(50):
            channel.broadcast(int(rng.integers(0, 5)), "x", kind="test")
            if i == 20:
                channel.set_alive(4, False)
            if i == 35:
                channel.set_alive(4, True)
        sim.run()
        assert (
            channel.ledger.total_count(direction="rx", kind="test")
            == channel.stats.deliveries
        )


class TestBatchedDeliveryEquivalence:
    """The batched fan-out event must behave exactly like one event per
    receiver (the reference formulation kept for A/B testing)."""

    def _run(self, topology, batched, loss=0.0):
        sim = Simulator()
        channel = WirelessChannel(
            sim,
            topology,
            loss_probability=loss,
            rng=np.random.default_rng(3) if loss else None,
            batched_delivery=batched,
        )
        log = []
        for nid in topology.node_ids:
            channel.register(nid, lambda s, f, nid=nid: log.append((nid, s, f)))
        for i in range(40):
            channel.broadcast(i % 5, ("payload", i), kind="test")
            channel.unicast(i % 5, (i + 1) % 5, ("uni", i), kind="update")
        sim.run()
        return log, channel

    def test_same_delivery_order_and_ledger(self, star4):
        log_a, chan_a = self._run(star4, batched=True)
        log_b, chan_b = self._run(star4, batched=False)
        assert log_a == log_b
        assert chan_a.ledger.breakdown_by_kind() == chan_b.ledger.breakdown_by_kind()
        assert chan_a.stats == chan_b.stats

    def test_same_under_loss(self, star4):
        log_a, chan_a = self._run(star4, batched=True, loss=0.3)
        log_b, chan_b = self._run(star4, batched=False, loss=0.3)
        assert log_a == log_b
        assert chan_a.stats == chan_b.stats


class TestAddNodeAliveWiring:
    def test_add_node_skips_dead_nodes_in_range(self, line5):
        _, channel = make_channel(line5)
        channel.set_alive(1, False)
        channel.add_node(10, (5.0, 0.0))  # in range of nodes 0 and 1
        # Node 1 is dead: the auto-wiring must not link through it, so a
        # later resurrection cannot inherit a link the radio never formed.
        assert not channel.graph.has_edge(10, 1)
        assert channel.graph.has_edge(10, 0)
        channel.set_alive(1, True)
        assert channel.neighbors(10) == [0]

    def test_add_node_explicit_neighbors_unchanged(self, line5):
        _, channel = make_channel(line5)
        channel.set_alive(1, False)
        channel.add_node(10, (5.0, 0.0), neighbors=[0, 1])
        # An explicit neighbour list is honoured verbatim.
        assert channel.graph.has_edge(10, 1)


class TestCopyOnWriteGraph:
    """The channel adopts the topology's graph by reference and only
    copies when it mutates connectivity itself (``add_node``)."""

    def test_init_shares_graph_by_reference(self, line5):
        _, channel = make_channel(line5)
        assert channel.graph is line5.graph

    def test_update_topology_adopts_by_reference(self, line5):
        _, channel = make_channel(line5)
        moved = line5.with_positions(
            {nid: (float(nid) * 4.0, 0.0) for nid in line5.node_ids}
        )
        channel.update_topology(moved)
        assert channel.graph is moved.graph
        assert not channel._owns_graph

    def test_add_node_copies_before_mutating(self, line5):
        _, channel = make_channel(line5)
        channel.add_node(10, (5.0, 0.0))
        # The channel now owns a private graph; the immutable topology the
        # trial handed over is untouched.
        assert channel.graph is not line5.graph
        assert 10 in channel.graph
        assert 10 not in line5.graph
        assert line5.graph.number_of_nodes() == 5

    def test_second_add_node_reuses_private_copy(self, line5):
        _, channel = make_channel(line5)
        channel.add_node(10, (5.0, 0.0))
        private = channel.graph
        channel.add_node(11, (9.0, 0.0))
        assert channel.graph is private
