"""Tests for the wireless channel: delivery, cost accounting, dynamics."""

import numpy as np
import pytest

from repro.energy.model import RadioEnergyModel
from repro.network.addresses import BROADCAST
from repro.network.channel import WirelessChannel
from repro.simulation.engine import Simulator


def make_channel(topology, **kwargs):
    sim = Simulator()
    return sim, WirelessChannel(sim, topology, **kwargs)


class Collector:
    """Records frames delivered to one node."""

    def __init__(self):
        self.received = []

    def __call__(self, sender, frame):
        self.received.append((sender, frame))


class TestDelivery:
    def test_broadcast_reaches_all_neighbors(self, star4):
        sim, channel = make_channel(star4)
        sinks = {nid: Collector() for nid in star4.node_ids}
        for nid, sink in sinks.items():
            channel.register(nid, sink)
        delivered = channel.broadcast(0, "hello", kind="test")
        sim.run()
        assert delivered == 4
        for leaf in (1, 2, 3, 4):
            assert sinks[leaf].received == [(0, "hello")]
        assert sinks[0].received == []

    def test_unicast_reaches_only_destination(self, star4):
        sim, channel = make_channel(star4)
        sinks = {nid: Collector() for nid in star4.node_ids}
        for nid, sink in sinks.items():
            channel.register(nid, sink)
        assert channel.unicast(0, 2, "msg", kind="test") == 1
        sim.run()
        assert sinks[2].received == [(0, "msg")]
        assert sinks[1].received == []

    def test_unicast_to_non_neighbor_is_paid_but_lost(self, line5):
        sim, channel = make_channel(line5)
        sink = Collector()
        channel.register(4, sink)
        assert channel.unicast(0, 4, "msg", kind="test") == 0
        sim.run()
        assert sink.received == []
        assert channel.ledger.total_count(direction="tx", kind="test") == 1
        assert channel.ledger.total_count(direction="rx", kind="test") == 0

    def test_delivery_is_delayed_not_immediate(self, star4):
        sim, channel = make_channel(star4)
        sink = Collector()
        channel.register(1, sink)
        channel.unicast(0, 1, "m", kind="test")
        assert sink.received == []  # nothing before the event loop runs
        sim.run()
        assert sink.received == [(0, "m")]

    def test_register_unknown_node_raises(self, star4):
        _, channel = make_channel(star4)
        with pytest.raises(KeyError):
            channel.register(42, Collector())

    def test_unknown_sender_raises(self, star4):
        _, channel = make_channel(star4)
        with pytest.raises(KeyError):
            channel.broadcast(42, "x", kind="test")


class TestCostAccounting:
    def test_broadcast_costs_one_tx_and_one_rx_per_neighbor(self, star4):
        sim, channel = make_channel(star4)
        channel.broadcast(0, "x", kind="query")
        sim.run()
        ledger = channel.ledger
        assert ledger.node(0).count("tx", "query") == 1
        assert ledger.total_count(direction="rx", kind="query") == 4
        assert ledger.total_cost(["query"]) == 5.0  # unit model: 1 + 4

    def test_unicast_costs_exactly_two_units(self, line5):
        sim, channel = make_channel(line5)
        channel.unicast(1, 2, "x", kind="update")
        sim.run()
        assert channel.ledger.total_cost(["update"]) == 2.0

    def test_costs_attributed_per_kind(self, star4):
        sim, channel = make_channel(star4)
        channel.broadcast(0, "a", kind="query")
        channel.unicast(0, 1, "b", kind="update")
        sim.run()
        assert channel.ledger.total_cost(["query"]) == 5.0
        assert channel.ledger.total_cost(["update"]) == 2.0
        assert channel.ledger.total_cost() == 7.0

    def test_radio_energy_model_scales_with_payload(self, star4):
        sim, channel = make_channel(star4, energy_model=RadioEnergyModel())
        channel.unicast(0, 1, "x", kind="data", payload_bytes=100)
        sim.run()
        tx = 10.0 + 2.0 * 100
        rx = 8.0 + 1.5 * 100
        assert channel.ledger.total_cost(["data"]) == pytest.approx(tx + rx)


class TestDynamics:
    def test_dead_node_does_not_transmit(self, star4):
        sim, channel = make_channel(star4)
        channel.set_alive(1, False)
        assert channel.broadcast(1, "x", kind="test") == 0
        assert channel.stats.drops_dead_node == 1

    def test_dead_node_does_not_receive(self, star4):
        sim, channel = make_channel(star4)
        sink = Collector()
        channel.register(2, sink)
        channel.set_alive(2, False)
        delivered = channel.broadcast(0, "x", kind="test")
        sim.run()
        assert delivered == 3  # only the three alive leaves
        assert sink.received == []

    def test_neighbors_excludes_dead_nodes(self, star4):
        _, channel = make_channel(star4)
        channel.set_alive(3, False)
        assert channel.neighbors(0) == [1, 2, 4]

    def test_num_links_counts_only_alive_pairs(self, star4):
        _, channel = make_channel(star4)
        assert channel.num_links == 4
        channel.set_alive(1, False)
        assert channel.num_links == 3

    def test_add_node_by_range(self, line5):
        sim, channel = make_channel(line5)
        channel.add_node(10, (5.0, 0.0))
        assert set(channel.neighbors(10)) == {0, 1}
        sink = Collector()
        channel.register(10, sink)
        channel.unicast(0, 10, "welcome", kind="test")
        sim.run()
        assert sink.received == [(0, "welcome")]

    def test_channel_loss_drops_fraction_of_receptions(self, star4):
        sim, channel = make_channel(
            star4, loss_probability=0.5, rng=np.random.default_rng(0)
        )
        total = 0
        for _ in range(200):
            total += channel.broadcast(0, "x", kind="test")
        sim.run()
        # 200 broadcasts x 4 neighbours = 800 potential receptions at 50% loss.
        assert 300 < total < 500
        assert channel.stats.drops_loss == 800 - total

    def test_invalid_loss_probability(self, star4):
        with pytest.raises(ValueError):
            make_channel(star4, loss_probability=1.5)
