"""Tests for spanning-tree construction, traversal, and repair."""

import pytest

from repro.network.spanning_tree import (
    SpanningTree,
    TreeError,
    TreeSetupProtocol,
    build_bfs_tree,
)
from repro.network.channel import WirelessChannel
from repro.simulation.engine import Simulator

from ..helpers import line_topology, star_topology


class TestConstruction:
    def test_bfs_tree_over_line(self, line5):
        tree = build_bfs_tree(line5, root=0)
        assert tree.parent_of(0) is None
        assert tree.parent_of(3) == 2
        assert tree.children(0) == [1]
        assert tree.depth == 4

    def test_bfs_tree_over_star(self, star4):
        tree = build_bfs_tree(star4, root=0)
        assert tree.children(0) == [1, 2, 3, 4]
        assert tree.depth == 1
        assert tree.max_branching == 4

    def test_all_topology_nodes_present(self, small_topology):
        tree = build_bfs_tree(small_topology, root=0)
        assert sorted(tree.node_ids) == small_topology.node_ids

    def test_tree_edges_are_topology_links(self, small_topology):
        tree = build_bfs_tree(small_topology, root=0)
        for node in tree.node_ids:
            parent = tree.parent_of(node)
            if parent is not None:
                assert small_topology.has_link(node, parent)

    def test_bfs_paths_are_shortest(self, small_topology):
        import networkx as nx

        tree = build_bfs_tree(small_topology, root=0)
        lengths = nx.single_source_shortest_path_length(small_topology.graph, 0)
        for node in tree.node_ids:
            assert tree.depth_of(node) == lengths[node]

    def test_unknown_root_raises(self, line5):
        with pytest.raises(KeyError):
            build_bfs_tree(line5, root=99)

    def test_invalid_parent_maps_rejected(self):
        with pytest.raises(TreeError):
            SpanningTree(root=0, parent={0: None, 1: 2, 2: 1})  # cycle
        with pytest.raises(TreeError):
            SpanningTree(root=0, parent={0: 1, 1: None})  # root has a parent
        with pytest.raises(TreeError):
            SpanningTree(root=0, parent={0: None, 1: 99})  # unknown parent


class TestTraversal:
    @pytest.fixture
    def tree(self, line5):
        return build_bfs_tree(line5, root=0)

    def test_path_to_root(self, tree):
        assert tree.path_to_root(4) == [4, 3, 2, 1, 0]
        assert tree.path_to_root(0) == [0]

    def test_subtree_and_descendants(self, tree):
        assert tree.subtree(2) == [2, 3, 4]
        assert tree.descendants(2) == [3, 4]

    def test_leaves(self, tree):
        assert tree.leaves == [4]

    def test_forwarding_set_includes_intermediates_and_root(self, tree):
        involved = tree.forwarding_set([4])
        assert involved == {0, 1, 2, 3, 4}

    def test_forwarding_set_of_multiple_sources(self, star4):
        tree = build_bfs_tree(star4, root=0)
        assert tree.forwarding_set([2, 3]) == {0, 2, 3}

    def test_levels(self, tree):
        levels = tree.levels()
        assert levels[0] == [0]
        assert levels[4] == [4]

    def test_to_networkx_edges_point_parent_to_child(self, tree):
        g = tree.to_networkx()
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)


class TestRepair:
    def test_repair_reattaches_orphans_through_surviving_links(self):
        # 0 - 1 - 2 and 0 - 3 - 2: killing 1 must reattach 2 via 3.
        import networkx as nx

        from repro.network.topology import Topology

        graph = nx.Graph([(0, 1), (1, 2), (0, 3), (3, 2)])
        topo = Topology(
            graph=graph,
            positions={0: (0, 0), 1: (1, 0), 2: (2, 0), 3: (1, 1)},
            comm_range=None,
        )
        tree = build_bfs_tree(topo, root=0)
        assert tree.parent_of(2) in (1, 3)

        def alive_neighbors(node):
            return [n for n in topo.neighbors(node) if n != 1]

        repaired = tree.repair(1, alive_neighbors)
        assert 1 not in repaired
        assert repaired.parent_of(2) == 3
        assert repaired.parent_of(3) == 0

    def test_repair_drops_partitioned_nodes(self, line5):
        tree = build_bfs_tree(line5, root=0)

        def alive_neighbors(node):
            return [n for n in line5.neighbors(node) if n != 2]

        repaired = tree.repair(2, alive_neighbors)
        # Nodes 3 and 4 can only reach the root through node 2: partitioned.
        assert 3 not in repaired
        assert 4 not in repaired
        assert sorted(repaired.node_ids) == [0, 1]

    def test_repair_of_root_is_rejected(self, line5):
        tree = build_bfs_tree(line5, root=0)
        with pytest.raises(TreeError):
            tree.repair(0, line5.neighbors)

    def test_without_subtree(self, line5):
        tree = build_bfs_tree(line5, root=0)
        pruned = tree.without_subtree(3)
        assert sorted(pruned.node_ids) == [0, 1, 2]

    def test_with_new_node(self, line5):
        tree = build_bfs_tree(line5, root=0)
        grown = tree.with_new_node(10, attach_to=2)
        assert grown.parent_of(10) == 2
        assert 10 in grown.children(2)
        with pytest.raises(TreeError):
            grown.with_new_node(10, attach_to=0)


class TestDistributedSetup:
    def test_distributed_setup_matches_bfs_on_ideal_channel(self, small_topology):
        sim = Simulator()
        channel = WirelessChannel(sim, small_topology)
        protocol = TreeSetupProtocol(channel, root=0)
        tree = protocol.run()
        reference = build_bfs_tree(small_topology, root=0)
        for node in reference.node_ids:
            assert tree.depth_of(node) == reference.depth_of(node)

    def test_setup_messages_are_costed(self, star4):
        sim = Simulator()
        channel = WirelessChannel(sim, star4)
        TreeSetupProtocol(channel, root=0).run()
        # Every node broadcast the beacon exactly once.
        assert channel.ledger.total_count(direction="tx", kind="tree_setup") == 5
