"""Tests for topology generation and editing."""

import math

import pytest

from repro.network.topology import (
    Topology,
    grid_topology,
    kary_tree_topology,
    random_geometric_topology,
)


class TestRandomGeometric:
    def test_generates_requested_number_of_nodes(self, rng):
        topo = random_geometric_topology(30, comm_range=35.0, area_size=100.0, rng=rng)
        assert topo.num_nodes == 30
        assert topo.node_ids == list(range(30))

    def test_connected_by_default(self, rng):
        topo = random_geometric_topology(30, comm_range=35.0, area_size=100.0, rng=rng)
        assert topo.is_connected()

    def test_links_respect_radio_range(self, rng):
        topo = random_geometric_topology(25, comm_range=30.0, area_size=100.0, rng=rng)
        for a, b in topo.graph.edges:
            assert topo.distance(a, b) <= 30.0 + 1e-9
        # And no pair within range is missing a link.
        ids = topo.node_ids
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                if topo.distance(a, b) <= 30.0:
                    assert topo.has_link(a, b)

    def test_root_placed_at_field_centre_by_default(self, rng):
        topo = random_geometric_topology(20, comm_range=40.0, area_size=100.0, rng=rng)
        assert topo.position(0) == (50.0, 50.0)

    def test_same_seed_same_topology(self):
        import numpy as np

        a = random_geometric_topology(20, 35.0, rng=np.random.default_rng(5))
        b = random_geometric_topology(20, 35.0, rng=np.random.default_rng(5))
        assert a.positions == b.positions
        assert set(a.graph.edges) == set(b.graph.edges)

    def test_impossible_connectivity_raises(self, rng):
        with pytest.raises(RuntimeError):
            random_geometric_topology(
                30, comm_range=2.0, area_size=500.0, rng=rng, max_attempts=3
            )

    def test_invalid_arguments(self, rng):
        with pytest.raises(ValueError):
            random_geometric_topology(0, 10.0, rng=rng)
        with pytest.raises(ValueError):
            random_geometric_topology(5, -1.0, rng=rng)


class TestGridAndTree:
    def test_grid_dimensions(self):
        topo = grid_topology(3, 4, spacing=10.0)
        assert topo.num_nodes == 12
        assert topo.is_connected()

    def test_grid_strict_4_neighbourhood(self):
        topo = grid_topology(3, 3, spacing=10.0, comm_range=11.0)
        # Interior node 4 has exactly 4 neighbours.
        assert len(topo.neighbors(4)) == 4
        # Corner node 0 has exactly 2.
        assert len(topo.neighbors(0)) == 2

    def test_kary_tree_node_count(self):
        topo = kary_tree_topology(branching=2, depth=3)
        assert topo.num_nodes == 15
        assert topo.num_links == 14

    def test_kary_tree_depth_zero_is_single_node(self):
        topo = kary_tree_topology(branching=3, depth=0)
        assert topo.num_nodes == 1
        assert topo.num_links == 0

    def test_kary_tree_root_degree_is_branching(self):
        topo = kary_tree_topology(branching=4, depth=2)
        assert topo.degree(0) == 4

    def test_invalid_tree_parameters(self):
        with pytest.raises(ValueError):
            kary_tree_topology(0, 2)
        with pytest.raises(ValueError):
            kary_tree_topology(2, -1)


class TestTopologyEditing:
    def test_without_node_removes_node_and_links(self, line5):
        smaller = line5.without_node(2)
        assert not smaller.has_node(2)
        assert smaller.num_nodes == 4
        assert not smaller.has_link(1, 2)
        # Original is untouched (immutability).
        assert line5.has_node(2)

    def test_without_unknown_node_raises(self, line5):
        with pytest.raises(KeyError):
            line5.without_node(99)

    def test_with_node_unit_disk_attachment(self, line5):
        bigger = line5.with_node(10, (5.0, 5.0))
        assert bigger.has_node(10)
        # Within 12m of nodes 0 (0,0) and 1 (10,0).
        assert bigger.has_link(10, 0)
        assert bigger.has_link(10, 1)

    def test_with_node_explicit_neighbors(self, line5):
        bigger = line5.with_node(10, (100.0, 100.0), neighbors=[4])
        assert bigger.has_link(10, 4)

    def test_with_existing_node_raises(self, line5):
        with pytest.raises(ValueError):
            line5.with_node(3, (0.0, 0.0))

    def test_degree_and_neighbors(self, star4):
        assert star4.degree(0) == 4
        assert star4.neighbors(0) == [1, 2, 3, 4]
        assert star4.neighbors(3) == [0]

    def test_position_array_order(self, line5):
        arr = line5.position_array([4, 0])
        assert arr.shape == (2, 2)
        assert tuple(arr[0]) == line5.position(4)
        assert tuple(arr[1]) == line5.position(0)
