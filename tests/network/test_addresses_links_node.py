"""Tests for addressing, neighbour tables, and the sensor node model."""

import pytest

from repro.energy.battery import Battery
from repro.network.addresses import BROADCAST, is_broadcast, validate_node_id
from repro.network.links import NeighborTable
from repro.network.node import SensorNode
from repro.sensors.dataset import SensorDataset

from ..helpers import constant_dataset


class TestAddresses:
    def test_valid_ids_pass_through(self):
        assert validate_node_id(0) == 0
        assert validate_node_id(17) == 17

    def test_broadcast_only_when_allowed(self):
        assert validate_node_id(BROADCAST, allow_broadcast=True) == BROADCAST
        with pytest.raises(ValueError):
            validate_node_id(BROADCAST)

    def test_negative_and_non_int_rejected(self):
        with pytest.raises(ValueError):
            validate_node_id(-5)
        with pytest.raises(TypeError):
            validate_node_id("3")
        with pytest.raises(TypeError):
            validate_node_id(True)

    def test_is_broadcast(self):
        assert is_broadcast(BROADCAST)
        assert not is_broadcast(0)


class TestNeighborTable:
    def test_observe_creates_and_updates_entries(self):
        table = NeighborTable(owner=0)
        table.observe(1, time=1.0, slot=4)
        assert 1 in table
        assert table.get(1).slot == 4
        table.observe(1, time=5.0, slot=7)
        assert table.get(1).last_heard == 5.0
        assert table.get(1).slot == 7
        assert len(table) == 1

    def test_cannot_observe_self(self):
        table = NeighborTable(owner=0)
        with pytest.raises(ValueError):
            table.observe(0, time=1.0)

    def test_remove(self):
        table = NeighborTable(owner=0)
        table.observe(1, 1.0)
        assert table.remove(1) is True
        assert table.remove(1) is False
        assert 1 not in table

    def test_stale_detection(self):
        table = NeighborTable(owner=0)
        table.observe(1, time=1.0)
        table.observe(2, time=9.0)
        assert table.stale(now=10.0, timeout=5.0) == [1]

    def test_link_quality_smoothing(self):
        table = NeighborTable(owner=0)
        table.observe(1, 1.0, quality_sample=1.0)
        q_before = table.get(1).link_quality
        table.observe(1, 2.0, quality_sample=0.0, smoothing=0.5)
        assert table.get(1).link_quality < q_before

    def test_occupied_slots(self):
        table = NeighborTable(owner=0)
        table.observe(1, 1.0, slot=3)
        table.observe(2, 1.0, slot=9)
        table.observe(3, 1.0)  # slot unknown
        assert table.occupied_slots() == {3, 9}

    def test_iteration_is_sorted(self):
        table = NeighborTable(owner=0)
        table.observe(5, 1.0)
        table.observe(2, 1.0)
        assert list(table) == [2, 5]
        assert table.neighbor_ids == [2, 5]


class TestSensorNode:
    @pytest.fixture
    def dataset(self) -> SensorDataset:
        return constant_dataset([0, 1], {0: 5.0, 1: 7.0}, num_epochs=10)

    def test_attach_and_sample(self, dataset):
        from repro.sensors.sensor import Sensor

        node = SensorNode(1, (0.0, 0.0))
        node.attach_sensor(Sensor(1, "temperature", dataset))
        assert node.has_sensor("temperature")
        assert node.sensor_types == ["temperature"]
        assert node.sample("temperature", 0) == 7.0
        assert node.sample_all(0) == {"temperature": 7.0}

    def test_sampling_missing_sensor_raises(self):
        node = SensorNode(1, (0.0, 0.0))
        with pytest.raises(KeyError):
            node.sample("humidity", 0)

    def test_detach_sensor(self, dataset):
        from repro.sensors.sensor import Sensor

        node = SensorNode(0, (0.0, 0.0))
        node.attach_sensor(Sensor(0, "temperature", dataset))
        assert node.detach_sensor("temperature") is True
        assert node.detach_sensor("temperature") is False
        assert node.sensor_types == []

    def test_attach_requires_sensor_type(self):
        node = SensorNode(0, (0.0, 0.0))

        class Broken:
            sensor_type = ""

        with pytest.raises(ValueError):
            node.attach_sensor(Broken())

    def test_kill_and_revive(self):
        node = SensorNode(3, (1.0, 2.0))
        assert node.alive
        node.kill()
        assert not node.alive
        node.revive()
        assert node.alive

    def test_default_battery_is_infinite(self):
        node = SensorNode(0, (0.0, 0.0))
        assert node.battery.fraction_remaining == 1.0
        assert not node.battery.depleted

    def test_explicit_battery(self):
        node = SensorNode(0, (0.0, 0.0), battery=Battery(10.0))
        node.battery.draw(4.0)
        assert node.battery.remaining == 6.0

    def test_invalid_node_id(self):
        with pytest.raises(ValueError):
            SensorNode(-2, (0.0, 0.0))
