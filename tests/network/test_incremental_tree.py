"""Tests for incremental spanning-tree repair (``update_bfs_tree``).

The contract under test is exact equality: after any topology delta
(moves, kills, revivals), the incrementally repaired tree must equal a
full ``build_bfs_tree`` of the post-delta state -- same parent map, not
just same depths -- because the runner's re-link path feeds the repaired
tree straight into protocol state that fingerprints depend on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.spanning_tree import (
    SpanningTree,
    TreeError,
    build_bfs_tree,
    update_bfs_tree,
)
from repro.network.topology import Topology, random_geometric_topology
from repro.scenarios.models import rebuild_spanning_tree


def make_topology(seed: int, n: int = 60, area: float = 120.0) -> Topology:
    return random_geometric_topology(
        n, comm_range=30.0, area_size=area, rng=np.random.default_rng(seed)
    )


def assert_trees_equal(incremental: SpanningTree, full: SpanningTree) -> None:
    assert incremental.root == full.root
    assert incremental.parent == full.parent


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", [2, 11, 29])
    def test_random_move_sequences(self, seed):
        topo = make_topology(seed)
        alive = set(topo.positions)
        tree = build_bfs_tree(topo, root=0, alive=alive, partial=True)
        rng = np.random.default_rng(seed + 100)
        for _ in range(12):
            ids = sorted(topo.positions)
            k = int(rng.integers(1, 8))
            chosen = rng.choice(len(ids), size=k, replace=False)
            updates = {
                ids[int(i)]: (
                    float(rng.uniform(0, 120)),
                    float(rng.uniform(0, 120)),
                )
                for i in sorted(chosen)
            }
            topo, dirty = topo.with_positions_delta(updates)
            tree = update_bfs_tree(
                tree, topo, root=0, alive=alive, dirty=dirty, partial=True
            )
            assert_trees_equal(
                tree, build_bfs_tree(topo, root=0, alive=alive, partial=True)
            )

    @pytest.mark.parametrize("seed", [5, 19])
    def test_mixed_move_kill_revive_sequences(self, seed):
        topo = make_topology(seed)
        alive = set(topo.positions)
        dead: set = set()
        tree = build_bfs_tree(topo, root=0, alive=alive, partial=True)
        rng = np.random.default_rng(seed + 7)
        for step in range(15):
            dirty: set = set()
            action = step % 3
            if action == 0:  # move a few nodes
                ids = sorted(topo.positions)
                chosen = rng.choice(len(ids), size=4, replace=False)
                updates = {
                    ids[int(i)]: (
                        float(rng.uniform(0, 120)),
                        float(rng.uniform(0, 120)),
                    )
                    for i in sorted(chosen)
                }
                topo, dirty = topo.with_positions_delta(updates)
            elif action == 1:  # kill one non-root node
                candidates = sorted(alive - {0})
                victim = candidates[int(rng.integers(len(candidates)))]
                alive.discard(victim)
                dead.add(victim)
            elif dead:  # revive one node
                back = sorted(dead)[int(rng.integers(len(dead)))]
                dead.discard(back)
                alive.add(back)
            tree = update_bfs_tree(
                tree, topo, root=0, alive=alive, dirty=dirty, partial=True
            )
            assert_trees_equal(
                tree, build_bfs_tree(topo, root=0, alive=alive, partial=True)
            )

    def test_single_move_gaining_root_edge(self):
        # Regression: a node moving directly into the root's range must be
        # re-seeded from the root even when the root itself never moved.
        positions = {
            0: (0.0, 0.0),
            1: (25.0, 0.0),
            2: (50.0, 0.0),
            3: (75.0, 0.0),
        }
        topo = make_topology(1, n=4).with_positions(positions)
        tree = build_bfs_tree(topo, root=0, partial=True)
        assert tree.parent[3] == 2
        moved, dirty = topo.with_positions_delta({3: (10.0, 10.0)})
        repaired = update_bfs_tree(
            tree, moved, root=0, dirty=dirty, partial=True
        )
        assert repaired.parent[3] == 0
        assert_trees_equal(
            repaired, build_bfs_tree(moved, root=0, partial=True)
        )

    def test_partition_and_reconnect(self):
        # A bridge node dies (partition), then revives (reconnect); the
        # incremental repair must drop and re-admit the far side exactly
        # as a full rebuild does.
        positions = {
            0: (0.0, 0.0),
            1: (25.0, 0.0),
            2: (50.0, 0.0),
            3: (60.0, 10.0),
        }
        topo = make_topology(1, n=4).with_positions(positions)
        alive = {0, 1, 2, 3}
        tree = build_bfs_tree(topo, root=0, alive=alive, partial=True)
        alive.discard(1)
        cut = update_bfs_tree(
            tree, topo, root=0, alive=alive, dirty=(), partial=True
        )
        full_cut = build_bfs_tree(topo, root=0, alive=alive, partial=True)
        assert_trees_equal(cut, full_cut)
        assert set(cut.parent) == {0}
        alive.add(1)
        healed = update_bfs_tree(
            cut, topo, root=0, alive=alive, dirty=(), partial=True
        )
        assert_trees_equal(
            healed, build_bfs_tree(topo, root=0, alive=alive, partial=True)
        )
        assert set(healed.parent) == {0, 1, 2, 3}


class TestFallbacksAndErrors:
    def test_previous_none_builds_from_scratch(self):
        topo = make_topology(3)
        tree = update_bfs_tree(None, topo, root=0, partial=True)
        assert_trees_equal(tree, build_bfs_tree(topo, root=0, partial=True))

    def test_root_mismatch_falls_back_to_full_build(self):
        topo = make_topology(4)
        other_root = sorted(topo.positions)[1]
        previous = build_bfs_tree(topo, root=other_root, partial=True)
        tree = update_bfs_tree(previous, topo, root=0, partial=True)
        assert_trees_equal(tree, build_bfs_tree(topo, root=0, partial=True))

    def test_large_dirty_set_falls_back_and_stays_correct(self):
        topo = make_topology(6)
        alive = set(topo.positions)
        tree = build_bfs_tree(topo, root=0, alive=alive, partial=True)
        ids = sorted(topo.positions)
        rng = np.random.default_rng(9)
        updates = {
            nid: (float(rng.uniform(0, 120)), float(rng.uniform(0, 120)))
            for nid in ids[1:]
        }
        moved, dirty = topo.with_positions_delta(updates)
        assert len(dirty) > 0.25 * len(alive)  # beyond the repair threshold
        repaired = update_bfs_tree(
            tree, moved, root=0, alive=alive, dirty=dirty, partial=True
        )
        assert_trees_equal(
            repaired, build_bfs_tree(moved, root=0, alive=alive, partial=True)
        )

    def test_threshold_zero_always_rebuilds_and_matches(self):
        topo = make_topology(7)
        tree = build_bfs_tree(topo, root=0, partial=True)
        moved, dirty = topo.with_positions_delta(
            {sorted(topo.positions)[1]: (60.0, 60.0)}
        )
        repaired = update_bfs_tree(
            tree, moved, root=0, dirty=dirty, partial=True, rebuild_threshold=0.0
        )
        assert_trees_equal(repaired, build_bfs_tree(moved, root=0, partial=True))

    def test_unreachable_nodes_raise_identically_when_not_partial(self):
        positions = {0: (0.0, 0.0), 1: (25.0, 0.0), 2: (200.0, 200.0)}
        topo = make_topology(1, n=3).with_positions(positions)
        with pytest.raises(TreeError) as full_err:
            build_bfs_tree(topo, root=0, partial=False)
        previous = build_bfs_tree(topo, root=0, partial=True)
        with pytest.raises(TreeError) as inc_err:
            update_bfs_tree(previous, topo, root=0, dirty={2}, partial=False)
        assert str(inc_err.value) == str(full_err.value)

    def test_no_change_returns_equal_tree(self):
        topo = make_topology(8)
        tree = build_bfs_tree(topo, root=0, partial=True)
        repaired = update_bfs_tree(tree, topo, root=0, dirty=(), partial=True)
        assert_trees_equal(repaired, tree)


class TestRebuildSpanningTreeDelegation:
    def test_with_previous_and_dirty_is_incremental_and_identical(self):
        topo = make_topology(12)
        alive = set(topo.positions)
        tree = build_bfs_tree(topo, root=0, alive=alive, partial=True)
        moved, dirty = topo.with_positions_delta(
            {sorted(topo.positions)[5]: (10.0, 90.0)}
        )
        via_delegate = rebuild_spanning_tree(
            moved, alive, 0, previous=tree, dirty=dirty
        )
        via_full = rebuild_spanning_tree(moved, alive, 0)
        assert_trees_equal(via_delegate, via_full)

    def test_without_previous_is_the_full_build(self):
        topo = make_topology(13)
        alive = set(topo.positions)
        assert_trees_equal(
            rebuild_spanning_tree(topo, alive, 0),
            build_bfs_tree(topo, root=0, alive=alive, partial=True),
        )


class TestValidation:
    def test_cycle_detected(self):
        with pytest.raises(TreeError, match="cycle detected through node"):
            SpanningTree(root=0, parent={0: None, 1: 2, 2: 1})

    def test_two_node_cycle_detected(self):
        with pytest.raises(TreeError, match="cycle detected through node"):
            SpanningTree(root=0, parent={0: None, 1: 0, 2: 3, 3: 2})

    def test_non_root_without_parent_rejected(self):
        with pytest.raises(TreeError, match="has no parent"):
            SpanningTree(root=0, parent={0: None, 1: None})

    def test_unknown_parent_rejected(self):
        with pytest.raises(TreeError, match="unknown parent"):
            SpanningTree(root=0, parent={0: None, 1: 99})

    def test_large_valid_tree_validates(self):
        # The memoized validator must accept a deep valid tree (and stay
        # O(n): a 2000-node path would time out under O(n * depth)).
        n = 2000
        parent = {0: None}
        parent.update({i: i - 1 for i in range(1, n)})
        tree = SpanningTree(root=0, parent=parent)
        assert tree.parent[n - 1] == n - 2
