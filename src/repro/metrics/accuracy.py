"""Accuracy and overshoot metrics (paper §7.1, Figs. 5 and 7).

Definitions, following the paper:

* **Accuracy** -- "the proportion of nodes that are being reached in
  response to a query to nodes that should be reached", where the
  should-be-reached set contains the true source nodes *and* the
  intermediate forwarding nodes.
* **Overshoot** -- the excess of reached nodes over the should-be-reached
  set, expressed in percentage points of the (non-root) node population:
  this is the gap between the "nodes that RECEIVE a query" and "nodes that
  SHOULD receive a query" curves of Fig. 5, which is the scale Fig. 7 plots
  (0-10 %) and against which the paper reports an average of ≈3.6 % for the
  ATC.  The relative excess (reached/should - 1) is also exposed as
  ``relative_overshoot_percent`` for users who prefer that normalisation.
* The Fig. 5 bar groups -- percentage of nodes that SHOULD receive the
  query, that actually RECEIVE it, that are true sources, and that should
  NOT receive it -- are reproduced by :func:`fig5_percentages`.

All functions operate on :class:`~repro.metrics.audit.QueryRecord` objects.
"""

from __future__ import annotations

import dataclasses
from statistics import mean
from typing import Iterable, List, Optional, Sequence

from .audit import QueryRecord


@dataclasses.dataclass(frozen=True)
class QueryAccuracy:
    """Accuracy figures for a single query."""

    query_id: int
    num_sources: int
    num_should_receive: int
    num_received: int
    num_spurious: int
    num_missed: int
    accuracy: float
    overshoot_percent: float
    relative_overshoot_percent: float


def query_accuracy(record: QueryRecord) -> QueryAccuracy:
    """Per-query accuracy and overshoot.

    ``accuracy`` is the reached/should ratio (above 1 when more nodes than
    necessary were reached).  ``overshoot_percent`` is the paper-style
    metric: (received - should) as a percentage of the node population
    recorded with the query (falling back to the should-receive count when
    the population is unknown).  ``relative_overshoot_percent`` is the
    excess relative to the should-receive set; both are signed, so an
    under-delivery produces negative values.
    """
    should = record.num_should_receive
    received = record.num_received
    population = record.population if record.population > 0 else should
    if should == 0:
        relative = 100.0 * float(received)
        accuracy = 1.0 if received == 0 else 0.0
    else:
        relative = 100.0 * (received - should) / should
        accuracy = received / should
    if population > 0:
        overshoot = 100.0 * (received - should) / population
    else:
        overshoot = 0.0
    return QueryAccuracy(
        query_id=record.query_id,
        num_sources=len(record.sources),
        num_should_receive=should,
        num_received=received,
        num_spurious=len(record.spurious),
        num_missed=len(record.missed),
        accuracy=accuracy,
        overshoot_percent=overshoot,
        relative_overshoot_percent=relative,
    )


def mean_overshoot(records: Iterable[QueryRecord]) -> float:
    """Average overshoot (percent) over a set of queries (0.0 if empty)."""
    values = [query_accuracy(r).overshoot_percent for r in records]
    return float(mean(values)) if values else 0.0


def mean_accuracy(records: Iterable[QueryRecord]) -> float:
    """Average reached/should ratio over a set of queries (1.0 if empty)."""
    values = [query_accuracy(r).accuracy for r in records]
    return float(mean(values)) if values else 1.0


def overshoot_series(
    records: Sequence[QueryRecord],
    window_epochs: int,
    num_epochs: int,
) -> List[tuple[int, float]]:
    """Overshoot averaged per window of epochs (the Fig. 7 time series).

    Returns ``(window_start_epoch, mean_overshoot_percent)`` pairs; windows
    containing no queries are omitted.
    """
    if window_epochs <= 0:
        raise ValueError("window_epochs must be positive")
    buckets: dict[int, List[float]] = {}
    for record in records:
        window = (record.injection_epoch // window_epochs) * window_epochs
        buckets.setdefault(window, []).append(
            query_accuracy(record).overshoot_percent
        )
    return [
        (window, float(mean(values)))
        for window, values in sorted(buckets.items())
        if window < num_epochs
    ]


@dataclasses.dataclass(frozen=True)
class Fig5Point:
    """One bar group of Fig. 5: node-percentage breakdown for one setting."""

    delta_percent: float
    target_coverage: float
    should_receive_pct: float
    receive_pct: float
    source_pct: float
    should_not_receive_pct: float
    mean_overshoot_pct: float
    num_queries: int


def fig5_percentages(
    records: Sequence[QueryRecord],
    num_nodes: int,
    delta_percent: float,
    target_coverage: float,
) -> Fig5Point:
    """Average Fig. 5 percentages over a set of queries.

    ``num_nodes`` is the number of non-root nodes (the denominator the
    percentages are expressed against).
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if not records:
        return Fig5Point(
            delta_percent=delta_percent,
            target_coverage=target_coverage,
            should_receive_pct=0.0,
            receive_pct=0.0,
            source_pct=0.0,
            should_not_receive_pct=100.0,
            mean_overshoot_pct=0.0,
            num_queries=0,
        )
    should = mean(len(r.should_receive) for r in records) / num_nodes * 100.0
    received = mean(len(r.received) for r in records) / num_nodes * 100.0
    sources = mean(len(r.sources) for r in records) / num_nodes * 100.0
    return Fig5Point(
        delta_percent=float(delta_percent),
        target_coverage=float(target_coverage),
        should_receive_pct=float(should),
        receive_pct=float(received),
        source_pct=float(sources),
        should_not_receive_pct=float(100.0 - should),
        mean_overshoot_pct=mean_overshoot(records),
        num_queries=len(records),
    )


def delivery_completeness(records: Iterable[QueryRecord]) -> float:
    """Fraction of true source nodes actually reached (averaged over queries).

    The paper only discusses overshoot (extra nodes); this companion metric
    verifies DirQ is not silently *missing* sources because of stale range
    information, which matters for downstream users.
    """
    fractions = []
    for record in records:
        if not record.sources:
            continue
        reached = len(record.sources & record.received)
        fractions.append(reached / len(record.sources))
    return float(mean(fractions)) if fractions else 1.0
