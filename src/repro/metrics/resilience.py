"""Resilience metrics: degradation vs a static baseline, recovery time.

The dynamic scenarios (:mod:`repro.scenarios`) ask a question the static
§7 evaluation cannot: *how much worse* does DirQ get under churn, mobility,
bursty load or energy exhaustion, and *how fast* does it recover after a
disruption.  This module provides the two measurement primitives:

* **Degradation** -- side-by-side comparison of a scenario's replicate
  group against the static baseline's, per scalar metric
  (:func:`degradation_rows`), rendered through the same report-table
  machinery as the replicate CIs.
* **Recovery time** -- epochs from a churn/battery-death event until the
  windowed query accuracy returns to within ``tolerance`` of its
  pre-event level (:func:`recovery_epochs`), summarised across replicates
  by :func:`recovery_summary`.

Everything is duck-typed against the ``TrialResult`` / ``ReplicateGroup``
APIs (``audit``, ``scenario_events``, ``metrics``), keeping the metrics
package free of experiment-layer imports, and all outputs are pure
functions of the deterministic trial payload -- they are safe to include
in bit-identity-checked JSON exports.
"""

from __future__ import annotations

import dataclasses
from statistics import mean
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .accuracy import query_accuracy
from .audit import QueryRecord
from .report import format_table
from .stats import DEFAULT_CONFIDENCE, ReplicateSummary

#: Default accuracy slack (absolute) for declaring a recovery.
DEFAULT_RECOVERY_TOLERANCE = 0.1


def windowed_accuracy(
    records: Sequence[QueryRecord], window_epochs: int
) -> List[Tuple[int, float]]:
    """Mean query accuracy per ``window_epochs`` window.

    Returns ``(window_start_epoch, mean_accuracy)`` pairs; windows without
    queries are omitted (there is nothing to measure in them).
    """
    if window_epochs <= 0:
        raise ValueError("window_epochs must be positive")
    buckets: Dict[int, List[float]] = {}
    for record in records:
        window = (record.injection_epoch // window_epochs) * window_epochs
        buckets.setdefault(window, []).append(query_accuracy(record).accuracy)
    return [(window, float(mean(vals))) for window, vals in sorted(buckets.items())]


def first_disruption_epoch(result) -> Optional[int]:
    """Epoch of the first scenario-driven node death (None without one).

    ``result`` is duck-typed: anything with a ``scenario_events`` list of
    ``(epoch, kind, node_id)`` tuples (``TrialResult`` /
    ``ExperimentResult``).
    """
    kills = [epoch for epoch, kind, _ in getattr(result, "scenario_events", []) if kind == "kill"]
    return min(kills) if kills else None


def recovery_epochs(
    records: Sequence[QueryRecord],
    event_epoch: int,
    window_epochs: int = 100,
    tolerance: float = DEFAULT_RECOVERY_TOLERANCE,
) -> Optional[int]:
    """Epochs from ``event_epoch`` until windowed accuracy recovers.

    The pre-event level is the mean accuracy of all queries injected before
    ``event_epoch``; recovery is the first window of **post-event** queries
    whose mean accuracy is at least ``pre_level - tolerance``, counted
    conservatively to the *end* of that window.  Pre-event queries are
    excluded from the windowed series so a window straddling the event
    cannot pass on the strength of its pre-disruption traffic.  Returns
    ``None`` when there is no pre-event traffic to define a level, or when
    accuracy never recovers within the recorded run.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    pre = [
        query_accuracy(r).accuracy
        for r in records
        if r.injection_epoch < event_epoch
    ]
    if not pre:
        return None
    pre_level = float(mean(pre))
    post = [r for r in records if r.injection_epoch >= event_epoch]
    for window_start, value in windowed_accuracy(post, window_epochs):
        if value >= pre_level - tolerance:
            return window_start + window_epochs - event_epoch
    return None


def recovery_time(
    result,
    window_epochs: int = 100,
    tolerance: float = DEFAULT_RECOVERY_TOLERANCE,
) -> Optional[int]:
    """Recovery time of one trial, anchored at its first scenario kill."""
    event_epoch = first_disruption_epoch(result)
    if event_epoch is None:
        return None
    return recovery_epochs(
        result.audit.records, event_epoch, window_epochs, tolerance
    )


def recovery_summary(
    results: Iterable[object],
    window_epochs: int = 100,
    tolerance: float = DEFAULT_RECOVERY_TOLERANCE,
    confidence: float = DEFAULT_CONFIDENCE,
) -> Optional[ReplicateSummary]:
    """Summarise recovery times across replicates (None when undefined).

    Replicates without a disruption, or whose accuracy never recovered, are
    excluded; when no replicate yields a recovery time the summary is
    ``None`` rather than a fabricated zero.
    """
    values = [
        t
        for t in (recovery_time(r, window_epochs, tolerance) for r in results)
        if t is not None
    ]
    if not values:
        return None
    return ReplicateSummary.from_values(
        "recovery_epochs", values, confidence=confidence
    )


# ---------------------------------------------------------------------------
# Degradation vs a static baseline
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class DegradationRow:
    """One metric's scenario-vs-baseline comparison."""

    metric: str
    baseline_mean: float
    scenario_mean: float
    delta: float
    delta_percent: Optional[float]  # None when the baseline mean is ~0

    def to_dict(self) -> Dict[str, object]:
        return {
            "metric": self.metric,
            "baseline_mean": self.baseline_mean,
            "scenario_mean": self.scenario_mean,
            "delta": self.delta,
            "delta_percent": self.delta_percent,
        }


#: Metrics compared by default (present in ``stats.DEFAULT_METRICS``).
DEFAULT_DEGRADATION_METRICS = (
    "mean_accuracy",
    "source_completeness",
    "cost_ratio",
    "mean_overshoot_pp",
)


def degradation_rows(
    scenario_group,
    baseline_group,
    metrics: Optional[Sequence[str]] = None,
) -> List[DegradationRow]:
    """Scenario-vs-baseline deltas, one row per (shared) metric.

    Both arguments are :class:`~repro.metrics.stats.ReplicateGroup`-shaped
    (a ``metrics`` mapping of :class:`ReplicateSummary`); metrics absent
    from either group are skipped.
    """
    names = list(metrics) if metrics is not None else list(DEFAULT_DEGRADATION_METRICS)
    rows: List[DegradationRow] = []
    for name in names:
        if name not in scenario_group.metrics or name not in baseline_group.metrics:
            continue
        base = baseline_group.metrics[name].mean
        scen = scenario_group.metrics[name].mean
        delta = scen - base
        percent = 100.0 * delta / base if abs(base) > 1e-12 else None
        rows.append(
            DegradationRow(
                metric=name,
                baseline_mean=base,
                scenario_mean=scen,
                delta=delta,
                delta_percent=percent,
            )
        )
    return rows


def format_degradation_table(
    rows: Sequence[DegradationRow],
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render degradation rows as an aligned text table."""
    if not rows:
        return title or "(no shared metrics to compare)"
    body = [
        (
            row.metric,
            row.baseline_mean,
            row.scenario_mean,
            row.delta,
            "-" if row.delta_percent is None else f"{row.delta_percent:+.1f}%",
        )
        for row in rows
    ]
    return format_table(
        headers=["metric", "baseline", "scenario", "delta", "delta %"],
        rows=body,
        float_format=float_format,
        title=title,
    )


def resilience_to_jsonable(
    rows: Sequence[DegradationRow],
    recovery: Optional[ReplicateSummary] = None,
    baseline_label: str = "",
) -> Dict[str, object]:
    """Deterministic JSON payload of a resilience comparison."""
    return {
        "baseline": baseline_label,
        "degradation": [row.to_dict() for row in rows],
        "recovery": None if recovery is None else recovery.to_dict(),
    }


# ---------------------------------------------------------------------------
# Matrix-shaped (scenario × protocol) degradation
# ---------------------------------------------------------------------------


def grid_degradation(
    cells: Mapping[Tuple[str, str], object],
    baseline: str,
    metrics: Optional[Sequence[str]] = None,
) -> List[Tuple[str, str, List[DegradationRow]]]:
    """Per-cell degradation against the same-protocol baseline-scenario cell.

    ``cells`` maps ``(scenario, protocol)`` to a ``ReplicateGroup``-shaped
    object (insertion order is report order); every non-baseline cell is
    compared to ``cells[(baseline, protocol)]`` -- the static reference
    *under the same protocol*, so the deltas isolate the scenario's effect
    from the protocol's.  Cells whose baseline twin is absent are skipped.
    """
    out: List[Tuple[str, str, List[DegradationRow]]] = []
    for (scenario, protocol), group in cells.items():
        if scenario == baseline:
            continue
        base = cells.get((baseline, protocol))
        if base is None:
            continue
        out.append(
            (scenario, protocol, degradation_rows(group, base, metrics=metrics))
        )
    return out


def format_grid_degradation_table(
    entries: Sequence[Tuple[str, str, Sequence[DegradationRow]]],
    title: Optional[str] = None,
) -> str:
    """Render :func:`grid_degradation` output, one row per (scenario, protocol).

    Columns are the union of the metrics present in the entries (first-seen
    order), each cell the percentage delta vs the baseline cell (``-`` when
    the baseline mean is ~0 or the metric is absent).
    """
    if not entries:
        return title or "(no cells to compare)"
    metric_names: List[str] = []
    for _, _, rows in entries:
        for row in rows:
            if row.metric not in metric_names:
                metric_names.append(row.metric)
    body = []
    for scenario, protocol, rows in entries:
        by_metric = {row.metric: row for row in rows}
        cells = []
        for name in metric_names:
            row = by_metric.get(name)
            if row is None or row.delta_percent is None:
                cells.append("-")
            else:
                cells.append(f"{row.delta_percent:+.1f}%")
        body.append([scenario, protocol] + cells)
    return format_table(
        headers=["scenario", "protocol"] + [f"Δ{m} %" for m in metric_names],
        rows=body,
        title=title,
    )


def grid_degradation_to_jsonable(
    entries: Sequence[Tuple[str, str, Sequence[DegradationRow]]],
    baseline: str,
) -> Dict[str, object]:
    """Deterministic JSON payload of a grid degradation comparison."""
    return {
        "baseline": baseline,
        "cells": [
            {
                "scenario": scenario,
                "protocol": protocol,
                "rows": [row.to_dict() for row in rows],
            }
            for scenario, protocol, rows in entries
        ],
    }
