"""Cost metrics: DirQ vs flooding energy accounting (paper §5, §7.2).

The paper's headline result is that DirQ's total cost (query dissemination
plus range updates) lands at 45–55 % of what flooding the same query load
would cost.  The functions here aggregate the channel's
:class:`~repro.energy.ledger.NetworkLedger` into the quantities used by
that comparison and by the Fig. 6 update-rate series.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..core.messages import (
    DIRQ_COST_KINDS,
    ESTIMATE_KIND,
    FLOOD_KIND,
    QUERY_KIND,
    UPDATE_KIND,
)
from ..energy.ledger import NetworkLedger


@dataclasses.dataclass(frozen=True)
class CostBreakdown:
    """Energy cost split by traffic class (in the paper's unit costs)."""

    query_cost: float
    update_cost: float
    estimate_cost: float
    flood_cost: float
    total_dirq_cost: float

    @property
    def update_fraction(self) -> float:
        """Share of DirQ's cost spent on the update mechanism."""
        if self.total_dirq_cost == 0:
            return 0.0
        return (self.update_cost + self.estimate_cost) / self.total_dirq_cost


def cost_breakdown(ledger: NetworkLedger) -> CostBreakdown:
    """Aggregate a ledger into per-traffic-class costs."""
    query = ledger.total_cost([QUERY_KIND])
    update = ledger.total_cost([UPDATE_KIND])
    estimate = ledger.total_cost([ESTIMATE_KIND])
    flood = ledger.total_cost([FLOOD_KIND])
    return CostBreakdown(
        query_cost=query,
        update_cost=update,
        estimate_cost=estimate,
        flood_cost=flood,
        total_dirq_cost=ledger.total_cost(DIRQ_COST_KINDS),
    )


def dirq_cost(ledger: NetworkLedger) -> float:
    """Total DirQ cost C_TD = C_QD + C_UD (+ estimate overhead)."""
    return ledger.total_cost(DIRQ_COST_KINDS)


def flooding_cost_measured(ledger: NetworkLedger) -> float:
    """Total cost of the flooding traffic recorded in a ledger."""
    return ledger.total_cost([FLOOD_KIND])


@dataclasses.dataclass(frozen=True)
class CostComparison:
    """DirQ vs flooding comparison for the same query workload."""

    dirq_total: float
    flooding_total: float
    num_queries: int
    dirq_per_query: float
    flooding_per_query: float
    ratio: float

    def within_band(self, low: float = 0.45, high: float = 0.55) -> bool:
        """Whether the measured ratio falls inside the paper's reported band."""
        return low <= self.ratio <= high


def compare_costs(
    dirq_ledger: NetworkLedger,
    flooding_reference: float,
    num_queries: int,
    flooding_is_total: bool = True,
) -> CostComparison:
    """Compare a DirQ run against a flooding reference.

    Parameters
    ----------
    dirq_ledger:
        Ledger of the DirQ run.
    flooding_reference:
        Either the total flooding cost for the same workload
        (``flooding_is_total=True``) or the per-query flooding cost
        (``flooding_is_total=False``), e.g. eq. 3's ``N + 2L``.
    num_queries:
        Number of queries in the workload.
    """
    if num_queries < 0:
        raise ValueError("num_queries must be non-negative")
    dirq_total = dirq_cost(dirq_ledger)
    flooding_total = (
        float(flooding_reference)
        if flooding_is_total
        else float(flooding_reference) * num_queries
    )
    per_query_dirq = dirq_total / num_queries if num_queries else 0.0
    per_query_flood = flooding_total / num_queries if num_queries else 0.0
    ratio = dirq_total / flooding_total if flooding_total > 0 else float("inf")
    return CostComparison(
        dirq_total=dirq_total,
        flooding_total=flooding_total,
        num_queries=num_queries,
        dirq_per_query=per_query_dirq,
        flooding_per_query=per_query_flood,
        ratio=ratio,
    )


def per_node_cost_share(ledger: NetworkLedger, kinds=DIRQ_COST_KINDS) -> Dict[int, float]:
    """Fraction of the total cost borne by each node (hot-spot analysis)."""
    per_node = ledger.per_node_cost(kinds)
    total = sum(per_node.values())
    if total <= 0:
        return {nid: 0.0 for nid in per_node}
    return {nid: cost / total for nid, cost in per_node.items()}
