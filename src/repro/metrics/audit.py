"""Query audit: ground truth vs actual delivery bookkeeping.

Accuracy in the paper (§7.1) is defined as *"the proportion of nodes that
are being reached in response to a query to nodes that should be reached"*,
where "should be reached" includes both the true source nodes and the
intermediate forwarding nodes on the tree paths towards them.  Overshoot
(Fig. 7) is the relative excess of reached nodes over that ground-truth set.

The audit records, for every injected query,

* the ground-truth **source set** (nodes whose actual reading satisfies the
  query at injection time),
* the ground-truth **should-receive set** (sources plus forwarding nodes),
* the set of nodes that actually **received** the query under the protocol
  being evaluated, and
* the nodes that **claimed to be sources** (their stored range matched).

Protocol code reports deliveries; the experiment runner registers ground
truth; :mod:`repro.metrics.accuracy` turns the records into the published
metrics.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Set

from ..core.messages import RangeQuery
from ..network.addresses import NodeId


@dataclasses.dataclass
class QueryRecord:
    """Everything known about one injected query."""

    query: RangeQuery
    sources: Set[NodeId] = dataclasses.field(default_factory=set)
    should_receive: Set[NodeId] = dataclasses.field(default_factory=set)
    received: Set[NodeId] = dataclasses.field(default_factory=set)
    source_claims: Set[NodeId] = dataclasses.field(default_factory=set)
    injection_epoch: int = 0
    #: Number of non-root nodes alive at injection time; the denominator the
    #: paper's node-percentage figures (Figs. 5 and 7) are expressed against.
    population: int = 0

    @property
    def query_id(self) -> int:
        return self.query.query_id

    @property
    def num_received(self) -> int:
        return len(self.received)

    @property
    def num_should_receive(self) -> int:
        return len(self.should_receive)

    @property
    def spurious(self) -> Set[NodeId]:
        """Nodes that received the query but should not have."""
        return self.received - self.should_receive

    @property
    def missed(self) -> Set[NodeId]:
        """Nodes that should have received the query but did not."""
        return self.should_receive - self.received

    @property
    def missed_sources(self) -> Set[NodeId]:
        """True source nodes the query never reached."""
        return self.sources - self.received


class QueryAudit:
    """Collects :class:`QueryRecord` objects for a whole experiment."""

    def __init__(self) -> None:
        self._records: Dict[int, QueryRecord] = {}

    # -- registration (experiment runner) ------------------------------------

    def register_query(
        self,
        query: RangeQuery,
        sources: Iterable[NodeId],
        should_receive: Iterable[NodeId],
        injection_epoch: Optional[int] = None,
        population: int = 0,
    ) -> QueryRecord:
        """Register a query along with its ground-truth node sets.

        ``population`` is the number of non-root nodes alive at injection
        time, used as the denominator of the paper's node-percentage
        metrics; 0 means "unknown" and metrics fall back to the
        should-receive set size.
        """
        if query.query_id in self._records:
            raise ValueError(f"query id {query.query_id} already registered")
        record = QueryRecord(
            query=query,
            sources=set(sources),
            should_receive=set(should_receive),
            injection_epoch=(
                injection_epoch if injection_epoch is not None else query.epoch
            ),
            population=int(population),
        )
        self._records[query.query_id] = record
        return record

    # -- reporting (protocol code) -----------------------------------------------

    def record_receipt(self, query_id: int, node_id: NodeId) -> None:
        """Record that ``node_id`` received the query (idempotent)."""
        record = self._records.get(query_id)
        if record is not None:
            record.received.add(node_id)

    def record_source_claim(self, query_id: int, node_id: NodeId) -> None:
        """Record that ``node_id`` believed itself a source for the query."""
        record = self._records.get(query_id)
        if record is not None:
            record.source_claims.add(node_id)

    # -- access ------------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, query_id: int) -> bool:
        return query_id in self._records

    def record(self, query_id: int) -> QueryRecord:
        if query_id not in self._records:
            raise KeyError(f"unknown query id {query_id}")
        return self._records[query_id]

    @property
    def records(self) -> List[QueryRecord]:
        """All records ordered by query id."""
        return [self._records[qid] for qid in sorted(self._records)]

    def records_between(self, first_epoch: int, last_epoch: int) -> List[QueryRecord]:
        """Records for queries injected in ``[first_epoch, last_epoch]``."""
        return [
            r
            for r in self.records
            if first_epoch <= r.injection_epoch <= last_epoch
        ]

    def clear(self) -> None:
        self._records.clear()
