"""Plain-text report formatting for experiment results.

The benchmark harness prints the same rows and series the paper reports
(Figs. 5-7, the §5.3 worked example, and the headline cost ratio); the
helpers here render them as aligned text tables so the console output of
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction record.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def _render_cell(cell: object, float_format: str) -> str:
    """Shared cell formatting of the text and markdown tables."""
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return float_format.format(cell)
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.2f}",
    title: Optional[str] = None,
) -> str:
    """Render rows as a fixed-width text table.

    Floats are formatted with ``float_format``; everything else with
    ``str``.  Column widths adapt to the content.
    """
    rendered_rows: List[List[str]] = [
        [_render_cell(c, float_format) for c in row] for row in rows
    ]
    header_cells = [str(h) for h in headers]
    widths = [len(h) for h in header_cells]
    for row in rendered_rows:
        if len(row) != len(header_cells):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(header_cells)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(header_cells))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def format_series(
    name: str,
    window_starts: Sequence[int],
    values: Sequence[float],
    max_points: int = 20,
    float_format: str = "{:.1f}",
) -> str:
    """Render a windowed series compactly (down-sampled to ``max_points``)."""
    n = len(values)
    if n != len(window_starts):
        raise ValueError("window_starts and values must have the same length")
    if n == 0:
        return f"{name}: (empty series)"
    step = max(1, n // max_points)
    samples = [
        f"{window_starts[i]}:{float_format.format(values[i])}"
        for i in range(0, n, step)
    ]
    mean_value = sum(values) / n
    return (
        f"{name}: mean={float_format.format(mean_value)} over {n} windows | "
        + " ".join(samples)
    )


def format_batch_summary(stats, results) -> str:
    """Render a batch execution summary (one row per trial).

    ``stats`` is a :class:`~repro.experiments.batch.BatchStats` and
    ``results`` a sequence of :class:`~repro.experiments.batch.TrialResult`;
    both are duck-typed so this formatting layer stays free of experiment
    imports.
    """
    title = (
        f"batch: {stats.total} trials | executed {stats.executed}, "
        f"cached {stats.cached}, deduplicated {stats.deduplicated} | "
        f"workers {stats.workers} | wall {stats.runtime_seconds:.2f}s"
    )
    rows = [
        (
            r.spec.label,
            "cache" if r.from_cache else "run",
            r.runtime_seconds,
            r.num_queries,
            r.cost_ratio,
        )
        for r in results
    ]
    return format_table(
        headers=["trial", "origin", "runtime s", "queries", "cost ratio"],
        rows=rows,
        float_format="{:.3f}",
        title=title,
    )


def format_mean_ci(summary, float_format: str = "{:.3f}") -> str:
    """Render a replicate summary as a ``mean ± half-width [n=N]`` cell.

    ``summary`` is a :class:`~repro.metrics.stats.ReplicateSummary`
    (duck-typed); degenerate n=1 groups render without the ± part, since a
    single replicate carries no interval.
    """
    return summary.format(float_format)


def format_replicate_table(
    groups,
    metrics: Optional[Sequence[str]] = None,
    float_format: str = "{:.3f}",
    title: Optional[str] = None,
) -> str:
    """Render replicate groups as a table of ``mean ± half-width`` cells.

    ``groups`` is a sequence of :class:`~repro.metrics.stats.ReplicateGroup`
    (duck-typed: ``label``, ``n``, ``metrics``).  One row per group, one
    column per metric; ``metrics`` selects and orders the columns (default:
    every metric of the first group, in its own order).
    """
    group_list = list(groups)
    if not group_list:
        return title or "(no replicate groups)"
    names = list(metrics) if metrics is not None else list(group_list[0].metrics)
    rows = [
        [g.label, g.n]
        + [
            format_mean_ci(g.metrics[name], float_format)
            if name in g.metrics
            else "-"
            for name in names
        ]
        for g in group_list
    ]
    return format_table(
        headers=["trial", "n"] + names,
        rows=rows,
        float_format=float_format,
        title=title,
    )


def format_progress(done: int, total: int, width: int = 20) -> str:
    """Render completion as ``[####----] done/total`` (empty-safe).

    The campaign CLI prints one of these per scenario×protocol cell; with
    ``total == 0`` the bar renders full, since there is nothing left to do.
    """
    if total <= 0:
        fraction = 1.0
    else:
        fraction = max(0.0, min(1.0, done / total))
    filled = int(round(fraction * width))
    return f"[{'#' * filled}{'-' * (width - filled)}] {done}/{total}"


def format_matrix(
    row_header: str,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    cell,
    title: Optional[str] = None,
) -> str:
    """Render a labelled matrix as an aligned text table.

    ``cell(row_label, col_label)`` returns the cell's rendered string (use
    ``"-"`` for absent cells).  This is the scenario×protocol grid shape:
    one row per scenario, one column per protocol variant.
    """
    rows = [
        [row] + [str(cell(row, col)) for col in col_labels] for row in row_labels
    ]
    return format_table(
        headers=[row_header] + list(col_labels), rows=rows, title=title
    )


def format_markdown_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    header_cells = [str(h) for h in headers]
    lines = [
        "| " + " | ".join(header_cells) + " |",
        "| " + " | ".join("---" for _ in header_cells) + " |",
    ]
    for row in rows:
        cells = [_render_cell(c, float_format) for c in row]
        if len(cells) != len(header_cells):
            raise ValueError(
                f"row has {len(cells)} cells but table has "
                f"{len(header_cells)} columns"
            )
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def format_markdown_matrix(
    row_header: str,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    cell,
) -> str:
    """Markdown twin of :func:`format_matrix`."""
    rows = [
        [row] + [str(cell(row, col)) for col in col_labels] for row in row_labels
    ]
    return format_markdown_table([row_header] + list(col_labels), rows)


def format_key_values(title: str, pairs: Sequence[tuple[str, object]]) -> str:
    """Render key/value pairs as an aligned block."""
    if not pairs:
        return title
    width = max(len(str(k)) for k, _ in pairs)
    lines = [title]
    for key, value in pairs:
        if isinstance(value, float):
            value = f"{value:.4g}"
        lines.append(f"  {str(key).ljust(width)} : {value}")
    return "\n".join(lines)
