"""Windowed time series collection (the Fig. 6 machinery).

Fig. 6 plots the total number of Update Messages transmitted network-wide
per 100 epochs over the length of the run, together with the ``U_max/Hr``
budget line and its 0.45/0.55 multiples.  :class:`WindowedCounter` collects
such per-window counts during a simulation by snapshotting the energy
ledger at window boundaries; :class:`SeriesSet` bundles several series for
reporting.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..energy.ledger import NetworkLedger


@dataclasses.dataclass(frozen=True)
class WindowPoint:
    """One point of a windowed series."""

    window_start: int
    value: float


class WindowedCounter:
    """Counts events (e.g. update transmissions) per window of epochs.

    The counter works by differencing successive snapshots of a monotone
    total, so it can be driven directly from the network ledger without
    instrumenting the protocols.
    """

    def __init__(self, window_epochs: int = 100):
        if window_epochs <= 0:
            raise ValueError("window_epochs must be positive")
        self.window_epochs = int(window_epochs)
        self._points: List[WindowPoint] = []
        self._last_total = 0.0
        self._last_window_closed = -1

    def close_window(self, window_start: int, running_total: float) -> WindowPoint:
        """Close the window starting at ``window_start``.

        ``running_total`` is the monotone cumulative count at the end of the
        window; the per-window value is the difference from the previous
        snapshot.
        """
        if window_start <= self._last_window_closed:
            raise ValueError(
                f"window {window_start} already closed (last closed "
                f"{self._last_window_closed})"
            )
        value = float(running_total) - self._last_total
        self._last_total = float(running_total)
        self._last_window_closed = window_start
        point = WindowPoint(window_start=window_start, value=value)
        self._points.append(point)
        return point

    @property
    def points(self) -> List[WindowPoint]:
        return list(self._points)

    @property
    def values(self) -> np.ndarray:
        return np.array([p.value for p in self._points], dtype=float)

    @property
    def window_starts(self) -> np.ndarray:
        return np.array([p.window_start for p in self._points], dtype=int)

    def total(self) -> float:
        return float(self.values.sum()) if self._points else 0.0

    def mean(self) -> float:
        return float(self.values.mean()) if self._points else 0.0


class UpdateRateRecorder:
    """Records the Fig. 6 series: update transmissions per window.

    Parameters
    ----------
    ledger:
        The network ledger charged by the channel.
    window_epochs:
        Window length (the paper uses 100 epochs).
    kind:
        The ledger kind to count; transmissions of ``"update"`` messages by
        default.
    """

    def __init__(
        self,
        ledger: NetworkLedger,
        window_epochs: int = 100,
        kind: str = "update",
    ):
        self.ledger = ledger
        self.kind = kind
        self.counter = WindowedCounter(window_epochs)

    def on_window_end(self, window_start: int) -> WindowPoint:
        """Snapshot the ledger at the end of a window."""
        total = self.ledger.total_count(direction="tx", kind=self.kind)
        return self.counter.close_window(window_start, float(total))

    @property
    def series(self) -> List[WindowPoint]:
        return self.counter.points


@dataclasses.dataclass
class SeriesSet:
    """A named bundle of windowed series plus optional reference levels.

    Used by the Fig. 6 experiment to hold one series per threshold setting
    (δ = 3 %, 5 %, 9 %, ATC) together with the U_max/Hr reference lines.
    """

    window_epochs: int
    series: Dict[str, List[WindowPoint]] = dataclasses.field(default_factory=dict)
    references: Dict[str, float] = dataclasses.field(default_factory=dict)

    def add_series(self, name: str, points: Sequence[WindowPoint]) -> None:
        self.series[name] = list(points)

    def add_reference(self, name: str, level: float) -> None:
        self.references[name] = float(level)

    def names(self) -> List[str]:
        return sorted(self.series)

    def as_arrays(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        points = self.series[name]
        return (
            np.array([p.window_start for p in points], dtype=int),
            np.array([p.value for p in points], dtype=float),
        )

    def mean_of(self, name: str) -> float:
        _, values = self.as_arrays(name)
        return float(values.mean()) if values.size else 0.0

    def fraction_within(
        self, name: str, low: float, high: float, skip_windows: int = 0
    ) -> float:
        """Fraction of windows whose value lies in ``[low, high]``.

        ``skip_windows`` drops the initial transient (e.g. before the first
        EHr estimate has propagated), matching how one reads Fig. 6.
        """
        _, values = self.as_arrays(name)
        values = values[skip_windows:]
        if values.size == 0:
            return 0.0
        mask = (values >= low) & (values <= high)
        return float(mask.mean())
