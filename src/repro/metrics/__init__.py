"""Metrics: audit, accuracy/overshoot, costs, windowed series, replication stats."""

from .accuracy import (
    Fig5Point,
    QueryAccuracy,
    delivery_completeness,
    fig5_percentages,
    mean_accuracy,
    mean_overshoot,
    overshoot_series,
    query_accuracy,
)
from .audit import QueryAudit, QueryRecord
from .cost import (
    CostBreakdown,
    CostComparison,
    compare_costs,
    cost_breakdown,
    dirq_cost,
    flooding_cost_measured,
    per_node_cost_share,
)
from .report import (
    format_key_values,
    format_mean_ci,
    format_replicate_table,
    format_series,
    format_table,
)
from .series import SeriesSet, UpdateRateRecorder, WindowedCounter, WindowPoint
from .stats import (
    DEFAULT_METRICS,
    ReplicateGroup,
    ReplicateSummary,
    group_replicates,
    groups_to_json,
    groups_to_jsonable,
    student_t_critical,
    summarize,
)

__all__ = [
    "Fig5Point",
    "QueryAccuracy",
    "delivery_completeness",
    "fig5_percentages",
    "mean_accuracy",
    "mean_overshoot",
    "overshoot_series",
    "query_accuracy",
    "QueryAudit",
    "QueryRecord",
    "CostBreakdown",
    "CostComparison",
    "compare_costs",
    "cost_breakdown",
    "dirq_cost",
    "flooding_cost_measured",
    "per_node_cost_share",
    "format_key_values",
    "format_mean_ci",
    "format_replicate_table",
    "format_series",
    "format_table",
    "DEFAULT_METRICS",
    "ReplicateGroup",
    "ReplicateSummary",
    "group_replicates",
    "groups_to_json",
    "groups_to_jsonable",
    "student_t_critical",
    "summarize",
    "SeriesSet",
    "UpdateRateRecorder",
    "WindowedCounter",
    "WindowPoint",
]
