"""Replication statistics: mean / spread / confidence intervals over trials.

The figure reproductions were, until this layer existed, single trials: one
seed per (setting, coverage, ...) point, so a DirQ-vs-flooding gap could be
signal or seed noise.  This module turns N-replicate groups of
:class:`~repro.experiments.batch.TrialResult` records into
:class:`ReplicateSummary` objects -- mean, sample standard deviation, a
two-sided Student-t confidence interval, min/max, and the replicate count --
for every scalar metric of a trial, so every reported number can carry an
error bar.

Grouping is keyed by the **base config hash**: a replicated sweep expands
each :class:`~repro.experiments.batch.TrialSpec` via ``spec.replicates(n)``,
which stamps every derived spec with ``tags["base_key"] = spec.key``.
Replicate 0 *is* the base configuration (same seed, same hash), so a single
trial cached by an earlier un-replicated run composes into a replicate
group without re-running -- the replication layer only pays for the
additional seeds.

Everything here is duck-typed against the ``TrialResult`` API (``spec``,
``audit``, ``cost_ratio``, ...) so the metrics package stays free of
experiment-layer imports.

Statistical definitions
-----------------------
* ``std`` is the *sample* standard deviation (``ddof=1``); it is 0 for a
  single replicate.
* The confidence interval is ``mean +/- t*(n-1) * std / sqrt(n)`` with
  ``t*`` the two-sided Student-t critical value at the requested confidence
  level (default 95 %).  Degenerate groups (``n == 1``) report **no**
  interval (``ci_halfwidth is None``) instead of a zero-width or undefined
  one.
* :func:`student_t_critical` evaluates the critical value from the
  regularised incomplete beta function (pure ``math``, no scipy), accurate
  to well below the precision any report cell renders.
"""

from __future__ import annotations

import dataclasses
import json
import math
from functools import lru_cache
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from .accuracy import delivery_completeness

#: Confidence level used when none is specified.
DEFAULT_CONFIDENCE = 0.95


# ---------------------------------------------------------------------------
# Student-t critical values (no scipy: regularised incomplete beta + bisection)
# ---------------------------------------------------------------------------


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta function (Lentz's method)."""
    max_iterations = 300
    eps = 3.0e-14
    fpmin = 1.0e-300
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < fpmin:
        d = fpmin
    d = 1.0 / d
    h = d
    for m in range(1, max_iterations + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < fpmin:
            d = fpmin
        c = 1.0 + aa / c
        if abs(c) < fpmin:
            c = fpmin
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < fpmin:
            d = fpmin
        c = 1.0 + aa / c
        if abs(c) < fpmin:
            c = fpmin
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < eps:
            break
    return h


def _betainc(a: float, b: float, x: float) -> float:
    """Regularised incomplete beta function ``I_x(a, b)``."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_bt = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log(1.0 - x)
    )
    bt = math.exp(ln_bt)
    if x < (a + 1.0) / (a + b + 2.0):
        return bt * _betacf(a, b, x) / a
    return 1.0 - bt * _betacf(b, a, 1.0 - x) / b


def _t_two_sided_tail(df: int, t: float) -> float:
    """P(|T| > t) for a Student-t variable with ``df`` degrees of freedom."""
    if t <= 0.0:
        return 1.0
    x = df / (df + t * t)
    return _betainc(df / 2.0, 0.5, x)


@lru_cache(maxsize=None)
def student_t_critical(df: int, confidence: float = DEFAULT_CONFIDENCE) -> float:
    """Two-sided Student-t critical value ``t*`` with ``P(|T| <= t*)``.

    ``student_t_critical(4, 0.95)`` is the 2.776 of the familiar t-table.
    """
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    tail = 1.0 - confidence
    lo, hi = 0.0, 1.0
    while _t_two_sided_tail(df, hi) > tail:
        hi *= 2.0
        if hi > 1e12:  # pragma: no cover - defensive
            break
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if _t_two_sided_tail(df, mid) > tail:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-12 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


# ---------------------------------------------------------------------------
# Scalar summaries
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ReplicateSummary:
    """Mean / spread / confidence interval of one metric over N replicates."""

    metric: str
    n: int
    mean: float
    std: float
    ci_halfwidth: Optional[float]
    minimum: float
    maximum: float
    confidence: float = DEFAULT_CONFIDENCE

    @classmethod
    def from_values(
        cls,
        metric: str,
        values: Sequence[float],
        confidence: float = DEFAULT_CONFIDENCE,
    ) -> "ReplicateSummary":
        """Summarise ``values`` (one per replicate; at least one required)."""
        data = [float(v) for v in values]
        if not data:
            raise ValueError(f"metric {metric!r}: need at least one value")
        n = len(data)
        mean = math.fsum(data) / n
        if n > 1 and all(math.isfinite(v) for v in data):
            variance = math.fsum((v - mean) ** 2 for v in data) / (n - 1)
            std = math.sqrt(variance)
            halfwidth: Optional[float] = (
                student_t_critical(n - 1, confidence) * std / math.sqrt(n)
            )
        else:
            # A single replicate (or a non-finite metric such as an infinite
            # cost ratio) carries no interval -- report the point estimate.
            std = 0.0
            halfwidth = None
        return cls(
            metric=metric,
            n=n,
            mean=mean,
            std=std,
            ci_halfwidth=halfwidth,
            minimum=min(data),
            maximum=max(data),
            confidence=confidence,
        )

    def format(self, float_format: str = "{:.3f}") -> str:
        """Render as a report cell: ``mean ± half-width [n=N]``."""
        mean = float_format.format(self.mean)
        if self.ci_halfwidth is None:
            return f"{mean} [n={self.n}]"
        return f"{mean} ± {float_format.format(self.ci_halfwidth)} [n={self.n}]"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable payload; round-trips through :meth:`from_dict`."""
        return {
            "metric": self.metric,
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "ci_halfwidth": self.ci_halfwidth,
            "minimum": self.minimum,
            "maximum": self.maximum,
            "confidence": self.confidence,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ReplicateSummary":
        return cls(
            metric=str(payload["metric"]),
            n=int(payload["n"]),
            mean=float(payload["mean"]),
            std=float(payload["std"]),
            ci_halfwidth=(
                None
                if payload["ci_halfwidth"] is None
                else float(payload["ci_halfwidth"])
            ),
            minimum=float(payload["minimum"]),
            maximum=float(payload["maximum"]),
            confidence=float(payload["confidence"]),
        )


def summarize(
    metric: str,
    values: Sequence[float],
    confidence: float = DEFAULT_CONFIDENCE,
) -> ReplicateSummary:
    """Convenience alias for :meth:`ReplicateSummary.from_values`."""
    return ReplicateSummary.from_values(metric, values, confidence=confidence)


# ---------------------------------------------------------------------------
# Replicate groups over TrialResults
# ---------------------------------------------------------------------------

#: Scalar metrics summarised for every replicate group.  Extractors take a
#: ``TrialResult``-shaped object; insertion order is the report column order.
DEFAULT_METRICS: Dict[str, Callable[[object], float]] = {
    "num_queries": lambda r: float(r.num_queries),
    "cost_ratio": lambda r: float(r.cost_ratio),
    "mean_overshoot_pp": lambda r: float(r.mean_overshoot_percent),
    "mean_accuracy": lambda r: float(r.mean_accuracy),
    "source_completeness": lambda r: float(
        delivery_completeness(r.audit.records)
    ),
    "total_dirq_cost": lambda r: float(r.total_dirq_cost),
    "updates_per_window": lambda r: (
        math.fsum(r.updates_per_window()) / len(r.updates_per_window())
        if r.updates_per_window()
        else 0.0
    ),
}


@dataclasses.dataclass
class ReplicateGroup:
    """All replicates of one base configuration, plus their summaries.

    ``cache_hits`` / ``executed`` record where the group's results came from
    (:attr:`TrialResult.from_cache`); they are execution provenance, not
    measurements, so :meth:`to_dict` deliberately excludes them -- the JSON
    export of a replicated sweep is bit-identical whether it was computed
    fresh, served from cache, or produced by any number of workers.
    """

    label: str
    base_key: str
    group: str
    tags: Dict[str, object]
    results: List[object]
    metrics: Dict[str, ReplicateSummary]
    cache_hits: int = 0
    executed: int = 0

    @property
    def n(self) -> int:
        return len(self.results)

    def summary(self, metric: str) -> ReplicateSummary:
        return self.metrics[metric]

    def values(self, metric: str, extractor: Callable[[object], float]) -> List[float]:
        return [float(extractor(r)) for r in self.results]

    def to_dict(self) -> Dict[str, object]:
        """Deterministic, JSON-serialisable payload (no provenance fields)."""
        return {
            "label": self.label,
            "base_key": self.base_key,
            "group": self.group,
            "tags": {str(k): v for k, v in sorted(self.tags.items())},
            "n": self.n,
            "metrics": {
                name: summary.to_dict() for name, summary in self.metrics.items()
            },
        }


def _base_tags(tags: Mapping[str, object]) -> Dict[str, object]:
    """Strip the replication bookkeeping tags, keeping the sweep's own."""
    return {
        k: v
        for k, v in tags.items()
        if k not in ("replicate", "base_key", "base_label")
    }


def group_replicates(
    results: Iterable[object],
    metrics: Optional[Mapping[str, Callable[[object], float]]] = None,
    confidence: float = DEFAULT_CONFIDENCE,
) -> List[ReplicateGroup]:
    """Group trial results by base config hash and summarise each metric.

    Results produced by ``TrialSpec.replicates(n)`` carry a ``base_key`` tag
    and fold into one group per base spec; results without one are treated
    as their own (degenerate, n=1) group keyed by their config hash.  The
    base *label* is part of the bucket key too: two sweep points whose
    configs hash equally (e.g. ``loss=0`` and ``atc-target=0.5``, where 0.5
    is the default target) share cache entries but must stay separate rows
    with separate tags, not merge into one group of double-counted values.
    Group order follows first appearance in ``results`` and replicates are
    ordered by their ``replicate`` tag, so the grouping is independent of
    how many workers executed the batch.
    """
    metric_fns = dict(DEFAULT_METRICS if metrics is None else metrics)
    ordered_keys: List[tuple] = []
    buckets: Dict[tuple, List[object]] = {}
    for result in results:
        key = (
            str(result.spec.tags.get("base_key", result.spec.key)),
            str(result.spec.tags.get("base_label", result.spec.label)),
        )
        if key not in buckets:
            ordered_keys.append(key)
            buckets[key] = []
        buckets[key].append(result)

    groups: List[ReplicateGroup] = []
    for key in ordered_keys:
        base_key, label = key
        bucket = sorted(
            buckets[key], key=lambda r: int(r.spec.tags.get("replicate", 0))
        )
        first = bucket[0]
        summaries = {
            name: ReplicateSummary.from_values(
                name, [fn(r) for r in bucket], confidence=confidence
            )
            for name, fn in metric_fns.items()
        }
        groups.append(
            ReplicateGroup(
                label=label,
                base_key=base_key,
                group=first.spec.group,
                tags=_base_tags(first.spec.tags),
                results=bucket,
                metrics=summaries,
                cache_hits=sum(1 for r in bucket if getattr(r, "from_cache", False)),
                executed=sum(
                    1 for r in bucket if not getattr(r, "from_cache", False)
                ),
            )
        )
    return groups


def groups_to_jsonable(groups: Sequence[ReplicateGroup]) -> List[Dict[str, object]]:
    """The deterministic JSON payload of a list of replicate groups."""
    return [g.to_dict() for g in groups]


def groups_to_json(groups: Sequence[ReplicateGroup], **extra: object) -> str:
    """Serialise groups (plus optional metadata fields) as canonical JSON."""
    payload: Dict[str, object] = dict(extra)
    payload["groups"] = groups_to_jsonable(groups)
    return json.dumps(payload, sort_keys=True, indent=2)


def mean_series(series_per_replicate: Sequence[Sequence[float]]) -> List[float]:
    """Element-wise mean of equal-length per-replicate series."""
    if not series_per_replicate:
        return []
    lengths = {len(s) for s in series_per_replicate}
    if len(lengths) != 1:
        raise ValueError(
            f"replicate series lengths differ: {sorted(lengths)} "
            "(replicates must share num_epochs and window_epochs)"
        )
    n = len(series_per_replicate)
    return [
        math.fsum(values) / n for values in zip(*series_per_replicate)
    ]
