"""Range Tables: the per-sensor-type routing state of DirQ (paper §4.1).

Every node maintains one :class:`RangeTable` per sensor type known to exist
in its subtree.  A table holds

* the node's **own entry** -- the tuple ``(TH_min, TH_max)`` derived from the
  last *significant* sensor reading ``R_Aq`` via equations (1)–(2):
  ``TH_min = R_Aq − δ`` and ``TH_max = R_Aq + δ``; and
* one entry per **immediate child** -- the ``(min(TH_min), max(TH_max))``
  tuple most recently advertised by that child, summarising the child's whole
  subtree.

From these the table derives the aggregate ``(min(TH_min), max(TH_max))``
over all entries (Fig. 2).  Whenever the aggregate moves by more than δ from
the previously *transmitted* aggregate, the node must send a new Update
Message to its parent (Fig. 3); :meth:`RangeTable.pending_update` implements
exactly that trigger rule.

The collection of tables on one node is managed by :class:`RangeTableSet`,
which also implements the heterogeneity rules of Fig. 4: a table for a
sensor type exists on a node if and only if the type is present on the node
itself or somewhere in its subtree.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterator, List, Optional, Tuple

from ..network.addresses import NodeId


@dataclasses.dataclass
class RangeEntry:
    """One ``(TH_min, TH_max)`` tuple in a Range Table."""

    min_threshold: float
    max_threshold: float

    def __post_init__(self) -> None:
        if self.min_threshold > self.max_threshold:
            raise ValueError(
                f"range entry has min {self.min_threshold} > max {self.max_threshold}"
            )

    @property
    def as_tuple(self) -> Tuple[float, float]:
        return (self.min_threshold, self.max_threshold)

    def contains(self, value: float) -> bool:
        return self.min_threshold <= value <= self.max_threshold

    def overlaps(self, low: float, high: float) -> bool:
        return low <= self.max_threshold and self.min_threshold <= high


class RangeTable:
    """Range Table for a single sensor type on a single node.

    Parameters
    ----------
    owner:
        Node id of the owning node (for diagnostics only).
    sensor_type:
        Sensor type this table describes.
    """

    def __init__(self, owner: NodeId, sensor_type: str):
        self.owner = owner
        self.sensor_type = sensor_type
        self.own_entry: Optional[RangeEntry] = None
        self._children: Dict[NodeId, RangeEntry] = {}
        #: Aggregate advertised in the last transmitted Update Message, or
        #: ``None`` if no update has been sent yet for this sensor type.
        self.last_transmitted: Optional[Tuple[float, float]] = None
        #: Reference reading R_Aq from which the own entry was derived.
        self.reference_reading: Optional[float] = None
        #: Cached result of :meth:`aggregate`; the update trigger runs every
        #: epoch for every sensor type, while entries change only rarely, so
        #: the min/max scan is memoised and invalidated on mutation.
        self._aggregate_cache: Optional[Tuple[float, float]] = None
        self._aggregate_dirty = True
        #: Mutation counter backing the negative-result memo of
        #: :meth:`pending_update` (see there).
        self._version = 0
        self._no_update_memo: Optional[Tuple[int, float]] = None
        #: Optional zero-argument callback fired after every mutation that
        #: bumps :attr:`_version` (entry changes and transmissions).  The
        #: columnar tick (``repro.experiments.columnar``) registers one per
        #: table to invalidate its cached row when a message handler or
        #: topology event mutates the table between epoch passes.
        self.observer = None

    # -- own entry maintenance (equations (1)–(2)) ------------------------------------

    def observe_reading(self, reading: float, delta: float) -> bool:
        """Process a newly acquired sensor reading.

        Implements Fig. 1: if the reading falls outside the current own
        ``[TH_min, TH_max]`` (or no entry exists yet), it becomes the new
        reference reading ``R_Aq`` and the own entry is recomputed as
        ``[R_Aq − δ, R_Aq + δ]``; otherwise the table is left untouched.

        Returns
        -------
        bool
            ``True`` if the own entry changed.
        """
        if delta < 0:
            raise ValueError("delta must be non-negative")
        if not math.isfinite(reading):
            raise ValueError(f"sensor reading must be finite, got {reading}")
        if self.own_entry is not None and self.own_entry.contains(reading):
            return False
        self.reference_reading = float(reading)
        self.own_entry = RangeEntry(reading - delta, reading + delta)
        self._touch()
        return True

    def clear_own_entry(self) -> bool:
        """Remove the own entry (the node lost its sensor of this type)."""
        changed = self.own_entry is not None
        self.own_entry = None
        self.reference_reading = None
        self._touch()
        return changed

    # -- child entries -------------------------------------------------------------------

    def update_child(
        self, child: NodeId, min_threshold: float, max_threshold: float
    ) -> bool:
        """Install or replace the entry advertised by an immediate child.

        Returns ``True`` if the stored entry changed.
        """
        new_entry = RangeEntry(min_threshold, max_threshold)
        old = self._children.get(child)
        if old is not None and old.as_tuple == new_entry.as_tuple:
            return False
        self._children[child] = new_entry
        self._touch()
        return True

    def remove_child(self, child: NodeId) -> bool:
        """Drop a child's entry (child died or withdrew the sensor type)."""
        removed = self._children.pop(child, None) is not None
        if removed:
            self._touch()
        return removed

    def child_entry(self, child: NodeId) -> Optional[RangeEntry]:
        return self._children.get(child)

    @property
    def child_ids(self) -> List[NodeId]:
        return sorted(self._children)

    @property
    def num_entries(self) -> int:
        """Total tuples stored: own entry (if any) plus one per child."""
        return (1 if self.own_entry is not None else 0) + len(self._children)

    def entries(self) -> Iterator[Tuple[Optional[NodeId], RangeEntry]]:
        """Iterate ``(child_id_or_None_for_own, entry)`` pairs."""
        if self.own_entry is not None:
            yield None, self.own_entry
        for child in sorted(self._children):
            yield child, self._children[child]

    # -- aggregation and the update trigger (Fig. 2 / Fig. 3) ------------------------------

    @property
    def is_empty(self) -> bool:
        """True when the table holds no entries at all.

        An empty table means the sensor type no longer exists anywhere in
        this node's subtree; the node should withdraw the type from its
        parent (a *removal* update) and may drop the table.
        """
        return self.own_entry is None and not self._children

    def aggregate(self) -> Optional[Tuple[float, float]]:
        """``(min(TH_min), max(TH_max))`` over all entries, or ``None`` if empty.

        The value is cached between mutations: the experiment hot loop calls
        this once per (node, sensor type, epoch) while readings only rarely
        move an entry, so most calls are a dirty-flag check.
        """
        if not self._aggregate_dirty:
            return self._aggregate_cache
        own = self.own_entry
        if own is None and not self._children:
            result = None
        else:
            if own is not None:
                lo = own.min_threshold
                hi = own.max_threshold
                for entry in self._children.values():
                    if entry.min_threshold < lo:
                        lo = entry.min_threshold
                    if entry.max_threshold > hi:
                        hi = entry.max_threshold
            else:
                entries = iter(self._children.values())
                first = next(entries)
                lo = first.min_threshold
                hi = first.max_threshold
                for entry in entries:
                    if entry.min_threshold < lo:
                        lo = entry.min_threshold
                    if entry.max_threshold > hi:
                        hi = entry.max_threshold
            result = (lo, hi)
        self._aggregate_cache = result
        self._aggregate_dirty = False
        return result

    def pending_update(self, delta: float) -> Optional[Tuple[float, float]]:
        """Aggregate to advertise if an Update Message is currently warranted.

        Implements Fig. 3's trigger: an update is due when no aggregate has
        ever been transmitted, or when the current aggregate's minimum or
        maximum differs from the previously transmitted one by more than δ.
        Returns the aggregate to transmit, or ``None`` if no update is due.

        A "no update due" outcome is memoised against the table's mutation
        counter and the δ it was evaluated for: the trigger runs every epoch
        but the table mutates only when a reading escapes its range, so most
        evaluations short-circuit here.
        """
        if delta < 0:
            raise ValueError("delta must be non-negative")
        memo = self._no_update_memo
        if memo is not None and memo[0] == self._version and memo[1] == delta:
            return None
        current = self.aggregate()
        if current is None:
            return None
        last = self.last_transmitted
        if last is None:
            return current
        if abs(current[0] - last[0]) > delta or abs(current[1] - last[1]) > delta:
            return current
        self._no_update_memo = (self._version, delta)
        return None

    def mark_transmitted(self, aggregate: Tuple[float, float]) -> None:
        """Record that ``aggregate`` has been sent upstream."""
        self.last_transmitted = (float(aggregate[0]), float(aggregate[1]))
        self._version += 1
        if self.observer is not None:
            self.observer()

    def _touch(self) -> None:
        """Invalidate derived caches after an entry mutation."""
        self._aggregate_dirty = True
        self._version += 1
        if self.observer is not None:
            self.observer()

    def routing_entry_for(self, child: NodeId) -> Optional[RangeEntry]:
        """Entry used to decide whether to forward a query to ``child``."""
        return self._children.get(child)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RangeTable(node={self.owner}, type={self.sensor_type!r}, "
            f"own={self.own_entry}, children={len(self._children)})"
        )


class RangeTableSet:
    """All Range Tables of one node (one per sensor type, Fig. 4)."""

    def __init__(self, owner: NodeId):
        self.owner = owner
        self._tables: Dict[str, RangeTable] = {}
        #: Bumped whenever a table is created or dropped, so protocol layers
        #: can cache table references and detect staleness with one compare.
        self.version = 0

    def table(self, sensor_type: str, create: bool = False) -> Optional[RangeTable]:
        """Table for ``sensor_type``; optionally create it if missing."""
        tbl = self._tables.get(sensor_type)
        if tbl is None and create:
            tbl = self._tables[sensor_type] = RangeTable(self.owner, sensor_type)
            self.version += 1
        return tbl

    def __contains__(self, sensor_type: str) -> bool:
        return sensor_type in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    @property
    def sensor_types(self) -> List[str]:
        """Sorted sensor types for which a table exists."""
        return sorted(self._tables)

    def tables(self) -> Iterator[RangeTable]:
        for stype in sorted(self._tables):
            yield self._tables[stype]

    def drop(self, sensor_type: str) -> bool:
        """Remove a table entirely (its sensor type left the subtree)."""
        dropped = self._tables.pop(sensor_type, None) is not None
        if dropped:
            self.version += 1
        return dropped

    def remove_child_everywhere(self, child: NodeId) -> List[str]:
        """Drop ``child``'s entries from every table.

        Returns the sensor types whose tables changed -- the caller must
        re-evaluate the update trigger for each of them (paper §4.2: the
        removal of a neighbour may change the advertised ranges, and any
        change must be propagated up the tree).
        """
        changed: List[str] = []
        for stype, table in self._tables.items():
            if table.remove_child(child):
                changed.append(stype)
        return sorted(changed)

    def total_entries(self) -> int:
        """Total number of stored tuples across all tables (memory footprint)."""
        return sum(t.num_entries for t in self._tables.values())
