"""Flooding baseline (paper §5.1).

The comparison point for every reproduced figure: when a query is injected,
the root broadcasts it and *every* node rebroadcasts it exactly once,
regardless of how many neighbours it has -- "even if a node does not have
any other neighbor apart from the node it has received a message from, it
still carries out a broadcast operation".  With unit costs this yields
``C_F = N + 2 x links`` per query (eq. 3), which the simulation reproduces
exactly (verified by tests).

Flooding needs no routing state, no updates, and no estimates; its only
traffic kind is :data:`~repro.core.messages.FLOOD_KIND`.
"""

from __future__ import annotations

from typing import Optional, Set

from ..mac.lmac import LMACProtocol
from ..network.addresses import NodeId
from ..network.node import SensorNode
from ..simulation.engine import Simulator
from .messages import FLOOD_KIND, RangeQuery
from .protocol import DisseminationProtocol


class FloodingNode(DisseminationProtocol):
    """Flooding participant: rebroadcast every new query exactly once."""

    def __init__(
        self,
        sim: Simulator,
        node: SensorNode,
        mac: LMACProtocol,
        audit=None,
        payload_bytes: int = 24,
    ):
        super().__init__(sim, node, mac, audit)
        self.payload_bytes = payload_bytes
        self.queries_received = 0
        self.queries_rebroadcast = 0
        self.current_epoch = 0
        self._seen: Set[int] = set()

    def on_epoch(self, epoch: int) -> None:
        """Flooding keeps no per-epoch state; only the epoch counter advances."""
        self.current_epoch = epoch

    def on_payload(self, sender: NodeId, payload) -> None:
        if not isinstance(payload, RangeQuery):
            return
        self.queries_received += 1
        if payload.query_id in self._seen:
            # Duplicate receptions are still received (and already paid for
            # by the channel) but are not rebroadcast again.
            return
        self._seen.add(payload.query_id)
        self.record_query_receipt(payload.query_id)
        self._evaluate_source(payload)
        self.mac.broadcast(payload, FLOOD_KIND, self.payload_bytes)
        self.queries_rebroadcast += 1

    def _evaluate_source(self, query: RangeQuery) -> None:
        """Source check against the node's *current* reading.

        Flooding reaches every node, so unlike DirQ the check uses the live
        sensor value rather than stored range state.
        """
        if not self.node.has_sensor(query.sensor_type):
            return
        value = self.node.sample(query.sensor_type, self.current_epoch)
        if query.matches(value):
            self.record_source_claim(query.query_id)


class FloodingRoot(FloodingNode):
    """Flooding sink: injects queries by broadcasting them."""

    def __init__(
        self,
        sim: Simulator,
        node: SensorNode,
        mac: LMACProtocol,
        audit=None,
        payload_bytes: int = 24,
    ):
        if not node.is_root:
            raise ValueError("FloodingRoot must run on the node marked is_root=True")
        super().__init__(sim, node, mac, audit, payload_bytes)
        self.queries_injected = 0
        self._next_query_id = 0

    def next_query_id(self) -> int:
        qid = self._next_query_id
        self._next_query_id += 1
        return qid

    def inject_query(self, query: RangeQuery) -> None:
        """Inject a query: the root broadcasts it and marks it as seen."""
        if not self.alive:
            raise RuntimeError("cannot inject a query at a dead root")
        self.queries_injected += 1
        self._seen.add(query.query_id)
        self._evaluate_source(query)
        self.mac.broadcast(query, FLOOD_KIND, self.payload_bytes)
        self.queries_rebroadcast += 1
