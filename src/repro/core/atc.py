"""Adaptive Threshold Control (ATC) -- paper §6.

The paper defers the full ATC specification to its companion report [13],
which is not publicly available, but it pins down the mechanism's contract:

* the threshold δ is chosen **per node, autonomously, from locally available
  information** (§1, §7);
* the inputs are the **number of queries expected over the next hour**
  (the root's EHr broadcast) and the **local rate of variation of the
  measured parameter** (§4, §6);
* the objective is to keep the total cost of DirQ at roughly **45–55 % of
  the cost of flooding** (§6, Fig. 6), without letting accuracy degrade
  appreciably (§7.2 reports ≈3.6 % average overshoot).

This module implements a controller with exactly that contract (the
substitution is documented in DESIGN.md):

1. **Root side** (:class:`RootBudgetPlanner`).  Each hour the root predicts
   the query load ``EHr``, computes the network-wide update budget that
   would make DirQ's total cost equal ``target_ratio`` x the flooding cost
   of that load (using eq. 3's flooding cost and the measured average
   dissemination cost per query), and divides it evenly among the alive
   nodes.  The per-node budget travels in the
   :class:`~repro.core.messages.EstimateMessage`.

2. **Node side** (:class:`AdaptiveThresholdController`).  Each node seeds δ
   from its locally observed signal variability (so fast-changing sensors
   start with wide thresholds) and thereafter adjusts it multiplicatively at
   the end of every window: if it sent more updates than its pro-rated
   budget it widens δ, if it sent fewer it narrows δ, with a dead band so a
   node already on budget leaves δ alone.  All quantities involved -- its own
   update count, its own reading history, and the budget received from the
   root -- are local, preserving the paper's autonomy requirement.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from .config import DirQConfig


@dataclasses.dataclass
class BudgetPlan:
    """Result of the root's hourly budget computation."""

    hour_index: int
    expected_queries: float
    flooding_cost_per_query: float
    query_cost_per_query: float
    network_update_budget: float
    node_update_budget: float
    network_size: int


class RootBudgetPlanner:
    """Computes the network-wide and per-node update budgets at the root.

    Parameters
    ----------
    config:
        Protocol configuration (target cost ratio, hour length).
    cost_per_update:
        Cost units consumed by one update message (1 tx + 1 rx = 2 under the
        paper's unit model).
    """

    def __init__(self, config: DirQConfig, cost_per_update: float = 2.0):
        self.config = config
        self.cost_per_update = float(cost_per_update)
        #: Smoothed per-query dissemination cost observed so far.
        self._avg_query_cost: Optional[float] = None
        self._smoothing = 0.3

    def observe_query_cost(self, cost: float) -> None:
        """Feed back the measured dissemination cost of a completed query."""
        if cost < 0:
            raise ValueError("query cost must be non-negative")
        if self._avg_query_cost is None:
            self._avg_query_cost = float(cost)
        else:
            self._avg_query_cost = (
                (1 - self._smoothing) * self._avg_query_cost + self._smoothing * cost
            )

    @property
    def average_query_cost(self) -> Optional[float]:
        return self._avg_query_cost

    def plan(
        self,
        hour_index: int,
        expected_queries: float,
        flooding_cost_per_query: float,
        network_size: int,
    ) -> BudgetPlan:
        """Compute the update budget for the coming hour.

        The budget solves ``expected_queries * (C_QD + U * cost_per_update /
        expected_queries) = target_ratio * expected_queries * C_F`` for the
        network-wide update count ``U``; i.e. updates absorb whatever cost
        headroom remains between the dissemination cost and the target
        fraction of flooding.
        """
        if network_size < 1:
            raise ValueError("network_size must be >= 1")
        if expected_queries < 0:
            raise ValueError("expected_queries must be non-negative")
        if flooding_cost_per_query <= 0:
            raise ValueError("flooding_cost_per_query must be positive")
        query_cost = (
            self._avg_query_cost
            if self._avg_query_cost is not None
            # Before any query has been observed, assume dissemination costs
            # a modest fraction of flooding (it is refined within one hour).
            else 0.15 * flooding_cost_per_query
        )
        headroom_per_query = (
            self.config.atc_target_cost_ratio * flooding_cost_per_query - query_cost
        )
        network_budget = max(
            0.0, expected_queries * headroom_per_query / self.cost_per_update
        )
        node_budget = network_budget / max(1, network_size - 1)
        return BudgetPlan(
            hour_index=hour_index,
            expected_queries=float(expected_queries),
            flooding_cost_per_query=float(flooding_cost_per_query),
            query_cost_per_query=float(query_cost),
            network_update_budget=network_budget,
            node_update_budget=node_budget,
            network_size=int(network_size),
        )


class AdaptiveThresholdController:
    """Per-node δ controller (the node-autonomous half of ATC).

    Parameters
    ----------
    config:
        Protocol configuration (clamps, adjustment gain, window length).
    sensor_types:
        Sensor types present on this node at start-up (types learned later
        are added lazily with the current default δ).
    """

    def __init__(self, config: DirQConfig, sensor_types: Optional[list[str]] = None):
        self.config = config
        self._delta_percent: Dict[str, float] = {}
        for stype in sensor_types or []:
            self._delta_percent[stype] = config.atc_initial_delta_percent
        #: Per-node update budget for one hour, from the latest estimate.
        self._hour_budget: Optional[float] = None
        #: Updates sent in the current adaptation window (all types).
        self._updates_this_window = 0
        #: Exponential estimate of the local per-epoch rate of change, per type.
        self._rate_of_change: Dict[str, float] = {}
        self._last_reading: Dict[str, float] = {}
        self._roc_smoothing = 0.05
        self._seeded: Dict[str, bool] = {}

    # -- inputs ------------------------------------------------------------------------

    def delta_percent(self, sensor_type: str) -> float:
        """Current threshold for ``sensor_type`` in percent of full scale."""
        if sensor_type not in self._delta_percent:
            self._delta_percent[sensor_type] = self.config.atc_initial_delta_percent
        return self._delta_percent[sensor_type]

    def delta_absolute(self, sensor_type: str) -> float:
        """Current threshold converted to an absolute reading delta."""
        return self.config.absolute_delta(sensor_type, self.delta_percent(sensor_type))

    def on_estimate(self, node_update_budget: Optional[float]) -> None:
        """Process the hourly EHr broadcast (new per-node budget)."""
        if node_update_budget is not None:
            self._hour_budget = max(0.0, float(node_update_budget))

    def on_reading(self, sensor_type: str, reading: float) -> None:
        """Track the local rate of change of the measured parameter.

        The smoothed mean absolute per-epoch change seeds the initial δ for
        the sensor type: a parameter changing by ``r`` per epoch and a
        per-hour budget of ``b`` updates allows roughly ``epochs_per_hour/b``
        epochs between updates, i.e. a threshold of about
        ``r * epochs_per_hour / b``.
        """
        prev = self._last_reading.get(sensor_type)
        self._last_reading[sensor_type] = float(reading)
        if prev is None:
            return
        change = abs(reading - prev)
        roc = self._rate_of_change.get(sensor_type)
        if roc is None:
            self._rate_of_change[sensor_type] = change
        else:
            self._rate_of_change[sensor_type] = (
                (1 - self._roc_smoothing) * roc + self._roc_smoothing * change
            )
        if not self._seeded.get(sensor_type) and self._hour_budget:
            self._seed_delta(sensor_type)

    def _seed_delta(self, sensor_type: str) -> None:
        roc = self._rate_of_change.get(sensor_type, 0.0)
        if roc <= 0 or not self._hour_budget:
            return
        epochs_between_updates = self.config.epochs_per_hour / max(
            self._hour_budget, 1e-9
        )
        target_abs = roc * epochs_between_updates
        full_scale = self.config.full_scale_of(sensor_type)
        target_pct = 100.0 * target_abs / full_scale
        self._delta_percent[sensor_type] = self._clamp(target_pct)
        self._seeded[sensor_type] = True

    def on_update_sent(self) -> None:
        """Count one transmitted Update Message (any sensor type)."""
        self._updates_this_window += 1

    # -- adaptation ---------------------------------------------------------------------

    def window_budget(self) -> Optional[float]:
        """Pro-rated update budget for one adaptation window."""
        if self._hour_budget is None:
            return None
        windows_per_hour = max(
            1.0, self.config.epochs_per_hour / self.config.atc_window_epochs
        )
        return self._hour_budget / windows_per_hour

    def end_window(self) -> Dict[str, float]:
        """Close the current adaptation window and adjust δ.

        Returns the new per-type thresholds (percent of full scale).  With no
        budget yet received the thresholds are left untouched.
        """
        budget = self.window_budget()
        sent = self._updates_this_window
        self._updates_this_window = 0
        if budget is None:
            return dict(self._delta_percent)

        tolerance = self.config.atc_tolerance
        gain = self.config.atc_adjust_factor
        if sent > budget * (1.0 + tolerance):
            # Spending too fast: widen the thresholds to suppress updates.
            # The step grows with the overload (capped) so a badly
            # mis-calibrated start converges within a few windows.
            overload = (sent - budget) / max(budget, 1e-9)
            factor = 1.0 + gain * min(overload, 4.0)
        elif sent < budget * (1.0 - tolerance):
            # Under budget: tighten the thresholds to regain accuracy.
            factor = 1.0 - gain * 0.5
        else:
            factor = 1.0

        if factor != 1.0:
            for stype in list(self._delta_percent):
                self._delta_percent[stype] = self._clamp(
                    self._delta_percent[stype] * factor
                )
        return dict(self._delta_percent)

    def _clamp(self, pct: float) -> float:
        return min(
            self.config.atc_delta_max_percent,
            max(self.config.atc_delta_min_percent, pct),
        )

    # -- introspection -------------------------------------------------------------------

    def rate_of_change(self, sensor_type: str) -> float:
        """Smoothed local per-epoch rate of change for ``sensor_type``."""
        return self._rate_of_change.get(sensor_type, 0.0)

    def snapshot(self) -> Dict[str, float]:
        """Current thresholds (percent) for every known sensor type."""
        return dict(self._delta_percent)
