"""DirQ protocol configuration.

All tunables of the dissemination scheme live here so that experiments,
examples, and tests construct protocol stacks from a single declarative
object.  Defaults correspond to the paper's simulation setup (§7).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional


class ThresholdMode:
    """How the threshold δ is chosen (paper §6, §7.1 vs §7.2)."""

    FIXED = "fixed"
    ADAPTIVE = "atc"

    ALL = (FIXED, ADAPTIVE)


@dataclasses.dataclass
class DirQConfig:
    """Configuration of the DirQ protocol stack.

    Attributes
    ----------
    threshold_mode:
        ``"fixed"`` reproduces §7.1 (a constant δ for the whole run);
        ``"atc"`` enables the Adaptive Threshold Control of §6/§7.2.
    delta_percent:
        The fixed threshold δ, expressed -- as in the paper's figures -- as a
        percentage of the sensor type's full-scale range.
    full_scale:
        Mapping sensor type -> full-scale range (max - min) used to convert
        percentage thresholds into absolute values.  The experiment runner
        fills this in from the generated dataset; a missing entry falls back
        to ``default_full_scale``.
    default_full_scale:
        Fallback full-scale range for sensor types without an explicit entry.
    epochs_per_hour:
        Number of epochs in one "hour" -- the period of the root's EHr
        estimate broadcast (§4).
    atc_target_cost_ratio:
        Total-cost target of the ATC mechanism as a fraction of the flooding
        cost; the paper reports DirQ settling at 45–55 % of flooding, so the
        default targets the middle of that band.
    atc_window_epochs:
        How often (in epochs) each node re-evaluates its threshold against
        its local update budget.
    atc_adjust_factor:
        Multiplicative step used when a node's observed update rate is
        outside the tolerance band around its budget.
    atc_tolerance:
        Relative dead-band around the per-node budget within which δ is left
        unchanged.
    atc_delta_min_percent / atc_delta_max_percent:
        Clamp on the adaptive threshold, in percent of full scale.
    query_payload_bytes / update_payload_bytes / estimate_payload_bytes:
        Approximate message sizes used by byte-proportional energy models
        (irrelevant to the unit-cost model used for the paper's figures).
    """

    threshold_mode: str = ThresholdMode.FIXED
    delta_percent: float = 5.0
    full_scale: Dict[str, float] = dataclasses.field(default_factory=dict)
    default_full_scale: float = 100.0

    epochs_per_hour: int = 500

    atc_target_cost_ratio: float = 0.50
    atc_window_epochs: int = 100
    atc_adjust_factor: float = 0.25
    atc_tolerance: float = 0.10
    atc_delta_min_percent: float = 0.5
    atc_delta_max_percent: float = 25.0
    atc_initial_delta_percent: float = 3.0

    query_payload_bytes: int = 24
    update_payload_bytes: int = 20
    estimate_payload_bytes: int = 16

    def __post_init__(self) -> None:
        if self.threshold_mode not in ThresholdMode.ALL:
            raise ValueError(
                f"threshold_mode must be one of {ThresholdMode.ALL}, "
                f"got {self.threshold_mode!r}"
            )
        if self.delta_percent <= 0:
            raise ValueError("delta_percent must be positive")
        if self.default_full_scale <= 0:
            raise ValueError("default_full_scale must be positive")
        if self.epochs_per_hour < 1:
            raise ValueError("epochs_per_hour must be >= 1")
        if not (0.0 < self.atc_target_cost_ratio < 1.0):
            raise ValueError("atc_target_cost_ratio must be in (0, 1)")
        if self.atc_window_epochs < 1:
            raise ValueError("atc_window_epochs must be >= 1")
        if not (0.0 < self.atc_adjust_factor < 1.0):
            raise ValueError("atc_adjust_factor must be in (0, 1)")
        if self.atc_tolerance < 0:
            raise ValueError("atc_tolerance must be non-negative")
        if not (0 < self.atc_delta_min_percent <= self.atc_delta_max_percent):
            raise ValueError("invalid adaptive delta clamp range")

    # -- helpers ----------------------------------------------------------------

    def full_scale_of(self, sensor_type: str) -> float:
        """Full-scale range used for percentage→absolute threshold conversion."""
        return float(self.full_scale.get(sensor_type, self.default_full_scale))

    def absolute_delta(self, sensor_type: str, delta_percent: Optional[float] = None) -> float:
        """Convert a percentage threshold into an absolute reading delta."""
        pct = self.delta_percent if delta_percent is None else delta_percent
        return pct / 100.0 * self.full_scale_of(sensor_type)

    @property
    def adaptive(self) -> bool:
        return self.threshold_mode == ThresholdMode.ADAPTIVE

    def replace(self, **changes) -> "DirQConfig":
        """Return a copy of this configuration with the given fields replaced."""
        return dataclasses.replace(self, **changes)
