"""Analytical cost model for flooding vs directed dissemination (paper §5).

The paper analyses both schemes on a complete k-nary tree of depth ``d``
(root at depth 0), with unit transmission and reception costs:

* **Flooding** (§5.1): every node broadcasts the query exactly once, and
  every node receives it once from each of its neighbours, so

  .. math:: C_F = N + 2 L = \\frac{3k^{d+1} - 2k - 1}{k - 1}

  where ``N`` is the number of nodes and ``L = N - 1`` the number of links.

* **Directed dissemination, worst case** (§5.2): every leaf is relevant, so
  the query travels down every edge.  Each non-leaf node transmits the query
  once in its (TDMA) slot and every non-root node receives it once:

  .. math:: C_{QD}^{max} = \\frac{k^{d+1} + k^d - k - 1}{k - 1}

* **Update mechanism, worst case** (§5.2): every node sends one update
  message to its parent (one unicast transmission + one reception per
  non-root node):

  .. math:: C_{UD}^{max} = \\frac{2 (k^{d+1} - k)}{k - 1}

* **Total DirQ cost** (§5.2, eq. 7) with ``f`` update rounds per query:

  .. math:: C_{TD}^{max} = C_{QD}^{max} + f \\cdot C_{UD}^{max}

* **Update budget** (§5.3, eq. 9): the largest ``f`` for which DirQ's worst
  case stays below flooding:

  .. math:: f_{max} = \\frac{C_F - C_{QD}^{max}}{C_{UD}^{max}}
            = \\frac{2k^{d+1} - k^d - k}{2 (k^{d+1} - k)}

  For the paper's example k = 2, d = 4 this gives f_max ≈ 0.767 (the paper
  rounds to "< 0.76"), i.e. roughly one full-network update round per query.

Every closed form has a brute-force counterpart computed by explicit tree
enumeration (the ``*_by_enumeration`` functions); the property-based tests
verify that the two always agree, which validates the derivations above
against the paper's cost-accounting rules rather than just restating them.

The closed forms assume ``k >= 2``; ``k == 1`` (a path) is handled by the
enumeration functions and by explicit special cases.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..network.spanning_tree import SpanningTree
from ..network.topology import Topology, kary_tree_topology


# ---------------------------------------------------------------------------
# Tree size helpers
# ---------------------------------------------------------------------------


def _validate(k: int, d: int) -> None:
    if k < 1:
        raise ValueError("branching factor k must be >= 1")
    if d < 0:
        raise ValueError("depth d must be >= 0")


def tree_num_nodes(k: int, d: int) -> int:
    """Number of nodes in a complete k-ary tree of depth ``d``."""
    _validate(k, d)
    if k == 1:
        return d + 1
    return (k ** (d + 1) - 1) // (k - 1)


def tree_num_links(k: int, d: int) -> int:
    """Number of edges (= nodes - 1)."""
    return tree_num_nodes(k, d) - 1


def tree_num_leaves(k: int, d: int) -> int:
    """Number of leaf nodes (``k^d``; 1 for a path)."""
    _validate(k, d)
    return k**d if k > 1 else 1


def tree_num_internal(k: int, d: int) -> int:
    """Number of non-leaf nodes (nodes at depths 0..d-1)."""
    return tree_num_nodes(k, d) - tree_num_leaves(k, d)


# ---------------------------------------------------------------------------
# Closed-form costs (equations 3-9)
# ---------------------------------------------------------------------------


def flooding_cost(k: int, d: int) -> float:
    """Total cost of flooding one query, eq. (3)/(4): ``N + 2 L``."""
    n = tree_num_nodes(k, d)
    return float(n + 2 * tree_num_links(k, d))


def flooding_cost_general(num_nodes: int, num_links: int) -> float:
    """Eq. (3) for an arbitrary topology: ``N + 2 x links``."""
    if num_nodes < 0 or num_links < 0:
        raise ValueError("num_nodes and num_links must be non-negative")
    return float(num_nodes + 2 * num_links)


def max_query_dissemination_cost(k: int, d: int) -> float:
    """Worst-case directed dissemination cost, eq. (5).

    Every leaf is relevant; each non-leaf node transmits once, each non-root
    node receives once.
    """
    transmissions = tree_num_internal(k, d)
    receptions = tree_num_nodes(k, d) - 1
    return float(transmissions + receptions)


def max_update_cost(k: int, d: int) -> float:
    """Worst-case update cost, eq. (6): every non-root node unicasts one update."""
    non_root = tree_num_nodes(k, d) - 1
    return float(2 * non_root)


def dirq_total_cost(k: int, d: int, f: float) -> float:
    """Worst-case DirQ cost per query with ``f`` update rounds per query, eq. (7)."""
    if f < 0:
        raise ValueError("f must be non-negative")
    return max_query_dissemination_cost(k, d) + f * max_update_cost(k, d)


def f_max(k: int, d: int) -> float:
    """Largest update frequency keeping DirQ below flooding, eq. (9)."""
    cud = max_update_cost(k, d)
    if cud == 0:
        raise ValueError("tree has no non-root nodes; f_max is undefined")
    return (flooding_cost(k, d) - max_query_dissemination_cost(k, d)) / cud


def update_budget_per_hour(
    expected_queries_per_hour: float,
    flooding_cost_per_query: float,
    query_cost_per_query: float,
    cost_per_update: float = 2.0,
) -> float:
    """Maximum update *messages* per hour keeping DirQ at or below flooding.

    This generalises §5.3 from the worst-case k-ary tree to measured values:
    with ``Q`` queries expected in the next hour, flooding would spend
    ``Q * C_F``; DirQ spends ``Q * C_QD`` on dissemination, leaving
    ``Q * (C_F - C_QD)`` cost units for updates, i.e.
    ``U_max = Q * (C_F - C_QD) / cost_per_update`` update messages (each
    update is one unicast: one transmission + one reception = 2 units).

    This is the ``U_max/Hr`` reference line of Fig. 6.
    """
    if expected_queries_per_hour < 0:
        raise ValueError("expected_queries_per_hour must be non-negative")
    if cost_per_update <= 0:
        raise ValueError("cost_per_update must be positive")
    headroom = max(0.0, flooding_cost_per_query - query_cost_per_query)
    return expected_queries_per_hour * headroom / cost_per_update


# ---------------------------------------------------------------------------
# Brute-force validation by explicit tree enumeration
# ---------------------------------------------------------------------------


def build_kary_tree(k: int, d: int) -> SpanningTree:
    """Explicit :class:`SpanningTree` for a complete k-ary tree of depth ``d``."""
    from ..network.spanning_tree import build_bfs_tree

    topo = kary_tree_topology(k, d)
    return build_bfs_tree(topo, root=0)


def flooding_cost_by_enumeration(tree: SpanningTree) -> float:
    """Flooding cost on the tree topology: every node broadcasts once.

    On a tree (no shortcut links), each node receives the query once from
    every tree neighbour, so the reception count is ``2 * (N - 1)``.
    """
    n = tree.num_nodes
    return float(n + 2 * (n - 1))


def max_query_cost_by_enumeration(tree: SpanningTree) -> float:
    """Worst-case dissemination cost: every leaf relevant.

    Transmissions: one per non-leaf node (the query is sent once in the
    node's TDMA slot and heard by all its children).  Receptions: one per
    non-root node.
    """
    transmissions = sum(1 for n in tree.node_ids if not tree.is_leaf(n))
    receptions = tree.num_nodes - 1
    return float(transmissions + receptions)


def max_update_cost_by_enumeration(tree: SpanningTree) -> float:
    """Worst-case update cost: every non-root node sends one unicast update."""
    return float(2 * (tree.num_nodes - 1))


# ---------------------------------------------------------------------------
# Report helper (the §5.3 worked example as a table)
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class AnalyticalRow:
    """One row of the analytical comparison table."""

    k: int
    d: int
    num_nodes: int
    flooding: float
    query_max: float
    update_max: float
    f_max: float


def analytical_table(cases: list[tuple[int, int]]) -> list[AnalyticalRow]:
    """Evaluate the closed-form model for a list of ``(k, d)`` cases."""
    rows = []
    for k, d in cases:
        rows.append(
            AnalyticalRow(
                k=k,
                d=d,
                num_nodes=tree_num_nodes(k, d),
                flooding=flooding_cost(k, d),
                query_max=max_query_dissemination_cost(k, d),
                update_max=max_update_cost(k, d),
                f_max=f_max(k, d),
            )
        )
    return rows


def paper_example() -> Dict[str, float]:
    """The §5.3 worked example: k = 2, d = 4."""
    k, d = 2, 4
    return {
        "k": k,
        "d": d,
        "num_nodes": tree_num_nodes(k, d),
        "flooding_cost": flooding_cost(k, d),
        "max_query_cost": max_query_dissemination_cost(k, d),
        "max_update_cost": max_update_cost(k, d),
        "f_max": f_max(k, d),
    }
