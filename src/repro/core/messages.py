"""DirQ protocol messages.

The paper's protocol exchanges four kinds of application-layer messages:

* **Range queries** (:class:`RangeQuery`) -- one-shot queries such as
  *"acquire all temperature readings currently between 22 °C and 25 °C"*,
  injected at the root and directed down the tree (§3, §4).
* **Update messages** (:class:`UpdateMessage`) -- the ``(min(TH_min),
  max(TH_max))`` tuples a node sends to its parent when its Range Table's
  aggregate changes by more than the threshold δ (§4.1, Fig. 3).
* **Estimate messages** (:class:`EstimateMessage`, "EHr") -- the root's
  hourly broadcast of the number of queries expected over the next hour,
  which the Adaptive Threshold Control mechanism conditions on (§4, §6).
* **Query responses** (:class:`QueryResponse`) -- acknowledgements from
  source nodes.  The paper explicitly excludes data extraction from its
  scope; responses exist here so examples can demonstrate end-to-end
  operation, but they are not counted in any reproduced cost figure.

The module also defines the ledger *kind* strings used to attribute channel
costs to traffic classes (§5's cost breakdown).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from ..network.addresses import NodeId

# Ledger kinds (see repro.energy.ledger / repro.metrics.cost).
QUERY_KIND = "query"
UPDATE_KIND = "update"
ESTIMATE_KIND = "estimate"
RESPONSE_KIND = "response"
FLOOD_KIND = "flood"

#: Kinds that make up the paper's DirQ cost function C_TD = C_QD + C_UD
#: (§5.2).  Estimate traffic is included as part of the update mechanism's
#: overhead; response traffic is excluded (out of the paper's scope).
DIRQ_COST_KINDS = (QUERY_KIND, UPDATE_KIND, ESTIMATE_KIND)

#: Kinds that make up the flooding baseline's cost C_F (§5.1).
FLOODING_COST_KINDS = (FLOOD_KIND,)


@dataclasses.dataclass(frozen=True)
class RangeQuery:
    """A one-shot range query over a single sensor type.

    Attributes
    ----------
    query_id:
        Unique identifier assigned by the root at injection time.
    sensor_type:
        The attribute being queried (e.g. ``"temperature"``).
    low, high:
        Inclusive value bounds; a node whose current reading lies within
        ``[low, high]`` is a *source node* for this query.
    epoch:
        Epoch at which the query was injected (used for ground-truth
        evaluation and for bookkeeping; not consulted for routing).
    """

    query_id: int
    sensor_type: str
    low: float
    high: float
    epoch: int = 0

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(
                f"query {self.query_id}: low ({self.low}) exceeds high ({self.high})"
            )
        if not self.sensor_type:
            raise ValueError("sensor_type must be non-empty")

    @property
    def bounds(self) -> Tuple[float, float]:
        return (self.low, self.high)

    def matches(self, value: float) -> bool:
        """Whether a reading satisfies the query."""
        return self.low <= value <= self.high

    def overlaps(self, min_value: float, max_value: float) -> bool:
        """Whether the query interval intersects ``[min_value, max_value]``.

        This is the routing predicate: a query is forwarded towards a
        subtree exactly when its interval overlaps the subtree's advertised
        ``[min(TH_min), max(TH_max)]`` range.
        """
        return self.low <= max_value and min_value <= self.high


@dataclasses.dataclass(frozen=True)
class UpdateMessage:
    """Range update sent from a node to its parent (§4.1, Fig. 3).

    Carries the sender's aggregated ``(min(TH_min), max(TH_max))`` for one
    sensor type.  ``removed`` marks the withdrawal of a sensor type (the
    sender's subtree no longer contains any sensor of this type), which the
    parent uses to delete the corresponding child entry.
    """

    sender: NodeId
    sensor_type: str
    min_threshold: float
    max_threshold: float
    epoch: int = 0
    removed: bool = False

    def __post_init__(self) -> None:
        if not self.removed and self.min_threshold > self.max_threshold:
            raise ValueError(
                f"update from {self.sender}: min_threshold exceeds max_threshold"
            )

    @property
    def range_tuple(self) -> Tuple[float, float]:
        return (self.min_threshold, self.max_threshold)


@dataclasses.dataclass(frozen=True)
class EstimateMessage:
    """The root's hourly EHr broadcast (§4, §6).

    Attributes
    ----------
    expected_queries:
        Number of queries the root's predictor expects over the next hour.
    hour_index:
        Sequence number of the hour the estimate covers.
    network_size:
        The root's current estimate of the number of alive nodes; used by
        each node to derive its share of the network-wide update budget.
    node_update_budget:
        Per-node update budget (messages per hour) derived by the root's
        Adaptive Threshold Control from ``expected_queries`` and the cost
        model; ``None`` when fixed thresholds are in use.
    epoch:
        Epoch at which the estimate was issued.
    """

    expected_queries: float
    hour_index: int
    network_size: int = 0
    node_update_budget: Optional[float] = None
    epoch: int = 0

    def __post_init__(self) -> None:
        if self.expected_queries < 0:
            raise ValueError("expected_queries must be non-negative")
        if self.node_update_budget is not None and self.node_update_budget < 0:
            raise ValueError("node_update_budget must be non-negative")


@dataclasses.dataclass(frozen=True)
class QueryResponse:
    """Acknowledgement from a source node (outside the paper's cost scope)."""

    query_id: int
    source: NodeId
    sensor_type: str
    value: float
    epoch: int = 0
