"""DirQ root (sink) behaviour.

The root is an ordinary DirQ node (it maintains Range Tables fed by its
children's Update Messages and may carry sensors of its own) with three
extra responsibilities taken from §3, §4 and §6 of the paper:

* **Query injection.**  The server attached to the root submits one-shot
  range queries; the root consults its Range Tables and forwards each query
  only to the children whose advertised ranges overlap the queried interval.
* **Hourly EHr estimates.**  Once per hour the root predicts the number of
  queries expected over the next hour (using the workload predictor, which
  mirrors the web-server access prediction techniques the paper cites) and
  disseminates an :class:`~repro.core.messages.EstimateMessage` down the
  tree.
* **Update budgeting (ATC, root half).**  In adaptive mode the root turns
  the predicted load into a per-node update budget via
  :class:`~repro.core.atc.RootBudgetPlanner` and piggybacks it on the
  estimate message, so each node can autonomously steer its threshold.
"""

from __future__ import annotations

from typing import List, Optional

from ..mac.lmac import LMACProtocol
from ..network.addresses import NodeId
from ..network.node import SensorNode
from ..simulation.engine import Simulator
from .atc import BudgetPlan, RootBudgetPlanner
from .config import DirQConfig
from .dirq_node import DirQNode
from .messages import (
    ESTIMATE_KIND,
    QUERY_KIND,
    EstimateMessage,
    QueryResponse,
    RangeQuery,
)


class DirQRoot(DirQNode):
    """DirQ instance on the root/sink node.

    Parameters
    ----------
    sim, node, mac, config, audit, send_responses:
        As for :class:`~repro.core.dirq_node.DirQNode`.
    predictor:
        Object with a ``predict()`` method returning the expected number of
        queries in the next hour and a ``record(count)`` method fed with the
        realised per-hour counts (see
        :class:`~repro.workload.predictor.QueryRatePredictor`).  Optional:
        without it the root assumes the most recent hour repeats.
    """

    def __init__(
        self,
        sim: Simulator,
        node: SensorNode,
        mac: LMACProtocol,
        config: DirQConfig,
        audit=None,
        predictor=None,
        send_responses: bool = False,
    ):
        if not node.is_root:
            raise ValueError("DirQRoot must run on the node marked is_root=True")
        super().__init__(sim, node, mac, config, audit, send_responses)
        self.predictor = predictor
        self.planner = RootBudgetPlanner(config)
        self.queries_injected = 0
        self.responses_received: List[QueryResponse] = []
        self.estimates_sent = 0
        self.hour_index = -1
        self.last_plan: Optional[BudgetPlan] = None
        self._queries_this_hour = 0
        self._network_size = 1
        self._flooding_cost_per_query: Optional[float] = None
        self._next_query_id = 0

    # ------------------------------------------------------------------
    # Deployment-time calibration hooks (set by the experiment runner)
    # ------------------------------------------------------------------

    def set_network_size(self, num_alive_nodes: int) -> None:
        """Tell the root how many nodes are currently alive.

        In a deployment this comes from the node registry the sink keeps
        anyway (every node registered at deployment time, minus death
        notifications propagated up the tree).
        """
        if num_alive_nodes < 1:
            raise ValueError("network must contain at least the root")
        self._network_size = int(num_alive_nodes)

    def set_flooding_cost(self, cost_per_query: float) -> None:
        """Install the flooding-cost reference C_F used by the budget planner.

        The experiment runner supplies the measured ``N + 2 x links`` value
        (eq. 3); a deployment would use the analytical estimate for its
        commissioning topology.
        """
        if cost_per_query <= 0:
            raise ValueError("flooding cost must be positive")
        self._flooding_cost_per_query = float(cost_per_query)

    def observe_query_cost(self, cost: float) -> None:
        """Feed the measured dissemination cost of a completed query to ATC."""
        self.planner.observe_query_cost(cost)

    @property
    def flooding_cost_per_query(self) -> Optional[float]:
        return self._flooding_cost_per_query

    # ------------------------------------------------------------------
    # Query injection
    # ------------------------------------------------------------------

    def next_query_id(self) -> int:
        """Allocate a fresh query identifier."""
        qid = self._next_query_id
        self._next_query_id += 1
        return qid

    def inject_query(self, query: RangeQuery) -> int:
        """Inject a one-shot range query at the root.

        Returns the number of children the query was forwarded to.  The root
        itself evaluates the query against its own sensors (it can be a
        source) but is not counted as "receiving" the query for accuracy
        purposes -- the injected query necessarily exists at the root.
        """
        if not self.alive:
            raise RuntimeError("cannot inject a query at a dead root")
        self.queries_injected += 1
        self._queries_this_hour += 1
        if self.predictor is not None and hasattr(self.predictor, "observe_query"):
            self.predictor.observe_query(query.epoch)
        table = self.tables.table(query.sensor_type)
        forwarded = 0
        if table is None:
            # No node in the network (as far as the root knows) carries this
            # sensor type; the query dies at the root.
            self.sim.tracer.record(
                self.now, "dirq.query_unroutable", self.node_id, query_id=query.query_id
            )
            return 0
        if table.own_entry is not None and query.overlaps(
            table.own_entry.min_threshold, table.own_entry.max_threshold
        ):
            self.record_source_claim(query.query_id)
        for child in self.children:
            entry = table.child_entry(child)
            if entry is None:
                continue
            if query.overlaps(entry.min_threshold, entry.max_threshold):
                self.mac.send(
                    child, query, QUERY_KIND, self.config.query_payload_bytes
                )
                self.queries_forwarded += 1
                forwarded += 1
        self.sim.tracer.record(
            self.now,
            "dirq.query_injected",
            self.node_id,
            query_id=query.query_id,
            forwarded=forwarded,
        )
        return forwarded

    # ------------------------------------------------------------------
    # Hourly estimate broadcast (EHr) and ATC budgeting
    # ------------------------------------------------------------------

    def start_new_hour(self, epoch: int) -> EstimateMessage:
        """Begin a new hour: predict the load and disseminate the estimate."""
        self.hour_index += 1
        if self.predictor is not None:
            if self.hour_index > 0:
                # The very first "hour" starts at epoch 0 before any query
                # has been injected; recording a zero there would poison the
                # forecast, so only completed hours feed the predictor.
                self.predictor.record(self._queries_this_hour)
            expected = float(self.predictor.predict())
        else:
            expected = float(self._queries_this_hour)
        self._queries_this_hour = 0

        node_budget: Optional[float] = None
        if self.config.adaptive and self._flooding_cost_per_query is not None:
            plan = self.planner.plan(
                hour_index=self.hour_index,
                expected_queries=expected,
                flooding_cost_per_query=self._flooding_cost_per_query,
                network_size=self._network_size,
            )
            self.last_plan = plan
            node_budget = plan.node_update_budget

        message = EstimateMessage(
            expected_queries=expected,
            hour_index=self.hour_index,
            network_size=self._network_size,
            node_update_budget=node_budget,
            epoch=epoch,
        )
        # The root participates in ATC like everyone else.
        if self.atc is not None:
            self.atc.on_estimate(node_budget)
        self._last_estimate_hour = self.hour_index
        for child in self.children:
            self.mac.send(
                child, message, ESTIMATE_KIND, self.config.estimate_payload_bytes
            )
            self.estimates_sent += 1
        self.sim.tracer.record(
            self.now,
            "dirq.estimate",
            self.node_id,
            hour=self.hour_index,
            expected_queries=expected,
            node_budget=node_budget,
        )
        return message

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------

    def _handle_response(self, sender: NodeId, response: QueryResponse) -> None:
        self.responses_received.append(response)
