"""Base class shared by the dissemination protocols (DirQ and flooding).

Both protocols sit on top of an LMAC instance on every node, receive
payloads through the MAC's upper-layer handler, and report query deliveries
to a :class:`~repro.metrics.audit.QueryAudit` so accuracy and overshoot can
be evaluated against ground truth.  The common wiring lives here.
"""

from __future__ import annotations

from typing import List, Optional

from ..mac.lmac import LMACProtocol
from ..network.addresses import NodeId
from ..network.node import SensorNode
from ..simulation.engine import Simulator
from ..simulation.process import SimProcess


class DisseminationProtocol(SimProcess):
    """Per-node application-layer protocol instance.

    Parameters
    ----------
    sim:
        Simulation engine.
    node:
        The sensor node this protocol instance runs on.
    mac:
        The node's LMAC instance (the protocol installs itself as the MAC's
        upper-layer handler).
    audit:
        Optional query audit used to evaluate accuracy; protocols must call
        :meth:`record_query_receipt` for every query they receive.
    """

    def __init__(
        self,
        sim: Simulator,
        node: SensorNode,
        mac: LMACProtocol,
        audit=None,
    ):
        super().__init__(sim, name=f"{type(self).__name__.lower()}[{node.node_id}]")
        self.node = node
        self.mac = mac
        self.audit = audit
        self.parent: Optional[NodeId] = None
        self.children: List[NodeId] = []
        mac.set_upper_handler(self._on_mac_payload)
        node.app = self

    # -- identity ------------------------------------------------------------

    @property
    def node_id(self) -> NodeId:
        return self.node.node_id

    @property
    def is_root(self) -> bool:
        return self.node.is_root

    @property
    def alive(self) -> bool:
        return self.node.alive

    # -- tree wiring -----------------------------------------------------------

    def set_tree_links(self, parent: Optional[NodeId], children: List[NodeId]) -> None:
        """Install (or refresh) this node's position in the spanning tree."""
        if parent is not None and parent == self.node_id:
            raise ValueError("a node cannot be its own parent")
        self.parent = parent
        self.children = sorted(children)

    # -- epoch hook ---------------------------------------------------------------

    def on_epoch(self, epoch: int) -> None:
        """Called once per epoch by the experiment runner.  Default: no-op."""

    # -- MAC interface ---------------------------------------------------------------

    def _on_mac_payload(self, sender: NodeId, payload) -> None:
        if not self.alive:
            return
        self.on_payload(sender, payload)

    def on_payload(self, sender: NodeId, payload) -> None:
        """Handle an upper-layer payload delivered by the MAC."""
        raise NotImplementedError

    # -- audit helpers -----------------------------------------------------------------

    def record_query_receipt(self, query_id: int) -> None:
        if self.audit is not None:
            self.audit.record_receipt(query_id, self.node_id)

    def record_source_claim(self, query_id: int) -> None:
        if self.audit is not None:
            self.audit.record_source_claim(query_id, self.node_id)
