"""DirQ protocol logic for a regular (non-root) node -- paper §4.

Each epoch a node samples every sensor it carries, maintains its Range
Tables (equations (1)–(2), Figs. 1–2), and transmits an Update Message to
its parent whenever the aggregated range moved by more than the threshold δ
(Fig. 3).  Queries arriving from the parent are evaluated against the local
Range Tables and forwarded only to the children whose advertised ranges
overlap the queried interval, which is what makes the dissemination
*directed* instead of a flood.

Topology dynamics (§4.2) are handled through the MAC layer's cross-layer
notifications: when LMAC reports that a child died, its entries are removed
from every Range Table and any resulting range change propagates up the
tree; when the tree is repaired around a dead parent, the experiment runner
re-installs the node's tree links and the node re-advertises its ranges to
its new parent.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..mac.crosslayer import CrossLayerEvent, NeighborFound, NeighborLost
from ..mac.lmac import LMACProtocol
from ..network.addresses import NodeId
from ..network.node import SensorNode
from ..simulation.engine import Simulator
from .atc import AdaptiveThresholdController
from .config import DirQConfig
from .messages import (
    ESTIMATE_KIND,
    QUERY_KIND,
    RESPONSE_KIND,
    UPDATE_KIND,
    EstimateMessage,
    QueryResponse,
    RangeQuery,
    UpdateMessage,
)
from .protocol import DisseminationProtocol
from .range_table import RangeTableSet


class DirQNode(DisseminationProtocol):
    """DirQ instance on one node.

    Parameters
    ----------
    sim, node, mac, audit:
        See :class:`~repro.core.protocol.DisseminationProtocol`.
    config:
        Protocol configuration (threshold mode, δ, hour length, ...).
    send_responses:
        When True, source nodes send a :class:`QueryResponse` back towards
        the root.  Disabled by default because data extraction is outside
        the paper's scope and its cost is not part of any reproduced figure.
    """

    def __init__(
        self,
        sim: Simulator,
        node: SensorNode,
        mac: LMACProtocol,
        config: DirQConfig,
        audit=None,
        send_responses: bool = False,
    ):
        super().__init__(sim, node, mac, audit)
        self.config = config
        self.tables = RangeTableSet(node.node_id)
        self.send_responses = send_responses
        self.atc: Optional[AdaptiveThresholdController] = (
            AdaptiveThresholdController(config, node.sensor_types)
            if config.adaptive
            else None
        )
        # Statistics the experiments read off each node.
        self.updates_sent = 0
        self.updates_suppressed = 0
        self.queries_received = 0
        self.queries_forwarded = 0
        self.estimates_relayed = 0
        self.responses_sent = 0
        self.current_epoch = 0
        self._last_estimate_hour = -1
        # Per-epoch iteration cache: (sensor_type, sensor, table, fixed δ)
        # tuples for every mounted sensor, rebuilt only when the sensor
        # suite, the table set, or the configured threshold changes (see
        # _refresh_epoch_entries).
        self._epoch_entries = None
        self._epoch_sensors_version = -1
        self._epoch_tables_version = -1
        self._epoch_delta_percent: Optional[float] = None
        mac.crosslayer.subscribe(self._on_crosslayer_event)

    # ------------------------------------------------------------------
    # Threshold handling
    # ------------------------------------------------------------------

    def current_delta(self, sensor_type: str) -> float:
        """Absolute threshold δ currently in force for ``sensor_type``."""
        if self.atc is not None:
            return self.atc.delta_absolute(sensor_type)
        return self.config.absolute_delta(sensor_type)

    def current_delta_percent(self, sensor_type: str) -> float:
        """Threshold in percent of full scale (for reporting)."""
        if self.atc is not None:
            return self.atc.delta_percent(sensor_type)
        return self.config.delta_percent

    # ------------------------------------------------------------------
    # Epoch processing (sampling + range maintenance)
    # ------------------------------------------------------------------

    def _refresh_epoch_entries(self) -> None:
        """(Re)build the per-epoch iteration cache.

        For fixed-threshold runs the absolute δ per sensor type is
        pre-resolved here; adaptive (ATC) runs re-derive it every epoch
        since the controller moves it between windows.
        """
        node = self.node
        tables = self.tables
        cfg = self.config
        fixed = self.atc is None
        entries = []
        for sensor_type, sensor in node.sensors_sorted():
            table = tables.table(sensor_type, create=True)
            delta = self.current_delta(sensor_type) if fixed else 0.0
            entries.append((sensor_type, sensor, table, delta))
        self._epoch_entries = entries
        self._epoch_sensors_version = node.sensors_version
        self._epoch_tables_version = tables.version
        self._epoch_delta_percent = cfg.delta_percent

    def on_epoch(self, epoch: int) -> None:
        """Sample all local sensors and run the update trigger (Fig. 1-3).

        This is the simulation's innermost loop (nodes x sensor types x
        epochs), so the Fig. 1 containment test and the Fig. 3 "no update
        due" memo are checked inline before falling back to the full
        :meth:`RangeTable.observe_reading` / :meth:`_maybe_send_update`
        machinery; the fast path is bit-identical to the slow one.
        """
        if not self.alive:
            return
        self.current_epoch = epoch
        atc = self.atc
        cfg = self.config
        entries = self._epoch_entries
        if (
            entries is None
            or self._epoch_sensors_version != self.node.sensors_version
            or self._epoch_tables_version != self.tables.version
            or (atc is None and self._epoch_delta_percent != cfg.delta_percent)
        ):
            self._refresh_epoch_entries()
            entries = self._epoch_entries
        for sensor_type, sensor, table, delta in entries:
            reading = sensor.sample(epoch)
            if type(reading) is not float:
                reading = float(reading)
            if atc is not None:
                atc.on_reading(sensor_type, reading)
                delta = atc.delta_absolute(sensor_type)
            own = table.own_entry
            if (
                own is not None
                and own.min_threshold <= reading <= own.max_threshold
            ):
                # Fig. 1: the reading is inside the own range -- no table
                # mutation.  If the trigger already evaluated to "no update"
                # for this table state and δ, nothing can have changed.
                memo = table._no_update_memo
                if (
                    memo is not None
                    and memo[0] == table._version
                    and memo[1] == delta
                ):
                    self.updates_suppressed += 1
                    continue
            else:
                table.observe_reading(reading, delta)
            self._maybe_send_update(sensor_type, epoch, table=table, delta=delta)
        if atc is not None and epoch > 0 and epoch % cfg.atc_window_epochs == 0:
            atc.end_window()

    # ------------------------------------------------------------------
    # Update mechanism (upward range propagation)
    # ------------------------------------------------------------------

    def _maybe_send_update(
        self,
        sensor_type: str,
        epoch: int,
        table=None,
        delta: Optional[float] = None,
    ) -> None:
        if table is None:
            table = self.tables.table(sensor_type)
            if table is None:
                return
        if delta is None:
            delta = self.current_delta(sensor_type)
        aggregate = table.pending_update(delta)
        if aggregate is None:
            self.updates_suppressed += 1
            return
        table.mark_transmitted(aggregate)
        if self.parent is None:
            # The root keeps its own aggregate current but has nobody to
            # report to.
            return
        message = UpdateMessage(
            sender=self.node_id,
            sensor_type=sensor_type,
            min_threshold=aggregate[0],
            max_threshold=aggregate[1],
            epoch=epoch,
        )
        self.mac.send(
            self.parent, message, UPDATE_KIND, self.config.update_payload_bytes
        )
        self.updates_sent += 1
        if self.atc is not None:
            self.atc.on_update_sent()
        self.sim.tracer.record(
            self.now,
            "dirq.update",
            self.node_id,
            sensor_type=sensor_type,
            aggregate=aggregate,
        )

    def _send_removal(self, sensor_type: str, epoch: int) -> None:
        """Withdraw a sensor type from the parent (subtree no longer has it)."""
        if self.parent is None:
            return
        message = UpdateMessage(
            sender=self.node_id,
            sensor_type=sensor_type,
            min_threshold=0.0,
            max_threshold=0.0,
            epoch=epoch,
            removed=True,
        )
        self.mac.send(
            self.parent, message, UPDATE_KIND, self.config.update_payload_bytes
        )
        self.updates_sent += 1
        if self.atc is not None:
            self.atc.on_update_sent()

    def readvertise(self, epoch: Optional[int] = None) -> int:
        """Force a fresh Update Message for every non-empty table.

        Used after the node is re-parented (tree repair) so the new parent
        learns the ranges of the re-attached subtree.  Returns the number of
        updates sent.
        """
        epoch = self.current_epoch if epoch is None else epoch
        sent = 0
        for table in self.tables.tables():
            aggregate = table.aggregate()
            if aggregate is None or self.parent is None:
                continue
            table.mark_transmitted(aggregate)
            message = UpdateMessage(
                sender=self.node_id,
                sensor_type=table.sensor_type,
                min_threshold=aggregate[0],
                max_threshold=aggregate[1],
                epoch=epoch,
            )
            self.mac.send(
                self.parent, message, UPDATE_KIND, self.config.update_payload_bytes
            )
            self.updates_sent += 1
            sent += 1
            if self.atc is not None:
                self.atc.on_update_sent()
        return sent

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def on_payload(self, sender: NodeId, payload) -> None:
        if isinstance(payload, UpdateMessage):
            self._handle_update(sender, payload)
        elif isinstance(payload, RangeQuery):
            self._handle_query(sender, payload)
        elif isinstance(payload, EstimateMessage):
            self._handle_estimate(sender, payload)
        elif isinstance(payload, QueryResponse):
            self._handle_response(sender, payload)

    # -- updates from children ------------------------------------------------

    def _handle_update(self, sender: NodeId, message: UpdateMessage) -> None:
        # Range Tables are created lazily on the first update mentioning a
        # sensor type, which is how new sensor types introduced after
        # deployment propagate towards the root (paper §1, §4.1 / Fig. 4).
        table = self.tables.table(message.sensor_type, create=True)
        if message.removed:
            table.remove_child(sender)
            if table.is_empty:
                # The whole subtree (including this node) lost the type.
                self.tables.drop(message.sensor_type)
                self._send_removal(message.sensor_type, message.epoch)
                return
        else:
            table.update_child(
                sender, message.min_threshold, message.max_threshold
            )
        self._maybe_send_update(message.sensor_type, message.epoch)

    # -- queries from the parent -------------------------------------------------

    def _handle_query(self, sender: NodeId, query: RangeQuery) -> None:
        self.queries_received += 1
        self.record_query_receipt(query.query_id)
        self.sim.tracer.record(
            self.now, "dirq.query_received", self.node_id, query_id=query.query_id
        )
        self._evaluate_and_forward(query)

    def _evaluate_and_forward(self, query: RangeQuery) -> None:
        """Source check + directed forwarding to overlapping children."""
        table = self.tables.table(query.sensor_type)
        if table is None:
            return
        if table.own_entry is not None and query.overlaps(
            table.own_entry.min_threshold, table.own_entry.max_threshold
        ):
            self.record_source_claim(query.query_id)
            if self.send_responses and self.parent is not None:
                response = QueryResponse(
                    query_id=query.query_id,
                    source=self.node_id,
                    sensor_type=query.sensor_type,
                    value=(
                        table.reference_reading
                        if table.reference_reading is not None
                        else 0.0
                    ),
                    epoch=self.current_epoch,
                )
                self.mac.send(self.parent, response, RESPONSE_KIND, 24)
                self.responses_sent += 1
        for child in self.children:
            entry = table.child_entry(child)
            if entry is None:
                continue
            if query.overlaps(entry.min_threshold, entry.max_threshold):
                self.mac.send(
                    child, query, QUERY_KIND, self.config.query_payload_bytes
                )
                self.queries_forwarded += 1

    # -- estimates from the root ---------------------------------------------------

    def _handle_estimate(self, sender: NodeId, message: EstimateMessage) -> None:
        if message.hour_index <= self._last_estimate_hour:
            return
        self._last_estimate_hour = message.hour_index
        if self.atc is not None:
            self.atc.on_estimate(message.node_update_budget)
        # Relay down the tree so every node receives the hourly estimate.
        for child in self.children:
            self.mac.send(
                child, message, ESTIMATE_KIND, self.config.estimate_payload_bytes
            )
            self.estimates_relayed += 1

    # -- responses travelling towards the root ---------------------------------------

    def _handle_response(self, sender: NodeId, response: QueryResponse) -> None:
        if self.parent is not None:
            self.mac.send(self.parent, response, RESPONSE_KIND, 24)

    # ------------------------------------------------------------------
    # Cross-layer topology adaptation (paper §4.2)
    # ------------------------------------------------------------------

    def _on_crosslayer_event(self, event: CrossLayerEvent) -> None:
        if not self.alive:
            return
        if isinstance(event, NeighborLost):
            self._handle_neighbor_lost(event)
        elif isinstance(event, NeighborFound):
            self._handle_neighbor_found(event)

    def _handle_neighbor_lost(self, event: NeighborLost) -> None:
        neighbor = event.neighbor_id
        self.sim.tracer.record(
            self.now, "dirq.neighbor_lost", self.node_id, neighbor=neighbor
        )
        if neighbor in self.children:
            self.children = [c for c in self.children if c != neighbor]
        # Drop whatever the dead neighbour ever advertised.  This must not be
        # conditioned on the current children list: if the tree was already
        # repaired around the failure, the neighbour is no longer a child but
        # its stale range entries would otherwise keep attracting queries.
        changed_types = self.tables.remove_child_everywhere(neighbor)
        for sensor_type in changed_types:
            table = self.tables.table(sensor_type)
            if table is not None and table.is_empty:
                self.tables.drop(sensor_type)
                self._send_removal(sensor_type, self.current_epoch)
            else:
                self._maybe_send_update(sensor_type, self.current_epoch)
        # Parent loss is repaired by the tree-maintenance machinery in the
        # experiment runner (a new parent is installed via set_tree_links and
        # the node re-advertises); nothing to do locally here.

    def _handle_neighbor_found(self, event: NeighborFound) -> None:
        self.sim.tracer.record(
            self.now, "dirq.neighbor_found", self.node_id, neighbor=event.neighbor_id
        )

    # ------------------------------------------------------------------
    # Introspection helpers used by tests and examples
    # ------------------------------------------------------------------

    def table_snapshot(self) -> Dict[str, Optional[tuple]]:
        """Mapping sensor type -> current aggregate (for diagnostics)."""
        return {t.sensor_type: t.aggregate() for t in self.tables.tables()}

    def known_sensor_types(self) -> list[str]:
        """Sensor types this node believes exist in its subtree."""
        return self.tables.sensor_types
