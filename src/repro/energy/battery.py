"""Finite battery model.

The paper's evaluation assumes nodes stay alive for the whole run and models
topology change by scripted node removal.  For the topology-dynamics ablation
(and for downstream users who want lifetime studies) this module provides a
simple finite-energy battery that can declare a node dead once its budget is
exhausted, which the MAC layer then reports through the cross-layer
interface exactly as it would a scripted failure.
"""

from __future__ import annotations


class Battery:
    """Finite energy reservoir attached to a node.

    Parameters
    ----------
    capacity:
        Initial energy, in the same units as the installed
        :class:`~repro.energy.model.EnergyCostModel` (abstract units for the
        default :class:`~repro.energy.model.UnitCostModel`).  ``float("inf")``
        (the default) reproduces the paper's always-on assumption.
    """

    def __init__(self, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("battery capacity must be positive")
        self.capacity = float(capacity)
        self.remaining = float(capacity)

    @property
    def depleted(self) -> bool:
        """True once all energy has been consumed."""
        return self.remaining <= 0.0

    @property
    def fraction_remaining(self) -> float:
        """Remaining energy as a fraction of capacity (1.0 for infinite)."""
        if self.capacity == float("inf"):
            return 1.0
        return max(0.0, self.remaining / self.capacity)

    def draw(self, amount: float) -> bool:
        """Consume ``amount`` energy.

        Returns ``True`` if the battery could supply it (even partially --
        the final draw that empties the battery still succeeds), ``False``
        if the battery was already depleted.
        """
        if amount < 0:
            raise ValueError("cannot draw negative energy")
        if self.depleted:
            return False
        self.remaining -= amount
        if self.remaining < 0:
            self.remaining = 0.0
        return True

    def recharge(self, amount: float | None = None) -> None:
        """Restore energy (fully when ``amount`` is omitted)."""
        if amount is None:
            self.remaining = self.capacity
        else:
            if amount < 0:
                raise ValueError("cannot recharge a negative amount")
            self.remaining = min(self.capacity, self.remaining + amount)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Battery(remaining={self.remaining:.3g}/{self.capacity:.3g})"
