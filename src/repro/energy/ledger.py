"""Per-node and network-wide energy / message ledgers.

The ledgers are the measurement backbone of every reproduced figure: the
paper's "cost" metric is the total of transmission and reception units, and
its update/query breakdowns (Fig. 6, the 45–55 % claim) require attributing
each unit to a message *kind*.  Every radio operation performed through the
channel is recorded here, tagged with the node, the direction, and the kind
of protocol message that caused it.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Dict, Iterable, Optional, Tuple


@dataclasses.dataclass
class EnergyEntry:
    """Accumulated cost and count for one (direction, kind) bucket."""

    count: int = 0
    cost: float = 0.0

    def add(self, cost: float) -> None:
        self.count += 1
        self.cost += cost


class NodeLedger:
    """Energy and message bookkeeping for a single node."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        self._entries: Dict[Tuple[str, str], EnergyEntry] = defaultdict(EnergyEntry)

    def charge_tx(self, kind: str, cost: float) -> None:
        """Record one transmission of a message of the given kind."""
        entry = self._entries[("tx", kind)]
        entry.count += 1
        entry.cost += cost

    def charge_rx(self, kind: str, cost: float) -> None:
        """Record one reception of a message of the given kind."""
        entry = self._entries[("rx", kind)]
        entry.count += 1
        entry.cost += cost

    # -- queries -----------------------------------------------------------

    def total_cost(self, kinds: Optional[Iterable[str]] = None) -> float:
        """Total energy cost, optionally restricted to certain message kinds."""
        wanted = set(kinds) if kinds is not None else None
        return sum(
            e.cost
            for (_, kind), e in self._entries.items()
            if wanted is None or kind in wanted
        )

    def count(self, direction: Optional[str] = None, kind: Optional[str] = None) -> int:
        """Number of recorded operations matching the filters."""
        total = 0
        for (d, k), e in self._entries.items():
            if direction is not None and d != direction:
                continue
            if kind is not None and k != kind:
                continue
            total += e.count
        return total

    def breakdown(self) -> Dict[Tuple[str, str], Tuple[int, float]]:
        """Mapping of (direction, kind) -> (count, cost)."""
        return {key: (e.count, e.cost) for key, e in self._entries.items()}

    def reset(self) -> None:
        self._entries.clear()


class NetworkLedger:
    """Aggregates :class:`NodeLedger` instances for a whole network.

    The channel holds one :class:`NetworkLedger`; protocols never write to it
    directly, they simply send messages and the channel charges the costs.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, NodeLedger] = {}

    def node(self, node_id: int) -> NodeLedger:
        """Ledger for ``node_id``, created on first access."""
        ledger = self._nodes.get(node_id)
        if ledger is None:
            ledger = self._nodes[node_id] = NodeLedger(node_id)
        return ledger

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    @property
    def node_ids(self) -> list[int]:
        return sorted(self._nodes)

    # -- network-wide aggregation -------------------------------------------

    def total_cost(self, kinds: Optional[Iterable[str]] = None) -> float:
        """Network-wide energy cost, optionally restricted to message kinds."""
        return sum(ledger.total_cost(kinds) for ledger in self._nodes.values())

    def total_count(
        self, direction: Optional[str] = None, kind: Optional[str] = None
    ) -> int:
        """Network-wide operation count matching the filters."""
        return sum(ledger.count(direction, kind) for ledger in self._nodes.values())

    def per_node_cost(self, kinds: Optional[Iterable[str]] = None) -> Dict[int, float]:
        """Mapping node id -> total cost for that node."""
        return {nid: ledger.total_cost(kinds) for nid, ledger in self._nodes.items()}

    def kinds(self) -> set[str]:
        """All message kinds that have been charged so far."""
        found: set[str] = set()
        for ledger in self._nodes.values():
            for (_, kind) in ledger.breakdown():
                found.add(kind)
        return found

    def breakdown_by_kind(self) -> Dict[str, Tuple[int, float]]:
        """Mapping kind -> (total operation count, total cost) network-wide."""
        agg: Dict[str, Tuple[int, float]] = {}
        for ledger in self._nodes.values():
            for (_, kind), (count, cost) in ledger.breakdown().items():
                c0, e0 = agg.get(kind, (0, 0.0))
                agg[kind] = (c0 + count, e0 + cost)
        return agg

    def reset(self) -> None:
        """Zero every node ledger (keeps the node set)."""
        for ledger in self._nodes.values():
            ledger.reset()

    def snapshot(self) -> Dict[str, float]:
        """Cheap network-wide snapshot: kind -> cost.  Useful for windowed series."""
        return {kind: cost for kind, (_, cost) in self.breakdown_by_kind().items()}
