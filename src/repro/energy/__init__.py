"""Energy accounting substrate (the paper's §5 unit-cost bookkeeping)."""

from .battery import Battery
from .ledger import EnergyEntry, NetworkLedger, NodeLedger
from .model import (
    DEFAULT_ENERGY_MODEL,
    EnergyCostModel,
    RadioEnergyModel,
    UnitCostModel,
)

__all__ = [
    "Battery",
    "EnergyEntry",
    "NetworkLedger",
    "NodeLedger",
    "DEFAULT_ENERGY_MODEL",
    "EnergyCostModel",
    "RadioEnergyModel",
    "UnitCostModel",
]
