"""Energy cost models.

The paper's analytical and simulation evaluation (§5) uses abstract unit
costs: *"the cost of transmitting a message is assumed to be one unit while
the cost of receiving a message is also assumed to be one unit."*  The
:class:`UnitCostModel` reproduces exactly that accounting and is the default
everywhere.

For finer-grained studies (and the ablation examples) a
:class:`RadioEnergyModel` is also provided, parameterised on per-byte
transmit/receive energies and state currents typical of early sensor-node
radios (e.g. the RFM TR1001 / CC1000 class devices contemporary with LMAC).
Both models expose the same two-method interface so the channel layer does
not care which one is installed.
"""

from __future__ import annotations

import dataclasses
from typing import Protocol


class EnergyCostModel(Protocol):
    """Interface the wireless channel uses to price radio operations."""

    def transmit_cost(self, payload_bytes: int, n_receivers: int) -> float:
        """Energy charged to the sender for one transmission."""
        ...

    def receive_cost(self, payload_bytes: int) -> float:
        """Energy charged to one receiver for one reception."""
        ...


@dataclasses.dataclass(frozen=True)
class UnitCostModel:
    """The paper's §5 cost model: 1 unit per transmission, 1 unit per reception.

    A broadcast is a single MAC transmission (cost ``tx_unit`` regardless of
    how many neighbours hear it); each neighbour that hears it pays one
    reception unit.  A unicast costs one transmission plus one reception.
    This is precisely the accounting behind equations (3)–(9).
    """

    tx_unit: float = 1.0
    rx_unit: float = 1.0

    def transmit_cost(self, payload_bytes: int, n_receivers: int) -> float:
        return self.tx_unit

    def receive_cost(self, payload_bytes: int) -> float:
        return self.rx_unit


@dataclasses.dataclass(frozen=True)
class RadioEnergyModel:
    """Byte-proportional radio energy model (micro-joules).

    Parameters roughly follow first-generation sensor-node radios: a fixed
    per-packet startup cost (ramp-up and preamble) plus a per-byte cost for
    the payload, with reception slightly cheaper than transmission.

    The absolute values do not matter for any reproduced figure (all paper
    results are message-count ratios); this model exists so downstream users
    can study DirQ with realistic energy numbers.
    """

    tx_startup_uj: float = 10.0
    tx_per_byte_uj: float = 2.0
    rx_startup_uj: float = 8.0
    rx_per_byte_uj: float = 1.5

    def transmit_cost(self, payload_bytes: int, n_receivers: int) -> float:
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        return self.tx_startup_uj + self.tx_per_byte_uj * payload_bytes

    def receive_cost(self, payload_bytes: int) -> float:
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        return self.rx_startup_uj + self.rx_per_byte_uj * payload_bytes


DEFAULT_ENERGY_MODEL = UnitCostModel()
"""Model used throughout the reproduction unless explicitly overridden."""
