"""Queryable SQLite store of campaign trial results.

The pickle cache (:mod:`repro.experiments.batch`) remembers *individual
trials* keyed by config hash; it answers "have I simulated this exact
config?" but keeps no record of *campaigns* -- which sweeps ran, over what
parameter space, and what came out.  :class:`ResultsStore` is that durable
record: one SQLite file holding

* a ``campaigns`` table -- one row per registered
  :class:`~repro.experiments.campaign.CampaignSpec` (its canonical JSON,
  its deterministic id, and the expanded trial count), and
* a ``trials`` table -- one row per finished trial with its identity
  columns (campaign, scenario, protocol, sweep point, replicate, config
  hash, seed) and the scalar metrics of :data:`STORE_METRICS` as real,
  SQL-queryable columns, plus the trial fingerprint and the full canonical
  config JSON.

Durability contract
-------------------
:meth:`ResultsStore.record_trial` upserts **one row per finished trial in
its own transaction**, so a killed process (crash, OOM, Ctrl-C, a downed
host) loses at most the trials that were in flight; everything recorded is
immediately visible to ``run_missing`` on the next resume -- including a
resume running on a different host against a shared file.  Rows are keyed
``(campaign_id, key)`` and re-recording is idempotent.

Determinism contract
--------------------
:meth:`export_jsonable` contains only identity columns, metrics, and
fingerprints -- never runtimes, timestamps, or cache provenance -- and
orders rows by ``(scenario, protocol, sweep, replicate)``, so a campaign's
export is byte-identical no matter how many workers ran it, how often it
was interrupted and resumed, or in which order trials finished.
"""

from __future__ import annotations

import dataclasses
import json
import sqlite3
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set

from ..metrics.stats import (
    DEFAULT_CONFIDENCE,
    DEFAULT_METRICS,
    ReplicateGroup,
    ReplicateSummary,
)
from .batch import CACHE_VERSION, _canonical

#: Default store filename (created inside the cache directory unless an
#: explicit ``--store`` path is given, so campaign state lives next to the
#: pickle cache it composes with).
DEFAULT_STORE_NAME = "campaigns.sqlite"

#: Scalar metrics persisted as real columns of the ``trials`` table --
#: every default replicate metric plus the protocol-agnostic total radio
#: energy.  The grid layer renders its matrices from this same set, which
#: is what lets grid matrices be reproduced from a campaign store alone.
STORE_METRICS: Dict[str, Callable[[object], float]] = dict(DEFAULT_METRICS)
STORE_METRICS["total_energy"] = lambda r: float(r.ledger.total_cost())

#: Column order of the metric columns (stable: dict insertion order).
METRIC_COLUMNS = tuple(STORE_METRICS)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    campaign_id   TEXT PRIMARY KEY,
    name          TEXT NOT NULL,
    spec_json     TEXT NOT NULL,
    total_trials  INTEGER NOT NULL,
    cache_version INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS trials (
    campaign_id     TEXT NOT NULL REFERENCES campaigns(campaign_id),
    key             TEXT NOT NULL,
    scenario        TEXT NOT NULL,
    protocol        TEXT NOT NULL,
    sweep_json      TEXT NOT NULL,
    replicate       INTEGER NOT NULL,
    base_key        TEXT NOT NULL,
    base_label      TEXT NOT NULL,
    label           TEXT NOT NULL,
    seed            INTEGER NOT NULL,
    num_epochs      INTEGER NOT NULL,
    fingerprint     TEXT NOT NULL,
    {metric_columns},
    runtime_seconds REAL NOT NULL,
    from_cache      INTEGER NOT NULL,
    config_json     TEXT NOT NULL,
    PRIMARY KEY (campaign_id, key)
);
CREATE INDEX IF NOT EXISTS trials_by_cell
    ON trials (campaign_id, scenario, protocol, replicate);
""".format(
    metric_columns=",\n    ".join(f'"{name}" REAL' for name in METRIC_COLUMNS)
)


@dataclasses.dataclass(frozen=True)
class CampaignRow:
    """One registered campaign as stored."""

    campaign_id: str
    name: str
    spec_json: str
    total_trials: int
    cache_version: int

    @property
    def spec_jsonable(self) -> Dict[str, object]:
        return json.loads(self.spec_json)


class ResultsStore:
    """The SQLite results repository backing resumable campaigns.

    A store is cheap to open and safe to share between processes (SQLite
    WAL journal, one short transaction per finished trial); N workers or
    N hosts pointing ``run_missing`` at the same file drain one trial
    queue with zero duplicated work.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.row_factory = sqlite3.Row
        # WAL keeps readers (status/query/other workers) unblocked while a
        # trial row commits; NORMAL sync still guarantees commit atomicity
        # -- a crash loses at most the in-flight transaction, which is
        # exactly the store's durability contract.
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        with self._conn:
            self._conn.executescript(_SCHEMA)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- campaigns -----------------------------------------------------------

    def register_campaign(
        self, campaign_id: str, name: str, spec_json: str, total_trials: int
    ) -> None:
        """Record a campaign's identity (idempotent for an identical spec).

        Raises ``ValueError`` if the id is already registered with a
        *different* spec -- the id is a content hash, so this only happens
        when two genuinely different specs collide on a hand-given id,
        which must never be silently merged.
        """
        existing = self.campaign(campaign_id)
        if existing is not None:
            if existing.spec_json != spec_json:
                raise ValueError(
                    f"campaign {campaign_id!r} is already registered with a "
                    "different spec"
                )
            return
        with self._conn:
            self._conn.execute(
                "INSERT INTO campaigns "
                "(campaign_id, name, spec_json, total_trials, cache_version) "
                "VALUES (?, ?, ?, ?, ?)",
                (campaign_id, name, spec_json, total_trials, CACHE_VERSION),
            )

    def campaign(self, campaign_id: str) -> Optional[CampaignRow]:
        row = self._conn.execute(
            "SELECT * FROM campaigns WHERE campaign_id = ?", (campaign_id,)
        ).fetchone()
        return None if row is None else CampaignRow(**dict(row))

    def campaigns(self) -> List[CampaignRow]:
        """Every registered campaign, ordered by id."""
        rows = self._conn.execute(
            "SELECT * FROM campaigns ORDER BY campaign_id"
        ).fetchall()
        return [CampaignRow(**dict(r)) for r in rows]

    def resolve_campaign(self, ref: str) -> CampaignRow:
        """The campaign matching ``ref`` -- an exact id or a unique name.

        Raises ``KeyError`` when nothing matches or a bare name is
        ambiguous (several registered parameterisations share it).
        """
        exact = self.campaign(ref)
        if exact is not None:
            return exact
        matches = [row for row in self.campaigns() if row.name == ref]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            known = ", ".join(r.campaign_id for r in self.campaigns()) or "none"
            raise KeyError(f"unknown campaign {ref!r}; registered: {known}")
        raise KeyError(
            f"campaign name {ref!r} is ambiguous: "
            + ", ".join(r.campaign_id for r in matches)
        )

    # -- trials --------------------------------------------------------------

    def record_trial(self, campaign_id: str, result) -> None:
        """Upsert one finished trial, atomically (one transaction per call).

        ``result`` is a :class:`~repro.experiments.batch.TrialResult` whose
        spec carries the campaign expansion tags (``scenario``,
        ``protocol``, ``sweep``, ``replicate``, ``base_key`` /
        ``base_label``); trials from un-tagged specs fall back to blank
        identity columns but are stored all the same.
        """
        spec = result.spec
        tags = spec.tags
        sweep = tags.get("sweep") or {}
        row = {
            "campaign_id": campaign_id,
            "key": spec.key,
            "scenario": str(tags.get("scenario", "")),
            "protocol": str(tags.get("protocol", "")),
            "sweep_json": json.dumps(
                _canonical(sweep), sort_keys=True, separators=(",", ":")
            ),
            "replicate": int(tags.get("replicate", 0)),
            "base_key": str(tags.get("base_key", spec.key)),
            "base_label": str(tags.get("base_label", spec.label)),
            "label": spec.label,
            "seed": int(spec.config.seed),
            "num_epochs": int(spec.config.num_epochs),
            "fingerprint": result.fingerprint(),
            "runtime_seconds": float(result.runtime_seconds),
            "from_cache": int(bool(result.from_cache)),
            "config_json": json.dumps(
                _canonical(spec.config), sort_keys=True, separators=(",", ":")
            ),
        }
        for name, extractor in STORE_METRICS.items():
            row[name] = float(extractor(result))
        columns = list(row)
        placeholders = ", ".join("?" for _ in columns)
        quoted = ", ".join(f'"{c}"' for c in columns)
        with self._conn:
            self._conn.execute(
                f"INSERT OR REPLACE INTO trials ({quoted}) "
                f"VALUES ({placeholders})",
                [row[c] for c in columns],
            )

    def completed_keys(self, campaign_id: str) -> Set[str]:
        """Config hashes of every recorded trial of the campaign."""
        rows = self._conn.execute(
            "SELECT key FROM trials WHERE campaign_id = ?", (campaign_id,)
        ).fetchall()
        return {row["key"] for row in rows}

    def count(self, campaign_id: str) -> int:
        (n,) = self._conn.execute(
            "SELECT COUNT(*) FROM trials WHERE campaign_id = ?", (campaign_id,)
        ).fetchone()
        return int(n)

    def query(
        self,
        campaign_id: str,
        scenario: Optional[str] = None,
        protocol: Optional[str] = None,
        replicate: Optional[int] = None,
    ) -> List[Dict[str, object]]:
        """Stored trial rows, filtered and deterministically ordered.

        Rows come back as plain dicts (identity columns + metric columns +
        fingerprint), ordered by ``(scenario, protocol, sweep, replicate,
        key)`` -- independent of insertion order, so a query over a
        resumed campaign matches the uninterrupted one.
        """
        clauses = ["campaign_id = ?"]
        params: List[object] = [campaign_id]
        if scenario is not None:
            clauses.append("scenario = ?")
            params.append(scenario)
        if protocol is not None:
            clauses.append("protocol = ?")
            params.append(protocol)
        if replicate is not None:
            clauses.append("replicate = ?")
            params.append(int(replicate))
        rows = self._conn.execute(
            "SELECT * FROM trials WHERE " + " AND ".join(clauses) +
            " ORDER BY scenario, protocol, sweep_json, replicate, key",
            params,
        ).fetchall()
        return [dict(row) for row in rows]

    # -- derived views -------------------------------------------------------

    def replicate_groups(
        self,
        campaign_id: str,
        confidence: float = DEFAULT_CONFIDENCE,
    ) -> List[ReplicateGroup]:
        """Replicate-folded summaries of the stored scalars, one per cell.

        Rebuilds :class:`~repro.metrics.stats.ReplicateGroup` objects from
        the stored metric columns alone (``group.results`` holds the raw
        row dicts), so mean-and-CI tables and grid matrices render from
        the store without unpickling a single cached trial.
        """
        buckets: Dict[tuple, List[Dict[str, object]]] = {}
        for row in self.query(campaign_id):
            cell = (row["scenario"], row["protocol"], row["sweep_json"])
            buckets.setdefault(cell, []).append(row)
        groups: List[ReplicateGroup] = []
        for cell, rows in buckets.items():
            scenario, protocol, sweep_json = cell
            first = rows[0]
            summaries = {
                name: ReplicateSummary.from_values(
                    name,
                    [float(row[name]) for row in rows],
                    confidence=confidence,
                )
                for name in METRIC_COLUMNS
            }
            tags: Dict[str, object] = {
                "campaign": campaign_id,
                "scenario": scenario,
                "protocol": protocol,
                "sweep": json.loads(sweep_json),
            }
            groups.append(
                ReplicateGroup(
                    label=str(first["base_label"]),
                    base_key=str(first["base_key"]),
                    group="campaign",
                    tags=tags,
                    results=rows,
                    metrics=summaries,
                    cache_hits=sum(int(row["from_cache"]) for row in rows),
                    executed=sum(1 - int(row["from_cache"]) for row in rows),
                )
            )
        return groups

    def export_jsonable(self, campaign_id: str) -> Dict[str, object]:
        """The deterministic JSON payload of a campaign's stored results.

        Contains the campaign spec and one entry per stored trial --
        identity, metrics, fingerprint -- and deliberately **no**
        provenance (runtimes, cache hits, insertion order), so the export
        of a resumed campaign is byte-identical to an uninterrupted run at
        any worker count.
        """
        campaign = self.campaign(campaign_id)
        if campaign is None:
            raise KeyError(f"unknown campaign {campaign_id!r}")
        trials = []
        for row in self.query(campaign_id):
            trials.append(
                {
                    "key": row["key"],
                    "scenario": row["scenario"],
                    "protocol": row["protocol"],
                    "sweep": json.loads(row["sweep_json"]),
                    "replicate": row["replicate"],
                    "base_key": row["base_key"],
                    "label": row["label"],
                    "seed": row["seed"],
                    "num_epochs": row["num_epochs"],
                    "fingerprint": row["fingerprint"],
                    "metrics": {
                        name: row[name] for name in METRIC_COLUMNS
                    },
                }
            )
        return {
            "campaign_id": campaign.campaign_id,
            "name": campaign.name,
            "spec": campaign.spec_jsonable,
            "cache_version": campaign.cache_version,
            "total_trials": campaign.total_trials,
            "completed_trials": len(trials),
            "trials": trials,
        }
