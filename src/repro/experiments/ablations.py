"""Ablation experiments for the design choices called out in DESIGN.md.

These go beyond the paper's figures and quantify the contribution of
individual mechanisms:

* **Topology adaptation** (E7): kill a batch of nodes mid-run and measure
  query delivery completeness before and after; the cross-layer
  notifications plus tree repair should restore routing within a few epochs.
* **Estimate / prediction quality**: compare the ATC driven by the query-
  rate predictor against an oracle that knows the exact future load.
* **Channel loss**: DirQ's directed unicasts vs flooding's redundant
  broadcasts under increasing packet loss (flooding is naturally more loss
  tolerant; this quantifies the accuracy cost of DirQ's efficiency).
"""

from __future__ import annotations

import dataclasses
from statistics import fmean
from typing import List, Optional, Sequence

from ..metrics.accuracy import delivery_completeness, mean_overshoot
from ..metrics.report import format_table
from .batch import DEFAULT_REPLICATES, BatchRunner, TrialSpec, run_sweep, run_sweep_replicated
from .scenarios import node_failure_scenario, paper_network

#: Channel loss rates swept by default.  The 1.0 endpoint (every unicast
#: and broadcast lost; legalised alongside the delivery-time accounting
#: fix) pins down the floor of the curve, so the ablation covers the full
#: [0, 1] range rather than stopping at moderate loss.
DEFAULT_LOSS_RATES: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.5, 1.0)


# ---------------------------------------------------------------------------
# Topology adaptation (node failures)
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class TopologyAblationResult:
    """Delivery quality before and after scripted node failures."""

    failure_epoch: int
    failed_nodes: Sequence[int]
    completeness_before: float
    completeness_after: float
    overshoot_before: float
    overshoot_after: float
    queries_before: int
    queries_after: int


def topology_ablation_specs(
    num_epochs: int = 1_200,
    failure_epoch: int = 400,
    failures: Optional[List[int]] = None,
    seed: int = 11,
) -> List[TrialSpec]:
    """The topology ablation as data (a single-trial sweep)."""
    config = node_failure_scenario(
        num_epochs=num_epochs,
        failures=failures,
        failure_epoch=failure_epoch,
        seed=seed,
    ).with_atc()
    return [
        TrialSpec(
            label=f"topology-ablation failure@{failure_epoch}",
            config=config,
            group="ablation-topology",
            tags={"failure_epoch": failure_epoch},
        )
    ]


def run_topology_ablation(
    num_epochs: int = 1_200,
    failure_epoch: int = 400,
    failures: Optional[List[int]] = None,
    settle_epochs: int = 100,
    seed: int = 11,
    runner: Optional[BatchRunner] = None,
    replicates: int = DEFAULT_REPLICATES,
) -> TopologyAblationResult:
    """Kill nodes mid-run and compare delivery quality before vs after.

    ``settle_epochs`` excludes the queries injected while LMAC is still
    detecting the deaths (its death threshold is a few beacon intervals), so
    "after" measures the repaired steady state.  With ``replicates > 1``
    every reported number is the mean over that many independent seeds.
    """
    (spec,) = topology_ablation_specs(
        num_epochs=num_epochs,
        failure_epoch=failure_epoch,
        failures=failures,
        seed=seed,
    )
    results = run_sweep(spec.replicates(replicates), runner)
    failed = [e.node_id for e in results[0].config.topology_events]
    befores = [
        r.audit.records_between(0, failure_epoch - 1) for r in results
    ]
    afters = [
        r.audit.records_between(failure_epoch + settle_epochs, num_epochs)
        for r in results
    ]
    return TopologyAblationResult(
        failure_epoch=failure_epoch,
        failed_nodes=failed,
        completeness_before=fmean(delivery_completeness(b) for b in befores),
        completeness_after=fmean(delivery_completeness(a) for a in afters),
        overshoot_before=fmean(mean_overshoot(b) for b in befores),
        overshoot_after=fmean(mean_overshoot(a) for a in afters),
        queries_before=round(fmean(len(b) for b in befores)),
        queries_after=round(fmean(len(a) for a in afters)),
    )


# ---------------------------------------------------------------------------
# Channel loss sensitivity
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class LossPoint:
    """DirQ delivery quality at one channel loss rate."""

    loss_probability: float
    completeness: float
    overshoot: float
    cost_ratio: float


def loss_ablation_specs(
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    num_epochs: int = 800,
    seed: int = 5,
) -> List[TrialSpec]:
    """The channel-loss sweep as data: one trial per loss rate."""
    base = paper_network(num_epochs=num_epochs, seed=seed).with_atc()
    return [
        TrialSpec(
            label=f"loss={loss:g}",
            config=base.replace(channel_loss=loss),
            group="ablation-loss",
            tags={"loss": loss},
        )
        for loss in loss_rates
    ]


def run_loss_ablation(
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    num_epochs: int = 800,
    seed: int = 5,
    runner: Optional[BatchRunner] = None,
    replicates: int = DEFAULT_REPLICATES,
) -> List[LossPoint]:
    """Evaluate DirQ (ATC) under increasing packet loss.

    With ``replicates > 1`` every point is the mean over that many
    independent seeds (one replicate group per loss rate).
    """
    specs = loss_ablation_specs(
        loss_rates=loss_rates, num_epochs=num_epochs, seed=seed
    )
    return [
        LossPoint(
            loss_probability=group.tags["loss"],
            completeness=group.metrics["source_completeness"].mean,
            overshoot=group.metrics["mean_overshoot_pp"].mean,
            cost_ratio=group.metrics["cost_ratio"].mean,
        )
        for group in run_sweep_replicated(specs, runner, replicates)
    ]


# ---------------------------------------------------------------------------
# ATC target sweep (how the target ratio maps to the achieved ratio)
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class AtcTargetPoint:
    """Achieved cost ratio and overshoot for one ATC target setting."""

    target_ratio: float
    achieved_ratio: float
    overshoot: float
    mean_updates_per_window: float


def atc_target_specs(
    targets: Sequence[float] = (0.35, 0.5, 0.65),
    num_epochs: int = 1_500,
    seed: int = 3,
) -> List[TrialSpec]:
    """The ATC target sweep as data: one trial per target cost ratio."""
    base = paper_network(num_epochs=num_epochs, seed=seed)
    return [
        TrialSpec(
            label=f"atc-target={target:g}",
            config=base.with_atc(target_cost_ratio=target),
            group="ablation-atc-target",
            tags={"target": target},
        )
        for target in targets
    ]


def run_atc_target_sweep(
    targets: Sequence[float] = (0.35, 0.5, 0.65),
    num_epochs: int = 1_500,
    seed: int = 3,
    runner: Optional[BatchRunner] = None,
    replicates: int = DEFAULT_REPLICATES,
) -> List[AtcTargetPoint]:
    """Sweep the ATC's cost-ratio target and record what it achieves.

    With ``replicates > 1`` every point is the mean over that many
    independent seeds (one replicate group per target).
    """
    specs = atc_target_specs(targets=targets, num_epochs=num_epochs, seed=seed)
    return [
        AtcTargetPoint(
            target_ratio=group.tags["target"],
            achieved_ratio=group.metrics["cost_ratio"].mean,
            overshoot=group.metrics["mean_overshoot_pp"].mean,
            mean_updates_per_window=group.metrics["updates_per_window"].mean,
        )
        for group in run_sweep_replicated(specs, runner, replicates)
    ]


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


def report_topology(result: TopologyAblationResult) -> str:
    return format_table(
        headers=["phase", "queries", "source completeness", "overshoot pp"],
        rows=[
            ("before failures", result.queries_before, result.completeness_before, result.overshoot_before),
            ("after repair", result.queries_after, result.completeness_after, result.overshoot_after),
        ],
        float_format="{:.3f}",
        title=(
            f"Topology adaptation: nodes {list(result.failed_nodes)} killed at "
            f"epoch {result.failure_epoch}"
        ),
    )


def report_loss(points: Sequence[LossPoint]) -> str:
    return format_table(
        headers=["loss prob", "source completeness", "overshoot pp", "cost ratio"],
        rows=[
            (p.loss_probability, p.completeness, p.overshoot, p.cost_ratio)
            for p in points
        ],
        float_format="{:.3f}",
        title="Channel-loss sensitivity (DirQ with ATC)",
    )


def report_atc_targets(points: Sequence[AtcTargetPoint]) -> str:
    return format_table(
        headers=["target ratio", "achieved ratio", "overshoot pp", "updates/window"],
        rows=[
            (p.target_ratio, p.achieved_ratio, p.overshoot, p.mean_updates_per_window)
            for p in points
        ],
        float_format="{:.3f}",
        title="ATC target-ratio sweep",
    )
