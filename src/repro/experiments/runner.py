"""Experiment runner: builds the full stack and drives the epoch loop.

The runner is the reproduction's equivalent of the paper's OMNeT++
simulation campaign driver.  Given an :class:`~repro.experiments.config.
ExperimentConfig` it

1. builds the world -- topology, wireless channel with unit-cost ledger,
   synthetic spatio-temporally correlated dataset, sensors, LMAC instance
   per node, spanning tree, and a DirQ or flooding protocol instance per
   node;
2. drives the epoch loop -- per-epoch sensor sampling and range
   maintenance, hourly EHr estimates, query generation/injection on the
   paper's schedule, scripted topology events, and windowed metric
   collection;
3. returns an :class:`ExperimentResult` containing the audit (ground truth
   vs deliveries), the energy ledger, the Fig. 6 update series, and
   summary statistics, from which every reproduced figure is computed.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set

import numpy as np

from ..core.analytical import flooding_cost_general
from ..core.config import DirQConfig
from ..core.dirq_node import DirQNode
from ..core.dirq_root import DirQRoot
from ..core.flooding import FloodingNode, FloodingRoot
from ..core.messages import QUERY_KIND, RangeQuery
from ..energy.battery import Battery
from ..energy.ledger import NetworkLedger
from ..mac.lmac import LMACProtocol
from ..metrics.accuracy import mean_accuracy, mean_overshoot
from ..metrics.audit import QueryAudit
from ..metrics.cost import CostBreakdown, cost_breakdown
from ..metrics.series import UpdateRateRecorder, WindowPoint
from ..network.addresses import NodeId
from ..network.channel import WirelessChannel
from ..network.node import SensorNode
from ..network.spanning_tree import SpanningTree, build_bfs_tree
from ..network.topology import Topology, random_geometric_topology
from ..obs.instrumentation import build_instrumentation
from ..scenarios.models import (
    ChurnModel,
    EnergyProfile,
    MobilityModel,
    TrafficProfile,
    rebuild_spanning_tree,
)
from ..sensors.dataset import SensorDataset
from ..sensors.sensor import SamplingCounter, Sensor
from ..sensors.types import DEFAULT_SENSOR_TYPES, default_type_specs
from ..simulation.engine import Simulator
from ..simulation.rng import RandomStreams
from ..workload.generator import QueryWorkloadGenerator
from ..workload.ground_truth import evaluate_query
from ..workload.injection import periodic_schedule
from ..workload.predictor import QueryRatePredictor
from .columnar import ColumnarTick
from .config import ExperimentConfig, ProtocolName, TopologyEvent


@dataclasses.dataclass
class ExperimentResult:
    """Everything measured during one simulation run."""

    config: ExperimentConfig
    audit: QueryAudit
    ledger: NetworkLedger
    tree: SpanningTree
    num_queries: int
    flooding_cost_per_query: float
    update_series: List[WindowPoint]
    breakdown: CostBreakdown
    per_query_costs: List[float]
    atc_delta_history: Dict[int, List[float]]
    alive_at_end: Set[NodeId]
    num_nodes: int
    #: Effective dynamic-scenario events (churn kills/revivals, battery
    #: deaths) as ``(epoch, kind, node_id)`` tuples, and the number of
    #: mobility re-link rounds; both stay empty/zero for static runs.
    scenario_events: List[tuple] = dataclasses.field(default_factory=list)
    num_relinks: int = 0
    #: Observability payload (metric snapshots / phase profile / trace
    #: summary), present only when the config enabled instrumentation or
    #: tracing.  Never hashed, never fingerprinted, never cached.
    telemetry: Optional[dict] = None

    # -- headline summaries ------------------------------------------------------

    @property
    def mean_overshoot_percent(self) -> float:
        return mean_overshoot(self.audit.records)

    @property
    def mean_accuracy(self) -> float:
        return mean_accuracy(self.audit.records)

    @property
    def total_dirq_cost(self) -> float:
        return self.breakdown.total_dirq_cost

    @property
    def total_flooding_cost(self) -> float:
        """Flooding cost of the same query load (measured for flooding runs,
        the eq. 3 reference otherwise)."""
        if self.config.protocol == ProtocolName.FLOODING:
            return self.breakdown.flood_cost
        return self.flooding_cost_per_query * self.num_queries

    @property
    def cost_ratio(self) -> float:
        """DirQ total cost as a fraction of flooding the same workload."""
        flooding = self.total_flooding_cost
        if flooding <= 0:
            return float("inf")
        return self.total_dirq_cost / flooding

    def updates_per_window(self) -> List[float]:
        return [p.value for p in self.update_series]


class SimulationWorld:
    """All live objects of one simulation (built by :class:`ExperimentRunner`)."""

    def __init__(self) -> None:
        self.sim: Simulator
        self.topology: Topology
        self.channel: WirelessChannel
        self.ledger: NetworkLedger
        self.dataset: SensorDataset
        self.tree: SpanningTree
        self.nodes: Dict[NodeId, SensorNode] = {}
        self.macs: Dict[NodeId, LMACProtocol] = {}
        self.protocols: Dict[NodeId, object] = {}
        self.audit = QueryAudit()
        self.sampling = SamplingCounter()
        self.sensor_owners: Dict[str, Set[NodeId]] = {}
        self.alive: Set[NodeId] = set()
        #: Scenario-assigned finite batteries (empty for static runs).
        self.batteries: Dict[NodeId, Battery] = {}


class ExperimentRunner:
    """Builds and runs one experiment."""

    def __init__(self, config: ExperimentConfig):
        self.config = config
        self.streams = RandomStreams(config.seed)
        self.world: Optional[SimulationWorld] = None
        # True while world.tree is exactly what a full sorted-BFS build
        # would produce for the current topology and the tree's own member
        # set -- the precondition for incremental repair on re-links.
        # Greedy maintenance (death repair, revival attachment) breaks
        # canonical form; every full or incremental rebuild restores it.
        self._tree_canonical = False

    # ------------------------------------------------------------------
    # World construction
    # ------------------------------------------------------------------

    def build(self) -> SimulationWorld:
        """Construct the full simulation world (idempotent)."""
        if self.world is not None:
            return self.world
        cfg = self.config
        world = SimulationWorld()
        instrumentation = build_instrumentation(cfg)
        world.sim = Simulator(instrumentation=instrumentation)
        tracer = instrumentation.tracer

        # Topology and channel -------------------------------------------------
        world.topology = random_geometric_topology(
            num_nodes=cfg.num_nodes,
            comm_range=cfg.comm_range,
            area_size=cfg.area_size,
            rng=self.streams.get("topology"),
            root_id=cfg.root_id,
            method=cfg.neighbor_method,
        )
        world.ledger = NetworkLedger()
        world.channel = WirelessChannel(
            sim=world.sim,
            topology=world.topology,
            ledger=world.ledger,
            loss_probability=cfg.channel_loss,
            rng=self.streams.get("channel"),
            tracer=tracer,
            metrics=instrumentation.metrics,
        )

        # Dataset and sensors ---------------------------------------------------
        specs = dict(default_type_specs())
        if cfg.phenomena_specs:
            specs.update(cfg.phenomena_specs)
        wanted_types = list(cfg.sensor_types) if cfg.sensor_types else list(
            DEFAULT_SENSOR_TYPES
        )
        specs = {t: specs[t] for t in wanted_types if t in specs}
        missing = [t for t in wanted_types if t not in specs]
        if missing:
            raise KeyError(f"no spec available for sensor types {missing}")
        node_ids = world.topology.node_ids
        world.dataset = SensorDataset.generate(
            node_ids=node_ids,
            positions=world.topology.position_array(node_ids),
            num_epochs=cfg.num_epochs,
            rng=self.streams.get("phenomena"),
            specs=specs,
            epochs_per_day=cfg.epochs_per_day,
            spatial_method=cfg.phenomena_method or "exact",
        )

        # DirQ expresses δ in percent of the sensor type's full-scale range.
        # The nominal range from the type spec is preferred (so "δ = 3 %"
        # means the same thing regardless of run length); types without a
        # nominal range fall back to the empirical range of the generated
        # dataset.
        full_scale = {}
        for stype in world.dataset.sensor_types:
            spec = specs.get(stype)
            if spec is not None and spec.full_scale is not None:
                full_scale[stype] = float(spec.full_scale)
            else:
                lo, hi = world.dataset.value_range(stype)
                full_scale[stype] = max(1e-9, hi - lo)
        cfg.dirq.full_scale.update(full_scale)

        sensor_assignment = self._assign_sensors(node_ids, wanted_types)
        world.sensor_owners = {
            stype: {nid for nid, types in sensor_assignment.items() if stype in types}
            for stype in wanted_types
        }

        # Nodes, MAC, tree, protocols -----------------------------------------------
        world.tree = build_bfs_tree(world.topology, root=cfg.root_id)
        self._tree_canonical = True
        mac_rng = self.streams.get("mac")
        for nid in node_ids:
            node = SensorNode(
                nid, world.topology.position(nid), is_root=(nid == cfg.root_id)
            )
            for stype in sensor_assignment[nid]:
                node.attach_sensor(
                    Sensor(nid, stype, world.dataset, counter=world.sampling)
                )
            world.nodes[nid] = node
            world.macs[nid] = LMACProtocol(
                sim=world.sim,
                channel=world.channel,
                node_id=nid,
                # Seeded from the "mac" stream, so per-node generators stay
                # a pure function of the experiment seed.
                rng=np.random.default_rng(  # reprolint: disable=RL104
                    mac_rng.integers(0, 2**63)
                ),
                slots_per_frame=cfg.slots_per_frame,
                beacon_interval=cfg.mac_beacon_interval,
                death_threshold=cfg.mac_death_threshold,
            )

        for nid in node_ids:
            node, mac = world.nodes[nid], world.macs[nid]
            if cfg.protocol == ProtocolName.DIRQ:
                if nid == cfg.root_id:
                    proto = DirQRoot(
                        world.sim,
                        node,
                        mac,
                        cfg.dirq,
                        audit=world.audit,
                        predictor=QueryRatePredictor(
                            initial_estimate=cfg.dirq.epochs_per_hour / cfg.query_period
                        ),
                        send_responses=cfg.send_responses,
                    )
                else:
                    proto = DirQNode(
                        world.sim,
                        node,
                        mac,
                        cfg.dirq,
                        audit=world.audit,
                        send_responses=cfg.send_responses,
                    )
            else:
                if nid == cfg.root_id:
                    proto = FloodingRoot(world.sim, node, mac, audit=world.audit)
                else:
                    proto = FloodingNode(world.sim, node, mac, audit=world.audit)
            world.protocols[nid] = proto

        self._install_tree_links(world, world.tree)

        # Initial liveness --------------------------------------------------------
        world.alive = set(node_ids)
        # Sorted: two configs whose initially_dead sets compare equal can
        # still iterate in different orders (insertion history), and kill
        # order is observable through the audit log.
        for nid in sorted(cfg.initially_dead):
            self._apply_kill(world, nid, rebuild_tree=False)
        if cfg.initially_dead:
            world.tree = build_bfs_tree(
                self._alive_topology(world), root=cfg.root_id
            )
            self._tree_canonical = True
            self._install_tree_links(world, world.tree)

        # Heterogeneous energy budgets (scenario-driven).  Capacities come
        # from the dedicated "scenario-energy" stream, so assigning them
        # perturbs no draw of the static components.
        if cfg.scenario is not None and cfg.scenario.energy is not None:
            world.batteries = EnergyProfile(cfg.scenario.energy).batteries(
                node_ids, cfg.root_id, self.streams.get("scenario-energy")
            )

        # Start the MAC and application layers.
        for nid in node_ids:
            if nid in world.alive:
                world.macs[nid].start()
                world.protocols[nid].start()

        self.world = world
        return world

    # -- helpers -------------------------------------------------------------------

    def _assign_sensors(
        self, node_ids: List[NodeId], types: List[str]
    ) -> Dict[NodeId, List[str]]:
        cfg = self.config
        assignment: Dict[NodeId, List[str]] = {}
        spec = cfg.sensors_per_node
        if spec is None:
            for nid in node_ids:
                assignment[nid] = list(types)
        elif isinstance(spec, int):
            if not (1 <= spec <= len(types)):
                raise ValueError(
                    f"sensors_per_node must be in [1, {len(types)}], got {spec}"
                )
            rng = self.streams.get("sensor-assignment")
            for nid in node_ids:
                chosen = rng.choice(len(types), size=spec, replace=False)
                assignment[nid] = sorted(types[i] for i in chosen)
            # The root keeps every type so queries of any type remain routable
            # through its tables once children advertise them.
            assignment[cfg.root_id] = list(types)
        elif isinstance(spec, dict):
            for nid in node_ids:
                given = spec.get(nid, types)
                unknown = [t for t in given if t not in types]
                if unknown:
                    raise ValueError(f"node {nid} assigned unknown types {unknown}")
                assignment[nid] = list(given)
        else:
            raise TypeError("sensors_per_node must be None, an int, or a mapping")
        return assignment

    def _alive_topology(self, world: SimulationWorld) -> Topology:
        topo = world.topology
        for nid in sorted(set(topo.node_ids) - world.alive):
            topo = topo.without_node(nid)
        return topo

    def _install_tree_links(self, world: SimulationWorld, tree: SpanningTree) -> None:
        for nid, proto in world.protocols.items():
            if nid in tree:
                proto.set_tree_links(tree.parent_of(nid), tree.children(nid))
            else:
                proto.set_tree_links(None, [])

    def _apply_kill(
        self, world: SimulationWorld, node_id: NodeId, rebuild_tree: bool = True
    ) -> None:
        if node_id == self.config.root_id:
            raise ValueError("the root cannot be killed")
        if node_id not in world.alive:
            return
        world.alive.discard(node_id)
        world.nodes[node_id].kill()
        world.channel.set_alive(node_id, False)
        world.macs[node_id].shutdown()
        if rebuild_tree and node_id in world.tree:
            # Greedy re-attachment is cheap but not BFS-canonical: the next
            # re-link must fall back to a full rebuild.
            self._tree_canonical = False
            repaired = world.tree.repair(node_id, world.channel.neighbors)
            reparented = [
                nid
                for nid in repaired.node_ids
                if nid in world.tree
                and world.tree.parent_of(nid) != repaired.parent_of(nid)
            ]
            world.tree = repaired
            self._install_tree_links(world, repaired)
            # Re-attached subtrees advertise their ranges to their new parents
            # so queries keep routing correctly (paper §4.2).
            for nid in reparented:
                proto = world.protocols[nid]
                if hasattr(proto, "readvertise"):
                    proto.readvertise()

    def _apply_activation(self, world: SimulationWorld, node_id: NodeId) -> None:
        if node_id in world.alive:
            return
        world.alive.add(node_id)
        # Reactivation models a battery swap / reboot: a node whose finite
        # budget was exhausted comes back with a fresh one, otherwise the
        # energy check would kill it again at the very next period.
        battery = world.batteries.get(node_id)
        if battery is not None:
            battery.recharge()
        world.nodes[node_id].revive()
        world.channel.set_alive(node_id, True)
        world.macs[node_id].start()
        world.macs[node_id].wake()
        world.protocols[node_id].start()
        # Attach to the alive neighbour closest to the root.
        candidates = [
            nb for nb in world.channel.neighbors(node_id) if nb in world.tree
        ]
        if candidates:
            candidates.sort(key=lambda nb: (world.tree.depth_of(nb), nb))
            # Greedy attachment, like death repair, leaves the tree
            # non-canonical until the next full or incremental rebuild.
            self._tree_canonical = False
            world.tree = world.tree.with_new_node(node_id, candidates[0])
            self._install_tree_links(world, world.tree)

    def _apply_relink(self, world: SimulationWorld, mobility: MobilityModel) -> None:
        """Advance mobile nodes one re-link period and repair the overlay.

        Positions move, unit-disk connectivity is re-derived, and the
        spanning tree is rebuilt deterministically over the alive nodes
        still reachable from the root (partitioned nodes drop out of the
        tree until a later re-link reconnects them).  Every node whose
        parent changed re-advertises its ranges so queries keep routing
        (paper §4.2), exactly as after a node death.
        """
        cfg = self.config
        moved = mobility.step()
        world.topology, dirty = world.topology.with_positions_delta(
            moved, method=cfg.neighbor_method
        )
        world.channel.update_topology(world.topology)
        old_tree = world.tree
        incremental = (
            self._tree_canonical and (cfg.tree_repair or "incremental") != "full"
        )
        world.tree = rebuild_spanning_tree(
            world.topology,
            world.alive,
            cfg.root_id,
            previous=old_tree if incremental else None,
            dirty=dirty if incremental else None,
        )
        self._tree_canonical = True
        self._install_tree_links(world, world.tree)
        for nid in world.tree.node_ids:
            if nid == self.config.root_id:
                continue
            if nid not in old_tree or old_tree.parent_of(nid) != world.tree.parent_of(nid):
                proto = world.protocols[nid]
                if hasattr(proto, "readvertise"):
                    proto.readvertise()

    # ------------------------------------------------------------------
    # The epoch loop
    # ------------------------------------------------------------------

    def run(self) -> ExperimentResult:
        """Run the configured experiment and return its measurements."""
        cfg = self.config
        world = self.build()
        sim = world.sim
        is_dirq = cfg.protocol == ProtocolName.DIRQ
        root = world.protocols[cfg.root_id]

        # Workload -------------------------------------------------------------------
        generator = QueryWorkloadGenerator(
            dataset=world.dataset,
            tree=world.tree,
            rng=self.streams.get("workload"),
            sensor_types=(
                [cfg.query_sensor_type] if cfg.query_sensor_type else None
            ),
            sensor_owners=world.sensor_owners,
        )
        generator.set_alive(world.alive)

        # Dynamic-scenario models.  Each draws from its own named stream,
        # so a scenario perturbs no draw of the static components and a
        # scenario trial is a pure function of its config.
        scenario = cfg.scenario
        traffic: Optional[TrafficProfile] = None
        if scenario is not None and scenario.traffic is not None:
            traffic = TrafficProfile(scenario.traffic)
            schedule = traffic.schedule(
                cfg.num_epochs, cfg.epochs_per_day, self.streams.get("scenario-traffic")
            )
        else:
            schedule = periodic_schedule(cfg.num_epochs, cfg.query_period)
        injections: Dict[int, int] = {}
        for epoch in schedule:
            injections[epoch] = injections.get(epoch, 0) + 1

        events_by_epoch: Dict[int, List[TopologyEvent]] = {}
        for event in cfg.topology_events:
            events_by_epoch.setdefault(event.epoch, []).append(event)

        # Churn: the whole death/reactivation timeline is pre-sampled, then
        # applied through the same kill/activate path as scripted events.
        scenario_events_by_epoch: Dict[int, List[TopologyEvent]] = {}
        if scenario is not None and scenario.churn is not None:
            churn_events = ChurnModel(scenario.churn).events(
                sorted(world.alive),
                cfg.root_id,
                cfg.num_epochs,
                self.streams.get("scenario-churn"),
                # Area-failure disc membership is evaluated on the
                # deployment positions; mobility later in the run does not
                # re-draw the blast.
                positions=world.topology.positions,
            )
            for epoch, kind, nid in churn_events:
                scenario_events_by_epoch.setdefault(epoch, []).append(
                    TopologyEvent(epoch=epoch, kind=kind, node_id=nid)
                )

        mobility: Optional[MobilityModel] = None
        if scenario is not None and scenario.mobility is not None:
            mobility = MobilityModel(scenario.mobility, cfg.area_size)
            mobility.initialise(
                world.topology.positions,
                cfg.root_id,
                self.streams.get("scenario-mobility"),
            )

        energy_cfg = scenario.energy if scenario is not None else None
        drained: Dict[NodeId, float] = {nid: 0.0 for nid in world.batteries}

        def activate(node_id: NodeId) -> None:
            """Reactivate a node, checkpointing its ledger for the fresh battery.

            Without the checkpoint, energy the node spent between the last
            energy check and its death would be debited from the *new*
            battery at the next check -- a battery swap must not inherit
            the old battery's tail spend.  Activating an already-alive node
            is a complete no-op (no recharge, no checkpoint): its unchanged
            battery still owes every unit since the last check.
            """
            if node_id in world.alive:
                return
            self._apply_activation(world, node_id)
            if node_id in drained:
                drained[node_id] = world.ledger.node(node_id).total_cost()

        applied_events: List[tuple] = []
        num_relinks = 0

        # Reference costs ---------------------------------------------------------------
        flooding_per_query = flooding_cost_general(
            len(world.alive), world.channel.num_links
        )
        if is_dirq:
            root.set_network_size(len(world.alive))
            root.set_flooding_cost(flooding_per_query)

        recorder = UpdateRateRecorder(world.ledger, cfg.window_epochs)
        per_query_costs: List[float] = []
        atc_history: Dict[int, List[float]] = {}
        num_queries = 0

        # Hot-loop caches.  The alive set only changes on scripted topology
        # events, so the sorted protocol list is rebuilt there instead of
        # re-sorting (and re-indexing the protocol dict) every epoch.  The
        # boundary drains go through Simulator.run_until, whose cached head
        # time makes the no-pending-events case O(1) -- the common case for
        # epochs without protocol traffic.
        run_until = sim.run_until
        alive_protocols = [
            world.protocols[nid] for nid in sorted(world.alive)
        ]
        epochs_per_hour = cfg.dirq.epochs_per_hour
        window_epochs = cfg.window_epochs

        # Columnar epoch tick (tick_method="columnar"): one numpy pass per
        # sensor type instead of the per-node on_epoch loop, bit-identical
        # by construction (see repro.experiments.columnar).  Flooding has
        # no sampling loop to vectorise, so the flag only affects DirQ.
        columnar: Optional[ColumnarTick] = None
        if is_dirq and cfg.tick_method == "columnar":
            columnar = ColumnarTick(world.dataset, cfg.dirq)
            columnar.set_protocols(alive_protocols)
            # Columnar mode also opts the MAC layer into steady-state beacon
            # batching: provably-identical beacon ticks skip frame and
            # delivery-event construction (see LMACProtocol._try_fast_beacon).
            for mac in world.macs.values():
                mac.fast_beacons = True

        # Phase profiling ("full" instrumentation only).  ``begin`` both
        # opens a phase and closes the previous one, so the loop below
        # needs no end() calls; the ``profiling`` guard keeps the
        # uninstrumented hot loop at one bool test per section.
        phases = sim.instrumentation.phases
        profiling = phases.enabled
        begin_phase = phases.begin

        for epoch in range(cfg.num_epochs):
            if profiling:
                begin_phase("mac")
            run_until(float(epoch))

            if profiling:
                begin_phase("scenario-hooks")
            topology_changed = False

            # Scripted topology dynamics (from the config).
            events_now = events_by_epoch.get(epoch)
            if events_now:
                for event in events_now:
                    if event.kind == TopologyEvent.KILL:
                        self._apply_kill(world, event.node_id)
                    else:
                        activate(event.node_id)
                topology_changed = True

            # Scenario churn events; only *effective* transitions (a kill of
            # an alive node, an activation of a dead one) are recorded as
            # scenario telemetry.
            scenario_now = scenario_events_by_epoch.get(epoch)
            if scenario_now:
                for event in scenario_now:
                    if event.kind == TopologyEvent.KILL:
                        if event.node_id in world.alive:
                            self._apply_kill(world, event.node_id)
                            applied_events.append(
                                (epoch, TopologyEvent.KILL, event.node_id)
                            )
                            topology_changed = True
                    elif event.node_id not in world.alive:
                        activate(event.node_id)
                        applied_events.append(
                            (epoch, TopologyEvent.ACTIVATE, event.node_id)
                        )
                        topology_changed = True

            # Mobility: advance positions and re-derive links and tree.
            if (
                mobility is not None
                and epoch > 0
                and epoch % scenario.mobility.relink_period == 0
            ):
                if profiling:
                    begin_phase("tree-repair")
                self._apply_relink(world, mobility)
                num_relinks += 1
                topology_changed = True
                if profiling:
                    begin_phase("scenario-hooks")

            # Heterogeneous energy: drain each battery by its node's ledger
            # cost since the last check; depletion kills the node exactly
            # like a scripted failure.
            if (
                world.batteries
                and epoch > 0
                and epoch % energy_cfg.check_period == 0
            ):
                for nid in sorted(world.alive):
                    if nid == cfg.root_id:
                        continue
                    battery = world.batteries.get(nid)
                    if battery is None:
                        continue
                    total = world.ledger.node(nid).total_cost()
                    delta = total - drained[nid]
                    if delta > 0:
                        drained[nid] = total
                        battery.draw(delta)
                    if battery.depleted:
                        self._apply_kill(world, nid)
                        applied_events.append((epoch, TopologyEvent.KILL, nid))
                        topology_changed = True

            if topology_changed:
                generator.set_tree(world.tree)
                generator.set_alive(world.alive)
                if is_dirq:
                    root.set_network_size(len(world.alive))
                    flooding_per_query = flooding_cost_general(
                        len(world.alive), world.channel.num_links
                    )
                    root.set_flooding_cost(flooding_per_query)
                alive_protocols = [
                    world.protocols[nid] for nid in sorted(world.alive)
                ]
                if columnar is not None:
                    columnar.set_protocols(alive_protocols)

            # Hourly EHr estimate (DirQ only).
            if is_dirq and epoch % epochs_per_hour == 0:
                if profiling:
                    begin_phase("protocol-tick")
                root.start_new_hour(epoch)

            # Per-epoch sensing and range maintenance.
            if profiling:
                begin_phase("sample")
            if columnar is not None:
                columnar.tick(epoch)
            else:
                for proto in alive_protocols:
                    proto.on_epoch(epoch)
            if profiling:
                begin_phase("channel")
            run_until(epoch + 0.5)

            # Query injections scheduled for this epoch.
            if profiling:
                begin_phase("protocol-tick")
            for _ in range(injections.get(epoch, 0)):
                target_coverage = (
                    traffic.coverage_at(epoch, cfg.num_epochs, cfg.target_coverage)
                    if traffic is not None
                    else cfg.target_coverage
                )
                generated = generator.generate(
                    epoch, target_coverage, cfg.query_sensor_type
                )
                query = generated.query
                sources, should = evaluate_query(
                    world.dataset,
                    world.tree,
                    query,
                    epoch,
                    world.sensor_owners,
                    world.alive,
                )
                world.audit.register_query(
                    query,
                    sources,
                    should,
                    epoch,
                    population=max(1, len(world.alive) - 1),
                )
                cost_kind = QUERY_KIND if is_dirq else "flood"
                before = world.ledger.total_cost([cost_kind])
                root.inject_query(query)
                if profiling:
                    begin_phase("channel")
                run_until(epoch + 0.95)
                if profiling:
                    begin_phase("protocol-tick")
                after = world.ledger.total_cost([cost_kind])
                per_query_costs.append(after - before)
                if is_dirq:
                    root.observe_query_cost(after - before)
                num_queries += 1

            # ATC telemetry (sampled once per window).
            if is_dirq and (epoch + 1) % window_epochs == 0:
                for proto in alive_protocols:
                    if getattr(proto, "atc", None) is not None:
                        stype = (
                            cfg.query_sensor_type
                            or world.dataset.sensor_types[0]
                        )
                        atc_history.setdefault(proto.node_id, []).append(
                            proto.atc.delta_percent(stype)
                        )

            # Fig. 6 window bookkeeping.
            if (epoch + 1) % window_epochs == 0:
                recorder.on_window_end(epoch + 1 - window_epochs)

        if profiling:
            begin_phase("channel")
        sim.run_until(float(cfg.num_epochs))
        if columnar is not None:
            # Fold deferred suppression / sampling counters back into the
            # protocol objects before anything reads them.
            columnar.finalize()
        if profiling:
            phases.end()

        instrumentation = sim.instrumentation
        telemetry: Optional[dict] = None
        if instrumentation.enabled:
            if instrumentation.metrics.enabled:
                self._harvest_metrics(
                    world,
                    num_epochs=cfg.num_epochs,
                    num_relinks=num_relinks,
                    num_scenario_events=len(applied_events),
                    num_queries=num_queries,
                )
            telemetry = {}
            if instrumentation.metrics.enabled:
                telemetry["metrics"] = instrumentation.metrics.snapshot()
            if instrumentation.phases.enabled:
                telemetry["phases"] = instrumentation.phases.snapshot()
            if instrumentation.tracer.enabled:
                telemetry["trace"] = instrumentation.tracer.summary()

        return ExperimentResult(
            config=cfg,
            audit=world.audit,
            ledger=world.ledger,
            tree=world.tree,
            num_queries=num_queries,
            flooding_cost_per_query=flooding_per_query,
            update_series=recorder.series,
            breakdown=cost_breakdown(world.ledger),
            per_query_costs=per_query_costs,
            atc_delta_history=atc_history,
            alive_at_end=set(world.alive),
            num_nodes=cfg.num_nodes,
            scenario_events=applied_events,
            num_relinks=num_relinks,
            telemetry=telemetry,
        )

    def _harvest_metrics(
        self,
        world: SimulationWorld,
        num_epochs: int,
        num_relinks: int,
        num_scenario_events: int,
        num_queries: int,
    ) -> None:
        """Fold every component's plain counters into the metrics registry.

        The components themselves never touch the registry: they keep
        unconditional int counters (cheaper than any enabled-check in
        their hot paths) which this harvest reads once per trial.  Node
        iteration is sorted so snapshots are order-stable regardless of
        dict insertion history.
        """
        metrics = world.sim.instrumentation.metrics
        sim = world.sim
        metrics.inc("engine.events_executed", sim.executed)
        metrics.inc("engine.events_cancelled", sim.cancelled_total)
        metrics.inc("engine.compactions", sim.compactions)
        stats = world.channel.stats
        metrics.inc("channel.broadcasts", stats.broadcasts)
        metrics.inc("channel.unicasts", stats.unicasts)
        metrics.inc("channel.deliveries", stats.deliveries)
        metrics.inc("channel.drops_loss", stats.drops_loss)
        metrics.inc("channel.drops_dead_node", stats.drops_dead_node)
        metrics.inc("channel.drops_no_link", stats.drops_no_link)
        for nid in sorted(world.macs):
            mac = world.macs[nid]
            metrics.inc("mac.beacons_sent", mac.beacons_sent)
            metrics.inc("mac.slot_conflicts", mac.slot_conflicts)
            metrics.inc("mac.slot_elections", mac.slot_elections)
            metrics.observe(
                "mac.slots_occupied", mac.schedule.occupancy_stats()["first_hop"]
            )
        for nid in sorted(world.protocols):
            proto = world.protocols[nid]
            tables = getattr(proto, "tables", None)
            if tables is not None:
                metrics.observe("dirq.table_entries", tables.total_entries())
            # Unrolled rather than looped over (attr, name) pairs: RL501
            # requires metric names to be string literals at the call site.
            if getattr(proto, "updates_sent", 0):
                metrics.inc("dirq.updates_sent", proto.updates_sent)
            if getattr(proto, "updates_suppressed", 0):
                metrics.inc("dirq.updates_suppressed", proto.updates_suppressed)
            if getattr(proto, "queries_received", 0):
                metrics.inc("dirq.queries_received", proto.queries_received)
            if getattr(proto, "queries_forwarded", 0):
                metrics.inc("dirq.queries_forwarded", proto.queries_forwarded)
        metrics.inc("runner.epochs", num_epochs)
        metrics.inc("runner.relinks", num_relinks)
        metrics.inc("runner.scenario_events", num_scenario_events)
        metrics.inc("runner.queries_injected", num_queries)


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Convenience wrapper: build and run one experiment."""
    return ExperimentRunner(config).run()
