"""Resumable experiment campaigns over a declared parameter space.

A :class:`CampaignSpec` declares a whole experiment campaign -- scenarios ×
protocol variants × config sweep axes × replicates -- and expands it
**deterministically** into the same :class:`~repro.experiments.batch.
TrialSpec` cells the grid and scenario CLIs build, so campaign trials share
cache keys (and therefore cached results) with every other front end.

:func:`run_missing` is the whole execution model: expand the spec, ask the
:class:`~repro.experiments.store.ResultsStore` which trials are already
recorded, and run only the gaps through a
:class:`~repro.experiments.batch.BatchRunner`.  Every finished trial is
upserted into the store atomically the moment it completes (the runner's
per-spec progress callback), so a killed process -- Ctrl-C, crash, a downed
host -- loses at most the trials that were in flight, and the next
``--resume`` executes exactly the remainder.  Because the store row is
keyed by config hash, N processes or hosts pointing at one shared store
(and cache directory) drain one trial queue with zero duplicated work.

Determinism contract
--------------------
``CampaignSpec`` expansion is a pure function of the spec (row-major over
scenarios, protocols, sweep points in declared axis order, then
replicates), the campaign id is a content hash of the canonical spec, and
the store export orders rows by identity -- so the final JSON export of a
campaign is byte-identical whether it ran uninterrupted on one worker or
was interrupted and resumed across many.

CLI
---
``python -m repro.experiments.campaign`` with one of ``--new`` /
``--resume`` / ``--status`` / ``--query``; see ``--help`` and
``docs/campaigns.md``.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import re
import sys
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..metrics.report import (
    format_progress,
    format_replicate_table,
    format_table,
)
from ..scenarios.registry import (
    DEFAULT_SCENARIO_EPOCHS,
    get_scenario,
    scenario_names,
)
from .batch import (
    BatchRunner,
    TrialSpec,
    _canonical,
    resolve_cache_dir,
)
from .config import ExperimentConfig
from .grid import PROTOCOLS
from .store import DEFAULT_STORE_NAME, METRIC_COLUMNS, ResultsStore

#: Config fields a sweep axis may range over: every scalar
#: :class:`ExperimentConfig` field.  ``seed`` is excluded (replication owns
#: seed derivation), compound fields (``dirq``, ``scenario``, ...) are
#: excluded because sweep values must stay canonical-JSON scalars, and
#: hash-exempt fields (``instrument``) are excluded because every value of
#: such an axis hashes to the same cache key -- the "axis" would collapse
#: onto one trial.
_SWEEPABLE_FIELDS = frozenset(
    f.name
    for f in dataclasses.fields(ExperimentConfig)
    if f.name not in ("seed",)
) - {
    "dirq",
    "scenario",
    "topology_events",
    "initially_dead",
    "sensor_types",
    "sensors_per_node",
    "phenomena_specs",
    "instrument",
}

_SCALAR_TYPES = (bool, int, float, str)


@dataclasses.dataclass(frozen=True)
class CampaignSpec:
    """A declared parameter space: scenarios × protocols × sweeps × replicates.

    ``sweep`` maps :class:`ExperimentConfig` field names to the values that
    axis ranges over (e.g. ``{"target_coverage": (0.2, 0.4, 0.6)}``); the
    cross product of all axes is applied to every (scenario, protocol)
    pair.  ``num_epochs`` is special-cased through the scenario factory so
    length-proportional scenario dynamics keep their shape, exactly as the
    scenario CLI's ``--epochs`` does.
    """

    name: str
    scenarios: Tuple[str, ...]
    protocols: Tuple[str, ...] = ("dirq",)
    replicates: int = 1
    num_epochs: int = DEFAULT_SCENARIO_EPOCHS
    seed: int = 1
    sweep: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "protocols", tuple(self.protocols))
        sweep = tuple(
            (str(field), tuple(values))
            for field, values in (
                self.sweep.items()
                if isinstance(self.sweep, Mapping)
                else self.sweep
            )
        )
        object.__setattr__(self, "sweep", sweep)
        if not self.name or not self.name.strip():
            raise ValueError("campaign name must be non-empty")
        for kind, names in (
            ("scenario", self.scenarios),
            ("protocol", self.protocols),
        ):
            if not names:
                raise ValueError(f"at least one {kind} is required")
            dupes = sorted({n for n in names if names.count(n) > 1})
            if dupes:
                raise ValueError(
                    f"duplicate {kind} names: {', '.join(dupes)}"
                )
        for scenario in self.scenarios:
            get_scenario(scenario)  # raises KeyError with the catalogue
        for proto in self.protocols:
            if proto not in PROTOCOLS:
                raise KeyError(
                    f"unknown protocol {proto!r}; "
                    f"known: {', '.join(sorted(PROTOCOLS))}"
                )
        if self.replicates < 1:
            raise ValueError("replicates must be >= 1")
        if self.num_epochs < 1:
            raise ValueError("num_epochs must be >= 1")
        seen_fields = set()
        for field, values in sweep:
            if field not in _SWEEPABLE_FIELDS:
                raise ValueError(
                    f"cannot sweep {field!r}; sweepable fields: "
                    f"{', '.join(sorted(_SWEEPABLE_FIELDS))}"
                )
            if field in seen_fields:
                raise ValueError(f"duplicate sweep axis {field!r}")
            seen_fields.add(field)
            if not values:
                raise ValueError(f"sweep axis {field!r} has no values")
            for value in values:
                if not isinstance(value, _SCALAR_TYPES):
                    raise ValueError(
                        f"sweep axis {field!r}: values must be scalars, "
                        f"got {value!r}"
                    )
            if len(set(values)) != len(values):
                raise ValueError(f"sweep axis {field!r} has duplicate values")

    # -- identity ------------------------------------------------------------

    def to_jsonable(self) -> Dict[str, object]:
        """Round-trippable JSON payload (the store's ``spec_json``)."""
        return {
            "name": self.name,
            "scenarios": list(self.scenarios),
            "protocols": list(self.protocols),
            "replicates": self.replicates,
            "num_epochs": self.num_epochs,
            "seed": self.seed,
            "sweep": [
                {"field": field, "values": list(values)}
                for field, values in self.sweep
            ],
        }

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, object]) -> "CampaignSpec":
        return cls(
            name=str(payload["name"]),
            scenarios=tuple(payload["scenarios"]),
            protocols=tuple(payload["protocols"]),
            replicates=int(payload["replicates"]),
            num_epochs=int(payload["num_epochs"]),
            seed=int(payload["seed"]),
            sweep=tuple(
                (str(axis["field"]), tuple(axis["values"]))
                for axis in payload.get("sweep", ())
            ),
        )

    @property
    def spec_json(self) -> str:
        """Canonical JSON of the spec (what the campaign id hashes)."""
        return json.dumps(
            _canonical(self.to_jsonable()), sort_keys=True, separators=(",", ":")
        )

    @property
    def campaign_id(self) -> str:
        """``<name-slug>-<spec-hash>``: stable, content-addressed identity.

        Two invocations declaring the same parameter space resolve to the
        same campaign (and hence resume each other); changing any knob
        yields a fresh campaign that shares only the pickle-cache trials.
        """
        slug = re.sub(r"[^A-Za-z0-9_.-]+", "-", self.name.strip())
        digest = hashlib.sha256(self.spec_json.encode("utf-8")).hexdigest()[:12]
        return f"{slug}-{digest}"

    # -- expansion -----------------------------------------------------------

    def sweep_points(self) -> List[Dict[str, object]]:
        """Cross product of the sweep axes, axes in declared order.

        No axes -> one empty point (the bare scenario × protocol cell).
        """
        points: List[Dict[str, object]] = [{}]
        for field, values in self.sweep:
            points = [
                dict(point, **{field: value})
                for point in points
                for value in values
            ]
        return points

    @property
    def total_trials(self) -> int:
        return (
            len(self.scenarios)
            * len(self.protocols)
            * len(self.sweep_points())
            * self.replicates
        )

    def trial_specs(self) -> List[TrialSpec]:
        """The full expansion: one :class:`TrialSpec` per campaign cell.

        Row-major over scenarios → protocols → sweep points → replicates.
        The ``dirq``, sweep-free cell of a scenario is byte-identical to
        what :func:`repro.scenarios.registry.scenario_spec` (and the grid)
        builds, so campaign trials share cache entries with both; the
        ``campaign`` tag rides along in the spec tags (never the config),
        leaving cache keys untouched.
        """
        campaign_id = self.campaign_id
        specs: List[TrialSpec] = []
        for scenario in self.scenarios:
            definition = get_scenario(scenario)
            for proto in self.protocols:
                transform = PROTOCOLS[proto]
                for point in self.sweep_points():
                    num_epochs = int(point.get("num_epochs", self.num_epochs))
                    config = transform(definition.factory(num_epochs, self.seed))
                    rest = {
                        k: v for k, v in point.items() if k != "num_epochs"
                    }
                    if rest:
                        config = config.replace(**rest)
                    label = f"{scenario}/{proto}"
                    if point:
                        label += " " + " ".join(
                            f"{k}={v}" for k, v in point.items()
                        )
                    base = TrialSpec(
                        label=label,
                        config=config,
                        group="campaign",
                        tags={
                            "campaign": campaign_id,
                            "scenario": scenario,
                            "scenario_kind": definition.kind,
                            "protocol": proto,
                            "sweep": dict(point),
                        },
                    )
                    specs.extend(base.replicates(self.replicates))
        return specs


# ---------------------------------------------------------------------------
# Execution: run only the gaps
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class CampaignStats:
    """Accounting for one :func:`run_missing` call."""

    campaign_id: str
    total: int
    complete_before: int
    scheduled: int
    executed: int = 0
    cached: int = 0
    deduplicated: int = 0
    stored: int = 0
    runtime_seconds: float = 0.0

    @property
    def complete_after(self) -> int:
        return self.complete_before + self.stored


def run_missing(
    spec: CampaignSpec,
    store: ResultsStore,
    runner: Optional[BatchRunner] = None,
    progress=None,
) -> CampaignStats:
    """Execute exactly the campaign trials the store has no record of.

    Registers the campaign (idempotent), diffs the deterministic expansion
    against :meth:`ResultsStore.completed_keys`, and runs only the missing
    specs.  Each trial is upserted into the store the moment it finishes
    (atomically, via the runner's per-spec progress hook -- *before* the
    caller's ``progress`` fires), so interruption at any point loses at
    most the in-flight trials; trials already present in the runner's
    pickle cache (e.g. run earlier by the scenario or grid CLI) are served
    from it without re-execution and recorded in the store all the same.

    On interruption (``KeyboardInterrupt`` or a failing trial) the partial
    accounting is still written to ``runner.last_stats`` and every finished
    trial is in the store; re-raising is deliberate -- the caller decides
    whether "resume later" is an error.
    """
    runner = runner if runner is not None else BatchRunner()
    campaign_id = spec.campaign_id
    store.register_campaign(
        campaign_id, spec.name, spec.spec_json, spec.total_trials
    )
    all_specs = spec.trial_specs()
    done = store.completed_keys(campaign_id)
    missing = [s for s in all_specs if s.key not in done]
    stats = CampaignStats(
        campaign_id=campaign_id,
        total=len(all_specs),
        complete_before=len(all_specs) - len(missing),
        scheduled=len(missing),
    )

    def on_trial(result) -> None:
        store.record_trial(campaign_id, result)
        stats.stored += 1
        if progress is not None:
            progress(result)

    start = time.perf_counter()
    try:
        runner.run(missing, progress=on_trial)
    finally:
        batch_stats = runner.last_stats
        stats.executed = batch_stats.executed
        stats.cached = batch_stats.cached
        stats.deduplicated = batch_stats.deduplicated
        stats.runtime_seconds = time.perf_counter() - start
    return stats


def campaign_status(
    spec: CampaignSpec, store: ResultsStore
) -> List[Tuple[str, str, int, int]]:
    """Per-(scenario, protocol) completion: ``(scenario, protocol, done, total)``.

    Row order follows the spec's declared scenario/protocol order.
    """
    done = store.completed_keys(spec.campaign_id)
    counts: Dict[Tuple[str, str], List[int]] = {}
    for trial in spec.trial_specs():
        cell = (str(trial.tags["scenario"]), str(trial.tags["protocol"]))
        bucket = counts.setdefault(cell, [0, 0])
        bucket[1] += 1
        if trial.key in done:
            bucket[0] += 1
    return [
        (scenario, protocol, done_n, total_n)
        for (scenario, protocol), (done_n, total_n) in counts.items()
    ]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _parse_sweep_value(text: str) -> object:
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for parser in (int, float):
        try:
            return parser(text)
        except ValueError:
            continue
    return text.strip()


def _parse_sweep_args(args: Optional[Sequence[str]]):
    """``--sweep field=v1,v2`` flags -> the spec's sweep tuple."""
    sweep = []
    for item in args or ():
        if "=" not in item:
            raise ValueError(
                f"--sweep expects field=v1,v2,... got {item!r}"
            )
        field, _, values_text = item.partition("=")
        values = tuple(
            _parse_sweep_value(v) for v in values_text.split(",") if v.strip()
        )
        sweep.append((field.strip(), values))
    return tuple(sweep)


def _csv(value: str) -> List[str]:
    return [part.strip() for part in value.split(",") if part.strip()]


def _spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    if args.scenarios is None:
        raise ValueError("--scenarios is required to define a campaign")
    return CampaignSpec(
        name=args.name,
        scenarios=tuple(_csv(args.scenarios)),
        protocols=tuple(_csv(args.protocols)),
        replicates=args.replicates,
        num_epochs=args.epochs,
        seed=args.seed,
        sweep=_parse_sweep_args(args.sweep),
    )


def _resolve_store_path(args: argparse.Namespace) -> Path:
    if args.store is not None:
        return Path(args.store)
    return Path(resolve_cache_dir(args.cache_dir)) / DEFAULT_STORE_NAME


def _print_run_summary(action: str, stats: CampaignStats) -> None:
    print(
        f"campaign {stats.campaign_id} ({action}): "
        f"{stats.complete_before}/{stats.total} trials already stored | "
        f"scheduled {stats.scheduled}: executed {stats.executed}, "
        f"cache-served {stats.cached}, deduplicated {stats.deduplicated} | "
        f"stored now {stats.complete_after}/{stats.total} | "
        f"wall {stats.runtime_seconds:.2f}s"
    )


def _print_status(spec: CampaignSpec, store: ResultsStore) -> int:
    rows = campaign_status(spec, store)
    done = sum(r[2] for r in rows)
    total = sum(r[3] for r in rows)
    print(
        format_table(
            headers=["scenario", "protocol", "done", "total", "progress"],
            rows=[
                (scenario, protocol, d, t, format_progress(d, t))
                for scenario, protocol, d, t in rows
            ],
            title=(
                f"campaign {spec.campaign_id}: "
                f"{format_progress(done, total)} trials complete"
            ),
        )
    )
    return done


def _write_exports(
    args: argparse.Namespace, spec: CampaignSpec, store: ResultsStore
) -> None:
    if args.export:
        payload = store.export_jsonable(spec.campaign_id)
        path = Path(args.export)
        path.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        print(f"JSON export written to {path}")
    if args.markdown:
        groups = store.replicate_groups(spec.campaign_id)
        table = format_replicate_table(
            groups,
            metrics=list(METRIC_COLUMNS),
            title=None,
        )
        text = (
            f"# Campaign `{spec.campaign_id}`\n\n"
            f"{len(spec.scenarios)} scenarios × {len(spec.protocols)} "
            f"protocols × {len(spec.sweep_points())} sweep points × "
            f"{spec.replicates} replicates = {spec.total_trials} trials "
            f"({spec.num_epochs} epochs, seed {spec.seed}).\n\n"
            f"```\n{table}\n```\n"
        )
        Path(args.markdown).write_text(text)
        print(f"markdown report written to {args.markdown}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Resumable experiment campaigns: declare a scenario × protocol "
            "× sweep × replicate space, run only the trials missing from "
            "the results store, and query/export what is recorded."
        )
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--new",
        action="store_true",
        help="register the declared campaign and run it to completion",
    )
    mode.add_argument(
        "--resume",
        action="store_true",
        help=(
            "re-open a registered campaign (--campaign, or the same "
            "defining flags) and run only the missing trials"
        ),
    )
    mode.add_argument(
        "--status",
        action="store_true",
        help=(
            "report per-cell completion of a campaign (--campaign), or "
            "list every registered campaign"
        ),
    )
    mode.add_argument(
        "--query",
        action="store_true",
        help=(
            "print stored trial rows of a campaign (--campaign), "
            "filterable by --scenario/--protocol/--replicate"
        ),
    )
    parser.add_argument(
        "--campaign",
        default=None,
        metavar="ID_OR_NAME",
        help="registered campaign id (or unique name) to operate on",
    )
    parser.add_argument(
        "--name", default="campaign", help="campaign name (default: campaign)"
    )
    parser.add_argument(
        "--scenarios",
        default=None,
        help=(
            "comma-separated registered scenario names "
            f"(registry: {', '.join(scenario_names())})"
        ),
    )
    parser.add_argument(
        "--protocols",
        default="dirq",
        help=(
            "comma-separated protocol variants "
            f"(default: dirq; known: {', '.join(sorted(PROTOCOLS))})"
        ),
    )
    parser.add_argument(
        "--replicates",
        type=int,
        default=1,
        help="independent seeds per cell (default: 1)",
    )
    parser.add_argument(
        "--epochs",
        type=int,
        default=DEFAULT_SCENARIO_EPOCHS,
        help=f"epochs per trial (default: {DEFAULT_SCENARIO_EPOCHS})",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="base master seed (default: 1)"
    )
    parser.add_argument(
        "--sweep",
        action="append",
        default=None,
        metavar="FIELD=V1,V2,...",
        help=(
            "add a config sweep axis (repeatable), e.g. "
            "--sweep target_coverage=0.2,0.4,0.6"
        ),
    )
    parser.add_argument(
        "--scenario",
        default=None,
        help="with --query: filter rows to one scenario",
    )
    parser.add_argument(
        "--protocol",
        default=None,
        help="with --query: filter rows to one protocol variant",
    )
    parser.add_argument(
        "--replicate",
        type=int,
        default=None,
        help="with --query: filter rows to one replicate index",
    )
    parser.add_argument(
        "--store",
        default=None,
        help=(
            "results store path (default: "
            f"<cache-dir>/{DEFAULT_STORE_NAME})"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "trial pickle cache directory (default: $REPRO_CACHE_DIR or "
            ".repro-cache); campaigns compose with the scenario/grid CLIs "
            "through it"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: CPU count)",
    )
    parser.add_argument(
        "--export",
        default=None,
        metavar="PATH",
        help="write the deterministic JSON export of the stored results",
    )
    parser.add_argument(
        "--markdown",
        default=None,
        metavar="PATH",
        help="write the replicate-summary table as a markdown report",
    )
    parser.add_argument(
        "--require-complete",
        action="store_true",
        help=(
            "exit non-zero unless every declared trial is in the store "
            "(CI guard)"
        ),
    )
    args = parser.parse_args(argv)

    store_path = _resolve_store_path(args)
    with ResultsStore(store_path) as store:
        # --status with no campaign reference: list everything and exit.
        if args.status and args.campaign is None and args.scenarios is None:
            rows = [
                (
                    row.campaign_id,
                    row.name,
                    store.count(row.campaign_id),
                    row.total_trials,
                    format_progress(
                        store.count(row.campaign_id), row.total_trials
                    ),
                )
                for row in store.campaigns()
            ]
            if not rows:
                print(f"store {store_path}: no campaigns registered")
                return 1 if args.require_complete else 0
            print(
                format_table(
                    headers=["campaign", "name", "done", "total", "progress"],
                    rows=rows,
                    title=f"store {store_path}: {len(rows)} campaigns",
                )
            )
            incomplete = any(done != total for _, _, done, total, _ in rows)
            return 1 if (args.require_complete and incomplete) else 0

        # Resolve the campaign spec: by reference from the store, or from
        # the defining flags.
        try:
            if args.campaign is not None:
                row = store.resolve_campaign(args.campaign)
                spec = CampaignSpec.from_jsonable(row.spec_jsonable)
            else:
                spec = _spec_from_args(args)
        except (KeyError, ValueError) as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2

        campaign_id = spec.campaign_id
        if args.new and store.campaign(campaign_id) is not None:
            print(
                f"error: campaign {campaign_id} already exists; "
                "use --resume (or --status) instead",
                file=sys.stderr,
            )
            return 2
        if args.resume and store.campaign(campaign_id) is None:
            print(
                f"error: campaign {campaign_id} is not registered in "
                f"{store_path}; use --new to create it",
                file=sys.stderr,
            )
            return 2

        if args.new or args.resume:
            from ..obs.progress import RunTelemetry

            telemetry = RunTelemetry()
            runner = BatchRunner(
                max_workers=args.workers,
                cache_dir=resolve_cache_dir(args.cache_dir),
                telemetry=telemetry,
            )
            action = "new" if args.new else "resume"
            try:
                stats = run_missing(spec, store, runner=runner)
            except KeyboardInterrupt:
                done = store.count(campaign_id)
                print()
                print(
                    f"interrupted: campaign {campaign_id} has "
                    f"{done}/{spec.total_trials} trials stored in "
                    f"{store_path}; finish it with\n"
                    f"  python -m repro.experiments.campaign --resume "
                    f"--campaign {campaign_id} --store {store_path}",
                    file=sys.stderr,
                )
                return 130
            _print_run_summary(action, stats)
            print(telemetry.render())
            print()
            _print_status(spec, store)
            _write_exports(args, spec, store)
        elif args.status:
            done = _print_status(spec, store)
            _write_exports(args, spec, store)
            if args.require_complete and done != spec.total_trials:
                print(
                    f"FAIL: --require-complete but only {done}/"
                    f"{spec.total_trials} trials stored",
                    file=sys.stderr,
                )
                return 1
            return 0
        elif args.query:
            rows = store.query(
                campaign_id,
                scenario=args.scenario,
                protocol=args.protocol,
                replicate=args.replicate,
            )
            print(
                format_table(
                    headers=["scenario", "protocol", "sweep", "rep"]
                    + list(METRIC_COLUMNS),
                    rows=[
                        [
                            row["scenario"],
                            row["protocol"],
                            row["sweep_json"],
                            row["replicate"],
                        ]
                        + [float(row[name]) for name in METRIC_COLUMNS]
                        for row in rows
                    ],
                    float_format="{:.3f}",
                    title=(
                        f"campaign {campaign_id}: {len(rows)} stored trials"
                    ),
                )
            )
            _write_exports(args, spec, store)

        if args.require_complete:
            done = store.count(campaign_id)
            if done != spec.total_trials:
                print(
                    f"FAIL: --require-complete but only {done}/"
                    f"{spec.total_trials} trials stored",
                    file=sys.stderr,
                )
                return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
