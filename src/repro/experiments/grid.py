"""Scenario × protocol evaluation grid: the whole space in one matrix.

The scenario CLI (:mod:`repro.scenarios.run`) answers "how does *one*
scenario degrade DirQ"; this module answers the question the ROADMAP
north-star implies: *how does each protocol variant degrade across the
whole scenario space?*  It crosses any subset of the registry's named
scenarios with the protocol variants (fixed-δ DirQ, Adaptive Threshold
Control, flooding -- the existing ``with_atc()`` / ``with_flooding()``
config transforms), expands the cross product into replicated
:class:`~repro.experiments.batch.TrialSpec` cells, runs everything through
one :meth:`~repro.experiments.batch.BatchRunner.run_replicated` call, and
renders matrix reports: per-cell ``mean ± CI`` accuracy / energy / cost
tables, per-cell recovery times, and per-scenario degradation rows against
the same-protocol static baseline
(:func:`repro.metrics.resilience.grid_degradation`).

Cache composition
-----------------
The ``dirq`` cell of a scenario is *exactly* the config that
:func:`repro.scenarios.registry.scenario_spec` (and hence
``python -m repro.scenarios.run``) builds -- same factory, no transform --
so a cell already simulated by the scenario CLI is served from cache here,
and vice versa.  The other protocol variants change the config (and
therefore the cache key) only through the documented transforms.

Determinism
-----------
The JSON and markdown exports contain replicate groups (provenance-free)
and pure functions of the deterministic trial payloads, so a grid export
is bit-identical across worker counts, cache states, and repeated runs;
``--require-cached`` turns the 0-trial warm-cache re-run into an exit code
for CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..metrics.report import (
    format_markdown_matrix,
    format_matrix,
    format_table,
)
from ..metrics.resilience import (
    DEFAULT_RECOVERY_TOLERANCE,
    format_grid_degradation_table,
    grid_degradation,
    grid_degradation_to_jsonable,
    recovery_summary,
)
from ..metrics.stats import DEFAULT_CONFIDENCE, ReplicateGroup
from ..scenarios.registry import DEFAULT_SCENARIO_EPOCHS, get_scenario
from ..scenarios.run import DEFAULT_BASELINE, format_catalogue
from .batch import BatchRunner, BatchStats, TrialSpec, resolve_cache_dir
from .config import ExperimentConfig
from .store import DEFAULT_STORE_NAME, STORE_METRICS, ResultsStore

#: Protocol variants a grid can cross scenarios with: name -> (config
#: transform, ``--list`` description).  ``dirq`` is the identity -- the
#: registry configs already run fixed-δ DirQ -- which is what makes grid
#: cells and ``repro.scenarios.run`` trials share cache entries.  The
#: transform map, the default column order, and the catalogue rows are all
#: derived from this one table.
_PROTOCOL_DEFS: Dict[
    str, Tuple[Callable[[ExperimentConfig], ExperimentConfig], str]
] = {
    "dirq": (lambda cfg: cfg, "registry config as-is (fixed-δ DirQ)"),
    "atc": (
        lambda cfg: cfg.with_atc(),
        "config.with_atc() -- Adaptive Threshold Control",
    ),
    "flooding": (
        lambda cfg: cfg.with_flooding(),
        "config.with_flooding() -- flooding baseline",
    ),
}

PROTOCOLS: Dict[str, Callable[[ExperimentConfig], ExperimentConfig]] = {
    name: transform for name, (transform, _) in _PROTOCOL_DEFS.items()
}

DEFAULT_PROTOCOLS = tuple(_PROTOCOL_DEFS)

#: Default JSON export path.  Lives under the gitignored ``artifacts/``
#: directory so ad-hoc grid runs never leave stray files at the repo root.
DEFAULT_JSON_PATH = "artifacts/grid.json"

#: Grid metrics: every default replicate metric plus the total radio energy
#: of the run (protocol-agnostic, unlike ``total_dirq_cost``).  This is the
#: store's metric set by construction -- the campaign store persists
#: exactly these scalars as columns, which is what lets ``--from-campaign``
#: render the same matrices without touching the pickle cache.
GRID_METRICS = dict(STORE_METRICS)

#: Metrics rendered as scenario×protocol matrices (one table each).
MATRIX_METRICS = ("mean_accuracy", "total_energy", "cost_ratio")

#: One (scenario, protocol) cell of a finished grid.
GridCells = Dict[Tuple[str, str], ReplicateGroup]


def grid_specs(
    scenarios: Sequence[str],
    protocols: Sequence[str],
    num_epochs: int = DEFAULT_SCENARIO_EPOCHS,
    seed: int = 1,
) -> List[TrialSpec]:
    """One :class:`TrialSpec` per (scenario, protocol) cell, row-major.

    Raises ``KeyError`` for unknown scenario or protocol names and
    ``ValueError`` for duplicates (duplicate cells would fold into one
    replicate group with double-counted values and a falsely narrow CI).
    The ``dirq`` cell's config is byte-identical to the registry factory's
    output, so its cache key matches :func:`scenario_spec`'s.
    """
    for kind, names in (("scenario", scenarios), ("protocol", protocols)):
        dupes = sorted({n for n in names if list(names).count(n) > 1})
        if dupes:
            raise ValueError(f"duplicate {kind} names: {', '.join(dupes)}")
    specs: List[TrialSpec] = []
    for name in scenarios:
        definition = get_scenario(name)
        for proto in protocols:
            if proto not in PROTOCOLS:
                raise KeyError(
                    f"unknown protocol {proto!r}; "
                    f"known: {', '.join(sorted(PROTOCOLS))}"
                )
            config = PROTOCOLS[proto](definition.factory(num_epochs, seed))
            specs.append(
                TrialSpec(
                    label=f"{name}/{proto}",
                    config=config,
                    group="grid",
                    tags={
                        "scenario": name,
                        "scenario_kind": definition.kind,
                        "protocol": proto,
                    },
                )
            )
    return specs


def run_grid(
    scenarios: Sequence[str],
    protocols: Sequence[str],
    replicates: int = 3,
    num_epochs: int = DEFAULT_SCENARIO_EPOCHS,
    seed: int = 1,
    runner: Optional[BatchRunner] = None,
    confidence: float = DEFAULT_CONFIDENCE,
) -> Tuple[GridCells, BatchStats]:
    """Run the full grid replicated; returns cells keyed ``(scenario, protocol)``.

    Cell order follows the (scenarios × protocols) cross product row-major,
    so reports and exports are independent of worker count and cache state.
    """
    specs = grid_specs(scenarios, protocols, num_epochs=num_epochs, seed=seed)
    runner = runner if runner is not None else BatchRunner()
    groups = runner.run_replicated(
        specs, n=replicates, metrics=GRID_METRICS, confidence=confidence
    )
    cells: GridCells = {}
    for group in groups:
        key = (str(group.tags["scenario"]), str(group.tags["protocol"]))
        cells[key] = group
    return cells, runner.last_stats


def campaign_cells(
    store: ResultsStore, campaign_ref: str
) -> Tuple[GridCells, List[str], List[str]]:
    """Grid cells rebuilt from a campaign's results store.

    Resolves ``campaign_ref`` (id or unique name), folds the stored scalar
    metrics into :class:`ReplicateGroup` cells keyed ``(scenario,
    protocol)``, and returns the scenario/protocol axes in the campaign
    spec's declared order.  Raises ``ValueError`` for campaigns with more
    than one sweep point -- a swept campaign is several grids, and which
    one to render is not this function's call (filter with
    ``repro.experiments.campaign --query`` instead).

    Recovery matrices need the full per-epoch update series, which the
    store deliberately does not persist, so store-backed grids render
    recovery cells as ``-``.
    """
    row = store.resolve_campaign(campaign_ref)
    spec = row.spec_jsonable
    groups = store.replicate_groups(row.campaign_id)
    sweeps = {json.dumps(g.tags["sweep"], sort_keys=True) for g in groups}
    if len(sweeps) > 1:
        raise ValueError(
            f"campaign {row.campaign_id} has {len(sweeps)} sweep points; "
            "a grid renders exactly one -- query the store per point "
            "instead"
        )
    cells: GridCells = {}
    for group in groups:
        cells[(str(group.tags["scenario"]), str(group.tags["protocol"]))] = group
    scenarios = [s for s in spec["scenarios"] if any(k[0] == s for k in cells)]
    protocols = [p for p in spec["protocols"] if any(k[1] == p for k in cells)]
    return cells, scenarios, protocols


def grid_recovery(
    cells: GridCells,
    window_epochs: int = 100,
    tolerance: float = DEFAULT_RECOVERY_TOLERANCE,
):
    """Per-cell recovery summaries (None where no disruption/recovery)."""
    return {
        key: recovery_summary(
            group.results, window_epochs=window_epochs, tolerance=tolerance
        )
        for key, group in cells.items()
    }


def _metric_cell(cells: GridCells, metric: str, float_format: str = "{:.3f}"):
    def cell(scenario: str, protocol: str) -> str:
        group = cells.get((scenario, protocol))
        if group is None or metric not in group.metrics:
            return "-"
        return group.metrics[metric].format(float_format)

    return cell


def _recovery_cell(recovery):
    def cell(scenario: str, protocol: str) -> str:
        summary = recovery.get((scenario, protocol))
        return "-" if summary is None else summary.format("{:.0f}")

    return cell


def format_grid_report(
    cells: GridCells,
    scenarios: Sequence[str],
    protocols: Sequence[str],
    recovery,
    degradation,
    baseline: str,
    markdown: bool = False,
) -> str:
    """The full matrix report (text tables, or markdown with ``markdown=True``)."""
    blocks: List[str] = []
    for metric in MATRIX_METRICS:
        cell = _metric_cell(cells, metric)
        if markdown:
            blocks.append(
                f"## {metric} (mean ± CI)\n\n"
                + format_markdown_matrix("scenario", scenarios, protocols, cell)
            )
        else:
            blocks.append(
                format_matrix(
                    "scenario",
                    scenarios,
                    protocols,
                    cell,
                    title=f"{metric}: mean ± CI half-width per cell",
                )
            )
    cell = _recovery_cell(recovery)
    if markdown:
        blocks.append(
            "## recovery after first disruption (epochs)\n\n"
            + format_markdown_matrix("scenario", scenarios, protocols, cell)
        )
    else:
        blocks.append(
            format_matrix(
                "scenario",
                scenarios,
                protocols,
                cell,
                title="recovery after first disruption (epochs; '-' = n/a)",
            )
        )
    if degradation:
        table = format_grid_degradation_table(
            degradation,
            title=None if markdown else (
                f"degradation vs {baseline} (same-protocol column, "
                "replicate means)"
            ),
        )
        if markdown:
            blocks.append(f"## degradation vs `{baseline}`\n\n```\n{table}\n```")
        else:
            blocks.append(table)
    return "\n\n".join(blocks)


def grid_to_jsonable(
    cells: GridCells,
    scenarios: Sequence[str],
    protocols: Sequence[str],
    recovery,
    degradation,
    baseline: str,
) -> Dict[str, object]:
    """Deterministic JSON payload of a finished grid (no provenance fields)."""
    return {
        "scenarios": list(scenarios),
        "protocols": list(protocols),
        "cells": [
            {
                "scenario": scenario,
                "protocol": protocol,
                **cells[(scenario, protocol)].to_dict(),
                "recovery": (
                    None
                    if recovery.get((scenario, protocol)) is None
                    else recovery[(scenario, protocol)].to_dict()
                ),
            }
            for scenario in scenarios
            for protocol in protocols
            if (scenario, protocol) in cells
        ],
        "degradation": grid_degradation_to_jsonable(degradation, baseline),
    }


def _print_catalogue() -> None:
    print(format_catalogue(title="registered scenarios (rows)"))
    print()
    print(
        format_table(
            headers=["protocol", "transform"],
            rows=[
                (name, description)
                for name, (_, description) in _PROTOCOL_DEFS.items()
            ],
            title="protocol variants (columns)",
        )
    )


def _csv(value: str) -> List[str]:
    """Split a comma list, trimming blanks and deduplicating in order."""
    return list(
        dict.fromkeys(part.strip() for part in value.split(",") if part.strip())
    )


def _main_from_campaign(args) -> int:
    """The ``--from-campaign`` path: matrices straight from the store."""
    store_path = (
        Path(args.store)
        if args.store is not None
        else Path(resolve_cache_dir(args.cache_dir)) / DEFAULT_STORE_NAME
    )
    if not store_path.is_file():
        print(f"error: results store {store_path} does not exist", file=sys.stderr)
        return 2
    with ResultsStore(store_path) as store:
        try:
            cells, scenarios, protocols = campaign_cells(
                store, args.from_campaign
            )
        except (KeyError, ValueError) as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
        campaign_id = store.resolve_campaign(args.from_campaign).campaign_id
    if not cells:
        print(
            f"error: campaign {campaign_id} has no stored trials yet",
            file=sys.stderr,
        )
        return 2

    baseline = args.baseline
    with_baseline = baseline != "none" and any(
        scenario == baseline for scenario, _ in cells
    )
    recovery: Dict[Tuple[str, str], object] = {}  # series not stored -> '-'
    degradation = (
        grid_degradation(cells, baseline) if with_baseline else []
    )

    n_values = sorted({group.n for group in cells.values()})
    print(
        f"scenario grid from campaign {campaign_id} (store {store_path}): "
        f"{len(scenarios)} scenarios x {len(protocols)} protocols | "
        f"{len(cells)} cells, replicates per cell: "
        f"{'/'.join(str(n) for n in n_values)} | 0 trials executed"
    )
    print()
    print(
        format_grid_report(
            cells,
            scenarios,
            protocols,
            recovery,
            degradation,
            baseline=baseline,
        )
    )

    payload = {
        "campaign_id": campaign_id,
        "confidence": DEFAULT_CONFIDENCE,
        **grid_to_jsonable(
            cells,
            scenarios,
            protocols,
            recovery,
            degradation,
            baseline=baseline if with_baseline else "",
        ),
    }
    json_path = Path(args.json_path or DEFAULT_JSON_PATH)
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    print()
    print(f"JSON export written to {json_path}")

    if args.markdown_path:
        md = (
            "# Scenario × protocol grid\n\n"
            f"Rendered from campaign `{campaign_id}` "
            f"(results store, no trials executed).\n\n"
            + format_grid_report(
                cells,
                scenarios,
                protocols,
                recovery,
                degradation,
                baseline=baseline,
                markdown=True,
            )
            + "\n"
        )
        Path(args.markdown_path).write_text(md)
        print(f"markdown report written to {args.markdown_path}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Run a scenario × protocol evaluation grid with N replicates "
            "per cell and render matrix reports with degradation vs the "
            "static baseline."
        )
    )
    parser.add_argument(
        "--scenarios",
        default=None,
        help="comma-separated registered scenario names (see --list)",
    )
    parser.add_argument(
        "--protocols",
        default=",".join(DEFAULT_PROTOCOLS),
        help=(
            "comma-separated protocol variants "
            f"(default: {','.join(DEFAULT_PROTOCOLS)})"
        ),
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the scenario catalogue and protocol variants, then exit",
    )
    parser.add_argument(
        "--replicates",
        type=int,
        default=3,
        help="independent seeds per cell (default: 3)",
    )
    parser.add_argument(
        "--epochs",
        type=int,
        default=DEFAULT_SCENARIO_EPOCHS,
        help=(
            f"epochs per trial (default: {DEFAULT_SCENARIO_EPOCHS}; "
            "paper-length: 20000)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="base master seed (default: 1)"
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=(
            "scenario the degradation rows compare against, per protocol "
            f"column (default: {DEFAULT_BASELINE}; appended to the grid "
            "when absent; 'none' disables the comparison)"
        ),
    )
    parser.add_argument(
        "--recovery-window",
        type=int,
        default=100,
        help="window (epochs) for the recovery-time metric (default: 100)",
    )
    parser.add_argument(
        "--recovery-tolerance",
        type=float,
        default=DEFAULT_RECOVERY_TOLERANCE,
        help=(
            "accuracy slack for declaring recovery "
            f"(default: {DEFAULT_RECOVERY_TOLERANCE})"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: CPU count)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "result cache directory (default: $REPRO_CACHE_DIR or "
            ".repro-cache); cells shared with repro.scenarios.run are "
            "served from cache"
        ),
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help=f"JSON export path (default: {DEFAULT_JSON_PATH})",
    )
    parser.add_argument(
        "--markdown",
        dest="markdown_path",
        default=None,
        help="also write the matrix report as a markdown file",
    )
    parser.add_argument(
        "--require-cached",
        action="store_true",
        help="exit non-zero unless the grid executed zero trials (CI check)",
    )
    parser.add_argument(
        "--from-campaign",
        default=None,
        metavar="ID_OR_NAME",
        help=(
            "render the matrices from a campaign's results store instead "
            "of running trials (no pickle cache touched; recovery renders "
            "as '-')"
        ),
    )
    parser.add_argument(
        "--store",
        default=None,
        help=(
            "with --from-campaign: results store path (default: "
            f"<cache-dir>/{DEFAULT_STORE_NAME})"
        ),
    )
    args = parser.parse_args(argv)

    if args.list:
        _print_catalogue()
        return 0
    if args.from_campaign is not None:
        return _main_from_campaign(args)
    if args.store is not None:
        parser.error("--store only makes sense with --from-campaign")
    if args.scenarios is None:
        parser.error("--scenarios is required (or use --list)")
    if args.replicates < 1:
        parser.error("--replicates must be >= 1")
    if args.recovery_window < 1:
        parser.error("--recovery-window must be >= 1")
    if args.recovery_tolerance < 0:
        parser.error("--recovery-tolerance must be non-negative")

    scenarios = _csv(args.scenarios)
    protocols = _csv(args.protocols)
    if not scenarios:
        parser.error("--scenarios must name at least one scenario")
    if not protocols:
        parser.error("--protocols must name at least one protocol")

    baseline = args.baseline
    with_baseline = baseline != "none"
    if with_baseline and baseline not in scenarios:
        scenarios = scenarios + [baseline]

    cache_dir = resolve_cache_dir(args.cache_dir)
    runner = BatchRunner(max_workers=args.workers, cache_dir=cache_dir)
    try:
        cells, stats = run_grid(
            scenarios,
            protocols,
            replicates=args.replicates,
            num_epochs=args.epochs,
            seed=args.seed,
            runner=runner,
        )
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2

    recovery = grid_recovery(
        cells,
        window_epochs=args.recovery_window,
        tolerance=args.recovery_tolerance,
    )
    degradation = (
        grid_degradation(cells, baseline) if with_baseline else []
    )

    print(
        f"scenario grid: {len(scenarios)} scenarios x {len(protocols)} "
        f"protocols ({args.epochs} epochs) | {len(cells)} cells x "
        f"{args.replicates} replicates = {stats.total} trials | "
        f"executed {stats.executed}, cached {stats.cached}, "
        f"deduplicated {stats.deduplicated} | workers {stats.workers} | "
        f"wall {stats.runtime_seconds:.2f}s"
    )
    print()
    print(
        format_grid_report(
            cells,
            scenarios,
            protocols,
            recovery,
            degradation,
            baseline=baseline,
        )
    )

    payload = {
        "epochs": args.epochs,
        "seed": args.seed,
        "replicates": args.replicates,
        "confidence": DEFAULT_CONFIDENCE,
        **grid_to_jsonable(
            cells,
            scenarios,
            protocols,
            recovery,
            degradation,
            baseline=baseline if with_baseline else "",
        ),
    }
    json_path = Path(args.json_path or DEFAULT_JSON_PATH)
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    print()
    print(f"JSON export written to {json_path}")

    if args.markdown_path:
        md = (
            "# Scenario × protocol grid\n\n"
            f"{len(scenarios)} scenarios × {len(protocols)} protocols, "
            f"{args.epochs} epochs, {args.replicates} replicates per cell, "
            f"seed {args.seed}.\n\n"
            + format_grid_report(
                cells,
                scenarios,
                protocols,
                recovery,
                degradation,
                baseline=baseline,
                markdown=True,
            )
            + "\n"
        )
        Path(args.markdown_path).write_text(md)
        print(f"markdown report written to {args.markdown_path}")

    if args.require_cached and stats.executed != 0:
        print(
            f"FAIL: --require-cached but {stats.executed} trials executed "
            "(expected 0)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
