"""Reproduction of the paper's headline claim (abstract / §7.2).

"Our results show that DirQ spends between 45% and 55% the cost of
flooding" while suffering only a small accuracy overshoot.  This experiment
runs DirQ with the Adaptive Threshold Control and the flooding baseline on
the *same* topology, dataset and query workload (same seed), and compares
their total costs and accuracy.
"""

from __future__ import annotations

import dataclasses
import json
from statistics import fmean
from typing import List, Optional

from ..metrics.cost import CostComparison, compare_costs
from ..metrics.report import format_key_values, format_replicate_table
from ..metrics.stats import ReplicateGroup, groups_to_jsonable
from .batch import DEFAULT_REPLICATES, BatchRunner, TrialResult, TrialSpec, run_sweep_replicated
from .config import ExperimentConfig
from .scenarios import paper_network

DIRQ_LABEL = "dirq-atc"
FLOODING_LABEL = "flooding"


@dataclasses.dataclass(frozen=True)
class HeadlineResult:
    """DirQ-vs-flooding comparison on an identical workload.

    With ``replicates > 1`` the comparison aggregates per-replicate
    comparisons (replicate ``i`` of DirQ and of flooding share the same
    derived seed, hence the same workload); :attr:`dirq` / :attr:`flooding`
    hold replicate 0 (the base seed) and :attr:`stats` the per-protocol
    confidence intervals.
    """

    dirq: TrialResult
    flooding: TrialResult
    comparison: CostComparison
    dirq_overshoot_pp: float
    dirq_completeness: float
    stats: Optional[List[ReplicateGroup]] = None
    replicates: int = 1

    @property
    def cost_ratio(self) -> float:
        return self.comparison.ratio

    def to_json(self) -> str:
        """Machine-readable export of the comparison plus replicate stats."""
        payload = {
            "figure": "headline",
            "replicates": self.replicates,
            "comparison": dataclasses.asdict(self.comparison),
            "dirq_overshoot_pp": self.dirq_overshoot_pp,
            "dirq_completeness": self.dirq_completeness,
            "within_band": self.comparison.within_band(),
            "groups": groups_to_jsonable(self.stats or []),
        }
        return json.dumps(payload, sort_keys=True, indent=2)


def sweep_specs(base: ExperimentConfig) -> List[TrialSpec]:
    """The headline comparison as data: DirQ (ATC) vs flooding, same seed."""
    return [
        TrialSpec(label=DIRQ_LABEL, config=base.with_atc(), group="headline"),
        TrialSpec(
            label=FLOODING_LABEL, config=base.with_flooding(), group="headline"
        ),
    ]


def run(
    num_epochs: int = 3_000,
    target_coverage: float = 0.4,
    seed: int = 1,
    base_config: Optional[ExperimentConfig] = None,
    runner: Optional[BatchRunner] = None,
    replicates: int = DEFAULT_REPLICATES,
) -> HeadlineResult:
    """Run DirQ (ATC) and flooding on the same workload and compare costs.

    With ``replicates > 1``, replicate ``i`` of both protocols shares one
    derived seed (one workload), the reported comparison averages the
    per-replicate comparisons, and :attr:`HeadlineResult.stats` carries the
    confidence intervals.  ``replicates=1`` reproduces the single-trial
    behaviour (and cache keys) of earlier revisions exactly.
    """
    base = (
        base_config
        if base_config is not None
        else paper_network(num_epochs=num_epochs, seed=seed)
    )
    base = base.replace(
        num_epochs=num_epochs, seed=seed, target_coverage=target_coverage
    )
    groups = run_sweep_replicated(sweep_specs(base), runner, replicates)
    by_label = {g.label: g for g in groups}
    dirq_group = by_label[DIRQ_LABEL]
    flooding_group = by_label[FLOODING_LABEL]

    comparisons = [
        compare_costs(
            dirq_ledger=d.ledger,
            flooding_reference=f.breakdown.flood_cost,
            num_queries=f.num_queries,
            flooding_is_total=True,
        )
        for d, f in zip(dirq_group.results, flooding_group.results)
    ]
    comparison = CostComparison(
        dirq_total=fmean(c.dirq_total for c in comparisons),
        flooding_total=fmean(c.flooding_total for c in comparisons),
        num_queries=round(fmean(c.num_queries for c in comparisons)),
        dirq_per_query=fmean(c.dirq_per_query for c in comparisons),
        flooding_per_query=fmean(c.flooding_per_query for c in comparisons),
        ratio=fmean(c.ratio for c in comparisons),
    )
    return HeadlineResult(
        dirq=dirq_group.results[0],
        flooding=flooding_group.results[0],
        comparison=comparison,
        dirq_overshoot_pp=dirq_group.metrics["mean_overshoot_pp"].mean,
        dirq_completeness=dirq_group.metrics["source_completeness"].mean,
        stats=groups,
        replicates=replicates,
    )


def report(result: HeadlineResult) -> str:
    """Render the headline comparison as text.

    Every printed number is a replicate mean, so the breakdown rows sum to
    the printed DirQ total.  The ratio is the mean of per-replicate (paired
    same-workload) ratios, which is why it is labelled as such rather than
    being the quotient of the two printed totals.
    """
    if result.stats is not None:
        dirq_results = next(
            g.results for g in result.stats if g.label == DIRQ_LABEL
        )
        query_cost = fmean(r.breakdown.query_cost for r in dirq_results)
        update_cost = fmean(r.breakdown.update_cost for r in dirq_results)
        estimate_cost = fmean(r.breakdown.estimate_cost for r in dirq_results)
    else:
        breakdown = result.dirq.breakdown
        query_cost = breakdown.query_cost
        update_cost = breakdown.update_cost
        estimate_cost = breakdown.estimate_cost
    ratio_label = (
        "DirQ / flooding ratio (mean of paired per-replicate ratios)"
        if result.replicates > 1
        else "DirQ / flooding ratio"
    )
    text = format_key_values(
        "Headline: DirQ (ATC) vs flooding on the same workload "
        "(paper: DirQ costs 45-55% of flooding)",
        [
            ("queries", result.comparison.num_queries),
            ("flooding total cost", result.comparison.flooding_total),
            ("DirQ total cost", result.comparison.dirq_total),
            ("  query dissemination", query_cost),
            ("  range updates", update_cost),
            ("  EHr estimates", estimate_cost),
            (ratio_label, result.comparison.ratio),
            ("within 45-55% band", result.comparison.within_band()),
            ("DirQ mean overshoot (pp)", result.dirq_overshoot_pp),
            ("DirQ source completeness", result.dirq_completeness),
        ],
    )
    if result.stats and result.replicates > 1:
        text += "\n\n" + format_replicate_table(
            result.stats,
            title=(
                f"Headline replication statistics "
                f"(95% CI over n={result.replicates} seeds)"
            ),
        )
    return text


def main(num_epochs: int = 3_000) -> str:  # pragma: no cover - script entry
    result = run(num_epochs=num_epochs)
    text = report(result)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
