"""Reproduction of the paper's headline claim (abstract / §7.2).

"Our results show that DirQ spends between 45% and 55% the cost of
flooding" while suffering only a small accuracy overshoot.  This experiment
runs DirQ with the Adaptive Threshold Control and the flooding baseline on
the *same* topology, dataset and query workload (same seed), and compares
their total costs and accuracy.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from typing import List

from ..metrics.accuracy import delivery_completeness, mean_overshoot
from ..metrics.cost import CostComparison, compare_costs
from ..metrics.report import format_key_values
from .batch import BatchRunner, TrialResult, TrialSpec, run_sweep_map
from .config import ExperimentConfig
from .scenarios import paper_network

DIRQ_LABEL = "dirq-atc"
FLOODING_LABEL = "flooding"


@dataclasses.dataclass(frozen=True)
class HeadlineResult:
    """DirQ-vs-flooding comparison on an identical workload."""

    dirq: TrialResult
    flooding: TrialResult
    comparison: CostComparison
    dirq_overshoot_pp: float
    dirq_completeness: float

    @property
    def cost_ratio(self) -> float:
        return self.comparison.ratio


def sweep_specs(base: ExperimentConfig) -> List[TrialSpec]:
    """The headline comparison as data: DirQ (ATC) vs flooding, same seed."""
    return [
        TrialSpec(label=DIRQ_LABEL, config=base.with_atc(), group="headline"),
        TrialSpec(
            label=FLOODING_LABEL, config=base.with_flooding(), group="headline"
        ),
    ]


def run(
    num_epochs: int = 3_000,
    target_coverage: float = 0.4,
    seed: int = 1,
    base_config: Optional[ExperimentConfig] = None,
    runner: Optional[BatchRunner] = None,
) -> HeadlineResult:
    """Run DirQ (ATC) and flooding on the same workload and compare costs."""
    base = (
        base_config
        if base_config is not None
        else paper_network(num_epochs=num_epochs, seed=seed)
    )
    base = base.replace(
        num_epochs=num_epochs, seed=seed, target_coverage=target_coverage
    )
    results = run_sweep_map(sweep_specs(base), runner)
    dirq_result = results[DIRQ_LABEL]
    flooding_result = results[FLOODING_LABEL]
    comparison = compare_costs(
        dirq_ledger=dirq_result.ledger,
        flooding_reference=flooding_result.breakdown.flood_cost,
        num_queries=flooding_result.num_queries,
        flooding_is_total=True,
    )
    return HeadlineResult(
        dirq=dirq_result,
        flooding=flooding_result,
        comparison=comparison,
        dirq_overshoot_pp=mean_overshoot(dirq_result.audit.records),
        dirq_completeness=delivery_completeness(dirq_result.audit.records),
    )


def report(result: HeadlineResult) -> str:
    """Render the headline comparison as text."""
    breakdown = result.dirq.breakdown
    return format_key_values(
        "Headline: DirQ (ATC) vs flooding on the same workload "
        "(paper: DirQ costs 45-55% of flooding)",
        [
            ("queries", result.comparison.num_queries),
            ("flooding total cost", result.comparison.flooding_total),
            ("DirQ total cost", result.comparison.dirq_total),
            ("  query dissemination", breakdown.query_cost),
            ("  range updates", breakdown.update_cost),
            ("  EHr estimates", breakdown.estimate_cost),
            ("DirQ / flooding ratio", result.comparison.ratio),
            ("within 45-55% band", result.comparison.within_band()),
            ("DirQ mean overshoot (pp)", result.dirq_overshoot_pp),
            ("DirQ source completeness", result.dirq_completeness),
        ],
    )


def main(num_epochs: int = 3_000) -> str:  # pragma: no cover - script entry
    result = run(num_epochs=num_epochs)
    text = report(result)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
