"""Reproduction of Fig. 5: effect of the threshold δ on dissemination accuracy.

The paper fixes δ at a range of values and measures, for queries sized to
involve 40 % (Fig. 5a) and 60 % (Fig. 5b) of the nodes, the percentage of
nodes that SHOULD receive each query, that actually RECEIVE it, that are
true sources, and that should NOT receive it.  The reported shape: the gap
between the RECEIVE and SHOULD curves grows with δ (stale, padded range
information routes queries to irrelevant subtrees), and the effect is less
pronounced at higher coverage.

``sweep_specs()`` declares one :class:`~repro.experiments.batch.TrialSpec`
per (δ, coverage) combination; ``run()`` fans them across worker processes
through a :class:`~repro.experiments.batch.BatchRunner` and returns one
:class:`~repro.metrics.accuracy.Fig5Point` per combination.
"""

from __future__ import annotations

import dataclasses
import json
from statistics import fmean
from typing import Dict, List, Optional, Sequence

from ..metrics.accuracy import Fig5Point, fig5_percentages
from ..metrics.report import format_replicate_table, format_table
from ..metrics.stats import ReplicateGroup, groups_to_jsonable
from .batch import DEFAULT_REPLICATES, BatchRunner, TrialSpec, run_sweep_replicated
from .config import ExperimentConfig
from .scenarios import paper_network


#: Thresholds evaluated by default.  The paper sweeps 1-9 %; the highlighted
#: values in its Figs. 6-7 are 3, 5 and 9 %.
DEFAULT_DELTAS: Sequence[float] = (1.0, 3.0, 5.0, 7.0, 9.0)

#: Node-involvement targets of Fig. 5(a) and Fig. 5(b).
DEFAULT_COVERAGES: Sequence[float] = (0.4, 0.6)


@dataclasses.dataclass(frozen=True)
class Fig5Result:
    """All points of the Fig. 5 reproduction plus completeness diagnostics.

    With ``replicates > 1`` every point is a per-field mean over the
    replicate group and :attr:`stats` carries one
    :class:`~repro.metrics.stats.ReplicateGroup` per (δ, coverage) point
    with confidence intervals for the scalar metrics.
    """

    points: List[Fig5Point]
    completeness: Dict[tuple, float]
    num_epochs: int
    num_nodes: int
    stats: Optional[List[ReplicateGroup]] = None
    replicates: int = 1

    def points_for(self, coverage: float) -> List[Fig5Point]:
        return sorted(
            (p for p in self.points if abs(p.target_coverage - coverage) < 1e-9),
            key=lambda p: p.delta_percent,
        )

    def coverages(self) -> List[float]:
        return sorted({p.target_coverage for p in self.points})

    def to_json(self) -> str:
        """Machine-readable export: points, completeness, replicate stats."""
        payload = {
            "figure": "fig5",
            "num_epochs": self.num_epochs,
            "num_nodes": self.num_nodes,
            "replicates": self.replicates,
            "points": [dataclasses.asdict(p) for p in self.points],
            "completeness": {
                f"delta={delta:g}/coverage={coverage:g}": value
                for (delta, coverage), value in sorted(self.completeness.items())
            },
            "groups": groups_to_jsonable(self.stats or []),
        }
        return json.dumps(payload, sort_keys=True, indent=2)


def sweep_specs(
    base: ExperimentConfig,
    deltas: Sequence[float] = DEFAULT_DELTAS,
    coverages: Sequence[float] = DEFAULT_COVERAGES,
) -> List[TrialSpec]:
    """The Fig. 5 sweep as data: one trial per (δ, coverage) point."""
    return [
        TrialSpec(
            label=f"fig5 delta={delta:g}% coverage={coverage:g}",
            config=base.replace(target_coverage=coverage).with_fixed_delta(delta),
            group="fig5",
            tags={"delta": delta, "coverage": coverage},
        )
        for coverage in coverages
        for delta in deltas
    ]


def _mean_fig5_point(points: Sequence[Fig5Point]) -> Fig5Point:
    """Field-wise mean of one point's replicates (δ/coverage are shared)."""
    return Fig5Point(
        delta_percent=points[0].delta_percent,
        target_coverage=points[0].target_coverage,
        should_receive_pct=fmean(p.should_receive_pct for p in points),
        receive_pct=fmean(p.receive_pct for p in points),
        source_pct=fmean(p.source_pct for p in points),
        should_not_receive_pct=fmean(p.should_not_receive_pct for p in points),
        mean_overshoot_pct=fmean(p.mean_overshoot_pct for p in points),
        num_queries=round(fmean(p.num_queries for p in points)),
    )


def run(
    deltas: Sequence[float] = DEFAULT_DELTAS,
    coverages: Sequence[float] = DEFAULT_COVERAGES,
    num_epochs: int = 2_000,
    seed: int = 1,
    base_config: Optional[ExperimentConfig] = None,
    runner: Optional[BatchRunner] = None,
    replicates: int = DEFAULT_REPLICATES,
) -> Fig5Result:
    """Run the Fig. 5 sweep.

    Parameters
    ----------
    deltas:
        Fixed threshold values (percent of full scale) to evaluate.
    coverages:
        Query involvement targets (the paper's 40 % and 60 %).
    num_epochs:
        Simulation length per run (the paper used 20 000; the benchmark
        harness uses a smaller value because each point is a full run).
    seed:
        Master seed shared by all runs, so every (δ, coverage) point sees
        the same topology and phenomena.
    base_config:
        Alternative starting configuration (defaults to the paper network).
    runner:
        Batch runner executing the sweep; a default (process-parallel,
        cache per ``REPRO_CACHE_DIR``) one is created if omitted.
    replicates:
        Independent seeds per sweep point.  Reported points are replicate
        means and :attr:`Fig5Result.stats` carries per-point confidence
        intervals; ``replicates=1`` reproduces the single-trial behaviour
        (and cache keys) of earlier revisions exactly.
    """
    base = (
        base_config
        if base_config is not None
        else paper_network(num_epochs=num_epochs, seed=seed)
    )
    base = base.replace(num_epochs=num_epochs, seed=seed)
    num_nodes = base.num_nodes
    specs = sweep_specs(base, deltas=deltas, coverages=coverages)
    groups = run_sweep_replicated(specs, runner, replicates)

    points: List[Fig5Point] = []
    completeness: Dict[tuple, float] = {}
    for group in groups:
        delta = group.tags["delta"]
        coverage = group.tags["coverage"]
        rep_points = [
            fig5_percentages(r.audit.records, num_nodes - 1, delta, coverage)
            for r in group.results
        ]
        points.append(_mean_fig5_point(rep_points))
        completeness[(delta, coverage)] = group.metrics[
            "source_completeness"
        ].mean
    return Fig5Result(
        points=points,
        completeness=completeness,
        num_epochs=num_epochs,
        num_nodes=num_nodes,
        stats=groups,
        replicates=replicates,
    )


def report(result: Fig5Result) -> str:
    """Render the Fig. 5 reproduction as text tables (one per coverage)."""
    sections = []
    for coverage in result.coverages():
        rows = [
            (
                p.delta_percent,
                p.should_receive_pct,
                p.receive_pct,
                p.source_pct,
                p.should_not_receive_pct,
                p.mean_overshoot_pct,
                result.completeness.get((p.delta_percent, coverage), float("nan")),
            )
            for p in result.points_for(coverage)
        ]
        sections.append(
            format_table(
                headers=[
                    "delta %",
                    "SHOULD recv %",
                    "RECEIVE %",
                    "sources %",
                    "should NOT %",
                    "overshoot pp",
                    "src completeness",
                ],
                rows=rows,
                title=(
                    f"Fig. 5 -- percentage of relevant nodes = {int(coverage * 100)}% "
                    f"({result.num_nodes} nodes, {result.num_epochs} epochs)"
                ),
            )
        )
    if result.stats and result.replicates > 1:
        sections.append(
            format_replicate_table(
                result.stats,
                title=(
                    f"Fig. 5 replication statistics "
                    f"(95% CI over n={result.replicates} seeds)"
                ),
            )
        )
    return "\n\n".join(sections)


def main(num_epochs: int = 2_000) -> str:  # pragma: no cover - script entry
    result = run(num_epochs=num_epochs)
    text = report(result)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
