"""Canned experiment scenarios (re-exported from :mod:`repro.scenarios`).

The canonical definitions of "the paper's 50-node network" and its
test/benchmark variants live in :mod:`repro.scenarios.static`; this module
re-exports them so figures, examples and benchmarks keep importing from
``repro.experiments.scenarios`` while there is exactly one definition of
the §7 network.  Dynamic scenarios (churn, mobility, bursty traffic,
heterogeneous energy) are registered by name in
:mod:`repro.scenarios.registry`.

Resolution is lazy (module ``__getattr__``): ``repro.scenarios.static``
imports the experiment config/batch layers, so pulling it in eagerly here
would recurse into this package's own initialisation.
"""

from __future__ import annotations

__all__ = [
    "heterogeneous_scenario",
    "node_failure_scenario",
    "paper_network",
    "small_network",
    "smoke_sweep",
]


def __getattr__(name: str):
    if name in __all__:
        from ..scenarios import static

        return getattr(static, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(list(globals()) + __all__)
