"""Cache inspection and pruning for the on-disk trial-result cache.

Every :class:`~repro.experiments.batch.BatchRunner` cache entry is a
``<config-hash>.pkl`` pickle plus a ``<config-hash>.json`` manifest (cache
version, spec label/group/tags, full canonical config) written next to it,
so the cache is inspectable without unpickling anything.

``python -m repro.experiments.cache --list`` tabulates the entries;
``--prune`` removes entries whose recorded version no longer matches
:data:`~repro.experiments.batch.CACHE_VERSION` (they would be silently
re-executed anyway), orphaned manifests, and -- with ``--older-than N`` --
entries untouched for more than N days.  ``--all`` empties the cache.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pickle
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from ..metrics.report import format_table
from ..utils.clock import wall_now
from .batch import CACHE_VERSION, resolve_cache_dir

#: Entry states reported by :func:`scan_cache`.
STATUS_OK = "ok"
STATUS_STALE = "stale"  # version != CACHE_VERSION (or unreadable payload)
STATUS_NO_MANIFEST = "no-manifest"  # legacy .pkl without a .json sidecar
STATUS_ORPHAN = "orphan-manifest"  # .json without its .pkl


@dataclasses.dataclass
class CacheEntry:
    """One cache entry (or stray manifest) found on disk."""

    key: str
    pkl_path: Optional[Path]
    manifest_path: Optional[Path]
    label: str
    version: Optional[int]
    size_bytes: int
    mtime: float
    status: str
    #: Scenario name from the manifest tags ("" when the entry was not
    #: produced by a scenario/grid spec) -- what makes grid-sized caches
    #: inspectable by scenario.
    scenario: str = ""
    #: Campaign id from the manifest tags ("" for ad-hoc entries), so
    #: store-backed and ad-hoc cache entries are distinguishable at a
    #: glance.
    campaign: str = ""

    @property
    def paths(self) -> List[Path]:
        return [p for p in (self.pkl_path, self.manifest_path) if p is not None]


def _read_manifest(path: Path) -> Optional[dict]:
    try:
        payload = json.loads(path.read_text())
    except Exception:
        return None
    return payload if isinstance(payload, dict) else None


def _is_manifest(payload: Optional[dict]) -> bool:
    """Whether a parsed JSON payload is one of our cache manifests.

    Guards ``--prune`` against unrelated JSON files sitting in the cache
    directory (CLI exports, editor configs, ...): only files carrying the
    manifest's version+key fields are ever treated as cache metadata.
    """
    return (
        payload is not None
        and "version" in payload
        and isinstance(payload.get("key"), str)
    )


def _read_pickle_version(path: Path) -> Optional[int]:
    try:
        with path.open("rb") as fh:
            payload = pickle.load(fh)
        return int(payload.get("version"))
    except Exception:
        return None


def scan_cache(cache_dir: Path) -> List[CacheEntry]:
    """All cache entries under ``cache_dir``, sorted by key.

    The manifest is the preferred metadata source; legacy entries without
    one fall back to unpickling just enough to read the version stamp.
    """
    entries: List[CacheEntry] = []
    if not cache_dir.is_dir():
        return entries
    pickles = {p.stem: p for p in sorted(cache_dir.glob("*.pkl"))}
    manifests = {p.stem: p for p in sorted(cache_dir.glob("*.json"))}
    for key in sorted(set(pickles) | set(manifests)):
        pkl = pickles.get(key)
        man = manifests.get(key)
        manifest = _read_manifest(man) if man is not None else None
        if not _is_manifest(manifest):
            # Unrelated JSON that merely shares a stem: never treat it as
            # cache metadata, never select it for deletion.
            manifest, man = None, None
        label = str(manifest.get("label", "")) if manifest else ""
        tags = manifest.get("tags") if manifest else None
        scenario = (
            str(tags.get("scenario", "")) if isinstance(tags, dict) else ""
        )
        campaign = (
            str(tags.get("campaign", "")) if isinstance(tags, dict) else ""
        )
        if pkl is None:
            if manifest is None:
                continue  # unrelated JSON file, not ours to touch
            entries.append(
                CacheEntry(
                    key=key,
                    pkl_path=None,
                    manifest_path=man,
                    label=label,
                    version=manifest.get("version"),
                    size_bytes=man.stat().st_size,
                    mtime=man.stat().st_mtime,
                    status=STATUS_ORPHAN,
                    scenario=scenario,
                    campaign=campaign,
                )
            )
            continue
        if manifest is not None:
            version = manifest.get("version")
        else:
            version = _read_pickle_version(pkl)
        if version == CACHE_VERSION:
            status = STATUS_OK if manifest is not None else STATUS_NO_MANIFEST
        else:
            status = STATUS_STALE
        size = pkl.stat().st_size + (man.stat().st_size if man else 0)
        entries.append(
            CacheEntry(
                key=key,
                pkl_path=pkl,
                manifest_path=man,
                label=label,
                version=version if isinstance(version, int) else None,
                size_bytes=size,
                mtime=pkl.stat().st_mtime,
                status=status,
                scenario=scenario,
                campaign=campaign,
            )
        )
    return entries


def prune_targets(
    entries: Sequence[CacheEntry],
    older_than_days: Optional[float] = None,
    prune_all: bool = False,
    now: Optional[float] = None,
) -> List[CacheEntry]:
    """Entries :func:`main`'s ``--prune`` would remove.

    Always: stale versions and orphaned manifests.  ``older_than_days``
    adds entries whose files were last touched before the cutoff;
    ``prune_all`` selects everything.  ``now`` is the reference time for
    age computation; callers (and tests) inject it, the CLI defaults it
    once at the entry point.
    """
    if prune_all:
        return list(entries)
    now = wall_now() if now is None else now
    out = []
    for entry in entries:
        if entry.status in (STATUS_STALE, STATUS_ORPHAN):
            out.append(entry)
        elif (
            older_than_days is not None
            and now - entry.mtime > older_than_days * 86400.0
        ):
            out.append(entry)
    return out


def _format_listing(
    entries: Sequence[CacheEntry], cache_dir: Path, now: float
) -> str:
    rows = [
        (
            e.key,
            e.label or "-",
            e.scenario or "-",
            e.campaign or "-",
            "-" if e.version is None else e.version,
            e.status,
            f"{e.size_bytes / 1024:.1f}",
            f"{max(0.0, now - e.mtime) / 86400.0:.1f}",
        )
        for e in entries
    ]
    total_kb = sum(e.size_bytes for e in entries) / 1024
    return format_table(
        headers=[
            "key", "label", "scenario", "campaign", "version", "status",
            "size kB", "age days",
        ],
        rows=rows,
        title=(
            f"cache {cache_dir}: {len(entries)} entries, {total_kb:.1f} kB "
            f"(current version {CACHE_VERSION})"
        ),
    )


def main(
    argv: Optional[Sequence[str]] = None, *, now: Optional[float] = None
) -> int:
    """CLI entry point.

    ``now`` injects the reference wall-clock time for ``--list`` ages and
    ``--prune --older-than`` cutoffs (tests pass a frozen clock; the real
    CLI defaults it from :func:`repro.utils.clock.wall_now` exactly once,
    here).
    """
    parser = argparse.ArgumentParser(
        description="Inspect / prune the BatchRunner result cache."
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "cache directory (default: $REPRO_CACHE_DIR or .repro-cache)"
        ),
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="tabulate the cache entries (the default action)",
    )
    parser.add_argument(
        "--prune",
        action="store_true",
        help=(
            "remove stale-version entries and orphaned manifests "
            "(plus --older-than / --all selections)"
        ),
    )
    parser.add_argument(
        "--older-than",
        type=float,
        default=None,
        metavar="DAYS",
        help="with --prune: also remove entries untouched for DAYS days",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="with --prune: remove every entry",
    )
    args = parser.parse_args(argv)
    if not args.prune and (args.older_than is not None or args.all):
        parser.error("--older-than/--all only make sense with --prune")

    cache_dir = Path(resolve_cache_dir(args.cache_dir))
    now = wall_now() if now is None else float(now)

    entries = scan_cache(cache_dir)
    if not args.prune:
        if entries:
            print(_format_listing(entries, cache_dir, now))
        else:
            print(f"cache {cache_dir}: empty (or missing)")
        return 0

    targets = prune_targets(
        entries, older_than_days=args.older_than, prune_all=args.all, now=now
    )
    freed = 0
    for entry in targets:
        for path in entry.paths:
            try:
                freed += path.stat().st_size
                path.unlink()
            except FileNotFoundError:
                continue  # a concurrent prune/cleanup got there first
    kept = len(entries) - len(targets)
    print(
        f"pruned {len(targets)} of {len(entries)} entries "
        f"({freed / 1024:.1f} kB freed), {kept} kept"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
