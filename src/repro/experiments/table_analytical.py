"""Reproduction of the §5 analytical comparison (the k = 2, d = 4 example).

The paper's §5.3 works through a single numerical example: for a binary tree
of depth 4, the maximum update frequency that keeps DirQ below flooding is
f_max ≈ 0.76 updates per query.  This experiment regenerates that number,
tabulates the closed-form costs for a range of (k, d) and cross-checks every
closed form against brute-force enumeration of the corresponding tree.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

from ..core.analytical import (
    AnalyticalRow,
    analytical_table,
    build_kary_tree,
    f_max,
    flooding_cost,
    flooding_cost_by_enumeration,
    max_query_cost_by_enumeration,
    max_query_dissemination_cost,
    max_update_cost,
    max_update_cost_by_enumeration,
    paper_example,
)
from ..metrics.report import format_key_values, format_table

DEFAULT_CASES: Tuple[Tuple[int, int], ...] = (
    (2, 2),
    (2, 3),
    (2, 4),
    (3, 3),
    (4, 3),
    (8, 2),
)
"""(k, d) cases tabulated by default; (2, 4) is the paper's worked example."""


@dataclasses.dataclass(frozen=True)
class AnalyticalCheck:
    """Closed-form vs brute-force agreement for one (k, d) case."""

    k: int
    d: int
    flooding_closed: float
    flooding_enumerated: float
    query_closed: float
    query_enumerated: float
    update_closed: float
    update_enumerated: float

    @property
    def consistent(self) -> bool:
        return (
            self.flooding_closed == self.flooding_enumerated
            and self.query_closed == self.query_enumerated
            and self.update_closed == self.update_enumerated
        )


def run(
    cases: Sequence[Tuple[int, int]] = DEFAULT_CASES,
) -> tuple[List[AnalyticalRow], List[AnalyticalCheck], dict]:
    """Compute the analytical table, the consistency checks, and the §5.3 example."""
    rows = analytical_table(list(cases))
    checks: List[AnalyticalCheck] = []
    for k, d in cases:
        tree = build_kary_tree(k, d)
        checks.append(
            AnalyticalCheck(
                k=k,
                d=d,
                flooding_closed=flooding_cost(k, d),
                flooding_enumerated=flooding_cost_by_enumeration(tree),
                query_closed=max_query_dissemination_cost(k, d),
                query_enumerated=max_query_cost_by_enumeration(tree),
                update_closed=max_update_cost(k, d),
                update_enumerated=max_update_cost_by_enumeration(tree),
            )
        )
    return rows, checks, paper_example()


def report(
    rows: Sequence[AnalyticalRow],
    checks: Sequence[AnalyticalCheck],
    example: dict,
) -> str:
    """Render the §5 reproduction as text."""
    table = format_table(
        headers=["k", "d", "nodes", "C_F", "C_QD_max", "C_UD_max", "f_max"],
        rows=[
            (r.k, r.d, r.num_nodes, r.flooding, r.query_max, r.update_max, r.f_max)
            for r in rows
        ],
        float_format="{:.3f}",
        title="Analytical cost model (paper §5, eqs. 3-9)",
    )
    consistency = format_table(
        headers=["k", "d", "C_F ok", "C_QD ok", "C_UD ok"],
        rows=[
            (
                c.k,
                c.d,
                c.flooding_closed == c.flooding_enumerated,
                c.query_closed == c.query_enumerated,
                c.update_closed == c.update_enumerated,
            )
            for c in checks
        ],
        title="Closed form vs brute-force tree enumeration",
    )
    worked = format_key_values(
        "Paper's worked example (k=2, d=4; paper reports f_max < 0.76):",
        [
            ("nodes", example["num_nodes"]),
            ("C_F", example["flooding_cost"]),
            ("C_QD_max", example["max_query_cost"]),
            ("C_UD_max", example["max_update_cost"]),
            ("f_max", example["f_max"]),
        ],
    )
    return "\n\n".join([table, consistency, worked])


def main() -> str:
    """Run and print the §5 reproduction (entry point for scripts)."""
    rows, checks, example = run()
    text = report(rows, checks, example)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
