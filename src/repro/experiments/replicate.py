"""Replicated figure sweeps from the command line, with CIs and JSON export.

``python -m repro.experiments.replicate --figure fig5 --replicates 10`` runs
the selected figure's sweep with N independent seeds per point through a
:class:`~repro.experiments.batch.BatchRunner`, prints one
``mean ± half-width [n=N]`` cell per scalar metric and sweep point, and
writes a machine-readable JSON export next to the working directory.

Replicate 0 of every point is the base configuration, so the sweep composes
with previously cached single trials; re-running the command against the
same cache executes zero trials and produces a bit-identical table and JSON
file, at any worker count (``--require-cached`` turns that invariant into
an exit code for CI).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from ..metrics.report import format_replicate_table
from ..metrics.stats import DEFAULT_CONFIDENCE, groups_to_json
from . import ablations, fig5_accuracy, fig6_updates, fig7_overshoot, headline
from .batch import BatchRunner, TrialSpec, resolve_cache_dir
from .scenarios import paper_network, smoke_sweep

#: Figures the CLI can replicate.
FIGURES = ("fig5", "fig6", "fig7", "headline", "ablations", "smoke")

#: Default epochs per trial -- deliberately shorter than the paper's 20 000
#: so the default invocation finishes in seconds per worker; pass
#: ``--epochs 20000`` for paper-length runs.
DEFAULT_EPOCHS = 600


def specs_for(figure: str, epochs: int, seed: int) -> Tuple[List[TrialSpec], str]:
    """The sweep behind ``figure``, plus a human-readable title."""
    if figure == "smoke":
        return (
            smoke_sweep(num_epochs=epochs, seed=seed),
            f"smoke sweep ({epochs} epochs)",
        )
    base = paper_network(num_epochs=epochs, seed=seed)
    if figure == "fig5":
        return (
            fig5_accuracy.sweep_specs(base),
            f"Fig. 5 accuracy sweep ({epochs} epochs)",
        )
    if figure == "fig6":
        return (
            fig6_updates.sweep_specs(base.replace(target_coverage=0.4)),
            f"Fig. 6 update-rate sweep ({epochs} epochs)",
        )
    if figure == "fig7":
        return (
            fig7_overshoot.sweep_specs(base.replace(target_coverage=0.2)),
            f"Fig. 7 overshoot sweep ({epochs} epochs)",
        )
    if figure == "headline":
        return (
            headline.sweep_specs(base),
            f"headline DirQ-vs-flooding comparison ({epochs} epochs)",
        )
    if figure == "ablations":
        return (
            ablations.loss_ablation_specs(num_epochs=epochs, seed=seed)
            + ablations.atc_target_specs(num_epochs=epochs, seed=seed),
            f"channel-loss + ATC-target ablations ({epochs} epochs)",
        )
    raise ValueError(f"unknown figure {figure!r} (choose from {FIGURES})")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Run a figure sweep with N replicates per point and report "
            f"means with {DEFAULT_CONFIDENCE:.0%} Student-t confidence "
            "intervals."
        )
    )
    parser.add_argument(
        "--figure",
        required=True,
        choices=FIGURES,
        help="which sweep to replicate",
    )
    parser.add_argument(
        "--replicates",
        type=int,
        default=5,
        help="independent seeds per sweep point (default: 5)",
    )
    parser.add_argument(
        "--epochs",
        type=int,
        default=DEFAULT_EPOCHS,
        help=f"epochs per trial (default: {DEFAULT_EPOCHS}; paper: 20000)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="base master seed (default: 1)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: CPU count)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "result cache directory (default: $REPRO_CACHE_DIR or "
            ".repro-cache); re-runs are then served entirely from cache"
        ),
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="JSON export path (default: <figure>-replicates.json)",
    )
    parser.add_argument(
        "--require-cached",
        action="store_true",
        help="exit non-zero unless the sweep executed zero trials (CI check)",
    )
    args = parser.parse_args(argv)
    if args.replicates < 1:
        parser.error("--replicates must be >= 1")

    cache_dir = resolve_cache_dir(args.cache_dir)

    specs, title = specs_for(args.figure, epochs=args.epochs, seed=args.seed)
    runner = BatchRunner(max_workers=args.workers, cache_dir=cache_dir)
    groups = runner.run_replicated(
        specs, n=args.replicates, confidence=DEFAULT_CONFIDENCE
    )
    stats = runner.last_stats

    print(
        f"replicate sweep: {title} | {len(specs)} points x "
        f"{args.replicates} replicates = {stats.total} trials | "
        f"executed {stats.executed}, cached {stats.cached}, "
        f"deduplicated {stats.deduplicated} | workers {stats.workers} | "
        f"wall {stats.runtime_seconds:.2f}s"
    )
    print()
    print(
        format_replicate_table(
            groups,
            title=(
                f"{args.figure}: mean ± {DEFAULT_CONFIDENCE:.0%} CI "
                f"half-width over n={args.replicates} seeds"
            ),
        )
    )

    json_path = Path(args.json_path or f"{args.figure}-replicates.json")
    json_path.write_text(
        groups_to_json(
            groups,
            figure=args.figure,
            replicates=args.replicates,
            epochs=args.epochs,
            seed=args.seed,
            confidence=DEFAULT_CONFIDENCE,
        )
        + "\n"
    )
    print()
    print(f"JSON export written to {json_path}")

    if args.require_cached and stats.executed != 0:
        print(
            f"FAIL: --require-cached but {stats.executed} trials executed "
            "(expected 0)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
