"""Reproduction of Fig. 7: overshoot over time for fixed δ and the ATC.

The paper plots, for queries involving 20 % of the nodes, the overshoot
(extra nodes reached beyond the ground-truth relevant set, in percentage
points of the node population) over the 20 000-epoch run for δ = 3 %, 5 %,
9 % and for the ATC, and reports an average ATC overshoot of ≈3.6 %.  The
shape to reproduce: overshoot grows with δ, and the ATC's overshoot stays
bounded and below the largest fixed threshold it is willing to use.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence, Tuple

from ..metrics.accuracy import overshoot_series
from ..metrics.report import format_replicate_table, format_series, format_table
from ..metrics.stats import ReplicateGroup, groups_to_jsonable, mean_series
from .batch import DEFAULT_REPLICATES, BatchRunner, TrialSpec, run_sweep_replicated
from .config import ExperimentConfig
from .scenarios import paper_network

DEFAULT_DELTAS: Sequence[float] = (3.0, 5.0, 9.0)
ATC_LABEL = "atc"


@dataclasses.dataclass(frozen=True)
class Fig7Result:
    """Overshoot time series and averages per threshold setting."""

    series: Dict[str, List[Tuple[int, float]]]
    average_overshoot: Dict[str, float]
    cost_ratios: Dict[str, float]
    window_epochs: int
    target_coverage: float
    stats: Optional[List[ReplicateGroup]] = None
    replicates: int = 1

    def names(self) -> List[str]:
        return sorted(self.series)

    def to_json(self) -> str:
        """Machine-readable export: series, averages, replicate stats."""
        payload = {
            "figure": "fig7",
            "window_epochs": self.window_epochs,
            "target_coverage": self.target_coverage,
            "replicates": self.replicates,
            "series": {name: self.series[name] for name in self.names()},
            "average_overshoot": dict(sorted(self.average_overshoot.items())),
            "cost_ratios": dict(sorted(self.cost_ratios.items())),
            "groups": groups_to_jsonable(self.stats or []),
        }
        return json.dumps(payload, sort_keys=True, indent=2)


def sweep_specs(
    base: ExperimentConfig,
    deltas: Sequence[float] = DEFAULT_DELTAS,
    include_atc: bool = True,
) -> List[TrialSpec]:
    """The Fig. 7 sweep as data: one trial per threshold setting."""
    specs = [
        TrialSpec(
            label=f"delta={delta:g}%",
            config=base.with_fixed_delta(delta),
            group="fig7",
            tags={"delta": delta},
        )
        for delta in deltas
    ]
    if include_atc:
        specs.append(
            TrialSpec(
                label=ATC_LABEL, config=base.with_atc(), group="fig7", tags={}
            )
        )
    return specs


def run(
    deltas: Sequence[float] = DEFAULT_DELTAS,
    num_epochs: int = 3_000,
    target_coverage: float = 0.2,
    seed: int = 1,
    include_atc: bool = True,
    window_epochs: int = 400,
    base_config: Optional[ExperimentConfig] = None,
    runner: Optional[BatchRunner] = None,
    replicates: int = DEFAULT_REPLICATES,
) -> Fig7Result:
    """Run the Fig. 7 sweep (one simulation per threshold setting).

    ``window_epochs`` controls the averaging window of the reported series;
    the paper smooths visually over a few hundred epochs, and with one query
    every 20 epochs a 400-epoch window averages 20 queries per point.

    With ``replicates > 1`` each setting runs on ``replicates`` independent
    seeds: the reported series is the per-window replicate mean, averages
    are replicate means, and :attr:`Fig7Result.stats` carries confidence
    intervals.  ``replicates=1`` reproduces the single-trial behaviour (and
    cache keys) of earlier revisions exactly.
    """
    base = (
        base_config
        if base_config is not None
        else paper_network(num_epochs=num_epochs, seed=seed)
    )
    base = base.replace(
        num_epochs=num_epochs, seed=seed, target_coverage=target_coverage
    )

    specs = sweep_specs(base, deltas=deltas, include_atc=include_atc)
    groups = run_sweep_replicated(specs, runner, replicates)

    series: Dict[str, List[Tuple[int, float]]] = {}
    averages: Dict[str, float] = {}
    ratios: Dict[str, float] = {}
    for group in groups:
        label = group.label
        rep_series = [
            overshoot_series(r.audit.records, window_epochs, num_epochs)
            for r in group.results
        ]
        windows = [w for w, _ in rep_series[0]]
        values = mean_series([[v for _, v in s] for s in rep_series])
        series[label] = list(zip(windows, values))
        averages[label] = group.metrics["mean_overshoot_pp"].mean
        ratios[label] = group.metrics["cost_ratio"].mean
    return Fig7Result(
        series=series,
        average_overshoot=averages,
        cost_ratios=ratios,
        window_epochs=window_epochs,
        target_coverage=target_coverage,
        stats=groups,
        replicates=replicates,
    )


def report(result: Fig7Result) -> str:
    """Render the Fig. 7 reproduction as text."""
    lines: List[str] = [
        "Fig. 7 -- Overshoot (percentage points of the node population), "
        f"{int(result.target_coverage * 100)}% relevant nodes",
        "",
    ]
    for name in result.names():
        points = result.series[name]
        lines.append(
            format_series(
                name,
                [w for w, _ in points],
                [v for _, v in points],
            )
        )
    lines.append("")
    lines.append(
        format_table(
            headers=["setting", "average overshoot pp", "total cost / flooding"],
            rows=[
                (name, result.average_overshoot[name], result.cost_ratios[name])
                for name in result.names()
            ],
            float_format="{:.3f}",
            title="Averages (paper: ATC average overshoot ~3.6%)",
        )
    )
    if result.stats and result.replicates > 1:
        lines.append("")
        lines.append(
            format_replicate_table(
                result.stats,
                title=(
                    f"Fig. 7 replication statistics "
                    f"(95% CI over n={result.replicates} seeds)"
                ),
            )
        )
    return "\n".join(lines)


def main(num_epochs: int = 3_000) -> str:  # pragma: no cover - script entry
    result = run(num_epochs=num_epochs)
    text = report(result)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
