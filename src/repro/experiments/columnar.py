"""Columnar epoch tick: vectorised sensing with bit-identical semantics.

``tick_method="columnar"`` replaces the per-node Python sampling loop
(:meth:`repro.core.dirq_node.DirQNode.on_epoch`) with one fused numpy pass
over every ``(node, sensor_type)`` row of the alive set, fanning Python-
level work out only for the rows whose reading escaped the own range or
whose "no update due" memo is stale.  The fast path must be
*bit-identical* to the brute loop -- the differential harness in
``tests/differential/`` pins fingerprints, energy ledgers, update series,
and scenario events against each other -- so the restructuring leans on
three invariants:

1. **Commutativity of the read pass.**  Sampling and ATC rate-of-change
   tracking touch only per-``(node, sensor_type)`` private state (the
   dataset is read-only, the sampling counter is a plain sum, and
   :meth:`AdaptiveThresholdController.on_reading` writes only the keys of
   its own sensor type).  Hoisting all reads of an epoch in front of all
   table/update work therefore cannot change any observable.

2. **Node-major fan-out order.**  The brute loop visits ``(node, type)``
   pairs sorted by node id (the runner's alive list) and sensor type
   (:meth:`SensorNode.sensors_sorted`).  The fan-out walks a permutation
   precomputed in exactly that order, so table mutations, update
   transmissions, and every MAC send they trigger happen in the brute
   order.

3. **Conservative suppression.**  A row is skipped only when the reading
   lies inside the own range *and* the table's negative-result memo is
   provably valid -- the same two checks the brute loop's inline fast path
   performs, evaluated against cached copies of ``own_entry`` and the
   memo that are invalidated through :attr:`RangeTable.observer` whenever
   *anything* (message handlers, tree repair, the fan-out itself) mutates
   the table.  When in doubt a row falls through to the brute machinery,
   which recomputes the truth and re-arms the memo.

Sensors that are not plain dataset-backed :class:`~repro.sensors.sensor.
Sensor` instances (or ATC controllers with a non-standard smoothing
factor) are handled as *fallback rows*: they run the verbatim brute body
at their node-major position every epoch, so exotic test fixtures degrade
to the reference semantics instead of breaking them.

Deferred state: per-row suppression tallies, sampling-counter increments,
and the ATC rate-of-change/last-reading dictionaries are maintained in
arrays and folded back into their objects on every rebuild and at
:meth:`ColumnarTick.finalize`.  The runner finalises before any metrics
harvest, and no mid-run reader exists (the window recorder reads the
energy ledger, ATC telemetry reads ``delta_percent``, seeding syncs its
own row first), so the deferral is unobservable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.config import DirQConfig
from ..sensors.dataset import SensorDataset
from ..sensors.sensor import Sensor


class _TypeSegment:
    """Contiguous run of rows sharing one sensor type (one dataset gather)."""

    __slots__ = ("matrix", "cols", "start", "end")

    def __init__(self, matrix: np.ndarray, cols: np.ndarray, start: int, end: int):
        self.matrix = matrix
        self.cols = cols
        self.start = start
        self.end = end


class ColumnarTick:
    """Drop-in replacement for the runner's per-node ``on_epoch`` loop.

    Parameters
    ----------
    dataset:
        The world's ground-truth dataset (shared by all standard sensors).
    dirq_config:
        Protocol configuration (threshold mode, ATC window length).

    The runner must call :meth:`set_protocols` with the sorted alive DirQ
    protocol list at start-up and after every topology change, and
    :meth:`finalize` once after the last simulated event, before metrics
    are harvested.
    """

    def __init__(self, dataset: SensorDataset, dirq_config: DirQConfig):
        self._dataset = dataset
        self._cfg = dirq_config
        self._adaptive = dirq_config.adaptive
        self._window = dirq_config.atc_window_epochs
        self._protos: List = []
        self._scan: List[Tuple] = []  # (proto, node, tables, sv, tv) rows
        self._delta_percent_seen: Optional[float] = None
        self._needs_rebuild = True
        # Row-major state (filled by _rebuild); rows are type-major so each
        # sensor type occupies one contiguous segment of every array.
        self._n = 0
        self._segments: List[_TypeSegment] = []
        self._row_protos: List = []
        self._row_tables: List = []
        self._row_stypes: List[str] = []
        self._row_atcs: List = []
        self._fallback: List[Tuple] = []  # (k, stype, proto, sensor, table)
        self._count_buckets: List[Tuple] = []
        self._offsets = None
        self._lo = None
        self._hi = None
        self._delta = None
        self._memo_ok = None
        self._inside = None
        self._suppress = None
        # Row indices (vec rows then fallback sentinels) pre-sorted into the
        # brute fan-out order (alive-list position, sensor type); per epoch
        # the fired subset is selected by permuting the not-suppressed mask.
        self._order = None
        self._notsup_ext = None  # size n + len(fallback); tail always True
        self._notsup = None  # view of the first n entries
        self._pending_suppressed = None
        self._pending_epochs = 0
        self._cur = None
        self._last = None
        self._tmp = None
        self._roc = None
        self._nan_free = False
        self._unseeded: List[int] = []
        self._dirty: set = set()

    # -- lifecycle ---------------------------------------------------------------

    def set_protocols(self, protocols: List) -> None:
        """Install the (sorted, alive) protocol list; flushes and rebuilds."""
        self._flush()
        self._protos = list(protocols)
        self._needs_rebuild = True

    def finalize(self) -> None:
        """Flush deferred state; must run before any metrics harvest."""
        self._flush()
        for table in self._row_tables:
            table.observer = None

    def _flush(self) -> None:
        """Fold deferred counters and ATC arrays back into their objects."""
        pe = self._pending_epochs
        if pe:
            self._pending_epochs = 0
            for counts, key in self._count_buckets:
                counts[key] += pe
        ps = self._pending_suppressed
        if ps is not None and ps.any():
            protos = self._row_protos
            for i in np.flatnonzero(ps):
                protos[i].updates_suppressed += int(ps[i])
            ps[:] = 0
        if self._adaptive and self._n:
            last = self._last
            roc = self._roc
            stypes = self._row_stypes
            for i, atc in enumerate(self._row_atcs):
                lv = last[i]
                if lv == lv:  # not NaN: the row has sampled at least once
                    atc._last_reading[stypes[i]] = float(lv)
                rv = roc[i]
                if rv == rv:
                    atc._rate_of_change[stypes[i]] = float(rv)

    def _rebuild(self) -> None:
        self._flush()
        dataset = self._dataset
        adaptive = self._adaptive
        by_type: Dict[str, List[Tuple]] = {}
        for k, proto in enumerate(self._protos):
            tables = proto.tables
            # Mirrors DirQNode._refresh_epoch_entries: one row per mounted
            # sensor, tables created on demand.
            for stype, sensor in proto.node.sensors_sorted():
                table = tables.table(stype, create=True)
                by_type.setdefault(stype, []).append((k, proto, sensor, table))

        segments: List[_TypeSegment] = []
        row_protos: List = []
        row_tables: List = []
        row_stypes: List[str] = []
        row_atcs: List = []
        row_sensors: List = []
        row_ks: List[int] = []
        fallback: List[Tuple] = []
        fixed_rows: List[Tuple] = []  # (i, proto) for fixed-δ resolution
        smoothing: Optional[float] = None
        for stype in sorted(by_type):
            matrix = dataset.readings.get(stype)
            start = len(row_protos)
            cols: List[int] = []
            for k, proto, sensor, table in by_type[stype]:
                ok = (
                    matrix is not None
                    and type(sensor) is Sensor
                    and sensor.dataset is dataset
                    and sensor.sensor_type == stype
                )
                atc = proto.atc
                if ok and adaptive:
                    ok = atc is not None
                    if ok:
                        if smoothing is None:
                            smoothing = atc._roc_smoothing
                        ok = atc._roc_smoothing == smoothing
                if not ok:
                    fallback.append((k, stype, proto, sensor, table))
                    continue
                i = len(row_protos)
                cols.append(dataset.column_of(sensor.node_id))
                row_protos.append(proto)
                row_tables.append(table)
                row_stypes.append(stype)
                row_atcs.append(atc)
                row_sensors.append(sensor)
                row_ks.append(k)
                if not adaptive:
                    fixed_rows.append((i, proto))
            end = len(row_protos)
            if end > start:
                segments.append(
                    _TypeSegment(
                        matrix, np.array(cols, dtype=np.intp), start, end
                    )
                )

        n = len(row_protos)
        self._n = n
        self._segments = segments
        self._row_protos = row_protos
        self._row_tables = row_tables
        self._row_stypes = row_stypes
        self._row_atcs = row_atcs
        self._fallback = fallback
        # Brute fan-out order: vec rows (type-major in the arrays) and
        # fallback rows merged by (alive-list position, sensor type).
        keys = [(row_ks[i], row_stypes[i]) for i in range(n)]
        keys.extend((row[0], row[1]) for row in fallback)
        self._order = np.array(
            sorted(range(len(keys)), key=keys.__getitem__), dtype=np.intp
        )
        notsup_ext = np.ones(len(keys), dtype=bool)
        self._notsup_ext = notsup_ext
        self._notsup = notsup_ext[:n]
        self._count_buckets = [
            (s._counts, s._count_key)
            for s in row_sensors
            if s._counts is not None
        ]
        self._offsets = np.array(
            [s.calibration_offset for s in row_sensors], dtype=float
        )
        self._lo = np.empty(n, dtype=float)
        self._hi = np.empty(n, dtype=float)
        # δ is only ever read and written one row at a time (memo checks,
        # fan-out, window adjustments), so a plain list of floats avoids a
        # numpy scalar round-trip on every access.
        self._delta = [0.0] * n
        self._memo_ok = np.zeros(n, dtype=bool)
        self._inside = np.empty(n, dtype=bool)
        self._suppress = np.empty(n, dtype=bool)
        self._pending_suppressed = np.zeros(n, dtype=np.int64)
        self._cur = np.empty(n, dtype=float)
        self._tmp = np.empty(n, dtype=float)
        self._smoothing = 0.05 if smoothing is None else smoothing
        if adaptive:
            last = np.full(n, np.nan)
            roc = np.full(n, np.nan)
            unseeded: List[int] = []
            for i, atc in enumerate(row_atcs):
                stype = row_stypes[i]
                lv = atc._last_reading.get(stype)
                if lv is not None:
                    last[i] = lv
                rv = atc._rate_of_change.get(stype)
                if rv is not None:
                    roc[i] = rv
                if not atc._seeded.get(stype):
                    unseeded.append(i)
                self._delta[i] = atc.delta_absolute(stype)
            self._last = last
            self._roc = roc
            self._unseeded = unseeded
            self._nan_free = False
        else:
            self._last = None
            self._roc = None
            self._unseeded = []
            for i, proto in fixed_rows:
                self._delta[i] = proto.current_delta(self._row_stypes[i])

        dirty = self._dirty
        dirty.clear()
        for i, table in enumerate(row_tables):
            table.observer = lambda i=i, dirty=dirty: dirty.add(i)
            self._refresh_row(i)
        for row in fallback:
            row[4].observer = None

        protos = self._protos
        self._scan = [
            (p, p.node, p.tables, p.node.sensors_version, p.tables.version)
            for p in protos
        ]
        self._delta_percent_seen = self._cfg.delta_percent
        self._needs_rebuild = False

    # -- cached-row maintenance ----------------------------------------------------

    def _refresh_row(self, i: int) -> None:
        """Re-read ``own_entry`` and the trigger memo for one row."""
        table = self._row_tables[i]
        own = table.own_entry
        if own is None:
            self._lo[i] = np.nan
            self._hi[i] = np.nan
        else:
            self._lo[i] = own.min_threshold
            self._hi[i] = own.max_threshold
        memo = table._no_update_memo
        self._memo_ok[i] = (
            memo is not None
            and memo[0] == table._version
            and memo[1] == self._delta[i]
        )

    def _refresh_memo(self, i: int) -> None:
        table = self._row_tables[i]
        memo = table._no_update_memo
        self._memo_ok[i] = (
            memo is not None
            and memo[0] == table._version
            and memo[1] == self._delta[i]
        )

    def _refresh_deltas(self) -> None:
        """Re-derive per-row δ after an ATC window adjustment."""
        delta = self._delta
        stypes = self._row_stypes
        for i, atc in enumerate(self._row_atcs):
            nd = atc.delta_absolute(stypes[i])
            if nd != delta[i]:
                delta[i] = nd
                self._refresh_memo(i)

    def _try_seed(self) -> None:
        """Mirror the seeding attempt ``on_reading`` makes per sample."""
        keep: List[int] = []
        last = self._last
        roc = self._roc
        stypes = self._row_stypes
        for i in self._unseeded:
            atc = self._row_atcs[i]
            rv = roc[i]
            # rv is NaN until the row has seen two readings -- exactly when
            # the brute on_reading body reaches its seeding check.
            if rv == rv and atc._hour_budget:
                # The controller's dicts lag the columnar arrays between
                # flushes; _seed_delta reads the rate of change, so sync
                # this row's state before delegating to the brute seeding.
                stype = stypes[i]
                atc._rate_of_change[stype] = float(rv)
                atc._last_reading[stype] = float(last[i])
                atc._seed_delta(stype)
                if atc._seeded.get(stype):
                    self._delta[i] = atc.delta_absolute(stype)
                    self._refresh_memo(i)
                    continue
            keep.append(i)
        self._unseeded = keep

    # -- per-epoch entry point ------------------------------------------------------

    def tick(self, epoch: int) -> None:
        """Run one epoch of sensing + range maintenance for every node."""
        stale = self._needs_rebuild
        if stale:
            for p in self._protos:
                p.current_epoch = epoch
        else:
            for p, node, tables, sv, tv in self._scan:
                p.current_epoch = epoch
                if node.sensors_version != sv or tables.version != tv:
                    stale = True
            if (
                not self._adaptive
                and self._delta_percent_seen != self._cfg.delta_percent
            ):
                stale = True
        if stale:
            self._rebuild()

        n = self._n
        fired = self._order
        if n:
            dirty = self._dirty
            if dirty:
                refresh = self._refresh_row
                for i in dirty:
                    refresh(i)
                dirty.clear()
            dataset_epochs = self._dataset.num_epochs
            if not 0 <= epoch < dataset_epochs:
                # Same bounds check Sensor.sample performs before indexing.
                raise IndexError(
                    f"epoch {epoch} out of range [0, {dataset_epochs})"
                )
            cur = self._cur
            for seg in self._segments:
                np.take(
                    seg.matrix[epoch], seg.cols, out=cur[seg.start : seg.end]
                )
            # Bit-identical to Sensor.sample: column value + calibration
            # offset (always added, so signed zeros match the brute path).
            cur += self._offsets
            if self._adaptive:
                prev = self._last
                tmp = self._tmp
                s = self._smoothing
                if self._nan_free:
                    # Steady state: every row has >= 2 readings, so the
                    # brute recurrence applies unconditionally.
                    np.subtract(cur, prev, out=tmp)
                    np.abs(tmp, out=tmp)
                    roc = self._roc
                    np.multiply(roc, 1 - s, out=roc)
                    tmp *= s
                    roc += tmp
                else:
                    # First epochs after a (re)build: rows may still lack a
                    # previous reading (prev NaN) or a rate (roc NaN).
                    seen = ~np.isnan(prev)
                    change = np.abs(cur - prev)
                    roc = self._roc
                    smoothed = np.where(
                        np.isnan(roc), change, (1 - s) * roc + s * change
                    )
                    np.copyto(roc, smoothed, where=seen)
                    self._nan_free = bool(seen.all())
                # cur becomes the next epoch's "previous reading"; the old
                # buffer is recycled as the next gather target.
                self._last = cur
                self._cur = prev
                if self._unseeded:
                    self._try_seed()
            inside = self._inside
            np.less_equal(self._lo, cur, out=inside)
            np.less_equal(cur, self._hi, out=self._suppress)
            inside &= self._suppress
            suppress = self._suppress
            np.logical_and(inside, self._memo_ok, out=suppress)
            self._pending_suppressed += suppress
            self._pending_epochs += 1
            np.logical_not(suppress, out=self._notsup)
            # Select the fired rows already permuted into brute order
            # (fallback sentinel entries at the tail are always True).
            fired = fired[self._notsup_ext[fired]]

        if len(fired):
            vals = self._last if self._adaptive else self._cur
            delta = self._delta
            row_protos = self._row_protos
            row_tables = self._row_tables
            row_stypes = self._row_stypes
            refresh = self._refresh_row
            # The row body marks its own row dirty (observe_reading and
            # mark_transmitted bump the table version); the trailing
            # refresh already re-reads that state, so drop the mark and
            # spare the redundant refresh next tick.  Mutations of *other*
            # rows (update_child on a parent) stay dirty: a later row's
            # send re-adds any index discarded earlier in this loop.
            discard = self._dirty.discard
            if not self._fallback:
                # Hot path: one vectorised gather turns the fired rows'
                # readings and inside flags into builtin floats/bools
                # (ndarray.tolist round-trips float64 exactly, matching
                # what Sensor.sample hands the brute loop), so the Python
                # loop below touches no numpy scalars.
                rvals = vals[fired].tolist()
                rins = self._inside[fired].tolist()
                for pos, i in enumerate(fired.tolist()):
                    proto = row_protos[i]
                    table = row_tables[i]
                    reading = rvals[pos]
                    d = delta[i]
                    if not rins[pos]:
                        table.observe_reading(reading, d)
                    proto._maybe_send_update(
                        row_stypes[i], epoch, table=table, delta=d
                    )
                    refresh(i)
                    discard(i)
            else:
                # Fallback sentinels (indices >= n) cannot be gathered from
                # the row arrays; keep the per-row extraction.
                inside = self._inside
                fallback = self._fallback
                for i in fired.tolist():
                    if i >= n:
                        self._run_fallback(fallback[i - n], epoch)
                        continue
                    proto = row_protos[i]
                    table = row_tables[i]
                    # ndarray.item returns a builtin float, exactly what
                    # Sensor.sample hands the brute loop.
                    reading = vals.item(i)
                    d = delta[i]
                    if not inside[i]:
                        table.observe_reading(reading, d)
                    proto._maybe_send_update(
                        row_stypes[i], epoch, table=table, delta=d
                    )
                    refresh(i)
                    discard(i)

        if self._adaptive and epoch > 0 and epoch % self._window == 0:
            for p in self._protos:
                atc = p.atc
                if atc is not None:
                    atc.end_window()
            if n:
                self._refresh_deltas()

    @staticmethod
    def _run_fallback(row: Tuple, epoch: int) -> None:
        """Verbatim brute body for one (node, sensor type) pair."""
        _k, stype, proto, sensor, table = row
        reading = sensor.sample(epoch)
        if type(reading) is not float:
            reading = float(reading)
        atc = proto.atc
        if atc is not None:
            atc.on_reading(stype, reading)
            delta = atc.delta_absolute(stype)
        else:
            delta = proto.current_delta(stype)
        own = table.own_entry
        if own is not None and own.min_threshold <= reading <= own.max_threshold:
            memo = table._no_update_memo
            if (
                memo is not None
                and memo[0] == table._version
                and memo[1] == delta
            ):
                proto.updates_suppressed += 1
                return
        else:
            table.observe_reading(reading, delta)
        proto._maybe_send_update(stype, epoch, table=table, delta=delta)
