"""Experiment harness: configuration, runner, and per-figure reproductions."""

from .config import ExperimentConfig, ProtocolName, TopologyEvent, paper_defaults
from .runner import ExperimentResult, ExperimentRunner, run_experiment
from .scenarios import (
    heterogeneous_scenario,
    node_failure_scenario,
    paper_network,
    small_network,
)

__all__ = [
    "ExperimentConfig",
    "ProtocolName",
    "TopologyEvent",
    "paper_defaults",
    "ExperimentResult",
    "ExperimentRunner",
    "run_experiment",
    "heterogeneous_scenario",
    "node_failure_scenario",
    "paper_network",
    "small_network",
]
