"""Experiment harness: configuration, runners, and per-figure reproductions.

Single trials run through :func:`run_experiment`; sweeps (the figure
reproductions, ablations, and anything declared as a list of
:class:`TrialSpec`) run trial-parallel through :class:`BatchRunner`.
"""

from .batch import (
    BatchRunner,
    BatchStats,
    TrialResult,
    TrialSpec,
    config_hash,
    run_sweep,
    run_sweep_replicated,
)
from ..metrics.stats import ReplicateGroup, ReplicateSummary, group_replicates
from .config import ExperimentConfig, ProtocolName, TopologyEvent, paper_defaults
from .runner import ExperimentResult, ExperimentRunner, run_experiment

#: Scenario conveniences, resolved lazily from repro.scenarios.static: that
#: module imports this package's config/batch layers, so importing it here
#: eagerly would recurse into this very __init__.
_SCENARIO_EXPORTS = (
    "heterogeneous_scenario",
    "node_failure_scenario",
    "paper_network",
    "small_network",
    "smoke_sweep",
)


def __getattr__(name: str):
    if name in _SCENARIO_EXPORTS:
        from ..scenarios import static

        return getattr(static, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(list(globals()) + list(_SCENARIO_EXPORTS))

__all__ = [
    "BatchRunner",
    "BatchStats",
    "TrialResult",
    "TrialSpec",
    "config_hash",
    "run_sweep",
    "run_sweep_replicated",
    "ReplicateGroup",
    "ReplicateSummary",
    "group_replicates",
    "ExperimentConfig",
    "ProtocolName",
    "TopologyEvent",
    "paper_defaults",
    "ExperimentResult",
    "ExperimentRunner",
    "run_experiment",
    "heterogeneous_scenario",
    "node_failure_scenario",
    "paper_network",
    "small_network",
    "smoke_sweep",
]
