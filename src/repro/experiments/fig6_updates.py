"""Reproduction of Fig. 6: update messages per 100 epochs, fixed δ vs ATC.

The paper plots, for 40 % relevant nodes, the total number of Update
Messages transmitted by all nodes per 100 epochs over a 20 000-epoch run for
fixed thresholds δ = 3 %, 5 %, 9 % and for the Adaptive Threshold Control,
together with the U_max/Hr reference line (the update rate at which DirQ's
total cost would reach the cost of flooding) and its 0.45/0.55 multiples.
The reported shape: small fixed thresholds produce update rates far above
the budget, large ones far below, and the ATC series settles inside the
0.45–0.55 band -- which is precisely where DirQ's total cost sits at 45-55 %
of flooding.

``sweep_specs()`` declares one :class:`~repro.experiments.batch.TrialSpec`
per threshold setting; ``run()`` executes them through a
:class:`~repro.experiments.batch.BatchRunner` and returns a
:class:`~repro.metrics.series.SeriesSet` with the reference levels attached.
"""

from __future__ import annotations

import dataclasses
import json
from statistics import mean
from typing import Dict, List, Optional, Sequence

from ..core.analytical import update_budget_per_hour
from ..metrics.report import format_replicate_table, format_series, format_table
from ..metrics.series import SeriesSet, WindowPoint
from ..metrics.stats import ReplicateGroup, groups_to_jsonable, mean_series
from .batch import DEFAULT_REPLICATES, BatchRunner, TrialResult, TrialSpec, run_sweep_replicated
from .config import ExperimentConfig
from .scenarios import paper_network

DEFAULT_DELTAS: Sequence[float] = (3.0, 5.0, 9.0)
ATC_LABEL = "atc"


@dataclasses.dataclass(frozen=True)
class Fig6Result:
    """The Fig. 6 series plus the per-setting cost ratios."""

    series: SeriesSet
    cost_ratios: Dict[str, float]
    mean_updates: Dict[str, float]
    window_epochs: int
    umax_per_window: float
    stats: Optional[List[ReplicateGroup]] = None
    replicates: int = 1

    def to_json(self) -> str:
        """Machine-readable export: series, references, replicate stats."""
        payload = {
            "figure": "fig6",
            "window_epochs": self.window_epochs,
            "umax_per_window": self.umax_per_window,
            "replicates": self.replicates,
            "series": {
                name: [
                    (p.window_start, p.value) for p in self.series.series[name]
                ]
                for name in self.series.names()
            },
            "references": dict(sorted(self.series.references.items())),
            "cost_ratios": dict(sorted(self.cost_ratios.items())),
            "mean_updates": dict(sorted(self.mean_updates.items())),
            "groups": groups_to_jsonable(self.stats or []),
        }
        return json.dumps(payload, sort_keys=True, indent=2)

    def atc_band_occupancy(self, skip_windows: int = 2) -> float:
        """Fraction of (post-transient) ATC windows inside the 0.45-0.55 band."""
        return self.series.fraction_within(
            ATC_LABEL,
            0.45 * self.umax_per_window,
            0.55 * self.umax_per_window,
            skip_windows=skip_windows,
        )


def sweep_specs(
    base: ExperimentConfig,
    deltas: Sequence[float] = DEFAULT_DELTAS,
    include_atc: bool = True,
) -> List[TrialSpec]:
    """The Fig. 6 sweep as data: one trial per threshold setting."""
    specs = [
        TrialSpec(
            label=f"delta={delta:g}%",
            config=base.with_fixed_delta(delta),
            group="fig6",
            tags={"delta": delta},
        )
        for delta in deltas
    ]
    if include_atc:
        specs.append(
            TrialSpec(
                label=ATC_LABEL, config=base.with_atc(), group="fig6", tags={}
            )
        )
    return specs


def run(
    deltas: Sequence[float] = DEFAULT_DELTAS,
    num_epochs: int = 3_000,
    target_coverage: float = 0.4,
    seed: int = 1,
    include_atc: bool = True,
    base_config: Optional[ExperimentConfig] = None,
    runner: Optional[BatchRunner] = None,
    replicates: int = DEFAULT_REPLICATES,
) -> Fig6Result:
    """Run the Fig. 6 sweep (one simulation per threshold setting).

    With ``replicates > 1`` each setting runs on ``replicates`` independent
    seeds: the reported series is the per-window mean over the replicate
    group, scalar rows are replicate means, and :attr:`Fig6Result.stats`
    carries the confidence intervals.  ``replicates=1`` reproduces the
    single-trial behaviour (and cache keys) of earlier revisions exactly.
    """
    base = (
        base_config
        if base_config is not None
        else paper_network(num_epochs=num_epochs, seed=seed)
    )
    base = base.replace(
        num_epochs=num_epochs, seed=seed, target_coverage=target_coverage
    )

    specs = sweep_specs(base, deltas=deltas, include_atc=include_atc)
    groups = run_sweep_replicated(specs, runner, replicates)

    series = SeriesSet(window_epochs=base.window_epochs)
    cost_ratios: Dict[str, float] = {}
    mean_updates: Dict[str, float] = {}
    umax_per_window = 0.0

    for group in groups:
        label = group.label
        starts = [p.window_start for p in group.results[0].update_series]
        values = mean_series(
            [[p.value for p in r.update_series] for r in group.results]
        )
        series.add_series(
            label,
            [WindowPoint(window_start=s, value=v) for s, v in zip(starts, values)],
        )
        cost_ratios[label] = group.metrics["cost_ratio"].mean
        mean_updates[label] = group.metrics["updates_per_window"].mean
        if umax_per_window == 0.0:
            umax_per_window = float(
                mean(_umax_per_window(r, base) for r in group.results)
            )

    series.add_reference("Umax/window", umax_per_window)
    series.add_reference("0.55*Umax", 0.55 * umax_per_window)
    series.add_reference("0.45*Umax", 0.45 * umax_per_window)
    return Fig6Result(
        series=series,
        cost_ratios=cost_ratios,
        mean_updates=mean_updates,
        window_epochs=base.window_epochs,
        umax_per_window=umax_per_window,
        stats=groups,
        replicates=replicates,
    )


def _umax_per_window(result: TrialResult, config: ExperimentConfig) -> float:
    """U_max expressed per metrics window (the Fig. 6 horizontal line).

    U_max/Hr is the number of update messages per hour at which DirQ's total
    cost (measured dissemination cost plus updates at two cost units each)
    equals the flooding cost of the expected query load; see
    :func:`repro.core.analytical.update_budget_per_hour`.
    """
    queries_per_window = config.window_epochs / config.query_period
    avg_query_cost = (
        sum(result.per_query_costs) / len(result.per_query_costs)
        if result.per_query_costs
        else 0.0
    )
    return update_budget_per_hour(
        expected_queries_per_hour=queries_per_window,
        flooding_cost_per_query=result.flooding_cost_per_query,
        query_cost_per_query=avg_query_cost,
    )


def report(result: Fig6Result) -> str:
    """Render the Fig. 6 reproduction as text."""
    lines: List[str] = [
        "Fig. 6 -- Update Messages transmitted per "
        f"{result.window_epochs} epochs (40% relevant nodes)",
        "",
        f"U_max per window       : {result.umax_per_window:.1f}",
        f"0.45 * U_max            : {0.45 * result.umax_per_window:.1f}",
        f"0.55 * U_max            : {0.55 * result.umax_per_window:.1f}",
        "",
    ]
    for name in result.series.names():
        starts, values = result.series.as_arrays(name)
        lines.append(format_series(name, list(starts), list(values)))
    lines.append("")
    lines.append(
        format_table(
            headers=["setting", "mean updates/window", "total cost / flooding"],
            rows=[
                (name, result.mean_updates[name], result.cost_ratios[name])
                for name in result.series.names()
            ],
            float_format="{:.3f}",
        )
    )
    if ATC_LABEL in result.series.names():
        lines.append("")
        lines.append(
            "ATC windows inside the 0.45-0.55 U_max band "
            f"(after transient): {result.atc_band_occupancy():.0%}"
        )
    if result.stats and result.replicates > 1:
        lines.append("")
        lines.append(
            format_replicate_table(
                result.stats,
                title=(
                    f"Fig. 6 replication statistics "
                    f"(95% CI over n={result.replicates} seeds)"
                ),
            )
        )
    return "\n".join(lines)


def main(num_epochs: int = 3_000) -> str:  # pragma: no cover - script entry
    result = run(num_epochs=num_epochs)
    text = report(result)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
