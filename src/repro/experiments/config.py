"""Experiment configuration.

One :class:`ExperimentConfig` describes a complete simulation campaign: the
deployment (topology, sensors), the workload (query coverage, injection
period), the protocol under test (DirQ with fixed δ or ATC, or flooding),
and any scripted topology dynamics.  The defaults reproduce the paper's §7
setup: 50 nodes including one root, 4 correlated sensor types, a query
every 20 epochs, 20 000 epochs (scaled down for the benchmark harness).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set

from ..core.config import DirQConfig, ThresholdMode
from ..network.addresses import NodeId
from ..scenarios.spec import ScenarioConfig


class ProtocolName:
    """Which dissemination protocol an experiment runs."""

    DIRQ = "dirq"
    FLOODING = "flooding"

    ALL = (DIRQ, FLOODING)


@dataclasses.dataclass
class TopologyEvent:
    """A scripted topology change applied at a given epoch."""

    epoch: int
    kind: str  # "kill" or "activate"
    node_id: NodeId

    KILL = "kill"
    ACTIVATE = "activate"

    def __post_init__(self) -> None:
        if self.kind not in (self.KILL, self.ACTIVATE):
            raise ValueError(f"unknown topology event kind {self.kind!r}")
        if self.epoch < 0:
            raise ValueError("event epoch must be non-negative")


@dataclasses.dataclass
class ExperimentConfig:
    """Full description of one simulation run.

    Attributes
    ----------
    num_nodes:
        Total nodes including the root (the paper uses 50).
    comm_range, area_size:
        Unit-disk deployment parameters.
    seed:
        Master seed; all random streams derive from it.
    num_epochs:
        Length of the run (the paper uses 20 000; benchmarks scale this
        down).
    query_period:
        Epochs between query injections (paper: 20).
    target_coverage:
        Desired fraction of nodes involved per query (paper: 0.2/0.4/0.6).
    query_sensor_type:
        Restrict queries to a single sensor type; ``None`` draws uniformly.
    protocol:
        ``"dirq"`` or ``"flooding"``.
    dirq:
        DirQ protocol configuration (ignored for flooding).
    sensor_types:
        Sensor types to generate; defaults to the standard four.
    sensors_per_node:
        ``None`` mounts every type on every node (the paper's setting);
        an integer ``k`` mounts a random subset of ``k`` types per node
        (heterogeneous networks, Fig. 4); an explicit mapping node -> list
        of types gives full control.
    phenomena_specs:
        Optional overrides of the synthetic phenomena
        (:class:`~repro.sensors.types.SensorTypeSpec` per type name); the
        calibrated defaults of :func:`~repro.sensors.types.default_type_specs`
        are used otherwise.
    window_epochs:
        Metrics window (Fig. 6/7 use 100 epochs).
    epochs_per_day:
        Length of the diurnal cycle in the synthetic phenomena.
    channel_loss:
        Per-reception loss probability (0 = the paper's ideal channel;
        1 = the "all receptions fail" ablation).
    mac_beacon_interval, mac_death_threshold, slots_per_frame:
        LMAC parameters.
    topology_events:
        Scripted node deaths / activations.
    scenario:
        Optional dynamic-scenario bundle (churn, mobility, time-varying
        traffic, heterogeneous energy budgets); ``None`` reproduces the
        paper's static behaviour exactly.  When set, its parameters are
        part of the config hash; when unset the field is omitted from the
        hash payload so pre-scenario cache keys stay valid.
    initially_dead:
        Nodes present in the dataset and topology but switched off at t=0
        (they can be activated later to model post-deployment additions).
    send_responses:
        Whether source nodes send responses (excluded from cost figures).
    trace:
        Enable the structured tracer (tests/examples only; benchmarks keep
        it off).
    instrument:
        Observability level (see :mod:`repro.obs`): ``None`` (off),
        ``"metrics"`` (counters/histograms harvested into the trial's
        ``telemetry`` payload), or ``"full"`` (metrics + phase profiler +
        tracer).  **Hash-exempt**: flipping it never changes a
        ``config_hash``, cache key, or fingerprint -- instrumentation
        observes a trial, it never defines one.
    """

    #: Fields that postdate the original hash scheme: each is omitted from
    #: the canonical hash payload while ``None`` (see
    #: ``repro.experiments.batch._canonical``), so pre-existing configs
    #: keep their cache keys.  ``neighbor_method`` / ``tree_repair`` /
    #: ``phenomena_method`` select implementation strategies that are
    #: bit-identical in their defaults, but a config that pins one
    #: explicitly must hash differently so A/B runs never alias in the
    #: result cache.
    HASH_OMIT_WHEN_UNSET = (
        "scenario",
        "neighbor_method",
        "tree_repair",
        "phenomena_method",
        "tick_method",
    )

    #: Fields *always* excluded from the canonical hash payload, whatever
    #: their value (contrast HASH_OMIT_WHEN_UNSET, which only elides the
    #: ``None`` default).  ``instrument`` selects how much the obs layer
    #: records about a trial; the trial itself is bit-identical either
    #: way, so instrumented and uninstrumented runs must share cache keys
    #: and fingerprints.  Each entry needs a matching
    #: ``ClassName.field`` line in ``repro.experiments.batch.HASH_EXEMPT``
    #: (reprolint RL210 / RL505 enforce the pairing).
    HASH_EXCLUDE = ("instrument",)

    num_nodes: int = 50
    comm_range: float = 30.0
    area_size: float = 100.0
    seed: int = 1
    num_epochs: int = 2_000
    query_period: int = 20
    target_coverage: float = 0.4
    query_sensor_type: Optional[str] = None
    protocol: str = ProtocolName.DIRQ
    dirq: DirQConfig = dataclasses.field(default_factory=DirQConfig)
    sensor_types: Optional[Sequence[str]] = None
    sensors_per_node: Optional[object] = None
    phenomena_specs: Optional[Dict[str, object]] = None
    window_epochs: int = 100
    epochs_per_day: int = 2_000
    channel_loss: float = 0.0
    mac_beacon_interval: float = 10.0
    mac_death_threshold: int = 3
    slots_per_frame: int = 32
    topology_events: List[TopologyEvent] = dataclasses.field(default_factory=list)
    initially_dead: Set[NodeId] = dataclasses.field(default_factory=set)
    scenario: Optional[ScenarioConfig] = None
    send_responses: bool = False
    trace: bool = False
    root_id: NodeId = 0
    #: Unit-disk connectivity strategy: ``None`` (= "spatial", the grid
    #: hash) or "brute" (reference O(n^2) all-pairs).  Bit-identical
    #: topologies either way; the flag exists for A/B tests and profiling.
    neighbor_method: Optional[str] = None
    #: Spanning-tree maintenance on mobility re-links: ``None``
    #: (= "incremental" repair when the current tree is BFS-canonical) or
    #: "full" (rebuild from scratch every re-link).  Bit-identical trees.
    tree_repair: Optional[str] = None
    #: Phenomena synthesis: ``None`` (= "exact" dense-Cholesky Gaussian
    #: field) or "lowrank" (random-Fourier-feature approximation, the only
    #: tractable option at thousands of nodes).  Unlike the other two
    #: flags, "lowrank" draws a *different* (approximate) field, so it is
    #: never a silent default.
    phenomena_method: Optional[str] = None
    #: Epoch-tick strategy: ``None`` (= "periodic", the per-node Python
    #: loop) or "columnar" (one numpy pass per sensor type over the alive
    #: set, fanning out Python-level work only for threshold crossings).
    #: Bit-identical results either way -- the differential harness in
    #: ``tests/differential/`` pins the two paths against each other by
    #: trial fingerprint, energy ledger, and scenario events.
    tick_method: Optional[str] = None
    #: Observability level: ``None`` (off), "metrics", or "full".  Listed
    #: in HASH_EXCLUDE above -- never part of hashes or fingerprints.
    instrument: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("num_nodes must be >= 2 (a root plus at least one node)")
        if self.num_epochs < 1:
            raise ValueError("num_epochs must be >= 1")
        if self.query_period < 1:
            raise ValueError("query_period must be >= 1")
        if not (0.0 < self.target_coverage <= 1.0):
            raise ValueError("target_coverage must be in (0, 1]")
        if self.protocol not in ProtocolName.ALL:
            raise ValueError(
                f"protocol must be one of {ProtocolName.ALL}, got {self.protocol!r}"
            )
        if self.window_epochs < 1:
            raise ValueError("window_epochs must be >= 1")
        if not (0.0 <= self.channel_loss <= 1.0):
            raise ValueError("channel_loss must be in [0, 1]")
        if self.root_id in self.initially_dead:
            raise ValueError("the root cannot start dead")
        if self.neighbor_method not in (None, "spatial", "brute"):
            raise ValueError(
                "neighbor_method must be None, 'spatial', or 'brute', "
                f"got {self.neighbor_method!r}"
            )
        if self.tree_repair not in (None, "incremental", "full"):
            raise ValueError(
                "tree_repair must be None, 'incremental', or 'full', "
                f"got {self.tree_repair!r}"
            )
        if self.phenomena_method not in (None, "exact", "lowrank"):
            raise ValueError(
                "phenomena_method must be None, 'exact', or 'lowrank', "
                f"got {self.phenomena_method!r}"
            )
        if self.tick_method not in (None, "periodic", "columnar"):
            raise ValueError(
                "tick_method must be None, 'periodic', or 'columnar', "
                f"got {self.tick_method!r}"
            )
        if self.instrument not in (None, "metrics", "full"):
            raise ValueError(
                "instrument must be None, 'metrics', or 'full', "
                f"got {self.instrument!r}"
            )

    # -- convenience constructors ------------------------------------------------

    def with_fixed_delta(self, delta_percent: float) -> "ExperimentConfig":
        """Copy of this config running DirQ with a fixed threshold."""
        return dataclasses.replace(
            self,
            protocol=ProtocolName.DIRQ,
            dirq=self.dirq.replace(
                threshold_mode=ThresholdMode.FIXED, delta_percent=delta_percent
            ),
        )

    def with_atc(self, target_cost_ratio: Optional[float] = None) -> "ExperimentConfig":
        """Copy of this config running DirQ with Adaptive Threshold Control."""
        changes = {"threshold_mode": ThresholdMode.ADAPTIVE}
        if target_cost_ratio is not None:
            changes["atc_target_cost_ratio"] = target_cost_ratio
        return dataclasses.replace(
            self, protocol=ProtocolName.DIRQ, dirq=self.dirq.replace(**changes)
        )

    def with_flooding(self) -> "ExperimentConfig":
        """Copy of this config running the flooding baseline."""
        return dataclasses.replace(self, protocol=ProtocolName.FLOODING)

    def with_scenario(self, scenario: Optional[ScenarioConfig]) -> "ExperimentConfig":
        """Copy of this config with the given dynamic scenario (or none)."""
        return dataclasses.replace(self, scenario=scenario)

    def replace(self, **changes) -> "ExperimentConfig":
        return dataclasses.replace(self, **changes)


def paper_defaults(
    num_epochs: int = 20_000,
    target_coverage: float = 0.4,
    seed: int = 1,
) -> ExperimentConfig:
    """The paper's §7 configuration (full 20 000-epoch run by default)."""
    return ExperimentConfig(
        num_nodes=50,
        num_epochs=num_epochs,
        query_period=20,
        target_coverage=target_coverage,
        seed=seed,
    )
