"""Command-line smoke sweep for the batched experiment runner.

``python -m repro.experiments.smoke --workers 2`` runs the miniature mixed
sweep of :func:`~repro.experiments.scenarios.smoke_sweep` through a
:class:`~repro.experiments.batch.BatchRunner` and prints the execution
summary.  With ``--cache-dir`` the sweep runs twice and the process exits
non-zero unless the second pass is served entirely from the cache with
bit-identical results -- the invariant CI guards on every push.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..metrics.report import format_batch_summary
from .batch import BatchRunner
from .scenarios import smoke_sweep


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the BatchRunner smoke sweep."
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="worker processes (default: 2)"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory; enables the cached re-run check",
    )
    parser.add_argument(
        "--nodes", type=int, default=12, help="network size (default: 12)"
    )
    parser.add_argument(
        "--epochs", type=int, default=120, help="epochs per trial (default: 120)"
    )
    parser.add_argument(
        "--seed", type=int, default=3, help="master seed (default: 3)"
    )
    args = parser.parse_args(argv)

    specs = smoke_sweep(
        num_nodes=args.nodes, num_epochs=args.epochs, seed=args.seed
    )
    runner = BatchRunner(max_workers=args.workers, cache_dir=args.cache_dir)
    results = runner.run(specs)
    print(format_batch_summary(runner.last_stats, results))

    if runner.last_stats.executed + runner.last_stats.cached != len(specs):
        print("FAIL: not every trial produced a result", file=sys.stderr)
        return 1

    if args.cache_dir:
        rerun = BatchRunner(max_workers=args.workers, cache_dir=args.cache_dir)
        cached_results = rerun.run(specs)
        print(format_batch_summary(rerun.last_stats, cached_results))
        if rerun.last_stats.executed != 0:
            print(
                f"FAIL: cached re-run executed {rerun.last_stats.executed} "
                "trials (expected 0)",
                file=sys.stderr,
            )
            return 1
        fresh = [r.fingerprint() for r in results]
        cached = [r.fingerprint() for r in cached_results]
        if fresh != cached:
            print("FAIL: cached results differ from fresh run", file=sys.stderr)
            return 1
        print("cache check passed: 0 trials re-executed, results bit-identical")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
