"""Batched, parallel experiment orchestration.

The figure reproductions are sweeps: one full simulation per (setting,
coverage, seed, ...) point.  The serial runner executes one
:class:`~repro.experiments.config.ExperimentConfig` at a time; this module
adds the campaign layer on top of it:

* :class:`TrialSpec` -- one declarative point of a sweep: a label, an
  immutable snapshot of the experiment configuration, and free-form tags
  (``{"delta": 3.0, "coverage": 0.4}``) the sweep assembles its figure from.
* :class:`TrialResult` -- the picklable measurement record of one trial
  (audit, aggregated ledger, cost breakdown, windowed series).  It mirrors
  the summary API of :class:`~repro.experiments.runner.ExperimentResult`
  but carries no live simulator objects, so it can cross process
  boundaries and be cached on disk.
* :class:`BatchRunner` -- fans a list of specs across worker processes via
  :mod:`concurrent.futures`, deduplicates identical configurations, and
  optionally caches results on disk keyed by :func:`config_hash`, so
  re-running a sweep only executes the missing trials.

Determinism contract
--------------------
Every trial builds its own :class:`~repro.simulation.rng.RandomStreams`
from its config's seed, and the worker deep-copies the config before
running, so a trial's result depends only on its declared configuration --
never on worker count, execution order, or leftover mutations from sibling
trials.  :meth:`TrialResult.fingerprint` condenses the deterministic
payload into a hash for bit-exactness assertions.  Replications
(:meth:`TrialSpec.replicates`) derive their seeds with
:meth:`RandomStreams.derive_seed`, so replicate ``i`` of a spec is itself a
pure function of the base config; replicate 0 keeps the base seed, which is
what lets cached single trials compose into replicate groups.

Cache versioning
----------------
Cached results are only trusted when their recorded :data:`CACHE_VERSION`
matches the module's.  The constant must be bumped whenever the on-disk
payload layout *or the simulation semantics* change (e.g. v2: reception
energy charged at delivery rather than transmission), because a cache entry
is a claim that "this config, simulated today, would produce exactly this
result" -- stale-version entries are silently re-executed, never migrated.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import json
import os
import pickle
import time
from concurrent.futures import (
    FIRST_EXCEPTION,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from ..energy.ledger import NetworkLedger
from ..metrics.accuracy import mean_accuracy, mean_overshoot
from ..metrics.stats import DEFAULT_CONFIDENCE, group_replicates
from ..metrics.audit import QueryAudit, QueryRecord
from ..metrics.cost import CostBreakdown
from ..metrics.series import WindowPoint
from ..network.addresses import NodeId
from ..simulation.rng import RandomStreams
from .config import ExperimentConfig, ProtocolName
from .runner import ExperimentResult, run_experiment

#: Environment variable providing a default on-disk cache directory.
CACHE_ENV_VAR = "REPRO_CACHE_DIR"

#: Cache directory the CLIs fall back to when neither ``--cache-dir`` nor
#: the environment provides one.
DEFAULT_CACHE_DIR = ".repro-cache"


def resolve_cache_dir(arg: Optional[str] = None) -> str:
    """The CLI cache-directory resolution: flag, else env, else default.

    Shared by every cache-using CLI (smoke/replicate/scenario/cache) so
    they can never disagree about where the cache lives.
    """
    if arg is not None:
        return arg
    return os.environ.get(CACHE_ENV_VAR) or DEFAULT_CACHE_DIR

#: Replicates per sweep point for the figure reproductions (shared by the
#: figure modules and :meth:`BatchRunner.run_replicated`).
DEFAULT_REPLICATES = 5

#: Bumped whenever the on-disk format or the simulation semantics change in
#: a way that invalidates cached results.  v2: reception energy is charged
#: at delivery time (refund-on-drop fix), which changes ledger totals for
#: runs where nodes die with frames in flight.  v3: ``TrialResult`` gained
#: scenario telemetry fields (``scenario_events``, ``num_relinks``) that
#: older pickles lack.  v4: a reactivated node's ledger is checkpointed so
#: its fresh battery no longer inherits the dead battery's tail spend,
#: which changes outcomes for revive-churn + finite-energy compositions.
#: v5: initial kills are applied in sorted node order (reprolint RL110
#: fix), so results no longer depend on the ``initially_dead`` set's
#: insertion history -- energy ledgers/breakdowns change for multi-node
#: initially_dead configs whose iteration order differed from sorted.
#: v6: ``TrialResult`` gained the hash-exempt ``telemetry`` field (obs
#: subsystem) that older pickles lack; measurements are unchanged, but a
#: v5 pickle would raise on the missing attribute.
CACHE_VERSION = 6

#: Config-dataclass fields deliberately excluded from hash coverage, as
#: ``"ClassName.field"`` strings.  The reprolint RL2xx rules verify that
#: every field of every config dataclass is reachable from
#: :func:`_canonical` (hence :func:`config_hash`) *or* listed here with a
#: written rationale -- an unhashed field would silently alias distinct
#: configs onto one cache entry.
#:
#: ``ExperimentConfig.instrument``: the observability level.  It selects
#: how much the obs layer *records* about a trial, never what the trial
#: computes, so instrumented and uninstrumented runs of one config must
#: share a cache key -- hashing it would fork the cache for bit-identical
#: results.  Enforced from the other side by ``ExperimentConfig.
#: HASH_EXCLUDE`` (reprolint RL505 checks the pairing).
HASH_EXEMPT: frozenset = frozenset({"ExperimentConfig.instrument"})


# ---------------------------------------------------------------------------
# Canonical config hashing
# ---------------------------------------------------------------------------


def _canonical(obj: object) -> object:
    """Reduce ``obj`` to a JSON-serialisable, order-stable structure.

    Dataclasses may declare a ``HASH_OMIT_WHEN_UNSET`` class attribute
    naming fields that are dropped from the canonical form while ``None``.
    This is the hash-compatibility convention for *extending* an existing
    config dataclass: a new optional field listed there leaves the
    canonical payload -- hence every cache key, manifest, and fingerprint
    -- of all pre-extension configs byte-identical.

    A ``HASH_EXCLUDE`` class attribute names fields dropped from the
    canonical form *unconditionally* (today: ``ExperimentConfig.
    instrument``): observation knobs that never influence the simulated
    outcome, so configs differing only there must alias onto one cache
    entry on purpose.  Every excluded field must be justified in
    :data:`HASH_EXEMPT`.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        omit = getattr(type(obj), "HASH_OMIT_WHEN_UNSET", ())
        exclude = getattr(type(obj), "HASH_EXCLUDE", ())
        return {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if f.name not in exclude
            and not (f.name in omit and getattr(obj, f.name) is None)
        }
    if isinstance(obj, dict):
        return {
            str(k): _canonical(v)
            for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(obj, (set, frozenset)):
        return sorted((_canonical(v) for v in obj), key=repr)
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    return repr(obj)


def config_hash(config: ExperimentConfig) -> str:
    """Stable digest of a config: the cache key of the trial it describes.

    Two configs hash equally iff every declared field (including the nested
    DirQ configuration, scripted topology events, and any dynamic-scenario
    parameters) is equal, so the hash identifies the simulation outcome
    under the deterministic runner.

    Back-compatibility: fields added after a config class's original hash
    scheme shipped (``ExperimentConfig.scenario``, the ``area_*`` /
    group-mobility scenario fields) are declared in their dataclass's
    ``HASH_OMIT_WHEN_UNSET`` and *omitted* from the payload while unset,
    so every pre-extension config keeps the cache key it had before the
    fields existed -- old caches and fingerprints survive each extension
    unchanged.
    """
    payload = json.dumps(
        _canonical(config), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


# ---------------------------------------------------------------------------
# Trial specification and result
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class TrialSpec:
    """One declarative point of a sweep.

    The constructor snapshots (deep-copies) the configuration and computes
    the cache key immediately, so later mutation of the caller's config --
    or the runner filling in ``dirq.full_scale`` during the build -- cannot
    change the trial's identity.
    """

    label: str
    config: ExperimentConfig
    group: str = ""
    tags: Dict[str, object] = dataclasses.field(default_factory=dict)
    key: str = dataclasses.field(init=False, default="")

    def __post_init__(self) -> None:
        self.config = copy.deepcopy(self.config)
        self.key = config_hash(self.config)

    def replicates(self, count: int) -> List["TrialSpec"]:
        """Derive ``count`` replications with independent seeds.

        Replicate 0 **is** the base configuration (same seed, hence the same
        :attr:`key`), so a trial cached by an earlier un-replicated run is
        reused when the sweep is later replicated; replicates 1..count-1 get
        independent seeds from :meth:`RandomStreams.derive_seed` and are
        reproducible from the spec alone.  Every derived spec is stamped
        with ``base_key`` / ``base_label`` / ``replicate`` tags, which is
        what :func:`repro.metrics.stats.group_replicates` folds groups by.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        specs = []
        for i in range(count):
            seed = (
                self.config.seed
                if i == 0
                else RandomStreams.derive_seed(self.config.seed, f"rep-{i}")
            )
            specs.append(
                TrialSpec(
                    label=self.label if i == 0 else f"{self.label} rep={i}",
                    config=self.config.replace(seed=seed),
                    group=self.group,
                    tags={
                        **self.tags,
                        "replicate": i,
                        "base_key": self.key,
                        "base_label": self.label,
                    },
                )
            )
        return specs


@dataclasses.dataclass
class TrialResult:
    """Picklable measurements of one trial.

    Mirrors the summary API of :class:`ExperimentResult` (overshoot,
    accuracy, cost ratio, update series) without holding live simulator
    objects, so it can cross process boundaries and live in the cache.
    """

    spec: TrialSpec
    audit: QueryAudit
    ledger: NetworkLedger
    num_queries: int
    flooding_cost_per_query: float
    update_series: List[WindowPoint]
    breakdown: CostBreakdown
    per_query_costs: List[float]
    atc_delta_history: Dict[int, List[float]]
    alive_at_end: Set[NodeId]
    num_nodes: int
    #: Dynamic-scenario telemetry: the effective churn / battery-death /
    #: reactivation events applied during the run as ``(epoch, kind,
    #: node_id)`` tuples, and the number of mobility re-link rounds.  Both
    #: stay empty/zero for static runs so pre-scenario fingerprints are
    #: unchanged.
    scenario_events: List[tuple] = dataclasses.field(default_factory=list)
    num_relinks: int = 0
    runtime_seconds: float = 0.0
    from_cache: bool = False
    #: Observability payload (``repro.obs``): metric snapshots, phase
    #: profile, trace summary -- present only when the config's
    #: ``instrument`` flag asked for it.  Excluded from
    #: :meth:`fingerprint` and stripped before the result is cached
    #: (:meth:`BatchRunner._cache_store`), so instrumentation can never
    #: leak into a determinism artefact.
    telemetry: Optional[dict] = None

    @classmethod
    def from_experiment(
        cls, spec: TrialSpec, result: ExperimentResult, runtime_seconds: float = 0.0
    ) -> "TrialResult":
        """Distil a live :class:`ExperimentResult` into a portable record."""
        return cls(
            spec=spec,
            audit=result.audit,
            ledger=result.ledger,
            num_queries=result.num_queries,
            flooding_cost_per_query=result.flooding_cost_per_query,
            update_series=list(result.update_series),
            breakdown=result.breakdown,
            per_query_costs=list(result.per_query_costs),
            atc_delta_history=dict(result.atc_delta_history),
            alive_at_end=set(result.alive_at_end),
            num_nodes=result.num_nodes,
            scenario_events=list(result.scenario_events),
            num_relinks=result.num_relinks,
            runtime_seconds=runtime_seconds,
            telemetry=result.telemetry,
        )

    # -- convenience accessors ------------------------------------------------

    @property
    def label(self) -> str:
        return self.spec.label

    @property
    def config(self) -> ExperimentConfig:
        return self.spec.config

    @property
    def records(self) -> List[QueryRecord]:
        return self.audit.records

    # -- headline summaries (same semantics as ExperimentResult) -------------

    @property
    def mean_overshoot_percent(self) -> float:
        return mean_overshoot(self.audit.records)

    @property
    def mean_accuracy(self) -> float:
        return mean_accuracy(self.audit.records)

    @property
    def total_dirq_cost(self) -> float:
        return self.breakdown.total_dirq_cost

    @property
    def total_flooding_cost(self) -> float:
        if self.config.protocol == ProtocolName.FLOODING:
            return self.breakdown.flood_cost
        return self.flooding_cost_per_query * self.num_queries

    @property
    def cost_ratio(self) -> float:
        flooding = self.total_flooding_cost
        if flooding <= 0:
            return float("inf")
        return self.total_dirq_cost / flooding

    def updates_per_window(self) -> List[float]:
        return [p.value for p in self.update_series]

    # -- determinism ---------------------------------------------------------

    def fingerprint(self, *, include_key: bool = True) -> str:
        """Digest of every deterministic measurement of this trial.

        Two runs of the same spec must produce equal fingerprints no matter
        how many workers executed the batch; runtime and cache provenance
        are excluded.  ``include_key=False`` drops the config hash from the
        payload, for A/B comparisons between configs that differ only in an
        implementation-strategy flag (e.g. ``neighbor_method``) and must
        produce identical measurements.
        """
        payload = {
            "key": self.spec.key if include_key else None,
            "num_queries": self.num_queries,
            "flooding_cost_per_query": self.flooding_cost_per_query,
            "per_query_costs": self.per_query_costs,
            "breakdown": _canonical(self.breakdown),
            "series": [(p.window_start, p.value) for p in self.update_series],
            "alive": sorted(self.alive_at_end),
            "num_nodes": self.num_nodes,
            "atc": {
                str(nid): values
                for nid, values in sorted(self.atc_delta_history.items())
            },
            "ledger": sorted(
                (kind, count, cost)
                for kind, (count, cost) in self.ledger.breakdown_by_kind().items()
            ),
            "records": [
                (
                    r.query_id,
                    r.injection_epoch,
                    r.population,
                    sorted(r.sources),
                    sorted(r.should_receive),
                    sorted(r.received),
                    sorted(r.source_claims),
                )
                for r in self.audit.records
            ],
        }
        # Scenario telemetry enters the payload only when present, so the
        # fingerprints of scenario-free trials are byte-identical to what
        # they were before the scenario subsystem existed.
        if self.scenario_events:
            payload["scenario_events"] = [
                [int(epoch), kind, int(nid)]
                for epoch, kind, nid in self.scenario_events
            ]
        if self.num_relinks:
            payload["num_relinks"] = self.num_relinks
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _execute_trial(spec: TrialSpec) -> TrialResult:
    """Worker entry point: run one trial on a private copy of its config.

    The deep copy keeps the worker's mutations (the runner fills in
    ``dirq.full_scale`` from the generated dataset) away from the spec's
    snapshot, so serial and parallel execution see identical inputs.
    """
    config = copy.deepcopy(spec.config)
    start = time.perf_counter()
    result = run_experiment(config)
    return TrialResult.from_experiment(
        spec, result, runtime_seconds=time.perf_counter() - start
    )


# ---------------------------------------------------------------------------
# The batch runner
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class BatchStats:
    """Execution accounting for one :meth:`BatchRunner.run` call."""

    total: int = 0
    executed: int = 0
    cached: int = 0
    deduplicated: int = 0
    workers: int = 1
    runtime_seconds: float = 0.0


class BatchRunner:
    """Runs sweeps of :class:`TrialSpec` across worker processes.

    Parameters
    ----------
    max_workers:
        Concurrent trials; defaults to the machine's CPU count.  ``1``
        executes inline (no pool), which is also the fallback for
        single-trial batches.
    cache_dir:
        Directory of the on-disk result cache.  ``None`` consults the
        ``REPRO_CACHE_DIR`` environment variable; an empty string
        force-disables caching (ignoring the environment).  Results are
        stored as ``<config-hash>.pkl``; a re-run of a sweep only executes
        trials missing from the cache.
    executor:
        ``"process"`` (default), ``"thread"``, or ``"serial"``.  Threads
        exist for debugging (shared tracebacks); the simulator is pure
        Python, so real speed-ups need processes.
    telemetry:
        Optional run-telemetry sink (duck-typed to
        :class:`repro.obs.progress.RunTelemetry`): ``on_start(total,
        workers=...)`` fires when a sweep is classified, ``on_result(result)``
        once per input spec (cache hits and deduplicated twins included,
        rebound like the ``progress`` callback), ``on_failure()`` when a
        sweep aborts.  Purely observational -- it sees results after they
        are cached and cannot affect execution.
    """

    EXECUTORS = ("process", "thread", "serial")

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache_dir: Optional[os.PathLike] = None,
        executor: str = "process",
        telemetry=None,
    ):
        if executor not in self.EXECUTORS:
            raise ValueError(
                f"executor must be one of {self.EXECUTORS}, got {executor!r}"
            )
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if cache_dir is None:
            cache_dir = os.environ.get(CACHE_ENV_VAR) or None
        self.max_workers = int(max_workers)
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.executor = executor
        self.telemetry = telemetry
        self.last_stats = BatchStats()

    # -- cache ---------------------------------------------------------------

    def _cache_path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.pkl"

    def _cache_load(self, spec: TrialSpec) -> Optional[TrialResult]:
        path = self._cache_path(spec.key)
        if path is None or not path.is_file():
            return None
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
            if payload.get("version") != CACHE_VERSION:
                return None
            result = payload["result"]
        except Exception:
            return None  # corrupt entry: fall through to re-execution
        result.from_cache = True
        return result

    def _cache_store(self, result: TrialResult) -> None:
        path = self._cache_path(result.spec.key)
        if path is None:
            return
        # Telemetry never forks the cache: the stored payload is identical
        # whether or not the trial was instrumented, so an instrumented run
        # warms the cache for uninstrumented re-runs (and vice versa).
        if result.telemetry is not None:
            result = dataclasses.replace(result, telemetry=None)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        with tmp.open("wb") as fh:
            pickle.dump({"version": CACHE_VERSION, "result": result}, fh)
        os.replace(tmp, path)  # atomic against concurrent sweeps
        self._write_manifest(result.spec)

    def _write_manifest(self, spec: TrialSpec) -> None:
        """Write the human/tool-readable ``<key>.json`` sidecar of an entry.

        The manifest makes the pickle cache inspectable and prunable
        (``python -m repro.experiments.cache``): it records the cache
        version, the spec's label/group/tags, and the full canonical
        config.  Deliberately timestamp-free (file mtime carries the age)
        so manifests are deterministic.
        """
        manifest = {
            "version": CACHE_VERSION,
            "key": spec.key,
            "label": spec.label,
            "group": spec.group,
            "tags": _canonical(spec.tags),
            "config": _canonical(spec.config),
        }
        path = self.cache_dir / f"{spec.key}.json"
        tmp = self.cache_dir / f"{spec.key}.json.tmp"
        tmp.write_text(json.dumps(manifest, sort_keys=True, indent=2) + "\n")
        os.replace(tmp, path)

    # -- execution -----------------------------------------------------------

    def run(
        self,
        specs: Iterable[TrialSpec],
        progress: Optional[Callable[[TrialResult], None]] = None,
    ) -> List[TrialResult]:
        """Execute a sweep and return one result per spec, in input order.

        Identical configurations (equal :attr:`TrialSpec.key`) are executed
        once and share a result.  ``progress`` is invoked exactly once per
        *input spec* (cache hits and deduplicated twins included), always
        with the result rebound to the spec it reports on -- a callback
        never sees a twin's label or tags.  Executed results are cached on
        disk *before* their progress callback fires, so a callback that
        raises (or an interruption during one) cannot lose finished work.

        Interruption contract: if a trial fails or the run is interrupted
        (``KeyboardInterrupt``), every trial that already finished is still
        written to the cache -- including parallel futures that completed
        but had not been consumed yet -- before the exception propagates,
        and :attr:`last_stats` reflects the partial run.  A killed sweep
        therefore loses at most the trials that were in flight.
        """
        spec_list = list(specs)
        start = time.perf_counter()
        stats = BatchStats(total=len(spec_list), workers=self.max_workers)
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.on_start(len(spec_list), workers=self.max_workers)
        by_key: Dict[str, TrialResult] = {}
        pending: List[TrialSpec] = []
        # key -> every input spec that asked for it, in input order; the
        # progress callback fires once per waiter, rebound to that spec.
        waiters: Dict[str, List[TrialSpec]] = {}

        def notify(result: TrialResult) -> None:
            if progress is None and telemetry is None:
                return
            for spec in waiters[result.spec.key]:
                rebound = self._rebind(result, spec)
                if telemetry is not None:
                    telemetry.on_result(rebound)
                if progress is not None:
                    progress(rebound)

        def on_result(result: TrialResult) -> None:
            stats.executed += 1
            by_key[result.spec.key] = result
            self._cache_store(result)
            notify(result)

        try:
            for spec in spec_list:
                if spec.key in waiters:
                    stats.deduplicated += 1
                    waiters[spec.key].append(spec)
                    continue
                waiters[spec.key] = [spec]
                cached = self._cache_load(spec)
                if cached is not None:
                    stats.cached += 1
                    by_key[spec.key] = cached
                else:
                    pending.append(spec)
            # Cache hits report progress only after the whole sweep is
            # classified, so a deduplicated twin of a cached spec is
            # notified too (its key is only known to be a duplicate then).
            for result in by_key.values():
                notify(result)

            try:
                self._execute(pending, on_result)
            except BaseException:
                if telemetry is not None:
                    telemetry.on_failure()
                raise
        finally:
            stats.runtime_seconds = time.perf_counter() - start
            self.last_stats = stats
        # A result produced (or cached) under one spec may be consumed by a
        # twin with a different label/tags -- e.g. two sweeps whose configs
        # hash equally.  Rebind each returned result to the spec that asked
        # for it so tag-based assembly never reads a sibling's metadata.
        return [self._rebind(by_key[spec.key], spec) for spec in spec_list]

    @staticmethod
    def _rebind(result: TrialResult, spec: TrialSpec) -> TrialResult:
        """The result as seen by ``spec`` (shared payload, own metadata)."""
        if result.spec is spec:
            return result
        return dataclasses.replace(result, spec=spec)

    def run_replicated(
        self,
        specs,
        n: int = DEFAULT_REPLICATES,
        metrics=None,
        confidence: float = DEFAULT_CONFIDENCE,
        progress: Optional[Callable[[TrialResult], None]] = None,
    ):
        """Run every spec ``n`` times and return one replicate group per spec.

        ``specs`` is a :class:`TrialSpec` or an iterable of them.  Each spec
        expands via :meth:`TrialSpec.replicates` (replicate 0 is the base
        configuration, so previously-cached single trials compose into their
        group without re-running), the expanded sweep executes through
        :meth:`run` (deduplication, caching, and worker fan-out included),
        and the results fold into :class:`~repro.metrics.stats.
        ReplicateGroup` objects carrying a
        :class:`~repro.metrics.stats.ReplicateSummary` per scalar metric and
        per-group cache-hit accounting (``group.cache_hits`` /
        ``group.executed``).  :attr:`last_stats` reflects the expanded run.
        """
        if isinstance(specs, TrialSpec):
            specs = [specs]
        expanded = [rep for spec in specs for rep in spec.replicates(n)]
        results = self.run(expanded, progress=progress)
        return group_replicates(results, metrics=metrics, confidence=confidence)

    def run_map(self, specs: Iterable[TrialSpec]) -> Dict[str, TrialResult]:
        """Execute a sweep and return results keyed by spec label."""
        spec_list = list(specs)
        labels = [s.label for s in spec_list]
        if len(set(labels)) != len(labels):
            raise ValueError("run_map requires unique spec labels")
        results = self.run(spec_list)
        return dict(zip(labels, results))

    def _execute(
        self,
        pending: Sequence[TrialSpec],
        on_result: Callable[[TrialResult], None],
    ) -> None:
        """Execute ``pending``, delivering each finished trial to ``on_result``.

        ``on_result`` is the caching/accounting/progress hook of
        :meth:`run`; it runs in the coordinating thread.  On a trial
        failure every *other* trial that already completed is delivered
        first (so its result is cached) and then a ``RuntimeError`` naming
        the failing trial propagates; a ``KeyboardInterrupt`` likewise
        drains completed-but-unconsumed futures before re-raising, so an
        interrupted sweep loses only the trials still in flight.
        """
        if not pending:
            return
        workers = min(self.max_workers, len(pending))
        if self.executor == "serial" or workers == 1:
            for spec in pending:
                try:
                    result = _execute_trial(spec)
                except Exception as error:
                    raise RuntimeError(
                        f"trial {spec.label!r} (key {spec.key}) failed"
                    ) from error
                on_result(result)
            return
        pool_cls = (
            ProcessPoolExecutor if self.executor == "process" else ThreadPoolExecutor
        )
        with pool_cls(max_workers=workers) as pool:
            futures: Dict[Future, TrialSpec] = {
                pool.submit(_execute_trial, spec): spec for spec in pending
            }
            try:
                while futures:
                    done, _ = wait(futures, return_when=FIRST_EXCEPTION)
                    failure: Optional[tuple] = None
                    for future in done:
                        spec = futures.pop(future)
                        error = future.exception()
                        if error is not None:
                            # Keep delivering the siblings that finished in
                            # the same round; raise (the first) failure
                            # only once their results are safely cached.
                            if failure is None:
                                failure = (spec, error)
                            continue
                        on_result(future.result())
                    if failure is not None:
                        spec, error = failure
                        raise RuntimeError(
                            f"trial {spec.label!r} (key {spec.key}) failed"
                        ) from error
            except BaseException:
                # Completed-but-unconsumed futures (finished while the
                # failure/interrupt was being processed) still hold real
                # results: deliver them so they reach the cache before the
                # exception escapes.
                self._drain_completed(futures, on_result)
                raise
            finally:
                for future in futures:
                    future.cancel()

    @staticmethod
    def _drain_completed(
        futures: Dict[Future, TrialSpec],
        on_result: Callable[[TrialResult], None],
    ) -> None:
        """Deliver every already-finished, successful future in ``futures``."""
        for future in list(futures):
            if future.done() and not future.cancelled():
                futures.pop(future)
                if future.exception() is None:
                    on_result(future.result())


def run_sweep(
    specs: Iterable[TrialSpec],
    runner: Optional[BatchRunner] = None,
) -> List[TrialResult]:
    """Convenience wrapper: run ``specs`` on ``runner`` (or a default one)."""
    return (runner if runner is not None else BatchRunner()).run(specs)


def run_sweep_map(
    specs: Iterable[TrialSpec],
    runner: Optional[BatchRunner] = None,
) -> Dict[str, TrialResult]:
    """Like :func:`run_sweep` but keyed by spec label (labels must be unique)."""
    return (runner if runner is not None else BatchRunner()).run_map(specs)


def run_sweep_replicated(
    specs: Iterable[TrialSpec],
    runner: Optional[BatchRunner] = None,
    replicates: int = DEFAULT_REPLICATES,
):
    """Run ``specs`` with ``replicates`` seeds each; one group per spec.

    The shared front door for the figure modules: expansion, execution, and
    grouping all happen in :meth:`BatchRunner.run_replicated`, so every
    figure inherits identical replication semantics.
    """
    return (runner if runner is not None else BatchRunner()).run_replicated(
        specs, n=replicates
    )
