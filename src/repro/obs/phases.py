"""Phase profiling of the epoch tick with injectable monotonic time.

The experiment runner's epoch loop decomposes into the named phases of
:data:`repro.obs.catalogue.PHASES` (mac drain, scenario hooks, tree
repair, sensor sampling, channel drain, protocol tick).  A
:class:`PhaseTimer` accumulates wall time per phase and optionally keeps
bounded per-interval spans for Chrome trace-event export
(:mod:`repro.obs.trace_export`).

Time comes from an injectable ``now`` callable defaulting to
:func:`repro.utils.clock.mono_now` -- the sanctioned monotonic accessor
-- so tests drive the timer with a scripted clock and measured durations
stay out of anything hashed (phase tables live in the hash-exempt
``telemetry`` payload only; the deterministic exports keep call *counts*
and drop durations).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..utils.clock import mono_now
from .catalogue import PHASES

#: Per-trial span budget.  A 20 000-epoch trial ticking six phases would
#: otherwise retain 120 000 spans; past the budget the timer keeps
#: accumulating totals and counts but stops recording spans (counted in
#: ``dropped_spans``), mirroring the tracer ring-buffer contract.
DEFAULT_MAX_SPANS = 20_000


class PhaseTimer:
    """Accumulates named-phase durations; ``enabled=False`` is a no-op.

    Usage is a flat ``begin(name)`` / ``end()`` pair per phase interval
    (no nesting -- the epoch tick is a straight-line sequence).  A
    ``begin`` while a phase is open implicitly ends the open phase, so
    the runner can instrument a loop with early ``continue`` paths
    without try/finally scaffolding.
    """

    __slots__ = (
        "enabled",
        "_now",
        "_max_spans",
        "_origin",
        "_open_phase",
        "_open_at",
        "totals",
        "counts",
        "spans",
        "dropped_spans",
    )

    def __init__(
        self,
        enabled: bool = True,
        now: Callable[[], float] = mono_now,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        self.enabled = enabled
        self._now = now
        self._max_spans = max_spans
        self._origin: Optional[float] = None
        self._open_phase: Optional[str] = None
        self._open_at = 0.0
        #: phase -> accumulated seconds
        self.totals: Dict[str, float] = {}
        #: phase -> number of begin/end intervals
        self.counts: Dict[str, int] = {}
        #: (phase, start-seconds-since-first-begin, duration-seconds)
        self.spans: List[Tuple[str, float, float]] = []
        self.dropped_spans = 0

    def begin(self, phase: str) -> None:
        """Open ``phase``, implicitly ending any phase still open."""
        if not self.enabled:
            return
        if phase not in PHASES:
            raise ValueError(
                f"phase {phase!r} is not in the PHASES taxonomy "
                "(repro.obs.catalogue)"
            )
        now = self._now()
        if self._open_phase is not None:
            self._close(now)
        if self._origin is None:
            self._origin = now
        self._open_phase = phase
        self._open_at = now

    def end(self) -> None:
        """End the open phase (no-op when none is open)."""
        if not self.enabled or self._open_phase is None:
            return
        self._close(self._now())

    def _close(self, now: float) -> None:
        phase = self._open_phase
        assert phase is not None
        duration = now - self._open_at
        self.totals[phase] = self.totals.get(phase, 0.0) + duration
        self.counts[phase] = self.counts.get(phase, 0) + 1
        if len(self.spans) < self._max_spans:
            assert self._origin is not None
            self.spans.append((phase, self._open_at - self._origin, duration))
        else:
            self.dropped_spans += 1
        self._open_phase = None

    def table(self) -> List[Tuple[str, int, float, float, float]]:
        """Rows of ``(phase, calls, total_s, mean_ms, share)``.

        Ordered by the PHASES taxonomy (not by magnitude) so tables from
        different trials line up row-for-row.
        """
        grand = sum(self.totals.values())
        rows = []
        for phase in PHASES:
            if phase not in self.counts:
                continue
            total = self.totals[phase]
            calls = self.counts[phase]
            rows.append(
                (
                    phase,
                    calls,
                    total,
                    1000.0 * total / calls,
                    total / grand if grand else 0.0,
                )
            )
        return rows

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready summary: totals + counts + span accounting.

        ``counts`` is deterministic (a pure function of the simulated
        work); ``totals`` is measured wall time and therefore only
        belongs in the hash-exempt telemetry payload.
        """
        return {
            "totals": {p: self.totals[p] for p in sorted(self.totals)},
            "counts": {p: self.counts[p] for p in sorted(self.counts)},
            "spans": len(self.spans),
            "dropped_spans": self.dropped_spans,
        }


#: The shared disabled timer.  Do not mutate -- process-global, like
#: ``NULL_TRACER`` / ``NULL_METRICS``.
NULL_PHASES = PhaseTimer(enabled=False)
