"""repro.obs -- determinism-preserving observability.

Three pillars, all optional and all excluded from result hashing:

* :mod:`repro.obs.metrics` -- named counters/gauges/histograms
  (:class:`MetricsRegistry`) with a zero-overhead disabled default
  (:data:`NULL_METRICS`);
* :mod:`repro.obs.phases` -- a :class:`PhaseTimer` decomposing the epoch
  tick into named phases using injectable monotonic time;
* :mod:`repro.obs.progress` -- :class:`RunTelemetry` structured progress
  events for batch/campaign runs.

:class:`repro.obs.instrumentation.Instrumentation` bundles the three
(plus the :class:`~repro.simulation.trace.Tracer` ring buffer) behind one
handle; :mod:`repro.obs.trace_export` renders tracer records and phase
spans as JSONL / Chrome trace-event JSON (loadable in Perfetto).

Everything collected here lands in the hash-exempt ``telemetry`` payload
of :class:`~repro.experiments.runner.ExperimentResult` /
:class:`~repro.experiments.batch.TrialResult`: enabling instrumentation
never changes a ``config_hash``, a trial fingerprint, or a cached
artifact (see ``docs/observability.md``).

The reporting CLI lives in :mod:`repro.obs.report` (``python -m
repro.obs.report``) and is deliberately *not* imported here: the base
``repro.obs`` package sits at the simulation layer and must stay free of
experiment-layer imports.
"""

from __future__ import annotations

from .catalogue import METRIC_CATALOGUE, PHASES, TRACE_CATALOGUE
from .instrumentation import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    build_instrumentation,
)
from .metrics import NULL_METRICS, MetricsRegistry
from .phases import NULL_PHASES, PhaseTimer
from .progress import RunTelemetry

__all__ = [
    "METRIC_CATALOGUE",
    "TRACE_CATALOGUE",
    "PHASES",
    "MetricsRegistry",
    "NULL_METRICS",
    "PhaseTimer",
    "NULL_PHASES",
    "Instrumentation",
    "NULL_INSTRUMENTATION",
    "build_instrumentation",
    "RunTelemetry",
]
