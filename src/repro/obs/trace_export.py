"""Export paths for tracer records and phase spans.

Two formats, one code path:

* **JSONL** -- one JSON object per :class:`TraceRecord`, sorted keys, in
  record order.  Deterministic: byte-identical for byte-identical
  simulations.
* **Chrome trace-event JSON** -- the ``{"traceEvents": [...]}`` format
  consumed by Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.
  Phase spans render as complete (``"ph": "X"``) events on the profiler
  track; tracer records render as instant (``"ph": "i"``) events on a
  separate simulated-time track, one thread lane per node.

The two tracks deliberately use different ``pid`` values: phase spans are
measured *host* time (microseconds since the trial started), tracer
records are *simulated* time (simulated seconds scaled to microseconds).
Perfetto shows them as two processes so the unrelated clocks never get
visually conflated.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from ..simulation.trace import Tracer
from .phases import PhaseTimer

#: ``pid`` of the host-time phase-profile track.
PHASE_PID = 1
#: ``pid`` of the simulated-time tracer-record track.
TRACE_PID = 2

_REQUIRED_EVENT_KEYS = {"name", "ph", "ts", "pid", "tid"}


def tracer_to_jsonl(tracer: Tracer) -> str:
    """Retained tracer records as JSON-lines (one record per line)."""
    lines = []
    for rec in tracer.records:
        lines.append(
            json.dumps(
                {
                    "time": rec.time,
                    "category": rec.category,
                    "node": rec.node,
                    "detail": rec.detail,
                },
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def chrome_trace(
    phases: Optional[PhaseTimer] = None,
    tracer: Optional[Tracer] = None,
    label: str = "trial",
) -> Dict[str, object]:
    """Phase spans + tracer records as a Chrome trace-event payload."""
    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": PHASE_PID,
            "tid": 0,
            "args": {"name": f"{label}: epoch phases (host time)"},
        },
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": f"{label}: trace records (simulated time)"},
        },
    ]
    if phases is not None:
        for name, start, duration in phases.spans:
            events.append(
                {
                    "name": name,
                    "cat": "phase",
                    "ph": "X",
                    "ts": int(start * 1e6),
                    "dur": max(int(duration * 1e6), 1),
                    "pid": PHASE_PID,
                    "tid": 1,
                }
            )
    if tracer is not None:
        for rec in tracer.records:
            events.append(
                {
                    "name": rec.category,
                    "cat": rec.category.split(".", 1)[0],
                    "ph": "i",
                    "s": "t",
                    "ts": int(rec.time * 1e6),
                    "pid": TRACE_PID,
                    "tid": rec.node if rec.node is not None else 0,
                    "args": {str(k): rec.detail[k] for k in sorted(rec.detail)},
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(payload: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``payload`` is loadable trace JSON.

    Checks the envelope and the per-event schema Perfetto's importer
    requires: every event carries name/ph/ts/pid/tid, complete events
    carry a non-negative ``dur``, and timestamps are integers.
    """
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("trace payload must be a dict with 'traceEvents'")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object")
        missing = _REQUIRED_EVENT_KEYS - set(event)
        if missing:
            raise ValueError(f"event {i} missing keys: {sorted(missing)}")
        if not isinstance(event["ts"], int):
            raise ValueError(f"event {i} 'ts' must be an integer microsecond")
        if event["ph"] == "X":
            if not isinstance(event.get("dur"), int) or event["dur"] < 0:
                raise ValueError(f"event {i} complete span needs int 'dur'>=0")


def write_chrome_trace(path, payload: Dict[str, object]) -> Path:
    """Validate ``payload`` and write it to ``path`` (parents created)."""
    validate_chrome_trace(payload)
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n",
        encoding="utf-8",
    )
    return out


def write_jsonl(path, tracer: Tracer) -> Path:
    """Write the tracer's retained records to ``path`` as JSONL."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(tracer_to_jsonl(tracer), encoding="utf-8")
    return out
