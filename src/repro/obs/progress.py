"""Structured run telemetry for batch and campaign executions.

:class:`RunTelemetry` turns the :class:`~repro.experiments.batch.
BatchRunner` per-trial callback stream into operational numbers: trials
done / executed / cache-served / failed, throughput, worker utilisation,
and an ETA.  It is the "is this campaign healthy?" instrument -- the
numbers are *wall-clock derived and therefore never hashed or exported
deterministically*; deterministic campaign state lives in the
:class:`~repro.experiments.store.ResultsStore`.

Time comes from an injectable monotonic ``now`` callable
(:func:`repro.utils.clock.mono_now` by default) so snapshots are
testable with a scripted clock.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..utils.clock import mono_now


class RunTelemetry:
    """Accumulates per-trial completion events into progress snapshots."""

    __slots__ = (
        "_now",
        "_started_at",
        "total",
        "workers",
        "done",
        "executed",
        "cached",
        "failed",
        "busy_seconds",
    )

    def __init__(
        self,
        total: int = 0,
        workers: int = 1,
        now: Callable[[], float] = mono_now,
    ) -> None:
        self._now = now
        self._started_at: Optional[float] = None
        self.total = int(total)
        self.workers = max(int(workers), 1)
        self.done = 0
        self.executed = 0
        self.cached = 0
        self.failed = 0
        #: summed per-trial runtime of executed trials -- the numerator
        #: of worker utilisation.
        self.busy_seconds = 0.0

    def on_start(self, total: int, workers: int = 1) -> None:
        """Begin (or re-begin, on resume) a run of ``total`` trials."""
        self.total = int(total)
        self.workers = max(int(workers), 1)
        self._started_at = self._now()

    def on_result(self, result) -> None:
        """Record one finished trial (a ``TrialResult``-shaped object)."""
        if self._started_at is None:
            self._started_at = self._now()
        self.done += 1
        if getattr(result, "from_cache", False):
            self.cached += 1
        else:
            self.executed += 1
            self.busy_seconds += float(
                getattr(result, "runtime_seconds", 0.0)
            )

    def on_failure(self) -> None:
        """Record an aborted/failed execution.

        Deliberately does *not* bump ``done``: ``done`` counts completed
        trials only, so it always equals the rows a campaign's
        :class:`~repro.experiments.store.ResultsStore` holds -- an
        interrupt or a crashed trial never inflates the progress count.
        """
        if self._started_at is None:
            self._started_at = self._now()
        self.failed += 1

    def snapshot(self) -> Dict[str, object]:
        """The current progress numbers as a JSON-ready dict."""
        elapsed = (
            self._now() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        rate = self.done / elapsed if elapsed > 0 else 0.0
        remaining = max(self.total - self.done, 0)
        return {
            "total": self.total,
            "done": self.done,
            "executed": self.executed,
            "cached": self.cached,
            "failed": self.failed,
            "elapsed_s": elapsed,
            "trials_per_s": rate,
            "eta_s": remaining / rate if rate > 0 else None,
            "utilisation": (
                self.busy_seconds / (elapsed * self.workers)
                if elapsed > 0
                else 0.0
            ),
        }

    def render(self) -> str:
        """One status line, e.g. for periodic progress printing."""
        snap = self.snapshot()
        eta = (
            f"{snap['eta_s']:.0f}s" if snap["eta_s"] is not None else "?"
        )
        return (
            f"{snap['done']}/{snap['total']} trials "
            f"(executed {snap['executed']}, cached {snap['cached']}, "
            f"failed {snap['failed']}) "
            f"{snap['trials_per_s']:.2f}/s, eta {eta}, "
            f"util {100.0 * snap['utilisation']:.0f}%"
        )
