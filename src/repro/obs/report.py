"""Observability report CLI: per-trial phase/metric breakdowns and
campaign progress summaries.

Two modes:

* **Trial mode** (``--scenario``): run one fully-instrumented trial of a
  registered scenario (or the ``headline`` paper configuration) and
  render its phase profile and metric snapshot.  ``--trace-out`` writes
  the Chrome trace-event JSON (loadable in Perfetto /
  ``chrome://tracing``), ``--trace-jsonl`` the raw tracer records.
* **Campaign mode** (``--campaign``): summarise what a
  :class:`~repro.experiments.store.ResultsStore` has recorded for a
  campaign -- per-cell counts and replicate-folded metrics.

Output contract: the ``--json`` export contains only **deterministic**
data (metric counters/histograms, phase *call counts*, trace category
counts, the trial fingerprint) -- measured durations appear in the
console/markdown rendering only, so the JSON is byte-identical across
re-runs and safe to diff in CI.

Usage::

    python -m repro.obs.report --scenario harsh-mixed --epochs 300 \
        --trace-out artifacts/harsh.trace.json --json artifacts/harsh.json
    python -m repro.obs.report --campaign my-campaign --store results.sqlite
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..experiments.batch import TrialResult, TrialSpec
from ..experiments.config import ExperimentConfig, paper_defaults
from ..experiments.runner import ExperimentRunner
from ..experiments.store import DEFAULT_STORE_NAME, METRIC_COLUMNS, ResultsStore
from ..metrics.report import (
    format_key_values,
    format_markdown_table,
    format_progress,
    format_replicate_table,
    format_table,
)
from ..scenarios.registry import build_config, scenario_names
from .catalogue import METRIC_CATALOGUE
from .trace_export import chrome_trace, write_chrome_trace, write_jsonl

#: The non-registry scenario alias: the paper's §7 headline configuration
#: (50 nodes, DirQ with Adaptive Threshold Control).
HEADLINE = "headline"


def _build_trial_config(
    scenario: str, num_epochs: int, seed: int, instrument: Optional[str]
) -> ExperimentConfig:
    if scenario == HEADLINE:
        config = paper_defaults(num_epochs=num_epochs, seed=seed).with_atc()
    else:
        config = build_config(scenario, num_epochs=num_epochs, seed=seed)
    return config.replace(instrument=instrument)


def _phase_rows(table: List[Tuple[str, int, float, float, float]]):
    return [
        (phase, calls, f"{total:.3f}", f"{mean_ms:.3f}", f"{100.0 * share:.1f}%")
        for phase, calls, total, mean_ms, share in table
    ]


def _metric_rows(snapshot: Dict[str, object]) -> List[Tuple[str, object, str]]:
    rows: List[Tuple[str, object, str]] = []
    for name, value in snapshot["counters"].items():
        rows.append((name, value, METRIC_CATALOGUE.get(name, "")))
    for name, value in snapshot["gauges"].items():
        rows.append((name, value, METRIC_CATALOGUE.get(name, "")))
    for name, hist in snapshot["histograms"].items():
        summary = (
            f"n={hist['count']} min={hist['min']} max={hist['max']} "
            f"mean={hist['total'] / hist['count']:.2f}"
            if hist["count"]
            else "n=0"
        )
        rows.append((name, summary, METRIC_CATALOGUE.get(name, "")))
    return sorted(rows)


def _trial_json_payload(
    result: TrialResult, telemetry: Dict[str, object]
) -> Dict[str, object]:
    """The deterministic trial export: no wall-clock measurement enters.

    Phase *totals* (measured seconds) are deliberately dropped; the call
    counts are a pure function of the simulated work and stay.
    """
    payload: Dict[str, object] = {
        "label": result.label,
        "key": result.spec.key,
        "fingerprint": result.fingerprint(),
        "num_queries": result.num_queries,
    }
    if "metrics" in telemetry:
        payload["metrics"] = telemetry["metrics"]
    if "phases" in telemetry:
        payload["phase_counts"] = telemetry["phases"]["counts"]
    if "trace" in telemetry:
        payload["trace_counts"] = {
            k: telemetry["trace"][k] for k in sorted(telemetry["trace"])
        }
    return payload


def run_trial_report(args: argparse.Namespace) -> int:
    config = _build_trial_config(
        args.scenario, args.epochs, args.seed, args.instrument
    )
    spec = TrialSpec(label=args.scenario, config=config)
    exp_runner = ExperimentRunner(config)
    exp_result = exp_runner.run()
    result = TrialResult.from_experiment(spec, exp_result)
    instrumentation = exp_runner.world.sim.instrumentation
    telemetry = exp_result.telemetry or {}

    print(
        format_key_values(
            f"trial {args.scenario} "
            f"({args.epochs} epochs, seed {args.seed}, "
            f"instrument={args.instrument})",
            [
                ("config key", spec.key),
                ("fingerprint", result.fingerprint()[:20]),
                ("queries", result.num_queries),
                ("alive at end", len(result.alive_at_end)),
            ],
        )
    )
    if instrumentation.phases.enabled:
        print()
        print(
            format_table(
                headers=["phase", "calls", "total s", "mean ms", "share"],
                rows=_phase_rows(instrumentation.phases.table()),
                title="epoch-tick phase profile (host time)",
            )
        )
    if "metrics" in telemetry:
        print()
        print(
            format_table(
                headers=["metric", "value", "description"],
                rows=_metric_rows(telemetry["metrics"]),
                title="metric snapshot",
            )
        )
    if "trace" in telemetry:
        print()
        print(
            format_table(
                headers=["category", "records"],
                rows=sorted(telemetry["trace"].items()),
                title="trace record counts",
            )
        )

    if args.trace_out:
        path = write_chrome_trace(
            args.trace_out,
            chrome_trace(
                phases=(
                    instrumentation.phases
                    if instrumentation.phases.enabled
                    else None
                ),
                tracer=(
                    instrumentation.tracer
                    if instrumentation.tracer.enabled
                    else None
                ),
                label=args.scenario,
            ),
        )
        print(f"\nChrome trace written to {path} (load at ui.perfetto.dev)")
    if args.trace_jsonl:
        path = write_jsonl(args.trace_jsonl, instrumentation.tracer)
        print(f"trace JSONL written to {path}")
    if args.json:
        payload = _trial_json_payload(result, telemetry)
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        print(f"deterministic JSON written to {out}")
    if args.markdown:
        lines = [f"# Trial report: `{args.scenario}`", ""]
        if instrumentation.phases.enabled:
            lines += [
                "## Phase profile",
                "",
                format_markdown_table(
                    headers=["phase", "calls", "total s", "mean ms", "share"],
                    rows=_phase_rows(instrumentation.phases.table()),
                ),
                "",
            ]
        if "metrics" in telemetry:
            lines += [
                "## Metrics",
                "",
                format_markdown_table(
                    headers=["metric", "value", "description"],
                    rows=_metric_rows(telemetry["metrics"]),
                ),
                "",
            ]
        out = Path(args.markdown)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text("\n".join(lines))
        print(f"markdown report written to {out}")
    return 0


def run_campaign_report(args: argparse.Namespace) -> int:
    store_path = Path(args.store) if args.store else Path(DEFAULT_STORE_NAME)
    if not store_path.exists():
        print(f"error: no results store at {store_path}", file=sys.stderr)
        return 2
    with ResultsStore(store_path) as store:
        try:
            row = store.resolve_campaign(args.campaign)
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
        done = store.count(row.campaign_id)
        print(
            format_key_values(
                f"campaign {row.campaign_id}",
                [
                    ("name", row.name),
                    ("stored trials", f"{done}/{row.total_trials}"),
                    ("progress", format_progress(done, row.total_trials)),
                ],
            )
        )
        groups = store.replicate_groups(row.campaign_id)
        if groups:
            print()
            print(
                format_replicate_table(
                    groups, metrics=list(METRIC_COLUMNS), title=None
                )
            )
        if args.json:
            payload = store.export_jsonable(row.campaign_id)
            out = Path(args.json)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
            print(f"deterministic JSON written to {out}")
        if args.markdown:
            table = format_replicate_table(
                groups, metrics=list(METRIC_COLUMNS), title=None
            )
            out = Path(args.markdown)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(
                f"# Campaign report: `{row.campaign_id}`\n\n"
                f"{done}/{row.total_trials} trials stored.\n\n"
                f"```\n{table}\n```\n"
            )
            print(f"markdown report written to {out}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Observability reports: run one instrumented trial and render "
            "its phase/metric breakdown (with optional Chrome trace "
            "export), or summarise a campaign's results store."
        )
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--scenario",
        default=None,
        help=(
            "trial mode: a registered scenario name "
            f"({', '.join(scenario_names())}) or '{HEADLINE}' for the "
            "paper's §7 configuration"
        ),
    )
    mode.add_argument(
        "--campaign",
        default=None,
        metavar="ID_OR_NAME",
        help="campaign mode: summarise this campaign's results store",
    )
    parser.add_argument(
        "--epochs", type=int, default=300, help="trial length (default: 300)"
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="master seed (default: 1)"
    )
    parser.add_argument(
        "--instrument",
        default="full",
        choices=("metrics", "full"),
        help="instrumentation level for the trial (default: full)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the Chrome trace-event JSON (Perfetto-loadable)",
    )
    parser.add_argument(
        "--trace-jsonl",
        default=None,
        metavar="PATH",
        help="write the raw tracer records as JSON lines",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help=f"results store path (campaign mode; default: {DEFAULT_STORE_NAME})",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the deterministic JSON export",
    )
    parser.add_argument(
        "--markdown",
        default=None,
        metavar="PATH",
        help="write a markdown report",
    )
    args = parser.parse_args(argv)
    if args.scenario is not None:
        return run_trial_report(args)
    return run_campaign_report(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
