"""The observability catalogue: every metric, trace category, and phase.

Mirrors ``STREAM_REGISTRY`` (``repro.simulation.rng``): a declarative
literal table that makes names checkable statically.  Two call sites
incrementing subtly different spellings of the same counter produce two
half-counts that no test catches -- so every metric name and trace
category used anywhere in ``src/repro`` must be a string literal
registered here.  ``tools/reprolint`` rules RL501-RL503 enforce this at
lint time; :class:`~repro.obs.metrics.MetricsRegistry` enforces it at
runtime when enabled (and skips the check entirely when disabled, so the
null path stays free).

The tables map each name to a one-line description -- the same text
``docs/observability.md`` renders as the metric catalogue.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Every metric name `MetricsRegistry` accepts: name -> description.
#: Prefixes follow the owning subsystem (engine/channel/mac/dirq/runner).
METRIC_CATALOGUE: Dict[str, str] = {
    "engine.events_executed": "events popped and run by the simulator loop",
    "engine.events_cancelled": "events cancelled before execution",
    "engine.compactions": "lazily-cancelled-event heap compaction passes",
    "channel.broadcasts": "broadcast transmissions offered to the channel",
    "channel.unicasts": "unicast transmissions offered to the channel",
    "channel.deliveries": "receptions actually delivered to a radio",
    "channel.drops_loss": "receptions dropped by the loss model",
    "channel.drops_dead_node": "receptions dropped at a dead receiver",
    "channel.drops_no_link": "unicasts dropped for want of a link",
    "channel.fanout": "histogram of per-transmission broadcast fan-out",
    "mac.beacons_sent": "LMAC slot beacons transmitted",
    "mac.slot_conflicts": "first-hop slot conflicts detected",
    "mac.slot_elections": "slot (re-)elections performed",
    "mac.slots_occupied": "histogram of per-node occupied first-hop slots",
    "dirq.updates_sent": "range updates transmitted toward the root",
    "dirq.updates_suppressed": "epoch ticks ending with no update needed",
    "dirq.queries_received": "query packets received by DirQ nodes",
    "dirq.queries_forwarded": "query packets forwarded down the tree",
    "dirq.table_entries": "histogram of per-node range-table sizes",
    "runner.epochs": "epochs simulated by the experiment runner",
    "runner.relinks": "mobility-driven topology re-links applied",
    "runner.scenario_events": "scripted/churn topology events applied",
    "runner.queries_injected": "workload queries injected at the root",
}

#: Every `Tracer` record category: category -> description.  The seed
#: ring buffer predates this table; the names below are exactly the
#: literals the simulation layers already record.
TRACE_CATALOGUE: Dict[str, str] = {
    "channel.tx": "a transmission enters the channel",
    "channel.rx": "a reception is delivered",
    "lmac.neighbor_lost": "an LMAC neighbour timed out",
    "lmac.neighbor_found": "an LMAC neighbour was discovered",
    "lmac.slot_conflict": "an LMAC first-hop slot conflict",
    "lmac.slot_elected": "an LMAC slot (re-)election",
    "dirq.update": "a DirQ range update is sent",
    "dirq.estimate": "a DirQ estimate is relayed",
    "dirq.neighbor_found": "DirQ reacts to a found neighbour",
    "dirq.neighbor_lost": "DirQ reacts to a lost neighbour",
    "dirq.query_injected": "the root injects a query",
    "dirq.query_received": "a node receives a query",
    "dirq.query_unroutable": "a query could not be routed",
}

#: The epoch-tick phase taxonomy, in the order the runner executes them.
#: ``docs/observability.md`` documents what each phase covers.
PHASES: Tuple[str, ...] = (
    "mac",
    "scenario-hooks",
    "tree-repair",
    "sample",
    "channel",
    "protocol-tick",
)
