"""The single handle bundling a trial's instruments.

Before this module, ``Optional[Tracer]`` threaded individually through
``Simulator.__init__``, the channel, and the runner.  An
:class:`Instrumentation` bundles the tracer with the metrics registry
and the phase timer behind one object with one ``enabled`` question per
instrument, so component signatures take a single handle and untraced
runs keep the exact ``NULL_TRACER`` semantics of the seed code.

:func:`build_instrumentation` is the config mapping used by the
experiment runner:

=============================  =======  ========  ======
``ExperimentConfig``           metrics  profiler  tracer
=============================  =======  ========  ======
``instrument=None`` (default)  off      off       ``trace`` flag
``instrument="metrics"``       on       off       ``trace`` flag
``instrument="full"``          on       on        on
=============================  =======  ========  ======

``instrument`` is hash-exempt (``HASH_EXCLUDE`` on the config,
``ExperimentConfig.instrument`` in ``HASH_EXEMPT``): flipping it must
never fork a cache key or a fingerprint.
"""

from __future__ import annotations

from ..simulation.trace import NULL_TRACER, Tracer
from .metrics import NULL_METRICS, MetricsRegistry
from .phases import NULL_PHASES, PhaseTimer


class Instrumentation:
    """Metrics + phase timer + tracer, each defaulting to its null."""

    __slots__ = ("metrics", "phases", "tracer")

    def __init__(
        self,
        metrics: MetricsRegistry = NULL_METRICS,
        phases: PhaseTimer = NULL_PHASES,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.metrics = metrics
        self.phases = phases
        self.tracer = tracer

    @property
    def enabled(self) -> bool:
        """True when any instrument is live."""
        return (
            self.metrics.enabled or self.phases.enabled or self.tracer.enabled
        )


#: The all-null handle: every instrument disabled.  Process-global; do
#: not mutate.
NULL_INSTRUMENTATION = Instrumentation()


def build_instrumentation(config) -> Instrumentation:
    """The instrumentation a config asks for (see the module table).

    ``config`` is an :class:`~repro.experiments.config.ExperimentConfig`
    (typed loosely to keep this module import-free of the experiments
    layer); only its ``instrument`` and ``trace`` attributes are read.
    """
    instrument = getattr(config, "instrument", None)
    trace = bool(getattr(config, "trace", False))
    if instrument is None and not trace:
        return NULL_INSTRUMENTATION
    return Instrumentation(
        metrics=(
            MetricsRegistry(enabled=True)
            if instrument in ("metrics", "full")
            else NULL_METRICS
        ),
        phases=(
            PhaseTimer(enabled=True) if instrument == "full" else NULL_PHASES
        ),
        tracer=(
            Tracer(enabled=True) if (trace or instrument == "full")
            else NULL_TRACER
        ),
    )
