"""Named counters, gauges, and histograms with a zero-overhead off switch.

Design constraints, in priority order:

1. **Determinism.**  A metric snapshot is a pure function of the
   simulated work: no wall-clock reads, no object ids, no dict-order
   dependence (snapshots sort every key).  Snapshots live only in the
   hash-exempt ``telemetry`` payload, so they can never perturb a
   fingerprint -- but they must still be bit-identical across worker
   counts so telemetry itself is comparable between runs.
2. **Zero overhead when off.**  The hot loops never call into this
   module per event.  Components keep plain integer counters that the
   runner *harvests* once per trial (:meth:`MetricsRegistry.inc` with the
   final count); the few genuinely per-event observations (channel
   fan-out) are guarded by ``if metrics.enabled:`` exactly like the
   existing ``tracer.enabled`` idiom.
3. **Catalogue discipline.**  When enabled, every name is validated
   against :data:`~repro.obs.catalogue.METRIC_CATALOGUE`; a typo'd name
   raises instead of silently accumulating a parallel series.  The
   disabled registry skips validation -- the null path does no work.

Histogram buckets are fixed powers of two so bucket boundaries never
depend on the data (equal work -> equal snapshot, always).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .catalogue import METRIC_CATALOGUE

#: Upper bucket bounds of every histogram (value <= bound).  Fixed and
#: data-independent so snapshots from different runs are comparable;
#: values above the last bound land in the "inf" overflow bucket.
HISTOGRAM_BOUNDS: tuple = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)


class _Histogram:
    """Fixed-bucket histogram: count/total/min/max + per-bucket counts."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: List[int] = [0] * (len(HISTOGRAM_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(HISTOGRAM_BOUNDS):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def snapshot(self) -> Dict[str, object]:
        labels = [str(b) for b in HISTOGRAM_BOUNDS] + ["inf"]
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {
                label: n
                for label, n in zip(labels, self.buckets)
                if n  # empty buckets are noise in exports
            },
        }


class MetricsRegistry:
    """A registry of named counters, gauges, and histograms.

    ``enabled=False`` (the :data:`NULL_METRICS` default) turns every
    method into an immediate no-op; components share the ``if
    metrics.enabled:`` guard idiom with the tracer so the disabled path
    costs one attribute read at most -- and the hot loops avoid even
    that by keeping plain int counters harvested at trial end.
    """

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}

    @staticmethod
    def _validate(name: str) -> None:
        if name not in METRIC_CATALOGUE:
            raise ValueError(
                f"metric {name!r} is not registered in METRIC_CATALOGUE "
                "(repro.obs.catalogue); register it so reprolint RL502 "
                "and the docs catalogue stay truthful"
            )

    def inc(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to the counter ``name`` (creating it at 0)."""
        if not self.enabled:
            return
        self._validate(name)
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge_set(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        if not self.enabled:
            return
        self._validate(name)
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the histogram ``name``."""
        if not self.enabled:
            return
        self._validate(name)
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = _Histogram()
        hist.observe(value)

    def snapshot(self) -> Dict[str, object]:
        """The registry as a deterministic, JSON-ready dict.

        Keys are sorted at every level, so two registries fed the same
        observations in any order produce byte-identical JSON.
        """
        return {
            "counters": {
                name: self._counters[name] for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name] for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }


#: The shared disabled registry: every method is a no-op.  Do not
#: mutate -- it is process-global, like ``NULL_TRACER``.
NULL_METRICS = MetricsRegistry(enabled=False)
