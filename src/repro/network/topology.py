"""Network topology: node placement and connectivity.

The paper evaluates a 50-node network (one root) simulated in OMNeT++.  This
module provides the placement/connectivity substrate: a :class:`Topology`
value object (positions + an undirected connectivity graph) and generators
for the deployment styles used by the experiments:

* :func:`random_geometric_topology` -- nodes scattered uniformly in a square
  field, connected when within radio range (unit-disk model).  This is the
  default used to reproduce the paper's 50-node network.
* :func:`grid_topology` -- regular grid placement, useful for controlled
  tests.
* :func:`kary_tree_topology` -- a complete k-ary tree laid out in the plane,
  used to validate the analytical model of §5 against simulation.

Topologies are immutable for hashing/reproducibility except through the
explicit :meth:`Topology.without_node` / :meth:`Topology.with_node` copies,
which model node death and addition.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from .addresses import NodeId
from .links import within_range
from .spatial import SpatialHash, unit_disk_edges

Position = Tuple[float, float]

#: Connectivity derivation strategies for the unit-disk model.  ``"spatial"``
#: (the default) uses the grid-bucket hash in :mod:`repro.network.spatial` --
#: O(n k) for average degree k; ``"brute"`` is the original O(n^2) all-pairs
#: path, kept for A/B bit-identity tests.  Both produce byte-identical graphs
#: (same edge set via the shared :func:`~repro.network.links.within_range`
#: predicate, same lexicographic adjacency layout).
NEIGHBOR_METHODS = ("spatial", "brute")
DEFAULT_NEIGHBOR_METHOD = "spatial"


def _resolve_neighbor_method(method: Optional[str]) -> str:
    resolved = DEFAULT_NEIGHBOR_METHOD if method is None else method
    if resolved not in NEIGHBOR_METHODS:
        raise ValueError(
            f"unknown neighbor method {resolved!r}; expected one of "
            f"{NEIGHBOR_METHODS}"
        )
    return resolved


@dataclasses.dataclass(frozen=True)
class Topology:
    """Immutable node placement + connectivity.

    Attributes
    ----------
    graph:
        Undirected :class:`networkx.Graph` whose nodes are node ids and whose
        edges are radio links.
    positions:
        Mapping node id -> (x, y) coordinates in metres.
    comm_range:
        The radio range used to derive connectivity (``None`` for synthetic
        topologies like the explicit k-ary tree).
    """

    graph: nx.Graph
    positions: Dict[NodeId, Position]
    comm_range: Optional[float] = None

    # -- basic accessors -----------------------------------------------------

    @property
    def node_ids(self) -> List[NodeId]:
        """Sorted list of node identifiers."""
        return sorted(self.graph.nodes)

    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_links(self) -> int:
        """Number of undirected radio links (edges)."""
        return self.graph.number_of_edges()

    def neighbors(self, node_id: NodeId) -> List[NodeId]:
        """Sorted one-hop neighbours of ``node_id``."""
        if node_id not in self.graph:
            raise KeyError(f"unknown node {node_id}")
        return sorted(self.graph.neighbors(node_id))

    def degree(self, node_id: NodeId) -> int:
        return self.graph.degree[node_id]

    def has_node(self, node_id: NodeId) -> bool:
        return node_id in self.graph

    def has_link(self, a: NodeId, b: NodeId) -> bool:
        return self.graph.has_edge(a, b)

    def position(self, node_id: NodeId) -> Position:
        return self.positions[node_id]

    def distance(self, a: NodeId, b: NodeId) -> float:
        """Euclidean distance between two nodes' positions."""
        (xa, ya), (xb, yb) = self.positions[a], self.positions[b]
        return math.hypot(xa - xb, ya - yb)

    def is_connected(self) -> bool:
        """Whether the connectivity graph is a single component."""
        if self.num_nodes == 0:
            return True
        return nx.is_connected(self.graph)

    def position_array(self, order: Optional[Sequence[NodeId]] = None) -> np.ndarray:
        """Positions as an ``(n, 2)`` array, in ``order`` (default: sorted ids)."""
        ids = list(order) if order is not None else self.node_ids
        return np.array([self.positions[i] for i in ids], dtype=float)

    # -- topology edits (return copies) ---------------------------------------

    def without_node(self, node_id: NodeId) -> "Topology":
        """Copy of this topology with ``node_id`` (and its links) removed."""
        if node_id not in self.graph:
            raise KeyError(f"unknown node {node_id}")
        g = self.graph.copy()
        g.remove_node(node_id)
        positions = {k: v for k, v in self.positions.items() if k != node_id}
        return Topology(graph=g, positions=positions, comm_range=self.comm_range)

    def with_node(
        self,
        node_id: NodeId,
        position: Position,
        neighbors: Optional[Iterable[NodeId]] = None,
    ) -> "Topology":
        """Copy of this topology with a new node added.

        When ``neighbors`` is omitted and the topology has a ``comm_range``,
        links are derived from the unit-disk rule; otherwise the explicit
        neighbour list is used.
        """
        if node_id in self.graph:
            raise ValueError(f"node {node_id} already exists")
        g = self.graph.copy()
        g.add_node(node_id)
        positions = dict(self.positions)
        positions[node_id] = (float(position[0]), float(position[1]))
        if neighbors is None:
            if self.comm_range is None:
                raise ValueError(
                    "neighbors must be given for topologies without comm_range"
                )
            for other, pos in self.positions.items():
                if within_range(pos, positions[node_id], self.comm_range):
                    g.add_edge(node_id, other)
        else:
            for other in neighbors:
                if other not in g:
                    raise KeyError(f"unknown neighbor {other}")
                g.add_edge(node_id, other)
        return Topology(graph=g, positions=positions, comm_range=self.comm_range)

    def with_positions(
        self,
        updates: Dict[NodeId, Position],
        method: Optional[str] = None,
    ) -> "Topology":
        """Copy of this topology with some nodes moved.

        Connectivity is re-derived from the unit-disk rule over the updated
        placement, so this is the substrate of the mobility scenarios: node
        movement changes links, never the node set.  Requires a
        ``comm_range`` (synthetic topologies without one have no rule to
        re-derive links from).  ``method`` selects the derivation strategy
        (see :data:`NEIGHBOR_METHODS`); callers that also need the set of
        nodes whose neighbourhood changed should use
        :meth:`with_positions_delta` instead.
        """
        return self.with_positions_delta(updates, method=method)[0]

    def with_positions_delta(
        self,
        updates: Dict[NodeId, Position],
        method: Optional[str] = None,
    ) -> Tuple["Topology", Set[NodeId]]:
        """Move nodes and report which nodes' neighbourhoods changed.

        Returns ``(new topology, dirty)`` where ``dirty`` is the set of
        endpoints of every link added or removed by the move -- exactly the
        nodes an incremental spanning-tree repair must re-examine.

        With the default ``"spatial"`` method only edges incident to moved
        nodes are recomputed (grid-hash queries on the moved set), so a
        re-link that moves m of n nodes costs O(n + m k) instead of the
        brute-force O(n^2).  The resulting graph is byte-identical to a full
        rebuild: surviving edges and recomputed edges are merged and
        inserted in lexicographic order, the same adjacency layout both full
        builders produce.
        """
        if not updates:
            return self, set()
        if self.comm_range is None:
            raise ValueError(
                "with_positions requires a comm_range to re-derive links"
            )
        unknown = [nid for nid in updates if nid not in self.graph]
        if unknown:
            raise KeyError(f"unknown nodes {sorted(unknown)}")
        resolved = _resolve_neighbor_method(method)
        positions = dict(self.positions)
        for nid, (x, y) in updates.items():
            positions[nid] = (float(x), float(y))

        moved = set(updates)
        if resolved == "brute":
            graph = _unit_disk_graph(positions, self.comm_range, method="brute")
            dirty: Set[NodeId] = set()
            for nid in sorted(moved):
                old_nb = set(self.graph.neighbors(nid))
                new_nb = set(graph.neighbors(nid))
                changed = old_nb ^ new_nb
                if changed:
                    dirty.add(nid)
                    dirty.update(changed)
            return (
                Topology(
                    graph=graph, positions=positions, comm_range=self.comm_range
                ),
                dirty,
            )

        # Spatial delta: edges between two unmoved nodes cannot have changed,
        # so keep them and recompute only the moved-incident ones.
        old_touch: Set[Tuple[NodeId, NodeId]] = set()
        for nid in sorted(moved):
            for other in self.graph.neighbors(nid):
                old_touch.add((nid, other) if nid < other else (other, nid))
        grid = SpatialHash(positions, cell_size=self.comm_range)
        new_touch: Set[Tuple[NodeId, NodeId]] = set()
        for nid in sorted(moved):
            for other in grid.neighbors_within(nid, self.comm_range):
                new_touch.add((nid, other) if nid < other else (other, nid))
        # Iterate the adjacency dicts directly rather than through the
        # EdgeView: each (a, b) with a < b appears exactly once this way,
        # and on the per-relink hot path the view's per-edge overhead is
        # the single largest cost at n=500.
        adjacency = self.graph._adj
        edges = [
            (a, b)
            for a, nbrs in adjacency.items()
            if a not in moved
            for b in nbrs
            if a < b and b not in moved
        ]
        edges.extend(sorted(new_touch))
        edges.sort()
        graph = _graph_from_lex_edges(positions, edges)
        dirty = set()
        for a, b in sorted(old_touch ^ new_touch):
            dirty.add(a)
            dirty.add(b)
        return (
            Topology(graph=graph, positions=positions, comm_range=self.comm_range),
            dirty,
        )

    def with_position(self, node_id: NodeId, position: Position) -> "Topology":
        """Copy of this topology with one node moved (see :meth:`with_positions`)."""
        return self.with_positions({node_id: position})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(nodes={self.num_nodes}, links={self.num_links}, "
            f"range={self.comm_range})"
        )


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------


def _graph_from_lex_edges(
    positions: Dict[NodeId, Position],
    edges: Iterable[Tuple[NodeId, NodeId]],
) -> nx.Graph:
    """Assemble a graph from lexicographically sorted ``(low, high)`` edges.

    Produces the exact structure ``add_edges_from(edges)`` would on a graph
    seeded with ``add_nodes_from(positions)``: inserting lex-sorted pairs
    gives every node its neighbours in ascending id order, the adjacency
    layout the broadcast fan-out (and therefore experiment fingerprints)
    is pinned to.  The adjacency dicts are filled directly -- one shared
    attribute dict per edge, stored under both endpoints, exactly as
    ``nx.Graph.add_edge`` does -- because this sits on the mobility hot
    path, where networkx's per-edge bookkeeping dominates the rebuild; the
    bit-level equivalence with the public API is pinned by the spatial
    equivalence tests.
    """
    g = nx.Graph()
    g.add_nodes_from(positions)
    adj = g._adj
    for a, b in edges:
        shared: Dict = {}
        adj[a][b] = shared
        adj[b][a] = shared
    return g


def _unit_disk_graph(
    positions: Dict[NodeId, Position],
    comm_range: float,
    method: Optional[str] = None,
) -> nx.Graph:
    """Build the unit-disk connectivity graph for the given positions.

    Both methods produce byte-identical graphs: the same edge set (the
    inclusive :func:`~repro.network.links.within_range` predicate evaluates
    ``sqrt(dx*dx + dy*dy)`` with the same rounding as the vectorised
    ``np.sqrt`` below) inserted in the same lexicographic order, which pins
    the adjacency layout that broadcast fan-out -- and therefore experiment
    fingerprints -- depend on.
    """
    resolved = _resolve_neighbor_method(method)
    if resolved == "spatial":
        return _graph_from_lex_edges(
            positions, unit_disk_edges(positions, comm_range)
        )
    g = nx.Graph()
    g.add_nodes_from(positions)
    ids = sorted(positions)
    coords = np.array([positions[i] for i in ids], dtype=float)
    if len(ids) > 1:
        # Pairwise distances, vectorised; the reference O(n^2) path.
        diffs = coords[:, None, :] - coords[None, :, :]
        dist = np.sqrt((diffs**2).sum(axis=-1))
        within = dist <= comm_range
        for i_idx in range(len(ids)):
            for j_idx in range(i_idx + 1, len(ids)):
                if within[i_idx, j_idx]:
                    g.add_edge(ids[i_idx], ids[j_idx])
    return g


def random_geometric_topology(
    num_nodes: int,
    comm_range: float,
    area_size: float = 100.0,
    rng: Optional[np.random.Generator] = None,
    ensure_connected: bool = True,
    root_id: NodeId = 0,
    root_position: Optional[Position] = None,
    max_attempts: int = 200,
    method: Optional[str] = None,
) -> Topology:
    """Scatter nodes uniformly in a square field with unit-disk connectivity.

    Parameters
    ----------
    num_nodes:
        Total number of nodes including the root.
    comm_range:
        Radio range in the same units as ``area_size``.
    area_size:
        Side length of the square deployment field.
    rng:
        Random generator; a fresh default generator is used when omitted
        (pass one for reproducibility).
    ensure_connected:
        Re-draw placements until the topology is connected (the paper's
        network is connected by construction).
    root_id:
        Identifier of the root/sink node.
    root_position:
        Fixed position for the root (defaults to the field centre), which
        mimics a sink placed deliberately by the deployment team.
    max_attempts:
        Safety bound on connectivity re-draws.
    method:
        Connectivity derivation strategy (see :data:`NEIGHBOR_METHODS`);
        both strategies yield byte-identical topologies, so this only
        selects the time/space profile of the build.

    Raises
    ------
    RuntimeError
        If a connected deployment cannot be found within ``max_attempts``.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if comm_range <= 0:
        raise ValueError("comm_range must be positive")
    if rng is None:
        # Unseeded by design: interactive convenience only.  Managed runs
        # always pass the "topology" stream (see docstring above).
        rng = np.random.default_rng()  # reprolint: disable=RL104

    root_pos: Position = (
        (area_size / 2.0, area_size / 2.0) if root_position is None else root_position
    )

    for _ in range(max_attempts):
        positions: Dict[NodeId, Position] = {}
        other_ids = [i for i in range(num_nodes) if i != root_id]
        coords = rng.uniform(0.0, area_size, size=(len(other_ids), 2))
        positions[root_id] = (float(root_pos[0]), float(root_pos[1]))
        for idx, nid in enumerate(other_ids):
            positions[nid] = (float(coords[idx, 0]), float(coords[idx, 1]))
        graph = _unit_disk_graph(positions, comm_range, method=method)
        topo = Topology(graph=graph, positions=positions, comm_range=comm_range)
        if not ensure_connected or topo.is_connected():
            return topo
    raise RuntimeError(
        f"could not generate a connected topology with n={num_nodes}, "
        f"range={comm_range}, area={area_size} after {max_attempts} attempts; "
        "increase comm_range or decrease area_size"
    )


def grid_topology(
    rows: int,
    cols: int,
    spacing: float = 10.0,
    comm_range: Optional[float] = None,
    root_id: NodeId = 0,
) -> Topology:
    """Regular ``rows x cols`` grid.

    By default the radio range is set to 1.5x the grid spacing so that each
    node hears its 4-neighbourhood but not diagonal nodes at distance
    ``spacing * sqrt(2)`` > 1.5 would... note 1.5 > sqrt(2) ~ 1.414, so
    diagonals are included; pass ``comm_range=spacing * 1.1`` for a strict
    4-neighbour grid.
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    if comm_range is None:
        comm_range = spacing * 1.1
    positions: Dict[NodeId, Position] = {}
    nid = 0
    for r in range(rows):
        for c in range(cols):
            positions[nid] = (c * spacing, r * spacing)
            nid += 1
    graph = _unit_disk_graph(positions, comm_range)
    topo = Topology(graph=graph, positions=positions, comm_range=comm_range)
    if root_id not in positions:
        raise ValueError(f"root_id {root_id} outside grid of {rows * cols} nodes")
    return topo


def kary_tree_topology(
    branching: int,
    depth: int,
    spacing: float = 10.0,
) -> Topology:
    """A complete k-ary tree of the given depth, laid out level by level.

    Used to validate the §5 analytical model: the connectivity graph *is*
    the tree (no shortcut links), so simulated flooding / dissemination costs
    can be compared with the closed-form expressions exactly.

    ``depth`` follows the paper's convention: a tree of depth ``d`` has
    ``d + 1`` levels (the root is at depth 0) and ``(k^(d+1) - 1) / (k - 1)``
    nodes for ``k > 1``.
    """
    if branching < 1:
        raise ValueError("branching factor must be >= 1")
    if depth < 0:
        raise ValueError("depth must be >= 0")
    graph = nx.Graph()
    positions: Dict[NodeId, Position] = {}
    graph.add_node(0)
    positions[0] = (0.0, 0.0)
    next_id = 1
    frontier = [0]
    for level in range(1, depth + 1):
        new_frontier: List[NodeId] = []
        for parent in frontier:
            for _ in range(branching):
                child = next_id
                next_id += 1
                graph.add_node(child)
                graph.add_edge(parent, child)
                new_frontier.append(child)
        # Spread the level horizontally for a readable layout.
        width = max(len(new_frontier) - 1, 1)
        for idx, child in enumerate(new_frontier):
            x = (idx - width / 2.0) * spacing
            positions[child] = (x, -level * spacing)
        frontier = new_frontier
    return Topology(graph=graph, positions=positions, comm_range=None)
