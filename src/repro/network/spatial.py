"""Grid-bucket spatial hash for O(k) unit-disk neighbour queries.

The brute-force unit-disk builder compares every pair of nodes: O(n^2)
distance checks per rebuild, which is what makes 5 000-node topologies (and
every mobility re-link at that scale) intractable.  This module provides the
standard fix: hash every node into a square grid cell of side
``cell_size`` (the radio range, by default), so a range query only inspects
the 3x3 block of cells around the query point -- O(k) work for k nodes in
the neighbourhood instead of O(n).

Determinism contract
--------------------
The hash is used by connectivity construction, which feeds broadcast target
order and therefore experiment fingerprints, so every iteration order here
is pinned:

* buckets are **drained in sorted cell order** and members of a bucket are
  visited in sorted id order (``reprolint`` RL110 enforces this for the
  ``Dict[cell, Set[node]]`` bucket structure);
* every query returns a **sorted list** of node ids;
* the range check is the shared inclusive predicate
  :func:`repro.network.links.within_range` -- bit-identical to the
  brute-force builder's vectorised formulation, so the spatial and brute
  paths can never disagree on a boundary tie.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .addresses import NodeId
from .links import Position, within_range

Cell = Tuple[int, int]


class SpatialHash:
    """Mutable grid-bucket index over node positions.

    Parameters
    ----------
    positions:
        Initial ``node id -> (x, y)`` placement (may be empty).
    cell_size:
        Side length of a grid cell.  Queries with ``radius <= cell_size``
        inspect at most the 3x3 block around the query cell; larger radii
        widen the block accordingly, so any positive cell size is correct
        -- ``comm_range`` is simply the efficient choice for unit-disk
        neighbourhoods.
    """

    def __init__(
        self,
        positions: Optional[Dict[NodeId, Position]] = None,
        cell_size: float = 1.0,
    ):
        if cell_size <= 0 or not math.isfinite(cell_size):
            raise ValueError("cell_size must be positive and finite")
        self.cell_size = float(cell_size)
        self._buckets: Dict[Cell, Set[NodeId]] = {}
        self._cell_of: Dict[NodeId, Cell] = {}
        self._positions: Dict[NodeId, Position] = {}
        if positions:
            # Fused bulk insert: same result as insert() per node (ids are
            # unique dict keys, so the duplicate check is vacuous), without
            # the per-call overhead -- this constructor runs once per
            # mobility re-link on the scaling hot path.
            size = self.cell_size
            buckets = self._buckets
            cell_of = self._cell_of
            index = self._positions
            for nid in sorted(positions):
                x, y = positions[nid]
                pos = (float(x), float(y))
                cell = (
                    int(math.floor(pos[0] / size)),
                    int(math.floor(pos[1] / size)),
                )
                members = buckets.get(cell)
                if members is None:
                    buckets[cell] = {nid}
                else:
                    members.add(nid)
                cell_of[nid] = cell
                index[nid] = pos

    # -- mutation ------------------------------------------------------------

    def insert(self, node_id: NodeId, position: Position) -> None:
        """Add a node (raises if it is already indexed)."""
        if node_id in self._cell_of:
            raise ValueError(f"node {node_id} already indexed; use move()")
        pos = (float(position[0]), float(position[1]))
        cell = self.cell_for(pos)
        self._buckets.setdefault(cell, set()).add(node_id)
        self._cell_of[node_id] = cell
        self._positions[node_id] = pos

    def remove(self, node_id: NodeId) -> None:
        """Drop a node from the index (raises if unknown)."""
        cell = self._cell_of.pop(node_id, None)
        if cell is None:
            raise KeyError(f"unknown node {node_id}")
        bucket = self._buckets[cell]
        bucket.discard(node_id)
        if not bucket:
            del self._buckets[cell]
        del self._positions[node_id]

    def move(self, node_id: NodeId, position: Position) -> None:
        """Update a node's position (cheap when it stays in its cell)."""
        old_cell = self._cell_of.get(node_id)
        if old_cell is None:
            raise KeyError(f"unknown node {node_id}")
        pos = (float(position[0]), float(position[1]))
        new_cell = self.cell_for(pos)
        if new_cell != old_cell:
            bucket = self._buckets[old_cell]
            bucket.discard(node_id)
            if not bucket:
                del self._buckets[old_cell]
            self._buckets.setdefault(new_cell, set()).add(node_id)
            self._cell_of[node_id] = new_cell
        self._positions[node_id] = pos

    # -- structure -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._cell_of)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._cell_of

    def position(self, node_id: NodeId) -> Position:
        return self._positions[node_id]

    def cell_for(self, position: Position) -> Cell:
        """Grid cell containing ``position`` (floor division per axis)."""
        return (
            int(math.floor(float(position[0]) / self.cell_size)),
            int(math.floor(float(position[1]) / self.cell_size)),
        )

    def cells(self) -> List[Cell]:
        """Occupied cells, sorted (the canonical drain order)."""
        return sorted(self._buckets)

    def bucket(self, cell: Cell) -> List[NodeId]:
        """Sorted members of one cell (empty list for vacant cells)."""
        members = self._buckets.get(cell)
        return sorted(members) if members else []

    def items(self) -> Iterator[Tuple[Cell, List[NodeId]]]:
        """Iterate ``(cell, sorted members)`` in sorted cell order."""
        for cell in sorted(self._buckets):
            yield cell, sorted(self._buckets[cell])

    # -- queries -------------------------------------------------------------

    def query(
        self,
        position: Position,
        radius: float,
        exclude: Optional[NodeId] = None,
    ) -> List[NodeId]:
        """Sorted ids of indexed nodes within ``radius`` of ``position``.

        The range check is inclusive (:func:`~repro.network.links.
        within_range`); ``exclude`` drops one id from the result (the
        querying node itself, typically).
        """
        if radius < 0 or not math.isfinite(radius):
            raise ValueError("radius must be non-negative and finite")
        pos = (float(position[0]), float(position[1]))
        reach = int(math.ceil(radius / self.cell_size)) if radius > 0 else 0
        cx, cy = self.cell_for(pos)
        out: List[NodeId] = []
        buckets = self._buckets
        for gx in range(cx - reach, cx + reach + 1):
            for gy in range(cy - reach, cy + reach + 1):
                members = buckets.get((gx, gy))
                if not members:
                    continue
                for nid in sorted(members):
                    if nid == exclude:
                        continue
                    if within_range(pos, self._positions[nid], radius):
                        out.append(nid)
        out.sort()
        return out

    def neighbors_within(self, node_id: NodeId, radius: float) -> List[NodeId]:
        """Sorted ids of other nodes within ``radius`` of ``node_id``."""
        pos = self._positions.get(node_id)
        if pos is None:
            raise KeyError(f"unknown node {node_id}")
        return self.query(pos, radius, exclude=node_id)


def unit_disk_edges(
    positions: Dict[NodeId, Position], comm_range: float
) -> List[Tuple[NodeId, NodeId]]:
    """All unit-disk edges over ``positions``, sorted lexicographically.

    Each edge is returned once as ``(low id, high id)``.  Inserting edges
    into a fresh graph in exactly this order reproduces the adjacency
    layout of the brute-force double loop (ascending outer id, ascending
    inner id), which broadcast fan-out order -- and therefore experiment
    fingerprints -- depend on.
    """
    grid = SpatialHash(positions, cell_size=comm_range)
    edges: List[Tuple[NodeId, NodeId]] = []
    for nid in sorted(positions):
        for other in grid.neighbors_within(nid, comm_range):
            if other > nid:
                edges.append((nid, other))
    return edges
