"""Sensor node model.

A :class:`SensorNode` bundles everything that belongs to one physical device:
its identity and position, the sensors mounted on it, its battery, and
references to the protocol layers stacked on it (MAC below, application /
dissemination protocol above).  The paper's heterogeneity requirement
(Fig. 4: different nodes may carry different combinations of sensor types)
is modelled by each node owning an arbitrary subset of sensor types.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..energy.battery import Battery
from .addresses import NodeId, validate_node_id


class SensorNode:
    """One device in the network.

    Parameters
    ----------
    node_id:
        Unique identifier.
    position:
        (x, y) coordinates in the deployment field.
    is_root:
        Whether this node is the sink connected to the user-facing server.
    battery:
        Optional finite battery; infinite by default (the paper's setting).
    """

    def __init__(
        self,
        node_id: NodeId,
        position: Tuple[float, float],
        is_root: bool = False,
        battery: Optional[Battery] = None,
    ):
        validate_node_id(node_id)
        self.node_id = node_id
        self.position = (float(position[0]), float(position[1]))
        self.is_root = bool(is_root)
        self.battery = battery if battery is not None else Battery()
        self.alive = True
        self._sensors: Dict[str, Any] = {}
        self._sensor_types_cache: Optional[List[str]] = None
        self._sensors_sorted_cache: Optional[List[Tuple[str, Any]]] = None
        #: Bumped on attach/detach so protocol layers can cache sensor-derived
        #: state and cheaply detect when it must be rebuilt.
        self.sensors_version = 0
        # Protocol stack; assigned by the experiment runner / examples.
        self.mac: Any = None
        self.app: Any = None

    # -- sensors -----------------------------------------------------------

    def attach_sensor(self, sensor: Any) -> None:
        """Mount a sensor on this node.

        ``sensor`` must expose a ``sensor_type`` attribute (a string) and a
        ``sample(epoch)`` method; see :class:`repro.sensors.sensor.Sensor`.
        Attaching a second sensor of the same type replaces the first — the
        paper's "addition of new sensor types after deployment" is modelled
        by calling this after the simulation has started.
        """
        stype = getattr(sensor, "sensor_type", None)
        if not stype:
            raise ValueError("sensor must expose a non-empty sensor_type")
        self._sensors[str(stype)] = sensor
        self._sensor_types_cache = None
        self._sensors_sorted_cache = None
        self.sensors_version += 1

    def detach_sensor(self, sensor_type: str) -> bool:
        """Remove the sensor of the given type; returns True if present."""
        removed = self._sensors.pop(sensor_type, None) is not None
        if removed:
            self._sensor_types_cache = None
            self._sensors_sorted_cache = None
            self.sensors_version += 1
        return removed

    def has_sensor(self, sensor_type: str) -> bool:
        return sensor_type in self._sensors

    def sensor(self, sensor_type: str) -> Any:
        if sensor_type not in self._sensors:
            raise KeyError(f"node {self.node_id} has no {sensor_type!r} sensor")
        return self._sensors[sensor_type]

    @property
    def sensor_types(self) -> List[str]:
        """Sorted sensor types mounted on this node.

        The protocol layer iterates this every epoch; the sorted list is
        cached and invalidated on attach/detach so the hot loop does not
        re-sort an unchanged sensor suite 20 000 times.
        """
        cached = self._sensor_types_cache
        if cached is None:
            cached = self._sensor_types_cache = sorted(self._sensors)
        return list(cached)

    def sensors_sorted(self) -> List[Tuple[str, Any]]:
        """``(sensor_type, sensor)`` pairs in sorted type order (cached).

        The per-epoch sampling loop walks this list; it is rebuilt only when
        a sensor is attached or detached.
        """
        cached = self._sensors_sorted_cache
        if cached is None:
            cached = self._sensors_sorted_cache = [
                (stype, self._sensors[stype]) for stype in self.sensor_types
            ]
        return cached

    def sample(self, sensor_type: str, epoch: int) -> float:
        """Acquire a reading from the named sensor at the given epoch."""
        sensor = self._sensors.get(sensor_type)
        if sensor is None:
            raise KeyError(f"node {self.node_id} has no {sensor_type!r} sensor")
        value = sensor.sample(epoch)
        return value if type(value) is float else float(value)

    def sample_all(self, epoch: int) -> Dict[str, float]:
        """Acquire a reading from every mounted sensor."""
        return {stype: float(s.sample(epoch)) for stype, s in self._sensors.items()}

    # -- lifecycle ------------------------------------------------------------

    def kill(self) -> None:
        """Mark the node dead (it stops sensing and communicating)."""
        self.alive = False

    def revive(self) -> None:
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "root" if self.is_root else "node"
        return (
            f"SensorNode({role} {self.node_id}, pos={self.position}, "
            f"sensors={self.sensor_types}, alive={self.alive})"
        )
