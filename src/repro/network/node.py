"""Sensor node model.

A :class:`SensorNode` bundles everything that belongs to one physical device:
its identity and position, the sensors mounted on it, its battery, and
references to the protocol layers stacked on it (MAC below, application /
dissemination protocol above).  The paper's heterogeneity requirement
(Fig. 4: different nodes may carry different combinations of sensor types)
is modelled by each node owning an arbitrary subset of sensor types.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..energy.battery import Battery
from .addresses import NodeId, validate_node_id


class SensorNode:
    """One device in the network.

    Parameters
    ----------
    node_id:
        Unique identifier.
    position:
        (x, y) coordinates in the deployment field.
    is_root:
        Whether this node is the sink connected to the user-facing server.
    battery:
        Optional finite battery; infinite by default (the paper's setting).
    """

    def __init__(
        self,
        node_id: NodeId,
        position: Tuple[float, float],
        is_root: bool = False,
        battery: Optional[Battery] = None,
    ):
        validate_node_id(node_id)
        self.node_id = node_id
        self.position = (float(position[0]), float(position[1]))
        self.is_root = bool(is_root)
        self.battery = battery if battery is not None else Battery()
        self.alive = True
        self._sensors: Dict[str, Any] = {}
        # Protocol stack; assigned by the experiment runner / examples.
        self.mac: Any = None
        self.app: Any = None

    # -- sensors -----------------------------------------------------------

    def attach_sensor(self, sensor: Any) -> None:
        """Mount a sensor on this node.

        ``sensor`` must expose a ``sensor_type`` attribute (a string) and a
        ``sample(epoch)`` method; see :class:`repro.sensors.sensor.Sensor`.
        Attaching a second sensor of the same type replaces the first — the
        paper's "addition of new sensor types after deployment" is modelled
        by calling this after the simulation has started.
        """
        stype = getattr(sensor, "sensor_type", None)
        if not stype:
            raise ValueError("sensor must expose a non-empty sensor_type")
        self._sensors[str(stype)] = sensor

    def detach_sensor(self, sensor_type: str) -> bool:
        """Remove the sensor of the given type; returns True if present."""
        return self._sensors.pop(sensor_type, None) is not None

    def has_sensor(self, sensor_type: str) -> bool:
        return sensor_type in self._sensors

    def sensor(self, sensor_type: str) -> Any:
        if sensor_type not in self._sensors:
            raise KeyError(f"node {self.node_id} has no {sensor_type!r} sensor")
        return self._sensors[sensor_type]

    @property
    def sensor_types(self) -> List[str]:
        """Sorted sensor types mounted on this node."""
        return sorted(self._sensors)

    def sample(self, sensor_type: str, epoch: int) -> float:
        """Acquire a reading from the named sensor at the given epoch."""
        return float(self.sensor(sensor_type).sample(epoch))

    def sample_all(self, epoch: int) -> Dict[str, float]:
        """Acquire a reading from every mounted sensor."""
        return {stype: float(s.sample(epoch)) for stype, s in self._sensors.items()}

    # -- lifecycle ------------------------------------------------------------

    def kill(self) -> None:
        """Mark the node dead (it stops sensing and communicating)."""
        self.alive = False

    def revive(self) -> None:
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "root" if self.is_root else "node"
        return (
            f"SensorNode({role} {self.node_id}, pos={self.position}, "
            f"sensors={self.sensor_types}, alive={self.alive})"
        )
