"""Wireless network substrate: placement, connectivity, channel, tree."""

from .addresses import BROADCAST, NodeId, is_broadcast, validate_node_id
from .channel import ChannelStats, WirelessChannel
from .links import NeighborEntry, NeighborTable
from .node import SensorNode
from .spanning_tree import (
    SpanningTree,
    TreeBeacon,
    TreeError,
    TreeSetupProtocol,
    build_bfs_tree,
)
from .topology import (
    Topology,
    grid_topology,
    kary_tree_topology,
    random_geometric_topology,
)

__all__ = [
    "BROADCAST",
    "NodeId",
    "is_broadcast",
    "validate_node_id",
    "ChannelStats",
    "WirelessChannel",
    "NeighborEntry",
    "NeighborTable",
    "SensorNode",
    "SpanningTree",
    "TreeBeacon",
    "TreeError",
    "TreeSetupProtocol",
    "build_bfs_tree",
    "Topology",
    "grid_topology",
    "kary_tree_topology",
    "random_geometric_topology",
]
