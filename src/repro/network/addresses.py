"""Node addressing primitives.

Nodes are identified by small non-negative integers.  The root/sink of the
network is conventionally node 0 (configurable in the experiment configs).
``BROADCAST`` is the destination used for one-hop MAC broadcasts, matching
the paper's flooding and tree-setup operations.
"""

from __future__ import annotations

NodeId = int
"""Type alias for node identifiers."""

BROADCAST: NodeId = -1
"""Pseudo-address meaning "all one-hop neighbours"."""


def validate_node_id(node_id: NodeId, *, allow_broadcast: bool = False) -> NodeId:
    """Validate a node identifier.

    Parameters
    ----------
    node_id:
        Candidate identifier.
    allow_broadcast:
        Whether the :data:`BROADCAST` sentinel is acceptable.

    Returns
    -------
    NodeId
        The validated identifier (unchanged).

    Raises
    ------
    TypeError
        If the identifier is not an integer.
    ValueError
        If the identifier is negative (and not the allowed broadcast
        sentinel).
    """
    if isinstance(node_id, bool) or not isinstance(node_id, int):
        raise TypeError(f"node id must be an int, got {type(node_id).__name__}")
    if node_id == BROADCAST:
        if allow_broadcast:
            return node_id
        raise ValueError("broadcast address not allowed here")
    if node_id < 0:
        raise ValueError(f"node id must be non-negative, got {node_id}")
    return node_id


def is_broadcast(node_id: NodeId) -> bool:
    """Whether ``node_id`` is the broadcast sentinel."""
    return node_id == BROADCAST
